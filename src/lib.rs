//! # match-making — distributed match-making for processes in computer networks
//!
//! A full reproduction of **Mullender & Vitányi, "Distributed Match-Making
//! for Processes in Computer Networks" (PODC 1985)** as a Rust workspace:
//!
//! * [`core`] (re-export of `mm-core`) — the theory: strategies
//!   (`P, Q : U → 2^U`), rendezvous matrices, the `m(n) ≥ (2/n)·Σ√k_i`
//!   lower bound, the checkerboard and lifting constructions, robustness
//!   combinators, Hash Locate.
//! * [`topo`] (`mm-topo`) — every network family the paper analyses, plus
//!   routing, spanning/multicast cost accounting and the `√n`
//!   decomposition of general graphs.
//! * [`sim`] (`mm-sim`) — the deterministic hop-counting simulator.
//! * [`proto`] (`mm-proto`) — the name-server protocols: Shotgun Locate,
//!   Hash Locate with rehash, Lighthouse Locate, the Amoeba-style service
//!   model, and a threaded live runtime.
//! * [`analysis`] (`mm-analysis`) — statistics and scaling fits for the
//!   experiment harness.
//!
//! # Quick start
//!
//! ```
//! use match_making::prelude::*;
//!
//! // a 64-node network with the truly distributed name server
//! let n = 64;
//! let mut net = ServiceNet::new(
//!     gen::complete(n),
//!     Checkerboard::new(n),
//!     CostModel::Uniform,
//! );
//! net.start_service(NodeId::new(3), "file-server");
//!
//! // any client can find and call it, in ~2*sqrt(n) messages
//! let reply = net.call(NodeId::new(60), "file-server", 41).unwrap();
//! assert_eq!(reply, 42);
//!
//! // ... even after it migrates
//! net.migrate_service("file-server", NodeId::new(3), NodeId::new(40));
//! assert_eq!(net.call(NodeId::new(60), "file-server", 1).unwrap(), 2);
//! ```

pub use mm_analysis as analysis;
pub use mm_core as core;
pub use mm_proto as proto;
pub use mm_sim as sim;
pub use mm_topo as topo;

/// One-stop imports for applications and examples.
pub mod prelude {
    pub use mm_core::strategies::{
        Blocks, Broadcast, CccStrategy, Centralized, Checkerboard, DecomposedStrategy,
        GridRowColumn, HashLocate, HierarchicalStrategy, HypercubeSplit, MeshSplit, PortMapped,
        ProjectiveStrategy, Sweep, TreePathToRoot,
    };
    pub use mm_core::{bounds, Port, RendezvousMatrix, Strategy};
    pub use mm_proto::service::{ServiceError, ServiceNet};
    pub use mm_proto::{LocateOutcome, ShotgunEngine};
    pub use mm_sim::{CostModel, Metrics, Sim};
    pub use mm_topo::{gen, AnyRouter, Decomposition, Graph, NodeId, Router, RoutingTable};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        use crate::prelude::*;
        let s = Checkerboard::new(9);
        assert_eq!(Strategy::node_count(&s), 9);
        let g = gen::ring(5);
        assert_eq!(g.node_count(), 5);
    }
}
