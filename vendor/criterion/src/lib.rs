//! Vendored, offline subset of the `criterion` API.
//!
//! Implements `Criterion`, benchmark groups, `BenchmarkId`, `Bencher` and
//! the `criterion_group!`/`criterion_main!` macros with a simple
//! wall-clock measurement loop (warm-up + timed samples, median reported).
//! No statistics engine, plots or baselines — just enough to keep
//! `cargo bench` runnable and honest about relative magnitudes offline.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark case within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter, like upstream's `new`.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Identifies a case by its parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to benchmark closures; runs the measured routine.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    median_ns: u128,
}

impl Bencher {
    /// Times `routine`, keeping the median of several samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // one warm-up call, then timed samples
        black_box(routine());
        let mut times: Vec<u128> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            times.push(t0.elapsed().as_nanos());
        }
        times.sort_unstable();
        self.median_ns = times[times.len() / 2];
    }
}

/// A named group of benchmark cases.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-case sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.samples,
            median_ns: 0,
        };
        f(&mut b);
        report(&self.name, &id.to_string(), b.median_ns);
        self
    }

    /// Benchmarks `f` under `id` with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.samples,
            median_ns: 0,
        };
        f(&mut b, input);
        report(&self.name, &id.to_string(), b.median_ns);
        self
    }

    /// Ends the group (upstream flushes reports here; the shim prints
    /// eagerly, so this is a no-op kept for API compatibility).
    pub fn finish(self) {}
}

fn report(group: &str, case: &str, median_ns: u128) {
    let pretty = Duration::from_nanos(median_ns.min(u64::MAX as u128) as u64);
    println!("bench {group}/{case}: median {pretty:?} over samples");
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            _criterion: self,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(name.to_string())
            .bench_function("base", f);
        self
    }
}

/// Declares a benchmark group function, like upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, like upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &x| {
            b.iter(|| (0..x).sum::<u64>())
        });
        g.finish();
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        demo(&mut c);
    }

    #[test]
    fn id_formatting() {
        assert_eq!(BenchmarkId::new("f", 9).to_string(), "f/9");
        assert_eq!(BenchmarkId::from_parameter(9).to_string(), "9");
    }
}
