//! Vendored, offline subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so this shim provides
//! exactly the surface the workspace uses: the [`Rng`]/[`RngCore`] traits
//! (`gen_range`, `gen`), [`SeedableRng::seed_from_u64`], a deterministic
//! [`rngs::StdRng`], and [`seq::SliceRandom`] (`choose`, `shuffle`).
//!
//! The generator is xoshiro256** seeded through splitmix64 — statistically
//! solid and, above all, *deterministic across runs and platforms*, which
//! is what the seeded experiments and workload scenarios rely on. It does
//! not reproduce the upstream `StdRng` stream (upstream explicitly does not
//! guarantee stream stability across versions either).

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// A uniformly random value of `T` (the `Standard` distribution).
    fn gen<T>(&mut self) -> T
    where
        T: distributions::Standard,
    {
        T::sample_standard(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        distributions::unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling machinery behind [`Rng::gen_range`] / [`Rng::gen`].
pub mod distributions {
    use super::RngCore;

    /// Ranges that can produce a uniform sample of `T`.
    pub trait SampleRange<T> {
        /// Draws one sample using `rng`.
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    /// Types with a natural "any value" distribution (`Rng::gen`).
    pub trait Standard: Sized {
        /// Draws one uniform value.
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    /// Uniform f64 in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    // Lemire-style unbiased bounded sampling would be overkill here; plain
    // modulo bias is < 2^-32 for every span the workspace draws and the
    // shim favours simplicity. Spans are computed in u128 so u64/usize
    // ranges cannot overflow.
    fn bounded_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
        debug_assert!(span > 0);
        let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        wide % span
    }

    macro_rules! impl_int_ranges {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    self.start.wrapping_add(bounded_u128(rng, span) as $t)
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                    if span == 0 {
                        // full u128 domain
                        return bounded_u128(rng, u128::MAX) as $t;
                    }
                    lo.wrapping_add(bounded_u128(rng, span) as $t)
                }
            }
            impl Standard for $t {
                fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                    let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                    wide as $t
                }
            }
        )*};
    }

    impl_int_ranges!(u8, u16, u32, u64, usize, u128);

    macro_rules! impl_signed_ranges {
        ($($t:ty => $u:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as $u).wrapping_sub(self.start as $u) as u128;
                    self.start.wrapping_add(bounded_u128(rng, span) as $t)
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = ((hi as $u).wrapping_sub(lo as $u) as u128).wrapping_add(1);
                    lo.wrapping_add(bounded_u128(rng, span) as $t)
                }
            }
            impl Standard for $t {
                fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_signed_ranges!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

    impl SampleRange<f64> for core::ops::Range<f64> {
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            self.start + (self.end - self.start) * unit_f64(rng)
        }
    }

    impl Standard for f64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            unit_f64(rng)
        }
    }

    impl Standard for bool {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** with a splitmix64
    /// seed expander. Deterministic for a given seed, forever.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // xoshiro must not start in the all-zero state
            if s == [0; 4] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers (`choose`, `shuffle`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Random selection from slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }

    fn _object_safety_check(r: &mut dyn RngCore) -> u64 {
        r.next_u64()
    }
}

pub use distributions::Standard as StandardDist;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let va: Vec<u64> = (0..32).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.gen_range(0u64..1_000_000)).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(8);
        let vc: Vec<u64> = (0..32).map(|_| c.gen_range(0u64..1_000_000)).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(2i32..=3);
            assert!((2..=3).contains(&y));
            let f = rng.gen_range(0.0f64..2.5);
            assert!((0.0..2.5).contains(&f));
            let p: u128 = rng.gen();
            let _ = p;
        }
    }

    #[test]
    fn inclusive_hits_both_ends() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 2];
        for _ in 0..200 {
            seen[(rng.gen_range(2i32..=3) - 2) as usize] = true;
        }
        assert_eq!(seen, [true, true]);
    }

    #[test]
    fn unsized_rng_works() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> usize {
            rng.gen_range(0..10)
        }
        let mut rng = StdRng::seed_from_u64(3);
        assert!(draw(&mut rng) < 10);
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(4);
        let items = [10, 20, 30];
        assert!(items.contains(items.as_slice().choose(&mut rng).unwrap()));
        let empty: [u8; 0] = [];
        assert!(empty.as_slice().choose(&mut rng).is_none());
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle is a permutation");
    }
}
