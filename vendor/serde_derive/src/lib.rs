//! `#[derive(Serialize, Deserialize)]` for the vendored serde shim.
//!
//! `syn`/`quote` are unavailable offline, so this crate parses the derive
//! input by walking raw [`proc_macro::TokenTree`]s. Supported shapes are
//! exactly what the workspace derives on:
//!
//! * structs with named fields — serialized as an ordered map in field
//!   declaration order;
//! * tuple structs with one field (newtypes) — serialized transparently
//!   as the inner value (upstream's `#[serde(transparent)]` behaviour,
//!   which is what every annotated newtype in the workspace asks for);
//! * tuple structs with several fields — serialized as a sequence.
//!
//! `#[serde(skip_serializing_if = "Option::is_none")]` (paired upstream
//! with `#[serde(default)]`) is honoured on named fields: the field is
//! omitted from the serialized map when its value renders as `Null`
//! (which is exactly what `Option::None` renders as in the shim's value
//! model), and a missing key deserializes as `Null` — so `Option` fields
//! round-trip whether or not they were present. All other `#[serde(...)]`
//! attributes are accepted and ignored. Enums and generic types produce a
//! compile error pointing here.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named field: its identifier and whether a
/// `skip_serializing_if`/`default` attribute marks it optional.
struct Field {
    name: String,
    optional: bool,
}

enum Shape {
    Named(Vec<Field>),
    Tuple(usize),
}

struct Input {
    name: String,
    shape: Shape,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Parses `struct Name { f1: T1, ... }`, `struct Name(T);` or
/// `struct Name(T1, .., Tk);` out of the derive input.
fn parse_input(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    match tokens.get(i) {
        Some(TokenTree::Ident(kw)) if kw.to_string() == "struct" => i += 1,
        _ => return Err("vendored serde_derive supports only structs".into()),
    }

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => {
            i += 1;
            id.to_string()
        }
        _ => return Err("expected struct name".into()),
    };

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err("vendored serde_derive does not support generic types".into());
    }

    match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let fields = parse_named_fields(g.stream())?;
            Ok(Input {
                name,
                shape: Shape::Named(fields),
            })
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let arity = count_tuple_fields(g.stream());
            if arity == 0 {
                return Err("empty tuple structs are not supported".into());
            }
            Ok(Input {
                name,
                shape: Shape::Tuple(arity),
            })
        }
        _ => Err("unit structs are not supported".into()),
    }
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    scan_attributes(tokens, i);
}

/// Advances past `#[...]` attributes, reporting whether a `#[serde(...)]`
/// attribute asks for optional-field treatment (`skip_serializing_if` /
/// `default`). Only the argument list of a `serde` attribute is
/// inspected — doc comments are `#[doc = "..."]` attributes, so matching
/// on raw attribute text would let the *word* "default" in a field's
/// documentation silently change its serialized schema.
fn scan_attributes(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut optional = false;
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1; // '#'
        if let Some(TokenTree::Group(g)) = tokens.get(*i) {
            if g.delimiter() == Delimiter::Bracket {
                optional |= serde_attr_marks_optional(g.stream());
                *i += 1; // the [...] group
            }
        }
    }
    optional
}

/// `true` if a bracket-group body is `serde(...)` with
/// `skip_serializing_if` or `default` among its arguments.
fn serde_attr_marks_optional(body: TokenStream) -> bool {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args)))
            if name.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            args.stream().into_iter().any(|t| {
                matches!(&t, TokenTree::Ident(id)
                    if id.to_string() == "skip_serializing_if" || id.to_string() == "default")
            })
        }
        _ => false,
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1; // pub(crate) etc.
        }
    }
}

/// Field names of a named-field body, in declaration order. Commas inside
/// `<...>` or any bracketed group belong to the field's type, not the
/// field list, so splitting tracks angle-bracket depth.
fn parse_named_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        let optional = scan_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => {
                i += 1;
                id.to_string()
            }
            None => break,
            Some(t) => return Err(format!("expected field name, found `{t}`")),
        };
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        let mut angle_depth = 0i32;
        while let Some(t) = tokens.get(i) {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push(Field { name, optional });
    }
    Ok(fields)
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut angle_depth = 0i32;
    let mut count = 1;
    let mut trailing_comma = false;
    for t in &tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    count += 1;
                    trailing_comma = true;
                    continue;
                }
                _ => {}
            }
        }
        trailing_comma = false;
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

/// Derives `serde::Serialize` (vendored shim: `fn to_value(&self) -> Value`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::Named(fields) => {
            let pushes: String = fields
                .iter()
                .map(|field| {
                    let f = &field.name;
                    if field.optional {
                        format!(
                            "{{ let v = ::serde::Serialize::to_value(&self.{f}); \
                             if !matches!(v, ::serde::Value::Null) {{ \
                             entries.push(({f:?}.to_string(), v)); }} }}"
                        )
                    } else {
                        format!(
                            "entries.push(({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})));"
                        )
                    }
                })
                .collect();
            format!(
                "let mut entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new(); {pushes} ::serde::Value::Map(entries)"
            )
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(k) => {
            let items: Vec<String> = (0..*k)
                .map(|idx| format!("::serde::Serialize::to_value(&self.{idx})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .unwrap()
}

/// Derives `serde::Deserialize` (vendored shim:
/// `fn from_value(&Value) -> Result<Self, Error>`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::Named(fields) => {
            let inits: String = fields
                .iter()
                .map(|field| {
                    let f = &field.name;
                    if field.optional {
                        format!(
                            "{f}: ::serde::Deserialize::from_value(\
                                 v.get({f:?}).unwrap_or(&::serde::Value::Null)\
                             )?,"
                        )
                    } else {
                        format!(
                            "{f}: ::serde::Deserialize::from_value(\
                                 v.get({f:?}).ok_or_else(|| ::serde::Error::missing({f:?}))?\
                             )?,"
                        )
                    }
                })
                .collect();
            format!("::std::result::Result::Ok({name} {{ {inits} }})")
        }
        Shape::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::Tuple(k) => {
            let gets: Vec<String> = (0..*k)
                .map(|idx| {
                    format!(
                        "::serde::Deserialize::from_value(items.get({idx}).ok_or_else(|| \
                         ::serde::Error::custom(\"tuple too short\"))?)?"
                    )
                })
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Seq(items) => \
                         ::std::result::Result::Ok({name}({gets})),\n\
                     other => ::std::result::Result::Err(\
                         ::serde::Error::mismatch(\"sequence\", other)),\n\
                 }}",
                gets = gets.join(", ")
            )
        }
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .unwrap()
}
