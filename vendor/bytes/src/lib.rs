//! Vendored, offline subset of the `bytes` crate API.
//!
//! Provides [`Bytes`]/[`BytesMut`] with the big-endian [`Buf`]/[`BufMut`]
//! accessors the wire protocol uses. No reference counting or zero-copy
//! splitting — `Bytes` here is a plain buffer with a read cursor, which is
//! all the frame codec needs.

use std::fmt;

/// Read-side accessors (big-endian, advancing an internal cursor).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is exhausted (as upstream does).
    fn get_u8(&mut self) -> u8;

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32;

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64;

    /// Reads a big-endian `u128`.
    fn get_u128(&mut self) -> u128;
}

/// Write-side accessors (big-endian, appending).
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32);

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64);

    /// Appends a big-endian `u128`.
    fn put_u128(&mut self, v: u128);

    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

/// An immutable byte buffer with a read cursor.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static byte slice.
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// `true` if nothing is left to read.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The unread bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(self.len() >= n, "buffer underflow");
        let start = self.pos;
        self.pos += n;
        &self.data[start..self.pos]
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for b in self.as_slice() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take(4).try_into().expect("4 bytes"))
    }

    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take(8).try_into().expect("8 bytes"))
    }

    fn get_u128(&mut self) -> u128 {
        u128::from_be_bytes(self.take(16).try_into().expect("16 bytes"))
    }
}

/// A growable byte buffer.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u32(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u128(&mut self, v: u128) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_big_endian() {
        let mut b = BytesMut::with_capacity(64);
        b.put_u8(7);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(42);
        b.put_u128(u128::MAX - 1);
        let mut r = b.freeze();
        assert_eq!(r.len(), 1 + 4 + 8 + 16);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 42);
        assert_eq!(r.get_u128(), u128::MAX - 1);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from_static(&[1, 2]);
        let _ = b.get_u32();
    }

    #[test]
    fn from_static_and_len() {
        let b = Bytes::from_static(&[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
    }
}
