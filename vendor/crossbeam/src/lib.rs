//! Vendored, offline subset of the `crossbeam` crate: just
//! [`channel::bounded`]/[`channel::unbounded`] with cloneable senders,
//! implemented over `std::sync::mpsc`. The live runtime only needs
//! multi-producer/single-consumer mailboxes plus `recv_timeout`, which
//! std's channels provide directly.

/// Multi-producer channels (subset of `crossbeam-channel`).
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError};

    /// The sending half; cloneable.
    #[derive(Debug)]
    pub struct Sender<T>(Flavor<T>);

    #[derive(Debug)]
    enum Flavor<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(match &self.0 {
                Flavor::Unbounded(tx) => Flavor::Unbounded(tx.clone()),
                Flavor::Bounded(tx) => Flavor::Bounded(tx.clone()),
            })
        }
    }

    impl<T> Sender<T> {
        /// Sends `msg`, blocking on a full bounded channel.
        ///
        /// # Errors
        ///
        /// [`SendError`] when every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Flavor::Unbounded(tx) => tx.send(msg),
                Flavor::Bounded(tx) => tx.send(msg),
            }
        }
    }

    /// The receiving half.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives.
        ///
        /// # Errors
        ///
        /// [`RecvError`] when the channel is empty and disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Blocks up to `timeout` for a message.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError`] on timeout or disconnection.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Non-blocking receive.
        ///
        /// # Errors
        ///
        /// [`mpsc::TryRecvError`] when empty or disconnected.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.try_recv()
        }
    }

    /// An unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Flavor::Unbounded(tx)), Receiver(rx))
    }

    /// A bounded channel with capacity `cap` (0 = rendezvous).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Flavor::Bounded(tx)), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_multi_producer() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(1).unwrap());
            tx.send(2).unwrap();
            let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
            got.sort_unstable();
            assert_eq!(got, [1, 2]);
        }

        #[test]
        fn bounded_and_timeout() {
            let (tx, rx) = bounded(1);
            tx.send(9u8).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
        }
    }
}
