//! Vendored, offline subset of the `crossbeam` crate:
//! [`channel::bounded`]/[`channel::unbounded`] with cloneable senders
//! *and* cloneable receivers, plus [`thread::scope`], implemented over
//! `std::sync`. The live runtime needs multi-producer/single-consumer
//! mailboxes with `recv_timeout`; the campaign executor additionally
//! needs the multi-consumer half (a shared work queue that `N` worker
//! threads drain) and scoped spawning — this shim provides exactly that
//! surface and nothing more.

/// Multi-producer multi-consumer channels (subset of `crossbeam-channel`).
pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex, PoisonError};
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// The sending half; cloneable.
    #[derive(Debug)]
    pub struct Sender<T>(Flavor<T>);

    #[derive(Debug)]
    enum Flavor<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(match &self.0 {
                Flavor::Unbounded(tx) => Flavor::Unbounded(tx.clone()),
                Flavor::Bounded(tx) => Flavor::Bounded(tx.clone()),
            })
        }
    }

    impl<T> Sender<T> {
        /// Sends `msg`, blocking on a full bounded channel.
        ///
        /// # Errors
        ///
        /// [`SendError`] when every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Flavor::Unbounded(tx) => tx.send(msg),
                Flavor::Bounded(tx) => tx.send(msg),
            }
        }
    }

    /// The receiving half; cloneable — clones share one queue, so a
    /// message goes to exactly one of them (work-queue semantics, as in
    /// real `crossbeam-channel`).
    ///
    /// Multi-consumer behavior is layered over std's single-consumer
    /// receiver with a mutex. A receiver blocked in [`recv`](Self::recv)
    /// holds the lock until a message (or disconnect) arrives, so
    /// contending receivers are admitted one at a time — correct, and
    /// plenty for a work queue whose items take far longer to process
    /// than to dequeue.
    #[derive(Debug)]
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Receiver<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
            // a panicking worker must not wedge the queue for its peers;
            // the underlying mpsc receiver has no invariant a panic can
            // half-apply, so poisoning carries no information here
            self.0.lock().unwrap_or_else(PoisonError::into_inner)
        }

        /// Blocks until a message arrives.
        ///
        /// # Errors
        ///
        /// [`RecvError`] when the channel is empty and disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.lock().recv()
        }

        /// Blocks up to `timeout` for a message.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError`] on timeout or disconnection.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.lock().recv_timeout(timeout)
        }

        /// Non-blocking receive.
        ///
        /// # Errors
        ///
        /// [`TryRecvError`] when empty or disconnected.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.lock().try_recv()
        }

        /// A blocking iterator over received messages; ends when the
        /// channel is empty and every sender is gone. The worker-loop
        /// idiom: `for job in rx.iter() { … }`.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Blocking iterator returned by [`Receiver::iter`].
    #[derive(Debug)]
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// An unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender(Flavor::Unbounded(tx)),
            Receiver(Arc::new(Mutex::new(rx))),
        )
    }

    /// A bounded channel with capacity `cap` (0 = rendezvous).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender(Flavor::Bounded(tx)),
            Receiver(Arc::new(Mutex::new(rx))),
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_multi_producer() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(1).unwrap());
            tx.send(2).unwrap();
            let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
            got.sort_unstable();
            assert_eq!(got, [1, 2]);
        }

        #[test]
        fn bounded_and_timeout() {
            let (tx, rx) = bounded(1);
            tx.send(9u8).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn multi_consumer_partitions_the_queue() {
            // 100 jobs, 4 cloned receivers: every job is consumed exactly
            // once and the union of what the workers saw is the full set
            let (tx, rx) = unbounded();
            for i in 0..100u32 {
                tx.send(i).unwrap();
            }
            drop(tx); // disconnect so iter() terminates
            let mut got = crate::thread::scope(|s| {
                let handles: Vec<_> = (0..4)
                    .map(|_| {
                        let rx = rx.clone();
                        s.spawn(move || rx.iter().collect::<Vec<u32>>())
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().unwrap())
                    .collect::<Vec<u32>>()
            });
            got.sort_unstable();
            assert_eq!(got, (0..100).collect::<Vec<u32>>());
        }

        #[test]
        fn cloned_receiver_sees_disconnect() {
            let (tx, rx) = unbounded::<u8>();
            let rx2 = rx.clone();
            drop(tx);
            assert!(rx.recv().is_err());
            assert!(rx2.recv().is_err());
            assert_eq!(rx2.try_recv(), Err(TryRecvError::Disconnected));
        }
    }
}

/// Scoped threads (subset of `crossbeam-utils`' `thread` module). Std
/// grew an equivalent [`std::thread::scope`] in 1.63; the shim re-exports
/// it so callers keep the `crossbeam::thread::scope` spelling.
pub mod thread {
    pub use std::thread::{scope, Scope, ScopedJoinHandle};
}
