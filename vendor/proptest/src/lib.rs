//! Vendored, offline subset of the `proptest` API.
//!
//! Supports the surface the property suite uses: the `proptest!` macro
//! (with `#![proptest_config(ProptestConfig::with_cases(n))]`), integer
//! range strategies, `any::<T>()`, tuple strategies,
//! `prop::collection::vec`, and the `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!` macros.
//!
//! Unlike upstream there is no shrinking and no persistence: cases are
//! drawn from a fixed-seed deterministic generator (splitmix64 over the
//! test body's hash), so failures reproduce exactly on every run.

/// Deterministic case generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded generator (the macro derives the seed from the test name).
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E3779B97F4A7C15,
        }
    }

    /// Next 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Next 128 random bits.
    pub fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }
}

/// Something that can produce test-case values.
pub trait Strategy {
    /// The produced value type.
    type Value;

    /// Draws one case.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u128() % span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    return rng.next_u128() as $t;
                }
                lo.wrapping_add((rng.next_u128() % span) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, u128);

macro_rules! impl_signed_range_strategy {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u128;
                self.start.wrapping_add((rng.next_u128() % span) as $t)
            }
        }
    )*};
}
impl_signed_range_strategy!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// `any::<T>()` strategy: the full domain of `T`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

/// Full-domain strategy for `T` (subset of upstream's `Arbitrary`).
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(core::marker::PhantomData)
}

macro_rules! impl_any {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u128() as $t
            }
        }
    )*};
}
impl_any!(u8, u16, u32, u64, usize, u128, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a length drawn from `sizes`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        sizes: core::ops::Range<usize>,
    }

    /// Vector of `element` values with a length in `sizes`.
    pub fn vec<S: Strategy>(element: S, sizes: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, sizes }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.sizes.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Per-`proptest!` configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a drawn case did not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; draw again.
    Reject,
}

/// Compile-time FNV-1a over the test name, used as the per-test seed.
#[must_use]
pub const fn seed_from_name(name: &str) -> u64 {
    let bytes = name.as_bytes();
    let mut h: u64 = 0xcbf29ce484222325;
    let mut i = 0;
    while i < bytes.len() {
        h ^= bytes[i] as u64;
        h = h.wrapping_mul(0x100000001b3);
        i += 1;
    }
    h
}

/// Rejects the current case unless `cond` holds (case is redrawn).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Asserts within a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion within a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion within a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// The proptest test-declaration macro (subset: `fn name(arg in strategy,
/// ...) { body }` items, optional leading `#![proptest_config(expr)]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::new($crate::seed_from_name(stringify!($name)));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(64).max(1024),
                    "proptest: too many rejected cases in {}",
                    stringify!($name),
                );
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                #[allow(clippy::redundant_closure_call)]
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body; ::core::result::Result::Ok(()) })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject) => {}
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// One-stop imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };

    /// Mirrors upstream's `prop` module re-export.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(n in 1usize..50, x in 0u64..=5) {
            prop_assert!((1..50).contains(&n));
            prop_assert!(x <= 5);
        }

        #[test]
        fn assume_rejects(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn vec_and_tuple_strategies(ops in prop::collection::vec((0u128..8, 0u32..16), 1..20)) {
            prop_assert!(!ops.is_empty() && ops.len() < 20);
            for (a, b) in ops {
                prop_assert!(a < 8 && b < 16);
                let _ = (a, b);
            }
        }

        #[test]
        fn any_full_domain(x in any::<u128>()) {
            let _ = x;
        }
    }

    #[test]
    fn determinism() {
        let mut a = crate::TestRng::new(1);
        let mut b = crate::TestRng::new(1);
        assert_eq!(a.next_u128(), b.next_u128());
    }
}
