//! JSON rendering for the vendored serde shim.
//!
//! Serializes the shim's [`serde::Value`] model to JSON text. Output is
//! fully deterministic: maps render in insertion order (the derive inserts
//! in field declaration order) and floats use Rust's shortest round-trip
//! formatting, so two runs producing equal values produce byte-identical
//! JSON — the property the workload determinism tests assert.

pub use serde::{Error, Value};

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Infallible for the shim's value model; the `Result` mirrors the
/// upstream signature.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as human-readable, two-space-indented JSON.
///
/// # Errors
///
/// Infallible for the shim's value model; the `Result` mirrors the
/// upstream signature.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some("  "), 0);
    Ok(out)
}

fn write_value(v: &Value, out: &mut String, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::U128(x) => out.push_str(&x.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // {:?} is the shortest representation that round-trips
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            write_bracketed(out, indent, depth, '[', ']', items.len(), |out, i| {
                write_value(&items[i], out, indent, depth + 1);
            })
        }
        Value::Map(entries) => {
            write_bracketed(out, indent, depth, '{', '}', entries.len(), |out, i| {
                let (k, val) = &entries[i];
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            });
        }
    }
}

fn write_bracketed(
    out: &mut String,
    indent: Option<&str>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(pad) = indent {
            out.push('\n');
            for _ in 0..=depth {
                out.push_str(pad);
            }
        }
        item(out, i);
    }
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
    out.push(close);
}

/// Parses JSON text into the shim's [`Value`] model.
///
/// Integers parse as [`Value::U128`] (non-negative) or [`Value::I64`]
/// (negative); anything with a fraction or exponent parses as
/// [`Value::F64`]. Object key order is preserved, mirroring the
/// serializer's insertion-order maps.
///
/// # Errors
///
/// Returns [`Error`] on malformed input or trailing garbage.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {pos} of JSON input"
        )));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), Error> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(Error::custom(format!(
            "expected `{}` at byte {} of JSON input",
            c as char, *pos
        )))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(Error::custom("unexpected end of JSON input")),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Seq(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Seq(items));
                    }
                    _ => return Err(Error::custom("expected `,` or `]` in JSON array")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Map(entries));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                entries.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Map(entries));
                    }
                    _ => return Err(Error::custom("expected `,` or `}` in JSON object")),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, Error> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(Error::custom(format!(
            "invalid JSON literal, expected `{lit}`"
        )))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(Error::custom("unterminated JSON string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = *b
                    .get(*pos)
                    .ok_or_else(|| Error::custom("unterminated JSON escape"))?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex)
                                .map_err(|_| Error::custom("non-ascii \\u escape"))?,
                            16,
                        )
                        .map_err(|_| Error::custom("invalid \\u escape"))?;
                        *pos += 4;
                        // surrogate pairs are not produced by this crate's
                        // serializer; reject rather than mis-decode
                        let c = char::from_u32(code)
                            .ok_or_else(|| Error::custom("invalid \\u code point"))?;
                        out.push(c);
                    }
                    _ => return Err(Error::custom("unknown JSON escape")),
                }
            }
            Some(_) => {
                // take the full UTF-8 scalar starting here
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| Error::custom("invalid UTF-8 in JSON string"))?;
                let c = rest.chars().next().expect("non-empty checked above");
                if (c as u32) < 0x20 {
                    return Err(Error::custom("unescaped control character in string"));
                }
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("ascii number slice");
    if text.is_empty() || text == "-" {
        return Err(Error::custom("invalid JSON number"));
    }
    if float {
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid JSON number `{text}`")))
    } else if text.starts_with('-') {
        text.parse::<i64>()
            .map(Value::I64)
            .map_err(|_| Error::custom(format!("integer out of range `{text}`")))
    } else {
        text.parse::<u128>()
            .map(Value::U128)
            .map_err(|_| Error::custom(format!("integer out of range `{text}`")))
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_and_containers() {
        let v = Value::Map(vec![
            ("n".into(), Value::U128(1024)),
            ("rate".into(), Value::F64(0.5)),
            ("name".into(), Value::Str("steady \"state\"".into())),
            ("xs".into(), Value::Seq(vec![Value::I64(-1), Value::Null])),
            ("empty".into(), Value::Seq(vec![])),
        ]);
        assert_eq!(
            to_string(&Wrap(v)).unwrap(),
            r#"{"n":1024,"rate":0.5,"name":"steady \"state\"","xs":[-1,null],"empty":[]}"#
        );
    }

    struct Wrap(Value);
    impl serde::Serialize for Wrap {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    #[test]
    fn pretty_indents() {
        let v = Value::Map(vec![("a".into(), Value::Seq(vec![Value::U128(1)]))]);
        let s = to_string_pretty(&Wrap(v)).unwrap();
        assert_eq!(s, "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn floats_round_trip_shortest() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.1f64).unwrap(), "0.1");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn parser_round_trips_serializer_output() {
        let v = Value::Map(vec![
            ("n".into(), Value::U128(1024)),
            ("neg".into(), Value::I64(-3)),
            ("rate".into(), Value::F64(0.5)),
            ("name".into(), Value::Str("steady \"state\"\n".into())),
            ("xs".into(), Value::Seq(vec![Value::I64(-1), Value::Null])),
            ("empty".into(), Value::Seq(vec![])),
            ("flag".into(), Value::Bool(true)),
        ]);
        let text = to_string(&Wrap(v.clone())).unwrap();
        assert_eq!(from_str(&text).unwrap(), v);
        let pretty = to_string_pretty(&Wrap(v.clone())).unwrap();
        assert_eq!(from_str(&pretty).unwrap(), v);
    }

    #[test]
    fn parser_handles_escapes_and_exponents() {
        assert_eq!(from_str(r#""aA\tb""#).unwrap(), Value::Str("aA\tb".into()));
        assert_eq!(from_str("1e3").unwrap(), Value::F64(1000.0));
        assert_eq!(from_str("-2.5").unwrap(), Value::F64(-2.5));
        assert_eq!(
            from_str(" [1, {\"k\": null}] ").unwrap(),
            Value::Seq(vec![
                Value::U128(1),
                Value::Map(vec![("k".into(), Value::Null)]),
            ])
        );
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(from_str("").is_err());
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("nul").is_err());
        assert!(from_str("1 2").is_err());
        assert!(from_str("\"unterminated").is_err());
    }
}
