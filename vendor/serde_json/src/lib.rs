//! JSON rendering for the vendored serde shim.
//!
//! Serializes the shim's [`serde::Value`] model to JSON text. Output is
//! fully deterministic: maps render in insertion order (the derive inserts
//! in field declaration order) and floats use Rust's shortest round-trip
//! formatting, so two runs producing equal values produce byte-identical
//! JSON — the property the workload determinism tests assert.

pub use serde::{Error, Value};

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Infallible for the shim's value model; the `Result` mirrors the
/// upstream signature.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as human-readable, two-space-indented JSON.
///
/// # Errors
///
/// Infallible for the shim's value model; the `Result` mirrors the
/// upstream signature.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some("  "), 0);
    Ok(out)
}

fn write_value(v: &Value, out: &mut String, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::U128(x) => out.push_str(&x.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // {:?} is the shortest representation that round-trips
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            write_bracketed(out, indent, depth, '[', ']', items.len(), |out, i| {
                write_value(&items[i], out, indent, depth + 1);
            })
        }
        Value::Map(entries) => {
            write_bracketed(out, indent, depth, '{', '}', entries.len(), |out, i| {
                let (k, val) = &entries[i];
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            });
        }
    }
}

fn write_bracketed(
    out: &mut String,
    indent: Option<&str>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(pad) = indent {
            out.push('\n');
            for _ in 0..=depth {
                out.push_str(pad);
            }
        }
        item(out, i);
    }
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
    out.push(close);
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_and_containers() {
        let v = Value::Map(vec![
            ("n".into(), Value::U128(1024)),
            ("rate".into(), Value::F64(0.5)),
            ("name".into(), Value::Str("steady \"state\"".into())),
            ("xs".into(), Value::Seq(vec![Value::I64(-1), Value::Null])),
            ("empty".into(), Value::Seq(vec![])),
        ]);
        assert_eq!(
            to_string(&Wrap(v)).unwrap(),
            r#"{"n":1024,"rate":0.5,"name":"steady \"state\"","xs":[-1,null],"empty":[]}"#
        );
    }

    struct Wrap(Value);
    impl serde::Serialize for Wrap {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    #[test]
    fn pretty_indents() {
        let v = Value::Map(vec![("a".into(), Value::Seq(vec![Value::U128(1)]))]);
        let s = to_string_pretty(&Wrap(v)).unwrap();
        assert_eq!(s, "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn floats_round_trip_shortest() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.1f64).unwrap(), "0.1");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }
}
