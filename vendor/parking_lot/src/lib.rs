//! Vendored, offline subset of `parking_lot`: a [`Mutex`] whose `lock()`
//! returns the guard directly (no poisoning `Result`), backed by
//! `std::sync::Mutex`. Poisoned locks are recovered into the inner guard,
//! matching parking_lot's no-poisoning semantics.

use std::sync::{Mutex as StdMutex, MutexGuard, PoisonError};

/// A mutual-exclusion lock without lock poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), [1, 2, 3]);
        assert_eq!(m.into_inner(), [1, 2, 3]);
    }
}
