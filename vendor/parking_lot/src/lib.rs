//! Vendored, offline subset of `parking_lot`: [`Mutex`], [`Condvar`] and
//! [`RwLock`] without lock poisoning, backed by `std::sync`. Poisoned
//! locks are recovered into the inner guard, matching parking_lot's
//! no-poisoning semantics.
//!
//! [`Mutex::lock`] returns an owned [`MutexGuard`] (not std's) so that
//! [`Condvar::wait`] can take `&mut MutexGuard` exactly like the real
//! crate — the guard internally re-acquires through the wait without any
//! `unsafe`. This is the synchronization surface the sharded simulator
//! core needs: worker parking (`Mutex` + `Condvar` completion countdown)
//! and shared read-mostly state (`RwLock`).

use std::ops::{Deref, DerefMut};
use std::sync::{
    Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, PoisonError,
    RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};
use std::time::Duration;

/// A mutual-exclusion lock without lock poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T>(StdMutex<T>);

/// RAII guard returned by [`Mutex::lock`]. Dereferences to the protected
/// value; the lock is released on drop.
///
/// The inner std guard lives in an `Option` solely so [`Condvar::wait`]
/// can move it through `std`'s ownership-based wait and put the
/// re-acquired guard back — outside that window it is always `Some`.
#[derive(Debug)]
pub struct MutexGuard<'a, T>(Option<StdMutexGuard<'a, T>>);

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard held")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard held")
    }
}

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A condition variable paired with [`Mutex`] (no poisoning, no spurious
/// `Result`s); `wait` takes the guard by `&mut` as in real parking_lot.
#[derive(Debug, Default)]
pub struct Condvar(StdCondvar);

impl Condvar {
    /// A new condition variable.
    pub fn new() -> Self {
        Condvar(StdCondvar::new())
    }

    /// Atomically releases the guarded lock and blocks until notified;
    /// re-acquires before returning. Spurious wakeups are possible —
    /// callers loop on their predicate.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard held");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(PoisonError::into_inner));
    }

    /// [`wait`](Self::wait) with a timeout; returns `true` if the wait
    /// timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let inner = guard.0.take().expect("guard held");
        let (inner, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
        result.timed_out()
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every blocked waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// A readers-writer lock without lock poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), [1, 2, 3]);
        assert_eq!(m.into_inner(), [1, 2, 3]);
    }

    #[test]
    fn condvar_countdown_rendezvous() {
        // the sharded pool's completion idiom: N workers decrement, the
        // coordinator waits for zero
        let done = Arc::new((Mutex::new(3usize), Condvar::new()));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    let mut n = done.0.lock();
                    *n -= 1;
                    if *n == 0 {
                        done.1.notify_one();
                    }
                })
            })
            .collect();
        let mut n = done.0.lock();
        while *n > 0 {
            done.1.wait(&mut n);
        }
        drop(n);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*done.0.lock(), 0);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let pair = (Mutex::new(()), Condvar::new());
        let mut g = pair.0.lock();
        assert!(pair.1.wait_for(&mut g, Duration::from_millis(5)));
    }

    #[test]
    fn rwlock_shared_then_exclusive() {
        let l = RwLock::new(7u32);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!((*a, *b), (7, 7));
        }
        *l.write() += 1;
        assert_eq!(*l.read(), 8);
        assert_eq!(l.into_inner(), 8);
    }
}
