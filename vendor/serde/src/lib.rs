//! Vendored, offline subset of the `serde` API.
//!
//! crates.io is unreachable in this build environment, so this shim keeps
//! the workspace's `#[derive(serde::Serialize, serde::Deserialize)]`
//! annotations compiling and gives them real behaviour through a small
//! self-describing value model ([`Value`]) instead of upstream serde's
//! visitor machinery. `serde_json` (also vendored) renders that model as
//! JSON with deterministic field order — insertion order, which for the
//! derive is declaration order.
//!
//! Attribute compatibility: the derive honours
//! `#[serde(skip_serializing_if = "Option::is_none", default)]` on named
//! fields (omitted when `Null`, absent keys read back as `None`); all
//! other `#[serde(...)]` attributes are accepted and ignored, and the
//! derive's newtype behaviour already matches `#[serde(transparent)]`.

// lets the derive's `::serde::...` paths resolve inside this crate too
extern crate self as serde;

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the shim's data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (also carries `u128` losslessly).
    U128(u128),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Value>),
    /// Ordered key–value map (insertion order preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Map lookup by key; `None` for missing keys or non-map values.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Serialization/deserialization errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// A custom error.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }

    /// A missing-field error.
    pub fn missing(field: &str) -> Self {
        Error {
            msg: format!("missing field `{field}`"),
        }
    }

    /// A type-mismatch error.
    pub fn mismatch(expected: &str, got: &Value) -> Self {
        Error {
            msg: format!("expected {expected}, got {got:?}"),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can be rendered into the [`Value`] model.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from the [`Value`] model.
///
/// The lifetime parameter exists only for signature compatibility with
/// upstream serde bounds like `for<'de> Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {
    /// Rebuilds `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns [`Error`] on shape or type mismatches.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// a Value serializes as itself (lets callers build ad-hoc shapes, e.g.
// the single-key wrapper objects of JSONL trace headers/footers)
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U128(*self as u128) }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U128(x) => <$t>::try_from(*x)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::I64(x) => <$t>::try_from(*x)
                        .map_err(|_| Error::custom("integer out of range")),
                    other => Err(Error::mismatch("unsigned integer", other)),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize, u128);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::I64(x) => <$t>::try_from(*x)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::U128(x) => i64::try_from(*x)
                        .ok()
                        .and_then(|x| <$t>::try_from(x).ok())
                        .ok_or_else(|| Error::custom("integer out of range")),
                    other => Err(Error::mismatch("integer", other)),
                }
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::I64(x) => Ok(*x as f64),
            Value::U128(x) => Ok(*x as f64),
            other => Err(Error::mismatch("float", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::mismatch("bool", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::mismatch("string", other)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::mismatch("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<K: fmt::Display, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Demo {
        a: u64,
        b: f64,
        name: String,
        tags: Vec<u32>,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    #[serde(transparent)]
    struct Wrapper(u128);

    #[test]
    fn derive_roundtrips_named_struct() {
        let d = Demo {
            a: 7,
            b: 1.5,
            name: "x".into(),
            tags: vec![1, 2],
        };
        let v = d.to_value();
        assert_eq!(v.get("a"), Some(&Value::U128(7)));
        let back = Demo::from_value(&v).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn derive_newtype_is_transparent() {
        let w = Wrapper(400);
        assert_eq!(w.to_value(), Value::U128(400));
        assert_eq!(Wrapper::from_value(&Value::U128(400)).unwrap(), w);
    }

    #[test]
    fn missing_field_errors() {
        let v = Value::Map(vec![("a".into(), Value::U128(1))]);
        assert!(Demo::from_value(&v).is_err());
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct WithOptional {
        /// A doc comment that mentions default and skip_serializing_if —
        /// words in documentation must NOT mark the field optional.
        always: u64,
        #[serde(skip_serializing_if = "Option::is_none", default)]
        sometimes: Option<u64>,
    }

    #[test]
    fn optional_fields_are_skipped_when_none_and_roundtrip() {
        let none = WithOptional {
            always: 1,
            sometimes: None,
        };
        let v = none.to_value();
        assert_eq!(v.get("sometimes"), None, "None must not serialize");
        assert_eq!(
            v.get("always"),
            Some(&Value::U128(1)),
            "doc-comment keywords must not make a field optional"
        );
        assert!(
            WithOptional::from_value(&Value::Map(vec![("sometimes".into(), Value::U128(2))]))
                .is_err(),
            "a truly missing required field still errors"
        );
        assert_eq!(WithOptional::from_value(&v).unwrap(), none);

        let some = WithOptional {
            always: 1,
            sometimes: Some(9),
        };
        let v = some.to_value();
        assert_eq!(v.get("sometimes"), Some(&Value::U128(9)));
        assert_eq!(WithOptional::from_value(&v).unwrap(), some);
    }

    #[test]
    fn map_preserves_insertion_order() {
        let d = Demo {
            a: 1,
            b: 0.0,
            name: String::new(),
            tags: vec![],
        };
        if let Value::Map(entries) = d.to_value() {
            let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
            assert_eq!(keys, ["a", "b", "name", "tags"]);
        } else {
            panic!("expected a map");
        }
    }
}
