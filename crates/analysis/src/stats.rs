//! Summary statistics over experiment samples.
//!
//! This module is the **single** percentile implementation in the
//! workspace: `mm-workload`'s per-phase reports and the campaign
//! aggregation pipeline both interpolate through [`percentile_sorted`] /
//! [`percentile_or_zero`], so a campaign table can never disagree with
//! the per-run report it was joined from (the two used to carry
//! independently written interpolations — see `tests/stats_consistency.rs`
//! for the cross-crate pin).

/// Mean / variance / percentiles of a sample set.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Summary {
    /// Number of samples that entered the statistics (NaNs excluded).
    pub count: usize,
    /// Samples dropped because they were NaN. A single bad run must not
    /// kill a whole aggregation, but it must not vanish silently either.
    pub dropped_nan: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected; 0 for < 2 samples).
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Summarizes `samples`, ignoring (but counting) NaN values.
    ///
    /// Returns `None` when no non-NaN sample remains — an empty slice or
    /// an all-NaN one. Infinities are legal samples (they sort to the
    /// extremes); only NaN, which has no order, is dropped.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        let mut sorted: Vec<f64> = samples.iter().copied().filter(|x| !x.is_nan()).collect();
        let dropped_nan = samples.len() - sorted.len();
        if sorted.is_empty() {
            return None;
        }
        let count = sorted.len();
        let mean = sorted.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            sorted.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (count as f64 - 1.0)
        } else {
            0.0
        };
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaNs were filtered"));
        Some(Summary {
            count,
            dropped_nan,
            mean,
            stddev: var.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
            median: percentile_sorted(&sorted, 0.5),
            p95: percentile_sorted(&sorted, 0.95),
            p99: percentile_sorted(&sorted, 0.99),
        })
    }

    /// Half-width of the 95% normal-approximation confidence interval of
    /// the mean.
    pub fn ci95(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        1.96 * self.stddev / (self.count as f64).sqrt()
    }

    /// Summarizes integer samples.
    pub fn of_ints<I: IntoIterator<Item = u64>>(samples: I) -> Option<Summary> {
        let v: Vec<f64> = samples.into_iter().map(|x| x as f64).collect();
        Summary::of(&v)
    }
}

/// Linear-interpolated percentile of a pre-sorted slice (`q` in `[0,1]`).
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` is outside `[0,1]`.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "empty sample set");
    assert!((0.0..=1.0).contains(&q), "quantile out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// [`percentile_sorted`] with the empty case mapped to `0.0` instead of a
/// panic — a zero-node metrics snapshot or a phase with no closed-loop
/// operations must yield zeroed stats. This is the variant the workload
/// reports use; keeping it here next to the interpolation it wraps is
/// what stops a second, drifting implementation from growing elsewhere.
pub fn percentile_or_zero(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        0.0
    } else {
        percentile_sorted(sorted, q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_summary() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.dropped_nan, 0);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.median - 3.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.stddev - (2.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(Summary::of(&[]), None);
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.ci95(), 0.0);
        assert_eq!(s.p95, 7.0);
        assert_eq!(s.p99, 7.0);
    }

    /// Satellite regression: one NaN sample used to panic the whole
    /// summary through the sort comparator. Now it is filtered and
    /// counted, and the remaining statistics are exactly the NaN-free
    /// ones.
    #[test]
    fn nan_samples_are_dropped_and_counted() {
        let s = Summary::of(&[2.0, f64::NAN, 4.0, 6.0, f64::NAN]).unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.dropped_nan, 2);
        assert_eq!(s, {
            let mut clean = Summary::of(&[2.0, 4.0, 6.0]).unwrap();
            clean.dropped_nan = 2;
            clean
        });
        // all-NaN collapses to None, same as empty — not a zeroed ghost
        assert_eq!(Summary::of(&[f64::NAN, f64::NAN]), None);
        // infinities are ordered values, not NaNs: they stay
        let inf = Summary::of(&[1.0, f64::INFINITY]).unwrap();
        assert_eq!(inf.dropped_nan, 0);
        assert_eq!(inf.max, f64::INFINITY);
    }

    #[test]
    fn percentiles_interpolate() {
        let sorted = [0.0, 10.0];
        assert!((percentile_sorted(&sorted, 0.25) - 2.5).abs() < 1e-12);
        assert_eq!(percentile_sorted(&sorted, 0.0), 0.0);
        assert_eq!(percentile_sorted(&sorted, 1.0), 10.0);
    }

    #[test]
    fn percentile_or_zero_matches_sorted_when_nonempty() {
        assert_eq!(percentile_or_zero(&[], 0.5), 0.0);
        let sorted = [1.0, 3.0, 5.0, 9.0];
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(
                percentile_or_zero(&sorted, q),
                percentile_sorted(&sorted, q)
            );
        }
    }

    #[test]
    fn of_ints_converts() {
        let s = Summary::of_ints([2u64, 4, 6]).unwrap();
        assert!((s.mean - 4.0).abs() < 1e-12);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let few = Summary::of(&[1.0, 2.0, 3.0]).unwrap().ci95();
        let many: Vec<f64> = (0..300).map(|i| 1.0 + (i % 3) as f64).collect();
        let tight = Summary::of(&many).unwrap().ci95();
        assert!(tight < few);
    }
}
