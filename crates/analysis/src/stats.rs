//! Summary statistics over experiment samples.

/// Mean / variance / percentiles of a sample set.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected; 0 for < 2 samples).
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
}

impl Summary {
    /// Summarizes `samples`. Returns `None` for an empty slice.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (count as f64 - 1.0)
        } else {
            0.0
        };
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not be NaN"));
        Some(Summary {
            count,
            mean,
            stddev: var.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
            median: percentile_sorted(&sorted, 0.5),
            p95: percentile_sorted(&sorted, 0.95),
        })
    }

    /// Half-width of the 95% normal-approximation confidence interval of
    /// the mean.
    pub fn ci95(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        1.96 * self.stddev / (self.count as f64).sqrt()
    }

    /// Summarizes integer samples.
    pub fn of_ints<I: IntoIterator<Item = u64>>(samples: I) -> Option<Summary> {
        let v: Vec<f64> = samples.into_iter().map(|x| x as f64).collect();
        Summary::of(&v)
    }
}

/// Linear-interpolated percentile of a pre-sorted slice (`q` in `[0,1]`).
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` is outside `[0,1]`.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "empty sample set");
    assert!((0.0..=1.0).contains(&q), "quantile out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_summary() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.count, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.median - 3.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.stddev - (2.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(Summary::of(&[]), None);
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.ci95(), 0.0);
        assert_eq!(s.p95, 7.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let sorted = [0.0, 10.0];
        assert!((percentile_sorted(&sorted, 0.25) - 2.5).abs() < 1e-12);
        assert_eq!(percentile_sorted(&sorted, 0.0), 0.0);
        assert_eq!(percentile_sorted(&sorted, 1.0), 10.0);
    }

    #[test]
    fn of_ints_converts() {
        let s = Summary::of_ints([2u64, 4, 6]).unwrap();
        assert!((s.mean - 4.0).abs() < 1e-12);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let few = Summary::of(&[1.0, 2.0, 3.0]).unwrap().ci95();
        let many: Vec<f64> = (0..300).map(|i| 1.0 + (i % 3) as f64).collect();
        let tight = Summary::of(&many).unwrap().ci95();
        assert!(tight < few);
    }
}
