//! # mm-analysis — statistics, scaling fits and table rendering
//!
//! Support crate for the experiment harness: summary statistics with
//! confidence intervals ([`stats`]), log–log scaling-exponent fits used to
//! check the paper's `n^{1/2}` / `n^{(d−1)/d}` / `log n` claims ([`fit`]),
//! ASCII tables in the style of the paper's figures ([`table`]), and
//! serializable experiment records ([`record`]).

pub mod fit;
pub mod record;
pub mod stats;
pub mod table;

pub use fit::log_log_slope;
pub use record::ExperimentRecord;
pub use stats::Summary;
pub use table::Table;
