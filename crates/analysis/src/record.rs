//! Serializable experiment records, for regenerating EXPERIMENTS.md and
//! machine-readable comparisons.

use serde::{Deserialize, Serialize};

/// One paper-vs-measured data point of an experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// Experiment id, e.g. `"E8"`.
    pub id: String,
    /// What is measured, e.g. `"m(n), 32x32 grid"`.
    pub quantity: String,
    /// The paper's predicted value (closed form evaluated).
    pub predicted: f64,
    /// Our measured value.
    pub measured: f64,
}

impl ExperimentRecord {
    /// Builds a record.
    pub fn new(id: &str, quantity: &str, predicted: f64, measured: f64) -> Self {
        ExperimentRecord {
            id: id.to_string(),
            quantity: quantity.to_string(),
            predicted,
            measured,
        }
    }

    /// `measured / predicted` — 1.0 is a perfect match.
    ///
    /// Returns `f64::INFINITY` when the prediction is zero but the
    /// measurement is not.
    pub fn ratio(&self) -> f64 {
        if self.predicted == 0.0 {
            if self.measured == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.measured / self.predicted
        }
    }

    /// `true` if measured is within `factor`× of predicted (both ways).
    pub fn within_factor(&self, factor: f64) -> bool {
        let r = self.ratio();
        r.is_finite() && r <= factor && r >= 1.0 / factor
    }
}

/// Renders records as a markdown table body for EXPERIMENTS.md.
pub fn to_markdown(records: &[ExperimentRecord]) -> String {
    let mut out =
        String::from("| id | quantity | paper | measured | ratio |\n|---|---|---|---|---|\n");
    for r in records {
        out.push_str(&format!(
            "| {} | {} | {:.3} | {:.3} | {:.2} |\n",
            r.id,
            r.quantity,
            r.predicted,
            r.measured,
            r.ratio()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_and_factor() {
        let r = ExperimentRecord::new("E1", "m(9)", 6.0, 6.3);
        assert!((r.ratio() - 1.05).abs() < 1e-12);
        assert!(r.within_factor(1.1));
        assert!(!r.within_factor(1.01));
    }

    #[test]
    fn zero_prediction_edge_cases() {
        assert_eq!(ExperimentRecord::new("x", "q", 0.0, 0.0).ratio(), 1.0);
        assert_eq!(
            ExperimentRecord::new("x", "q", 0.0, 5.0).ratio(),
            f64::INFINITY
        );
        assert!(!ExperimentRecord::new("x", "q", 0.0, 5.0).within_factor(100.0));
    }

    #[test]
    fn markdown_rendering() {
        let recs = vec![ExperimentRecord::new("E2", "pq/n", 1.0, 0.98)];
        let md = to_markdown(&recs);
        assert!(md.contains("| E2 |"));
        assert!(md.contains("0.98"));
    }

    #[test]
    fn records_are_serializable() {
        fn assert_serializable<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
        assert_serializable::<ExperimentRecord>();
    }
}
