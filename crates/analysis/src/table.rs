//! ASCII table rendering for experiment output.

use std::fmt;

/// A simple column-aligned table with a title and a header row.
///
/// # Example
///
/// ```
/// use mm_analysis::Table;
/// let mut t = Table::new("demo", &["n", "m(n)"]);
/// t.row(&["9", "6.0"]);
/// t.row(&["16", "8.0"]);
/// let s = t.to_string();
/// assert!(s.contains("m(n)"));
/// assert!(s.contains("16"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extras are kept.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Appends a row of already-owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let fmt_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, &width) in widths.iter().enumerate() {
                let empty = String::new();
                let c = cells.get(i).unwrap_or(&empty);
                write!(f, " {c:>width$} |")?;
            }
            writeln!(f)
        };
        fmt_row(f, &self.header)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<width$}|", "", width = w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            fmt_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("t", &["a", "long-header"]);
        t.row(&["1", "2"]);
        t.row(&["100", "2000"]);
        let s = t.to_string();
        assert!(s.contains("## t"));
        assert!(s.lines().count() >= 5);
        // all data lines same length
        let lens: Vec<usize> = s.lines().skip(1).map(|l| l.len()).collect();
        assert!(lens.windows(2).all(|w| w[0] == w[1]), "{s}");
    }

    #[test]
    fn tolerates_ragged_rows() {
        let mut t = Table::new("r", &["x"]);
        t.row(&["1", "extra"]);
        t.row(&[]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let s = t.to_string();
        assert!(s.contains("extra"));
    }

    #[test]
    fn row_owned_works() {
        let mut t = Table::new("o", &["v"]);
        t.row_owned(vec![format!("{:.2}", 1.234f64)]);
        assert!(t.to_string().contains("1.23"));
    }
}
