//! Scaling-law fits.
//!
//! The paper's per-topology results are asymptotic orders: `m(n) = Θ(√n)`
//! for grids/cubes/planes, `Θ(n^{(d−1)/d})` for d-dimensional meshes,
//! `Θ(log n)` for optimal hierarchies, `Θ(n)` for rings. Fitting the
//! log–log slope of measured `(n, m)` series recovers the exponent and
//! lets the harness assert the paper's *shape* without matching absolute
//! constants.

/// Least-squares slope of `log(y)` against `log(x)` — the scaling
/// exponent `k` of `y ≈ c·x^k`.
///
/// Returns `None` when fewer than two valid (positive) points exist.
pub fn log_log_slope(points: &[(f64, f64)]) -> Option<f64> {
    let logs: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(x, y)| x > 0.0 && y > 0.0)
        .map(|&(x, y)| (x.ln(), y.ln()))
        .collect();
    slope(&logs)
}

/// Least-squares slope of `y` against `log(x)` — positive and finite when
/// `y` grows logarithmically; used to check `m(n) = O(log n)` claims.
pub fn semi_log_slope(points: &[(f64, f64)]) -> Option<f64> {
    let logs: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(x, _)| x > 0.0)
        .map(|&(x, y)| (x.ln(), y))
        .collect();
    slope(&logs)
}

/// Plain least-squares slope.
fn slope(pts: &[(f64, f64)]) -> Option<f64> {
    if pts.len() < 2 {
        return None;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    Some((n * sxy - sx * sy) / denom)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_sqrt_exponent() {
        let pts: Vec<(f64, f64)> = (4..12)
            .map(|k| {
                let n = (1u64 << k) as f64;
                (n, 2.0 * n.sqrt())
            })
            .collect();
        let s = log_log_slope(&pts).unwrap();
        assert!((s - 0.5).abs() < 1e-9, "slope {s}");
    }

    #[test]
    fn recovers_linear_exponent() {
        let pts: Vec<(f64, f64)> = (1..10)
            .map(|k| (k as f64 * 10.0, k as f64 * 30.0))
            .collect();
        let s = log_log_slope(&pts).unwrap();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn log_growth_has_small_log_log_slope() {
        let pts: Vec<(f64, f64)> = (4..16)
            .map(|k| {
                let n = (1u64 << k) as f64;
                (n, 2.0 * n.log2())
            })
            .collect();
        let s = log_log_slope(&pts).unwrap();
        assert!(s < 0.25, "log growth must look sub-polynomial, slope {s}");
        let semi = semi_log_slope(&pts).unwrap();
        assert!(semi > 0.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(log_log_slope(&[]), None);
        assert_eq!(log_log_slope(&[(1.0, 1.0)]), None);
        assert_eq!(log_log_slope(&[(0.0, 1.0), (-1.0, 2.0)]), None);
        // vertical line
        assert_eq!(slope(&[(2.0, 1.0), (2.0, 5.0)]), None);
    }
}
