//! Causal span records, the bounded tracer, and the JSONL trace file.
//!
//! One workload operation = one *trace*, a small tree of spans:
//!
//! ```text
//! post trace                     locate trace
//!   span 0  kind=post  (root)      span 0        kind=locate (root)
//!   span 1  kind=store             span 1..=|Q|  kind=contact
//!   ...     (one per P target)     span |Q|+1    kind=request (optional)
//! ```
//!
//! Ticks are *virtual*: they follow the uniform-cost timing law (fan-out
//! delivered at `issue+1`, replies complete at `issue+2`, pure self-ops
//! at `issue`) rather than any engine clock, which is what makes traces
//! comparable byte-for-byte between the simulator and the live runtime.
//! Costs count message passes under the same law: a contact costs 2
//! passes (query + answer) unless the target is the client itself, a
//! store costs 1 unless the target is the posting server's own node, a
//! request costs 2 unless the located address is the client.

use serde::{Deserialize, Serialize};

/// Trace format version, bumped on any schema change.
pub const TRACE_VERSION: u32 = 1;

/// One node of an operation's causal tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Trace (operation) id — allocated in shared dispatch order.
    pub trace: u64,
    /// Span index within the trace (0 = root).
    pub span: u32,
    /// Parent span index; absent for roots.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub parent: Option<u32>,
    /// Span kind: `post`, `store`, `locate`, `contact`, or `request`.
    pub kind: String,
    /// The node this span executes at.
    pub node: u64,
    /// Index into the workload's port space (`0..spec.ports`), not the
    /// raw 128-bit port value — the index is what the spec layer speaks.
    pub port: u64,
    /// Hops from the root (0 for roots, 1 for fan-out spans).
    pub hop: u32,
    /// Virtual tick (uniform-cost law, spec time).
    pub tick: u64,
    /// Message passes attributed to this span.
    pub cost: u64,
    /// For `contact` spans: did the query meet a matching post here?
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub met: Option<bool>,
    /// For `locate` roots: `hit`, `miss`, or `unresolved`.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub verdict: Option<String>,
    /// For `locate` roots: virtual ticks from issue to verdict.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub elapsed: Option<u64>,
}

/// First line of a trace file. Deliberately excludes the runtime, queue
/// implementation, topology and cost model: the file must be
/// byte-identical across those axes on churn-free specs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceHeader {
    /// Format version ([`TRACE_VERSION`]).
    pub version: u32,
    /// Scenario (workload spec) name.
    pub scenario: String,
    /// Strategy label (`checkerboard`, ...).
    pub strategy: String,
    /// Network size.
    pub n: u64,
    /// Workload seed.
    pub seed: u64,
    /// Number of service ports (traces `0..ports` are the setup posts).
    pub ports: u64,
    /// Head-sampling rate in `[0, 1]`.
    pub sample_rate: f64,
}

/// Last line of a trace file: totals for the conservation check.
/// `sends`/`passes` are the run's cumulative `Metrics` counters
/// (identical between the runtimes on churn-free specs); span totals
/// reproduce them exactly when `sample_rate` is 1 and nothing dropped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceFooter {
    /// Spans written to the file.
    pub spans: u64,
    /// Traces allocated (sampled or not).
    pub traces: u64,
    /// Traces excluded by head-sampling.
    pub sampled_out: u64,
    /// Spans dropped because the ring was full.
    pub dropped: u64,
    /// The run's total `Metrics::sends`.
    pub sends: u64,
    /// The run's total `Metrics::message_passes`.
    pub passes: u64,
}

/// Tracer configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Fraction of traces to keep, decided per trace id (deterministic).
    pub sample_rate: f64,
    /// Span-ring capacity; spans past it are counted as dropped. A
    /// capacity-bound run loses cross-runtime byte-identity (the two
    /// runtimes emit in different orders), so the default is generous.
    pub capacity: usize,
    /// Sampling seed (normally the workload seed).
    pub seed: u64,
}

impl TraceConfig {
    /// Full-rate tracing with a ~1M-span ring.
    pub fn full(seed: u64) -> Self {
        TraceConfig {
            sample_rate: 1.0,
            capacity: 1 << 20,
            seed,
        }
    }

    /// Same ring, different rate.
    pub fn with_rate(seed: u64, rate: f64) -> Self {
        TraceConfig {
            sample_rate: rate,
            ..Self::full(seed)
        }
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Bounded span buffer with deterministic per-trace head-sampling.
///
/// Trace ids must be allocated through [`Tracer::next_trace_id`] in the
/// runners' shared dispatch order; spans may then arrive in any order
/// (the simulator emits at classification time, the live runtime at
/// issue time) — [`Tracer::finish`] canonicalizes with a
/// `(trace, span)` sort.
#[derive(Debug)]
pub struct Tracer {
    cfg: TraceConfig,
    /// `sample_rate` mapped onto the u64 hash space.
    threshold: u64,
    next_trace: u64,
    sampled_out: u64,
    dropped: u64,
    spans: Vec<SpanRecord>,
}

impl Tracer {
    /// A tracer with the given configuration.
    pub fn new(cfg: TraceConfig) -> Self {
        let rate = cfg.sample_rate.clamp(0.0, 1.0);
        let threshold = if rate >= 1.0 {
            u64::MAX
        } else {
            // rate * 2^64, saturating; < comparison below makes rate 0
            // keep nothing
            (rate * (u64::MAX as f64)) as u64
        };
        Tracer {
            cfg,
            threshold,
            next_trace: 0,
            sampled_out: 0,
            dropped: 0,
            spans: Vec::new(),
        }
    }

    /// Allocates the next trace id (call in shared dispatch order).
    pub fn next_trace_id(&mut self) -> u64 {
        let id = self.next_trace;
        self.next_trace += 1;
        if !self.sampled(id) {
            self.sampled_out += 1;
        }
        id
    }

    /// Does head-sampling keep this trace? Order-independent (pure hash
    /// of `seed ^ trace`), so a sampled file is a subset of the full one.
    pub fn sampled(&self, trace: u64) -> bool {
        if self.threshold == u64::MAX {
            return true;
        }
        splitmix64(self.cfg.seed ^ trace) < self.threshold
    }

    /// Records one span (no-op for unsampled traces; counted as dropped
    /// when the ring is full).
    pub fn record(&mut self, span: SpanRecord) {
        if !self.sampled(span.trace) {
            return;
        }
        if self.spans.len() >= self.cfg.capacity {
            self.dropped += 1;
            return;
        }
        self.spans.push(span);
    }

    /// Spans recorded so far (pre-sort emission order).
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when no spans are buffered.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Sorts spans into canonical `(trace, span)` order and seals the
    /// file. `sends`/`passes` are the run's cumulative metrics totals.
    pub fn finish(mut self, header: TraceHeader, sends: u64, passes: u64) -> TraceFile {
        self.spans.sort_by_key(|s| (s.trace, s.span));
        let footer = TraceFooter {
            spans: self.spans.len() as u64,
            traces: self.next_trace,
            sampled_out: self.sampled_out,
            dropped: self.dropped,
            sends,
            passes,
        };
        TraceFile {
            header,
            spans: self.spans,
            footer,
        }
    }
}

/// A complete trace: header line, span lines, footer line.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceFile {
    /// Run identification (runtime-agnostic fields only).
    pub header: TraceHeader,
    /// Canonically ordered spans.
    pub spans: Vec<SpanRecord>,
    /// Totals for the conservation check.
    pub footer: TraceFooter,
}

impl TraceFile {
    /// Renders the trace as JSONL: `{"header":{...}}`, one span object
    /// per line, `{"footer":{...}}`. Fully deterministic.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let header = serde::Value::Map(vec![("header".to_string(), self.header.to_value())]);
        out.push_str(&serde_json::to_string(&header).expect("infallible"));
        out.push('\n');
        for s in &self.spans {
            out.push_str(&serde_json::to_string(s).expect("infallible"));
            out.push('\n');
        }
        let footer = serde::Value::Map(vec![("footer".to_string(), self.footer.to_value())]);
        out.push_str(&serde_json::to_string(&footer).expect("infallible"));
        out.push('\n');
        out
    }

    /// Parses a JSONL trace produced by [`TraceFile::to_jsonl`].
    ///
    /// # Errors
    ///
    /// Returns [`serde::Error`] on malformed lines, a missing header or
    /// a missing footer.
    pub fn from_jsonl(text: &str) -> Result<Self, serde::Error> {
        let mut header = None;
        let mut footer = None;
        let mut spans = Vec::new();
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            let v = serde_json::from_str(line)?;
            if let Some(h) = v.get("header") {
                header = Some(TraceHeader::from_value(h)?);
            } else if let Some(f) = v.get("footer") {
                footer = Some(TraceFooter::from_value(f)?);
            } else {
                spans.push(SpanRecord::from_value(&v)?);
            }
        }
        Ok(TraceFile {
            header: header.ok_or_else(|| serde::Error::missing("header"))?,
            spans,
            footer: footer.ok_or_else(|| serde::Error::missing("footer"))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> TraceHeader {
        TraceHeader {
            version: TRACE_VERSION,
            scenario: "steady-state".into(),
            strategy: "checkerboard".into(),
            n: 16,
            seed: 7,
            ports: 2,
            sample_rate: 1.0,
        }
    }

    fn span(trace: u64, span: u32, kind: &str) -> SpanRecord {
        SpanRecord {
            trace,
            span,
            parent: (span > 0).then_some(0),
            kind: kind.into(),
            node: 3,
            port: 1,
            hop: u32::from(span > 0),
            tick: 10,
            cost: 2,
            met: None,
            verdict: None,
            elapsed: None,
        }
    }

    #[test]
    fn finish_sorts_spans_canonically() {
        let mut t = Tracer::new(TraceConfig::full(7));
        let a = t.next_trace_id();
        let b = t.next_trace_id();
        // live-runtime-style emission order: trace b first
        t.record(span(b, 0, "locate"));
        t.record(span(b, 1, "contact"));
        t.record(span(a, 1, "contact"));
        t.record(span(a, 0, "locate"));
        let file = t.finish(header(), 8, 6);
        let order: Vec<(u64, u32)> = file.spans.iter().map(|s| (s.trace, s.span)).collect();
        assert_eq!(order, [(0, 0), (0, 1), (1, 0), (1, 1)]);
        assert_eq!(file.footer.spans, 4);
        assert_eq!(file.footer.traces, 2);
        assert_eq!(file.footer.sends, 8);
        assert_eq!(file.footer.passes, 6);
    }

    #[test]
    fn jsonl_round_trips() {
        let mut t = Tracer::new(TraceConfig::full(7));
        let id = t.next_trace_id();
        let mut root = span(id, 0, "locate");
        root.verdict = Some("hit".into());
        root.elapsed = Some(2);
        root.cost = 0;
        let mut contact = span(id, 1, "contact");
        contact.met = Some(true);
        t.record(root);
        t.record(contact);
        let file = t.finish(header(), 2, 2);
        let text = file.to_jsonl();
        assert_eq!(TraceFile::from_jsonl(&text).unwrap(), file);
        // optional fields stay off the wire when absent
        let span_line = text.lines().nth(2).unwrap();
        assert!(span_line.contains("\"met\":true"));
        assert!(!span_line.contains("verdict"));
    }

    #[test]
    fn sampling_is_deterministic_and_a_subset() {
        let mut full = Tracer::new(TraceConfig::full(42));
        let mut half = Tracer::new(TraceConfig::with_rate(42, 0.5));
        let mut kept = 0u64;
        for _ in 0..256 {
            let a = full.next_trace_id();
            let b = half.next_trace_id();
            assert_eq!(a, b);
            full.record(span(a, 0, "locate"));
            half.record(span(b, 0, "locate"));
            if half.sampled(b) {
                kept += 1;
                assert!(full.sampled(a), "sampled file must be a subset");
            }
        }
        assert!(kept > 0 && kept < 256, "rate 0.5 keeps some, not all");
        let f = full.finish(header(), 0, 0);
        let h = half.finish(header(), 0, 0);
        assert_eq!(h.footer.sampled_out, 256 - kept);
        let full_ids: Vec<u64> = f.spans.iter().map(|s| s.trace).collect();
        for s in &h.spans {
            assert!(full_ids.contains(&s.trace));
        }
        assert_eq!(h.spans.len() as u64, kept);
    }

    #[test]
    fn rate_zero_keeps_nothing_and_capacity_drops() {
        let mut none = Tracer::new(TraceConfig::with_rate(1, 0.0));
        let id = none.next_trace_id();
        none.record(span(id, 0, "post"));
        assert!(none.is_empty());
        assert_eq!(none.sampled_out, 1);

        let mut tiny = Tracer::new(TraceConfig {
            sample_rate: 1.0,
            capacity: 1,
            seed: 1,
        });
        let id = tiny.next_trace_id();
        tiny.record(span(id, 0, "post"));
        tiny.record(span(id, 1, "store"));
        let file = tiny.finish(header(), 0, 0);
        assert_eq!(file.footer.spans, 1);
        assert_eq!(file.footer.dropped, 1);
    }
}
