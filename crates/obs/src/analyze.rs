//! Joins a flushed trace back into per-strategy tables.
//!
//! Three views of one [`TraceFile`]:
//!
//! 1. **Measured `m(P,Q)`** — for each locate trace, the number of
//!    `contact` spans where the query met a matching post; the paper's
//!    quantity, observed per operation instead of bounded in aggregate.
//! 2. **Latency attribution** — each locate's elapsed ticks split into
//!    *transit* (the uniform-cost law's 2 ticks of query + answer
//!    travel, 0 for pure self-locates) and *wait* (everything beyond
//!    transit: the client-timeout tail of unresolved operations).
//! 3. **Conservation** — summed span costs must exactly reproduce the
//!    run's `Metrics` counters (footer `passes`/`sends`) whenever the
//!    trace is complete: sample rate 1, nothing dropped, churn-free.
//!    Self-delivered answers count as sends but not passes, which the
//!    spans encode as zero-cost contacts/requests.

use crate::trace::{TraceFile, TraceFooter, TraceHeader};
use std::collections::BTreeMap;

/// Outcome of the span-vs-counters conservation check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConservationCheck {
    /// Whether the check is meaningful: sample rate 1 and zero dropped
    /// spans (a partial trace cannot reproduce whole-run counters).
    pub applicable: bool,
    /// Σ span costs == footer `passes`.
    pub passes_match: bool,
    /// Σ span costs + self-delivery sends == footer `sends`.
    pub sends_match: bool,
}

impl ConservationCheck {
    /// True when applicable and both totals match.
    pub fn holds(&self) -> bool {
        self.applicable && self.passes_match && self.sends_match
    }
}

/// Aggregated view of one trace file.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceAnalysis {
    /// The file's header, echoed for rendering.
    pub header: TraceHeader,
    /// The file's footer, echoed for rendering.
    pub footer: TraceFooter,
    /// Locate traces seen (after sampling).
    pub locates: u64,
    /// ... of which hit / miss / unresolved.
    pub hits: u64,
    /// Misses.
    pub misses: u64,
    /// Unresolved locates.
    pub unresolved: u64,
    /// Post traces seen (setup + refresh).
    pub posts: u64,
    /// Request spans seen.
    pub requests: u64,
    /// `m(P,Q)` histogram: measured meets per locate → locate count.
    pub meet_distribution: BTreeMap<u64, u64>,
    /// Mean measured meets per locate.
    pub mean_meets: f64,
    /// Σ transit ticks over locates (2 per fanned-out locate).
    pub transit_ticks: u64,
    /// Σ wait ticks over locates (elapsed − transit).
    pub wait_ticks: u64,
    /// Σ span costs — message passes implied by the spans.
    pub span_cost_total: u64,
    /// Passes plus self-delivered answers — sends implied by the spans.
    pub implied_sends: u64,
    /// The conservation verdict.
    pub conservation: ConservationCheck,
}

/// Analyzes a parsed trace file.
pub fn analyze(file: &TraceFile) -> TraceAnalysis {
    let mut locates = 0u64;
    let (mut hits, mut misses, mut unresolved) = (0u64, 0u64, 0u64);
    let mut posts = 0u64;
    let mut requests = 0u64;
    let mut meet_distribution: BTreeMap<u64, u64> = BTreeMap::new();
    let mut meets_total = 0u64;
    let (mut transit_ticks, mut wait_ticks) = (0u64, 0u64);
    let mut span_cost_total = 0u64;
    let mut implied_sends = 0u64;

    // per-locate aggregation state, keyed by trace id (spans are sorted,
    // but a single linear pass with a map stays correct on any order)
    let mut meets_by_trace: BTreeMap<u64, u64> = BTreeMap::new();
    let mut fanout_by_trace: BTreeMap<u64, u64> = BTreeMap::new();
    let mut elapsed_by_trace: BTreeMap<u64, u64> = BTreeMap::new();

    for s in &file.spans {
        span_cost_total += s.cost;
        implied_sends += s.cost;
        match s.kind.as_str() {
            "locate" => {
                locates += 1;
                match s.verdict.as_deref() {
                    Some("hit") => hits += 1,
                    Some("miss") => misses += 1,
                    _ => unresolved += 1,
                }
                elapsed_by_trace.insert(s.trace, s.elapsed.unwrap_or(0));
                meets_by_trace.entry(s.trace).or_insert(0);
                fanout_by_trace.entry(s.trace).or_insert(0);
            }
            "contact" => {
                if s.met == Some(true) {
                    *meets_by_trace.entry(s.trace).or_insert(0) += 1;
                }
                if s.cost > 0 {
                    *fanout_by_trace.entry(s.trace).or_insert(0) += 1;
                } else {
                    // self-contact: the answer is a send but not a pass
                    implied_sends += 1;
                }
            }
            "post" => posts += 1,
            "request" => {
                requests += 1;
                if s.cost == 0 {
                    // self-request: request + reply are both sends
                    implied_sends += 2;
                }
            }
            _ => {}
        }
    }

    for (trace, meets) in &meets_by_trace {
        *meet_distribution.entry(*meets).or_insert(0) += 1;
        meets_total += meets;
        let transit = if fanout_by_trace.get(trace).copied().unwrap_or(0) > 0 {
            2
        } else {
            0
        };
        let elapsed = elapsed_by_trace.get(trace).copied().unwrap_or(0);
        transit_ticks += transit;
        wait_ticks += elapsed.saturating_sub(transit);
    }

    let applicable = file.header.sample_rate >= 1.0 && file.footer.dropped == 0;
    let conservation = ConservationCheck {
        applicable,
        passes_match: span_cost_total == file.footer.passes,
        sends_match: implied_sends == file.footer.sends,
    };
    TraceAnalysis {
        header: file.header.clone(),
        footer: file.footer.clone(),
        locates,
        hits,
        misses,
        unresolved,
        posts,
        requests,
        meet_distribution,
        mean_meets: if locates > 0 {
            meets_total as f64 / locates as f64
        } else {
            0.0
        },
        transit_ticks,
        wait_ticks,
        span_cost_total,
        implied_sends,
        conservation,
    }
}

impl TraceAnalysis {
    /// Renders the analysis as the `scenarios trace` report.
    pub fn render(&self) -> String {
        let h = &self.header;
        let f = &self.footer;
        let mut out = String::new();
        out.push_str(&format!(
            "trace: {} · {} · n={} · seed={} · sample_rate={}\n",
            h.scenario, h.strategy, h.n, h.seed, h.sample_rate
        ));
        out.push_str(&format!(
            "traces={} spans={} sampled_out={} dropped={}\n\n",
            f.traces, f.spans, f.sampled_out, f.dropped
        ));
        out.push_str(&format!(
            "operations: {} locates ({} hit / {} miss / {} unresolved), {} posts, {} requests\n\n",
            self.locates, self.hits, self.misses, self.unresolved, self.posts, self.requests
        ));
        out.push_str(&format!("measured m(P,Q) per locate [{}]:\n", h.strategy));
        out.push_str("    m | locates\n");
        out.push_str("  ----+--------\n");
        for (m, count) in &self.meet_distribution {
            out.push_str(&format!("  {m:>3} | {count:>7}\n"));
        }
        out.push_str(&format!("  mean m = {:.4}\n\n", self.mean_meets));
        let (mean_transit, mean_wait) = if self.locates > 0 {
            (
                self.transit_ticks as f64 / self.locates as f64,
                self.wait_ticks as f64 / self.locates as f64,
            )
        } else {
            (0.0, 0.0)
        };
        out.push_str(&format!(
            "latency attribution (virtual ticks): transit={} wait={} (mean {:.2} + {:.2} per locate)\n\n",
            self.transit_ticks, self.wait_ticks, mean_transit, mean_wait
        ));
        let mark = |ok: bool| if ok { "ok" } else { "MISMATCH" };
        if self.conservation.applicable {
            out.push_str(&format!(
                "conservation: span costs = {} passes (metrics: {}) {} · implied sends = {} (metrics: {}) {}\n",
                self.span_cost_total,
                f.passes,
                mark(self.conservation.passes_match),
                self.implied_sends,
                f.sends,
                mark(self.conservation.sends_match),
            ));
        } else {
            out.push_str(&format!(
                "conservation: not applicable (sample_rate={} dropped={}) — span costs = {}, metrics passes = {}\n",
                h.sample_rate, f.dropped, self.span_cost_total, f.passes
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{SpanRecord, TraceConfig, Tracer, TRACE_VERSION};

    fn header(rate: f64) -> TraceHeader {
        TraceHeader {
            version: TRACE_VERSION,
            scenario: "synthetic".into(),
            strategy: "checkerboard".into(),
            n: 9,
            seed: 1,
            ports: 1,
            sample_rate: rate,
        }
    }

    /// One post (2 remote stores) + one locate (2 contacts, one meeting,
    /// one of them the client itself) + one remote request.
    fn synthetic() -> TraceFile {
        let mut t = Tracer::new(TraceConfig::full(1));
        let post = t.next_trace_id();
        let base = |trace, span, kind: &str, node, cost| SpanRecord {
            trace,
            span,
            parent: (span > 0).then_some(0),
            kind: kind.into(),
            node,
            port: 5,
            hop: u32::from(span > 0),
            tick: 0,
            cost,
            met: None,
            verdict: None,
            elapsed: None,
        };
        t.record(base(post, 0, "post", 4, 0));
        t.record(base(post, 1, "store", 3, 1));
        t.record(base(post, 2, "store", 5, 1));
        let loc = t.next_trace_id();
        let mut root = base(loc, 0, "locate", 7, 0);
        root.verdict = Some("hit".into());
        root.elapsed = Some(2);
        t.record(root);
        let mut c1 = base(loc, 1, "contact", 3, 2);
        c1.met = Some(true);
        t.record(c1);
        let mut c2 = base(loc, 2, "contact", 7, 0); // the client itself
        c2.met = Some(false);
        t.record(c2);
        t.record(base(loc, 3, "request", 4, 2));
        // passes: 2 stores + 2 contact + 2 request = 6
        // sends: passes + 1 self-contact answer = 7
        t.finish(header(1.0), 7, 6)
    }

    #[test]
    fn meets_latency_and_conservation() {
        let a = analyze(&synthetic());
        assert_eq!((a.locates, a.hits, a.posts, a.requests), (1, 1, 1, 1));
        assert_eq!(a.meet_distribution.get(&1), Some(&1), "m(P,Q) = 1 once");
        assert_eq!(a.mean_meets, 1.0);
        assert_eq!((a.transit_ticks, a.wait_ticks), (2, 0));
        assert_eq!(a.span_cost_total, 6);
        assert_eq!(a.implied_sends, 7);
        assert!(a.conservation.holds(), "synthetic totals must conserve");
        let text = a.render();
        assert!(text.contains("mean m = 1.0000"));
        assert!(text.contains("conservation: span costs = 6 passes (metrics: 6) ok"));
    }

    #[test]
    fn broken_totals_are_flagged() {
        let mut file = synthetic();
        file.footer.passes += 1;
        let a = analyze(&file);
        assert!(!a.conservation.passes_match);
        assert!(!a.conservation.holds());
        assert!(a.render().contains("MISMATCH"));
    }

    #[test]
    fn sampled_traces_skip_conservation() {
        let mut file = synthetic();
        file.header.sample_rate = 0.5;
        let a = analyze(&file);
        assert!(!a.conservation.applicable);
        assert!(!a.conservation.holds());
        assert!(a.render().contains("not applicable"));
    }

    #[test]
    fn unresolved_elapsed_becomes_wait() {
        let mut file = synthetic();
        // rewrite the locate as unresolved after a 64-tick timeout
        for s in &mut file.spans {
            if s.kind == "locate" {
                s.verdict = Some("unresolved".into());
                s.elapsed = Some(64);
            }
        }
        let a = analyze(&file);
        assert_eq!(a.unresolved, 1);
        assert_eq!((a.transit_ticks, a.wait_ticks), (2, 62));
    }
}
