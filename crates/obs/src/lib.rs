//! # mm-obs — deterministic causal tracing & metrics registry
//!
//! The paper's central quantity — how many rendezvous nodes a locate
//! actually meets a matching post at, `m(P,Q)` — is invisible in
//! aggregate counters. This crate makes per-operation causality a
//! first-class artifact shared by **both** runtimes (the `mm-sim`
//! discrete-event simulator and the threaded `mm-proto::live` network):
//!
//! * [`trace`] — span records forming one causal tree per workload
//!   operation (`post → store`, `locate → contact → request`), buffered
//!   in a bounded ring by [`trace::Tracer`] with deterministic seeded
//!   head-sampling, and flushed as JSONL by [`trace::TraceFile`]. Span
//!   ticks follow the **uniform-cost timing law** (fan-out delivered at
//!   `issue+1`, replies at `issue+2`) computed *virtually*, so a
//!   churn-free spec traced on the simulator and on live threads at the
//!   same seed produces **byte-identical** files.
//! * [`registry`] — named counters, gauges and log₂-bucketed histograms
//!   ([`registry::Registry`]), snapshotted per phase into the workload
//!   report behind the same schema-compat seam the closed-loop stats
//!   use (`skip_serializing_if`), so reports without observability stay
//!   byte-identical.
//! * [`analyze`] — joins a flushed trace back into per-strategy tables:
//!   measured `m(P,Q)` per locate, hop latency attribution (transit vs.
//!   wait), and a conservation check that span costs exactly reproduce
//!   the run's `Metrics` message counters.
//!
//! Determinism contract: trace IDs are allocated in the shared
//! timeline/dispatch order of the workload runners, span emission order
//! is canonicalized by a `(trace, span)` sort at flush time, and
//! sampling decides per *trace* via a seeded hash — so a sampled trace
//! file is always an exact subset of the full one at the same seed.

pub mod analyze;
pub mod registry;
pub mod trace;

pub use analyze::{analyze, ConservationCheck, TraceAnalysis};
pub use registry::{
    BucketSnap, HistogramSnap, NamedValue, Registry, RegistrySnapshot, HIST_BUCKETS,
};
pub use trace::{
    SpanRecord, TraceConfig, TraceFile, TraceFooter, TraceHeader, Tracer, TRACE_VERSION,
};
