//! Named counters, gauges and log₂-bucketed histograms.
//!
//! The registry unifies the runners' ad-hoc accounting into one
//! snapshot-able structure. Snapshots serialize as sorted name/value
//! lists (not maps) so they round-trip through the vendored serde shim
//! and render deterministically.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Number of log₂ histogram buckets: bucket 0 holds value 0, bucket
/// `k > 0` holds values in `[2^(k-1), 2^k)`, up to the full u64 range.
pub const HIST_BUCKETS: usize = 65;

/// Bucket index for a value: `0` for 0, else `64 - leading_zeros`.
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive lower bound of a bucket (for display).
fn bucket_lo(idx: usize) -> u64 {
    if idx == 0 {
        0
    } else {
        1u64 << (idx - 1)
    }
}

#[derive(Debug, Clone, PartialEq)]
struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; HIST_BUCKETS],
}

// arrays longer than 32 don't get a derived Default
impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl Histogram {
    fn observe(&mut self, v: u64) {
        if self.count == 0 || v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        self.count += 1;
        // the sum saturates rather than wrapping: two observations of
        // u64::MAX are already past the representable range, and a pinned
        // ceiling is a legible answer where a wrapped sum is silent
        // nonsense (campaign tables read these histograms)
        self.sum = self.sum.saturating_add(v);
        self.buckets[bucket_of(v)] += 1;
    }
}

/// A named scalar in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NamedValue {
    /// Metric name.
    pub name: String,
    /// Value at snapshot time.
    pub value: i64,
}

/// A nonzero histogram bucket in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BucketSnap {
    /// Inclusive lower bound of the bucket's value range.
    pub lo: u64,
    /// Observations that fell in the bucket.
    pub count: u64,
}

/// A named histogram in a snapshot (sparse: only nonzero buckets).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnap {
    /// Metric name.
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Nonzero buckets in ascending `lo` order.
    pub buckets: Vec<BucketSnap>,
}

/// A point-in-time view of a [`Registry`], ordered by metric name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    /// Monotonic counters.
    pub counters: Vec<NamedValue>,
    /// Last-write-wins gauges.
    pub gauges: Vec<NamedValue>,
    /// Histograms.
    pub histograms: Vec<HistogramSnap>,
}

impl RegistrySnapshot {
    /// Counter value by name.
    pub fn counter(&self, name: &str) -> Option<i64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnap> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

/// The mutable registry the runners feed during a phase.
#[derive(Debug, Default)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `v` to the named counter (created at 0).
    pub fn counter_add(&mut self, name: &str, v: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += v;
    }

    /// Sets the named gauge.
    pub fn gauge_set(&mut self, name: &str, v: i64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Records one observation into the named histogram.
    pub fn observe(&mut self, name: &str, v: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(v);
    }

    /// Merges a raw bucket-count array (e.g. the simulator's queue-depth
    /// buckets) into the named histogram. `counts[i]` observations are
    /// credited to bucket `i` with representative value `bucket_lo(i)`.
    pub fn observe_buckets(&mut self, name: &str, counts: &[u64; HIST_BUCKETS]) {
        let h = self.histograms.entry(name.to_string()).or_default();
        for (idx, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let rep = bucket_lo(idx);
            if h.count == 0 || rep < h.min {
                h.min = rep;
            }
            if rep > h.max {
                h.max = rep;
            }
            h.count += c;
            // same saturation rule as `observe`: the top bucket's
            // representative is 2^63, so even c = 2 would wrap a plain add
            h.sum = h.sum.saturating_add(rep.saturating_mul(c));
            h.buckets[idx] += c;
        }
    }

    /// Snapshots every metric (sorted by name) and clears the registry
    /// for the next phase.
    pub fn snapshot_and_reset(&mut self) -> RegistrySnapshot {
        let snap = RegistrySnapshot {
            counters: self
                .counters
                .iter()
                .map(|(name, &value)| NamedValue {
                    name: name.clone(),
                    value: value as i64,
                })
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(name, &value)| NamedValue {
                    name: name.clone(),
                    value,
                })
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(name, h)| HistogramSnap {
                    name: name.clone(),
                    count: h.count,
                    sum: h.sum,
                    min: h.min,
                    max: h.max,
                    buckets: h
                        .buckets
                        .iter()
                        .enumerate()
                        .filter(|(_, &c)| c > 0)
                        .map(|(idx, &c)| BucketSnap {
                            lo: bucket_lo(idx),
                            count: c,
                        })
                        .collect(),
                })
                .collect(),
        };
        self.counters.clear();
        self.gauges.clear();
        self.histograms.clear();
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_lo(0), 0);
        assert_eq!(bucket_lo(1), 1);
        assert_eq!(bucket_lo(2), 2);
        assert_eq!(bucket_lo(3), 4);
    }

    /// Satellite pin (PR 8): the documented bucketing contract is
    /// `bucket 0 = {0}`, `bucket k = [2^(k-1), 2^k)` — so every exact
    /// power of two `2^j` opens bucket `j + 1`, it never lands in the
    /// bucket that *ends* at it. Campaign tables read these histograms;
    /// an off-by-one here would silently halve or double every boundary
    /// sample's reported magnitude.
    #[test]
    fn every_power_of_two_opens_its_bucket() {
        for j in 0..64u32 {
            let v = 1u64 << j;
            let idx = bucket_of(v);
            assert_eq!(idx, j as usize + 1, "2^{j} must open bucket {}", j + 1);
            assert_eq!(bucket_lo(idx), v, "2^{j} is its bucket's lower bound");
            // one below the power belongs to the previous bucket
            // (except v = 1, where v - 1 = 0 is the dedicated zero bucket)
            assert_eq!(bucket_of(v - 1), if v == 1 { 0 } else { j as usize });
        }
        // the top bucket [2^63, 2^64) is last and holds u64::MAX
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
        assert_eq!(bucket_lo(HIST_BUCKETS - 1), 1u64 << 63);
    }

    /// Observations at the extremes of the domain: v = 0 stays out of the
    /// power buckets, v = u64::MAX lands in the top bucket, and repeated
    /// maximal observations saturate the sum instead of wrapping it to a
    /// small, plausible-looking lie.
    #[test]
    fn extreme_observations_bucket_and_saturate() {
        let mut r = Registry::new();
        r.observe("edge", 0);
        r.observe("edge", 1);
        r.observe("edge", u64::MAX);
        r.observe("edge", u64::MAX); // would wrap a plain `sum += v`
        let s = r.snapshot_and_reset();
        let h = s.histogram("edge").unwrap();
        assert_eq!(h.count, 4);
        assert_eq!((h.min, h.max), (0, u64::MAX));
        assert_eq!(h.sum, u64::MAX, "sum pins at the ceiling, no wrap");
        assert_eq!(h.buckets.len(), 3);
        assert_eq!((h.buckets[0].lo, h.buckets[0].count), (0, 1));
        assert_eq!((h.buckets[1].lo, h.buckets[1].count), (1, 1));
        assert_eq!((h.buckets[2].lo, h.buckets[2].count), (1u64 << 63, 2));
    }

    /// The raw-bucket merge path must saturate the same way: the top
    /// bucket's representative is 2^63, so two merged counts overflow a
    /// plain `rep * c` product.
    #[test]
    fn raw_bucket_merge_saturates_the_top_bucket() {
        let mut counts = [0u64; HIST_BUCKETS];
        counts[HIST_BUCKETS - 1] = 3;
        let mut r = Registry::new();
        r.observe_buckets("deep", &counts);
        let s = r.snapshot_and_reset();
        let h = s.histogram("deep").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, u64::MAX);
        assert_eq!((h.min, h.max), (1u64 << 63, 1u64 << 63));
    }

    #[test]
    fn snapshot_is_sorted_and_resets() {
        let mut r = Registry::new();
        r.counter_add("zeta", 2);
        r.counter_add("alpha", 1);
        r.counter_add("zeta", 3);
        r.gauge_set("inflight", -4);
        r.observe("lat", 0);
        r.observe("lat", 2);
        r.observe("lat", 3);
        let s = r.snapshot_and_reset();
        let names: Vec<&str> = s.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["alpha", "zeta"]);
        assert_eq!(s.counter("zeta"), Some(5));
        assert_eq!(s.gauges[0].value, -4);
        let h = s.histogram("lat").unwrap();
        assert_eq!((h.count, h.sum, h.min, h.max), (3, 5, 0, 3));
        assert_eq!(h.buckets.len(), 2, "sparse buckets only");
        assert_eq!((h.buckets[0].lo, h.buckets[0].count), (0, 1));
        assert_eq!((h.buckets[1].lo, h.buckets[1].count), (2, 2));
        // reset: the next phase starts clean
        let s2 = r.snapshot_and_reset();
        assert!(s2.counters.is_empty() && s2.histograms.is_empty());
    }

    #[test]
    fn raw_bucket_merge_matches_direct_observation_shape() {
        let mut counts = [0u64; HIST_BUCKETS];
        counts[1] = 3; // three observations of ~1
        counts[4] = 1; // one observation in [8, 16)
        let mut r = Registry::new();
        r.observe_buckets("queue_depth", &counts);
        let s = r.snapshot_and_reset();
        let h = s.histogram("queue_depth").unwrap();
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 3 + 8);
        assert_eq!((h.min, h.max), (1, 8));
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let mut r = Registry::new();
        r.counter_add("c", 7);
        r.observe("h", 9);
        let s = r.snapshot_and_reset();
        let text = serde_json::to_string(&s).unwrap();
        let v = serde_json::from_str(&text).unwrap();
        let back = RegistrySnapshot::from_value(&v).unwrap();
        assert_eq!(back, s);
    }
}
