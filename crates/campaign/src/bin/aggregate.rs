//! Campaign aggregation driver: joins a directory of per-run JSON into
//! theory-vs-measured tables and the deterministic `BENCH_8.json`
//! trajectory entry.
//!
//! ```text
//! aggregate runs/
//! aggregate runs/ --markdown
//! aggregate runs/ --bench-out BENCH_8.json
//! aggregate runs/ --check BENCH_8.json
//! ```
//!
//! Output is a pure function of run *content* — shuffled, renamed or
//! re-ordered run files aggregate identically. Exit status: 0 clean;
//! 1 on a determinism violation (runs that must be byte-identical
//! disagree) or when `--check` finds the deterministic event counts
//! drifted from the committed snapshot; 2 on invalid invocation.

use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: aggregate RUN_DIR [--markdown] [--bench-out FILE] [--check FILE]\n\n\
         default output: theory-vs-measured table + scaling fits (stdout)\n\
         --markdown   render the table as a markdown body instead\n\
         --bench-out  write the deterministic BENCH_8-format trajectory entry\n\
         --check      exit 1 when deterministic counts drift from a committed snapshot"
    );
    std::process::exit(2);
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut dir: Option<PathBuf> = None;
    let mut markdown = false;
    let mut bench_out: Option<PathBuf> = None;
    let mut check: Option<PathBuf> = None;
    let mut i = 0;
    let value = |argv: &[String], i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--markdown" => markdown = true,
            "--bench-out" => bench_out = Some(PathBuf::from(value(&argv, &mut i))),
            "--check" => check = Some(PathBuf::from(value(&argv, &mut i))),
            "--help" | "-h" => usage(),
            flag if flag.starts_with("--") => usage(),
            positional if dir.is_none() => dir = Some(PathBuf::from(positional)),
            _ => usage(),
        }
        i += 1;
    }
    let Some(dir) = dir else { usage() };
    let agg = mm_campaign::agg::load_dir(&dir).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    if !agg.violations.is_empty() {
        for v in &agg.violations {
            eprintln!("error: determinism violation: {v}");
        }
        std::process::exit(1);
    }
    eprintln!(
        "aggregate: {} unique runs from {} files",
        agg.unique.len(),
        agg.replicas()
    );
    if markdown {
        print!("{}", agg.markdown());
    } else {
        print!("{}", agg.render());
    }
    if let Some(path) = bench_out {
        if let Err(e) = std::fs::write(&path, agg.bench_json()) {
            eprintln!("error: writing {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("aggregate: wrote {}", path.display());
    }
    if let Some(path) = check {
        let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("error: reading {}: {e}", path.display());
            std::process::exit(2);
        });
        if let Err(drift) = agg.check(&committed) {
            eprintln!(
                "error: deterministic counts drifted from {}:\n{drift}",
                path.display()
            );
            std::process::exit(1);
        }
        eprintln!("aggregate: deterministic counts match {}", path.display());
    }
}
