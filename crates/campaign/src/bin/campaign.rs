//! Campaign driver: expands an experiment ID to its run cross-product
//! and executes it in parallel, one JSON file per run.
//!
//! ```text
//! campaign --list
//! campaign core-matrix --out runs/ --jobs 4
//! campaign ci-smoke --out runs/ --dry-run
//! ```
//!
//! Every per-run file is byte-identical to the stdout of the equivalent
//! single `scenarios` invocation at the same seed (same code path —
//! `mm_workload::drive`), so existing single-run tooling reads campaign
//! output unchanged. Exit status: 0 when every run produced its file,
//! 1 when any run failed, 2 on invalid invocation.

use mm_campaign::{by_id, execute_with_budget, EXPERIMENTS};
use std::path::PathBuf;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: campaign EXPERIMENT_ID --out DIR [--jobs N] [--budget-secs S] [--dry-run] [--verbose]\n\
         usage: campaign --list\n\n\
         --budget-secs S stops dispatching new runs once S seconds of wall clock\n\
         have elapsed; undispatched runs are recorded as skipped in the output\n\
         directory's manifest.json (completed files stay byte-identical to an\n\
         unbudgeted campaign's, and aggregation accepts the partial set)\n\nexperiments:"
    );
    for e in EXPERIMENTS {
        eprintln!("  {:<18} {} [{} runs]", e.id, e.description, e.runs());
    }
    std::process::exit(2);
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--list") {
        for e in EXPERIMENTS {
            println!("{:<18} {} [{} runs]", e.id, e.description, e.runs());
        }
        return;
    }
    let mut id: Option<String> = None;
    let mut out: Option<PathBuf> = None;
    let mut jobs = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut budget: Option<Duration> = None;
    let mut dry_run = false;
    let mut verbose = false;
    let mut i = 0;
    let value = |argv: &[String], i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--out" => out = Some(PathBuf::from(value(&argv, &mut i))),
            "--jobs" => {
                jobs = value(&argv, &mut i)
                    .parse()
                    .ok()
                    .filter(|&j: &usize| j > 0)
                    .unwrap_or_else(|| usage());
            }
            "--budget-secs" => {
                budget = Some(
                    value(&argv, &mut i)
                        .parse()
                        .ok()
                        .map(Duration::from_secs)
                        .unwrap_or_else(|| usage()),
                );
            }
            "--dry-run" => dry_run = true,
            "--verbose" => verbose = true,
            "--help" | "-h" => usage(),
            flag if flag.starts_with("--") => usage(),
            positional if id.is_none() => id = Some(positional.to_string()),
            _ => usage(),
        }
        i += 1;
    }
    let Some(id) = id else { usage() };
    let Some(experiment) = by_id(&id) else {
        eprintln!("error: unknown experiment `{id}`");
        usage();
    };
    let configs = experiment.expand();
    if dry_run {
        for cfg in &configs {
            println!("{}", cfg.label());
        }
        return;
    }
    let Some(out) = out else {
        eprintln!("error: --out DIR is required to execute (or use --dry-run)");
        usage();
    };
    eprintln!(
        "campaign: {id}: {} runs across {} worker(s) -> {}",
        configs.len(),
        jobs.min(configs.len().max(1)),
        out.display()
    );
    let report = execute_with_budget(&configs, &out, jobs, verbose, budget).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    if !report.all_ok() {
        for (label, e) in &report.failures {
            eprintln!("error: {label}: {e}");
        }
        eprintln!(
            "campaign: {id}: {} of {} runs failed",
            report.failures.len(),
            configs.len()
        );
        std::process::exit(1);
    }
    if report.skipped.is_empty() {
        eprintln!("campaign: {id}: {} run files written", report.written.len());
    } else {
        eprintln!(
            "campaign: {id}: {} run files written, {} skipped on budget (see manifest.json)",
            report.written.len(),
            report.skipped.len()
        );
    }
}
