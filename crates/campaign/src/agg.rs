//! Order-independent aggregation of per-run campaign JSON.
//!
//! A campaign directory is a bag of single-run files; this module joins
//! them back into the tables the paper prints. Three properties carry the
//! weight:
//!
//! * **Order independence** — every output is sorted by run *content*
//!   (scenario, strategy, topology, n, seed), never by filename or read
//!   order, so shuffled or renamed run files aggregate identically.
//! * **Conformance gating** — a run's JSON deliberately omits the event
//!   queue and runtime axes, because the repo's core contract is that
//!   they cannot change the bytes. The aggregator enforces that: two runs
//!   with the same content key but different content are a determinism
//!   violation, not something to average over.
//! * **Deterministic trajectory** — [`Aggregate::bench_json`] contains
//!   only seed-determined quantities (event counts, message passes), so
//!   CI can diff it against a committed `BENCH_8.json` snapshot with
//!   [`Aggregate::check`] and fail on any drift.

use mm_analysis::fit::log_log_slope;
use mm_analysis::record::{self, ExperimentRecord};
use mm_analysis::stats::Summary;
use mm_analysis::Table;
use mm_workload::ScenarioReport;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Content key of a run: everything its JSON pins. Queue and runtime are
/// deliberately absent — see the module docs.
type RunKey = (String, String, String, u64, u64);

fn key_of(r: &ScenarioReport) -> RunKey {
    (
        r.scenario.clone(),
        r.strategy.clone(),
        r.topology.clone(),
        r.n,
        r.seed,
    )
}

/// One unique run after deduplication, with how many byte-identical
/// copies (e.g. across queue implementations) backed it.
#[derive(Debug, Clone)]
pub struct UniqueRun {
    /// The parsed report.
    pub report: ScenarioReport,
    /// How many input files carried this exact content.
    pub replicas: usize,
}

/// One case of the deterministic `BENCH_8.json` trajectory entry. Every
/// field is a pure function of the run's seed and config — no wall-clock
/// quantities — so the file diffs clean across machines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchCase {
    /// Scenario name.
    pub scenario: String,
    /// Strategy label.
    pub strategy: String,
    /// Topology label.
    pub topology: String,
    /// Node count.
    pub n: u64,
    /// Master seed.
    pub seed: u64,
    /// Byte-identical input files behind this case.
    pub replicas: u64,
    /// Deterministic simulator events executed.
    pub events: u64,
    /// Deterministic total message passes.
    pub message_passes: u64,
    /// Deterministic completed locates.
    pub locates: u64,
}

/// The `BENCH_8.json` envelope, shaped like the `BENCH_6.json` perf
/// trajectory (`{"bench": …, "cases": […]}`) so tooling reads both.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchFile {
    /// Trajectory name.
    pub bench: String,
    /// Per-run deterministic cases, sorted by content key.
    pub cases: Vec<BenchCase>,
}

/// The joined view of a campaign directory.
#[derive(Debug)]
pub struct Aggregate {
    /// Unique runs, sorted by content key.
    pub unique: Vec<UniqueRun>,
    /// Determinism violations: same content key, different content.
    pub violations: Vec<String>,
}

/// Parses one run file: a JSON array of scenario reports (the `scenarios`
/// stdout format; campaign files hold exactly one element).
fn parse_file(path: &Path) -> Result<Vec<ScenarioReport>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let value =
        serde_json::from_str(&text).map_err(|e| format!("parsing {}: {e:?}", path.display()))?;
    Deserialize::from_value(&value).map_err(|e| format!("decoding {}: {e:?}", path.display()))
}

/// Joins run files into an [`Aggregate`]. Input order is irrelevant.
///
/// # Errors
///
/// An unreadable or unparsable file (a *violating* file is not an error
/// here — it lands in [`Aggregate::violations`] so the caller can report
/// every clash at once, not just the first).
pub fn load(paths: &[PathBuf]) -> Result<Aggregate, String> {
    // canonical re-serialization is the comparison currency: the
    // serializer is deterministic, so equal content <=> equal canon
    // bytes, and a campaign file's canon equals its on-disk bytes
    let mut groups: BTreeMap<RunKey, (ScenarioReport, String, usize, Vec<String>)> =
        BTreeMap::new();
    for path in paths {
        for report in parse_file(path)? {
            let key = key_of(&report);
            let canon = serde_json::to_string(&report).expect("reports always serialize");
            match groups.get_mut(&key) {
                None => {
                    groups.insert(key, (report, canon, 1, vec![path.display().to_string()]));
                }
                Some((_, first, replicas, sources)) => {
                    sources.push(path.display().to_string());
                    if *first == canon {
                        *replicas += 1;
                    } else {
                        *replicas = usize::MAX; // poison: clash recorded below
                    }
                }
            }
        }
    }
    let mut unique = Vec::new();
    let mut violations = Vec::new();
    for ((scenario, strategy, _, n, seed), (report, _, replicas, sources)) in groups {
        if replicas == usize::MAX {
            violations.push(format!(
                "{scenario}/{strategy} n={n} seed={seed}: runs that must be byte-identical \
                 disagree across {}",
                sources.join(", ")
            ));
        } else {
            unique.push(UniqueRun { report, replicas });
        }
    }
    Ok(Aggregate { unique, violations })
}

/// [`load`] over every `*.json` directly inside `dir`, excluding the
/// executor's `manifest.json` ledger (which is campaign bookkeeping,
/// not a run report).
///
/// # Errors
///
/// An unreadable directory or file.
pub fn load_dir(dir: &Path) -> Result<Aggregate, String> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("reading {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .filter(|p| p.file_name().is_none_or(|f| f != "manifest.json"))
        .collect();
    if paths.is_empty() {
        return Err(format!("{}: no run files (*.json)", dir.display()));
    }
    paths.sort();
    load(&paths)
}

/// One row of the theory-vs-measured table: a `(scenario, strategy,
/// topology, n)` cell summarized across its seeds.
struct Cell {
    scenario: String,
    strategy: String,
    n: u64,
    seeds: usize,
    predicted: f64,
    measured: Summary,
}

impl Aggregate {
    /// Total input files behind the unique runs.
    pub fn replicas(&self) -> usize {
        self.unique.iter().map(|u| u.replicas).sum()
    }

    fn cells(&self) -> Vec<Cell> {
        let mut groups: BTreeMap<(String, String, String, u64), Vec<&ScenarioReport>> =
            BTreeMap::new();
        for u in &self.unique {
            let r = &u.report;
            groups
                .entry((
                    r.scenario.clone(),
                    r.strategy.clone(),
                    r.topology.clone(),
                    r.n,
                ))
                .or_default()
                .push(r);
        }
        groups
            .into_iter()
            .filter_map(|((scenario, strategy, _, n), runs)| {
                let samples: Vec<f64> = runs.iter().map(|r| r.passes_per_locate()).collect();
                Summary::of(&samples).map(|measured| Cell {
                    scenario,
                    strategy,
                    n,
                    seeds: runs.len(),
                    // the 2·|Q| prediction depends on strategy and n only,
                    // so it is constant across the cell's seeds
                    predicted: runs[0].predicted_passes_per_locate,
                    measured,
                })
            })
            .collect()
    }

    /// Theory-vs-measured records (one per cell), ready for
    /// [`mm_analysis::record::to_markdown`].
    pub fn records(&self) -> Vec<ExperimentRecord> {
        self.cells()
            .iter()
            .map(|c| {
                ExperimentRecord::new(
                    &format!("{}/{}/n{}", c.scenario, c.strategy, c.n),
                    "passes-per-locate",
                    c.predicted,
                    c.measured.mean,
                )
            })
            .collect()
    }

    /// The cells as a markdown table body (README / EXPERIMENTS.md).
    pub fn markdown(&self) -> String {
        record::to_markdown(&self.records())
    }

    /// The human-facing aggregation: a theory-vs-measured ASCII table
    /// (mean ± 95% CI across seeds per cell) plus, for every
    /// `scenario × strategy` series spanning at least two sizes, the
    /// fitted log–log scaling exponent of measured passes per locate.
    pub fn render(&self) -> String {
        let cells = self.cells();
        let mut t = Table::new(
            "campaign: theory vs measured (passes per locate)",
            &[
                "scenario",
                "strategy",
                "n",
                "seeds",
                "2|Q| pred",
                "measured",
                "ci95",
                "ratio",
            ],
        );
        for c in &cells {
            t.row_owned(vec![
                c.scenario.clone(),
                c.strategy.clone(),
                c.n.to_string(),
                c.seeds.to_string(),
                format!("{:.3}", c.predicted),
                format!("{:.3}", c.measured.mean),
                format!("{:.3}", c.measured.ci95()),
                format!(
                    "{:.2}",
                    c.measured.mean / c.predicted.max(f64::MIN_POSITIVE)
                ),
            ]);
        }
        let mut out = t.to_string();

        let mut series: BTreeMap<(String, String), Vec<(f64, f64)>> = BTreeMap::new();
        for c in &cells {
            series
                .entry((c.scenario.clone(), c.strategy.clone()))
                .or_default()
                .push((c.n as f64, c.measured.mean));
        }
        let mut fits = Table::new(
            "campaign: fitted scaling exponent of passes per locate",
            &["scenario", "strategy", "sizes", "exponent k (m ~ n^k)"],
        );
        for ((scenario, strategy), pts) in series {
            if pts.len() < 2 {
                continue;
            }
            if let Some(k) = log_log_slope(&pts) {
                fits.row_owned(vec![
                    scenario,
                    strategy,
                    pts.len().to_string(),
                    format!("{k:.3}"),
                ]);
            }
        }
        if !fits.is_empty() {
            out.push('\n');
            out.push_str(&fits.to_string());
        }
        out
    }

    /// The deterministic trajectory cases, sorted by content key.
    pub fn cases(&self) -> Vec<BenchCase> {
        self.unique
            .iter()
            .map(|u| {
                let r = &u.report;
                BenchCase {
                    scenario: r.scenario.clone(),
                    strategy: r.strategy.clone(),
                    topology: r.topology.clone(),
                    n: r.n,
                    seed: r.seed,
                    replicas: u.replicas as u64,
                    events: r.events_executed(),
                    message_passes: r.phases.iter().map(|p| p.message_passes).sum(),
                    locates: r.locates_completed(),
                }
            })
            .collect()
    }

    /// `BENCH_8.json` bytes (pretty, trailing newline).
    pub fn bench_json(&self) -> String {
        let file = BenchFile {
            bench: "mm-campaign".to_string(),
            cases: self.cases(),
        };
        let json = serde_json::to_string_pretty(&file).expect("cases always serialize");
        format!("{json}\n")
    }

    /// Compares this aggregation's deterministic counts against a
    /// committed `BENCH_8.json` snapshot.
    ///
    /// # Errors
    ///
    /// A parse failure, a case present on one side only, or any drift in
    /// `events` / `message_passes` / `locates` — every mismatch listed.
    pub fn check(&self, committed: &str) -> Result<(), String> {
        let value =
            serde_json::from_str(committed).map_err(|e| format!("parsing snapshot: {e:?}"))?;
        let snapshot: BenchFile =
            Deserialize::from_value(&value).map_err(|e| format!("decoding snapshot: {e:?}"))?;
        let ours = self.cases();
        let mut drift = Vec::new();
        let keyed = |cases: &[BenchCase]| -> BTreeMap<RunKey, BenchCase> {
            cases
                .iter()
                .map(|c| {
                    (
                        (
                            c.scenario.clone(),
                            c.strategy.clone(),
                            c.topology.clone(),
                            c.n,
                            c.seed,
                        ),
                        c.clone(),
                    )
                })
                .collect()
        };
        let want = keyed(&snapshot.cases);
        let got = keyed(&ours);
        for (key, w) in &want {
            match got.get(key) {
                None => drift.push(format!("missing run {key:?}")),
                Some(g) => {
                    for (name, wv, gv) in [
                        ("events", w.events, g.events),
                        ("message_passes", w.message_passes, g.message_passes),
                        ("locates", w.locates, g.locates),
                    ] {
                        if wv != gv {
                            drift.push(format!(
                                "{}/{} n={} seed={}: {name} drifted {wv} -> {gv}",
                                w.scenario, w.strategy, w.n, w.seed
                            ));
                        }
                    }
                }
            }
        }
        for key in got.keys() {
            if !want.contains_key(key) {
                drift.push(format!("unexpected run {key:?}"));
            }
        }
        if drift.is_empty() {
            Ok(())
        } else {
            Err(drift.join("\n"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_workload::drive::{self, RunConfig};

    fn report(seed: u64, n: usize) -> ScenarioReport {
        drive::run(&RunConfig::new("steady-state", n, seed)).unwrap()
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mm-campaign-agg-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_run(dir: &Path, name: &str, r: &ScenarioReport) -> PathBuf {
        let p = dir.join(name);
        std::fs::write(&p, drive::reports_to_json(std::slice::from_ref(r), false)).unwrap();
        p
    }

    #[test]
    fn byte_identical_duplicates_merge_into_replicas() {
        let dir = scratch("dupes");
        let r = report(7, 32);
        let a = write_run(&dir, "calendar.json", &r);
        let b = write_run(&dir, "btree.json", &r);
        let agg = load(&[a, b]).unwrap();
        assert!(agg.violations.is_empty());
        assert_eq!(agg.unique.len(), 1);
        assert_eq!(agg.unique[0].replicas, 2);
        assert_eq!(agg.cases()[0].replicas, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn same_key_different_content_is_a_violation() {
        let dir = scratch("clash");
        let r = report(7, 32);
        let mut forged = r.clone();
        forged.phases[0].message_passes += 1;
        let a = write_run(&dir, "real.json", &r);
        let b = write_run(&dir, "forged.json", &forged);
        let agg = load(&[a, b]).unwrap();
        assert_eq!(agg.violations.len(), 1);
        assert!(agg.violations[0].contains("disagree"));
        assert!(agg.unique.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn aggregation_ignores_file_order_and_names() {
        let dir = scratch("order");
        let r7 = report(7, 32);
        let r11 = report(11, 32);
        let a = write_run(&dir, "aaa.json", &r7);
        let b = write_run(&dir, "zzz.json", &r11);
        let fwd = load(&[a.clone(), b.clone()]).unwrap();
        let rev = load(&[b, a]).unwrap();
        assert_eq!(fwd.render(), rev.render());
        assert_eq!(fwd.bench_json(), rev.bench_json());
        assert_eq!(fwd.markdown(), rev.markdown());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn check_round_trips_and_catches_drift() {
        let dir = scratch("check");
        let p = write_run(&dir, "run.json", &report(7, 32));
        let agg = load(&[p]).unwrap();
        let snapshot = agg.bench_json();
        agg.check(&snapshot).unwrap();
        let tampered = snapshot.replacen("\"events\": ", "\"events\": 9", 1);
        let err = agg.check(&tampered).unwrap_err();
        assert!(err.contains("events drifted"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cells_summarize_across_seeds() {
        let dir = scratch("cells");
        let a = write_run(&dir, "s7.json", &report(7, 32));
        let b = write_run(&dir, "s11.json", &report(11, 32));
        let agg = load(&[a, b]).unwrap();
        let recs = agg.records();
        assert_eq!(recs.len(), 1, "two seeds, one cell");
        assert!(recs[0].id.contains("steady-state"));
        let rendered = agg.render();
        assert!(rendered.contains("seeds"), "{rendered}");
        assert!(rendered.contains('2'), "{rendered}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
