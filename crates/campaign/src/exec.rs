//! The parallel campaign executor: a shared work queue drained by scoped
//! worker threads, one JSON file per run.
//!
//! Parallelism cannot be allowed to cost determinism, so the design keeps
//! the two orthogonal: workers race only for *which run they pick up*,
//! never inside a run. Each run is an independent, seeded, deterministic
//! simulation executed through [`mm_workload::drive`] — the same code
//! path as the `scenarios` binary — and lands in its own file named by
//! the run's canonical label. The resulting directory is a pure function
//! of the expanded paramset, whatever the thread interleaving was.

use crossbeam::channel;
use mm_workload::drive::{self, RunConfig};
use std::path::{Path, PathBuf};

/// What one [`execute`] call did.
#[derive(Debug)]
pub struct ExecReport {
    /// Files written, in expansion order (not completion order).
    pub written: Vec<PathBuf>,
    /// Failed runs as `(label, error)`, in expansion order.
    pub failures: Vec<(String, String)>,
}

impl ExecReport {
    /// `true` when every run produced its file.
    pub fn all_ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs every config, `jobs` at a time, writing
/// `<out_dir>/<label>.json` per run — each file byte-identical to the
/// stdout of the equivalent single `scenarios` invocation.
///
/// Worker threads pull from one shared MPMC channel, so a slow run never
/// idles the pool the way static slicing would. `verbose` prints a
/// completion line per run to stderr (completion order, which is the one
/// nondeterministic thing here and is why it is *not* part of any
/// artifact).
///
/// # Errors
///
/// An error creating the output directory or spawning workers; per-run
/// failures are collected in the report instead, so one bad cell cannot
/// discard a half-finished campaign.
pub fn execute(
    configs: &[RunConfig],
    out_dir: &Path,
    jobs: usize,
    verbose: bool,
) -> Result<ExecReport, String> {
    std::fs::create_dir_all(out_dir).map_err(|e| format!("creating {}: {e}", out_dir.display()))?;
    let total = configs.len();
    let workers = jobs.max(1).min(total.max(1));

    let (tx, rx) = channel::unbounded();
    for (idx, cfg) in configs.iter().enumerate() {
        tx.send((idx, cfg.clone())).expect("receiver is alive");
    }
    drop(tx); // disconnect: workers drain the queue and stop

    // (idx, label, outcome) per run, gathered from each worker's return
    // value and re-sorted into expansion order afterwards
    let mut outcomes: Vec<(usize, String, Result<PathBuf, String>)> =
        crossbeam::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let rx = rx.clone();
                    s.spawn(move || {
                        let mut done = Vec::new();
                        for (idx, cfg) in rx.iter() {
                            let label = cfg.label();
                            let outcome = run_to_file(&cfg, out_dir);
                            if verbose {
                                match &outcome {
                                    Ok(_) => eprintln!("campaign: [{}/{total}] {label}", idx + 1),
                                    Err(e) => {
                                        eprintln!("campaign: [{}/{total}] {label}: {e}", idx + 1)
                                    }
                                }
                            }
                            done.push((idx, label, outcome));
                        }
                        done
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap_or_default())
                .collect()
        });
    outcomes.sort_by_key(|(idx, _, _)| *idx);
    if outcomes.len() != total {
        // only possible if a worker panicked mid-queue; the runs it had
        // claimed are lost and must be reported, not silently dropped
        let seen: Vec<usize> = outcomes.iter().map(|(i, _, _)| *i).collect();
        let lost: Vec<String> = (0..total)
            .filter(|i| !seen.contains(i))
            .map(|i| configs[i].label())
            .collect();
        return Err(format!("worker panic lost runs: {}", lost.join(", ")));
    }

    let mut report = ExecReport {
        written: Vec::new(),
        failures: Vec::new(),
    };
    for (_, label, outcome) in outcomes {
        match outcome {
            Ok(path) => report.written.push(path),
            Err(e) => report.failures.push((label, e)),
        }
    }
    Ok(report)
}

/// One run, one file: exactly the bytes `scenarios … > file` would leave.
fn run_to_file(cfg: &RunConfig, out_dir: &Path) -> Result<PathBuf, String> {
    let report = drive::run(cfg)?;
    let path = out_dir.join(format!("{}.json", cfg.label()));
    let json = drive::reports_to_json(&[report], false);
    std::fs::write(&path, json).map_err(|e| format!("writing {}: {e}", path.display()))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mm-campaign-exec-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn parallel_files_equal_serial_runs() {
        let configs: Vec<RunConfig> = [7u64, 11, 13]
            .iter()
            .map(|&seed| RunConfig::new("steady-state", 32, seed))
            .collect();
        let dir = scratch("parallel");
        let rep = execute(&configs, &dir, 3, false).unwrap();
        assert!(rep.all_ok());
        assert_eq!(rep.written.len(), 3);
        for (cfg, path) in configs.iter().zip(&rep.written) {
            let got = std::fs::read_to_string(path).unwrap();
            let want = drive::reports_to_json(&[drive::run(cfg).unwrap()], false);
            assert_eq!(
                got,
                want,
                "{}: campaign file differs from direct run",
                cfg.label()
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn per_run_failures_do_not_abort_the_campaign() {
        let good = RunConfig::new("steady-state", 32, 7);
        let bad = RunConfig::new("no-such-scenario", 32, 7);
        let dir = scratch("failures");
        let rep = execute(&[good.clone(), bad], &dir, 2, false).unwrap();
        assert_eq!(rep.written.len(), 1);
        assert_eq!(rep.failures.len(), 1);
        assert!(rep.failures[0].0.starts_with("no-such-scenario"));
        assert!(dir.join(format!("{}.json", good.label())).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
