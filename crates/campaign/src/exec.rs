//! The parallel campaign executor: a shared work queue drained by scoped
//! worker threads, one JSON file per run.
//!
//! Parallelism cannot be allowed to cost determinism, so the design keeps
//! the two orthogonal: workers race only for *which run they pick up*,
//! never inside a run. Each run is an independent, seeded, deterministic
//! simulation executed through [`mm_workload::drive`] — the same code
//! path as the `scenarios` binary — and lands in its own file named by
//! the run's canonical label. The resulting directory is a pure function
//! of the expanded paramset, whatever the thread interleaving was.
//!
//! A campaign may carry a **wall-clock budget**: once the deadline
//! passes, workers stop dispatching queued runs and record them as
//! skipped instead. A budgeted campaign still writes a complete, exact
//! prefix-closed-by-nothing *subset* of the full run set — every file
//! that exists is byte-identical to its unbudgeted twin, and the
//! [`agg`](crate::agg) pipeline is order-independent over whatever
//! subset landed. The `manifest.json` in the output directory records
//! which runs completed, failed or were skipped, so a later invocation
//! (or a human) can finish the remainder.

use crossbeam::channel;
use mm_workload::drive::{self, RunConfig};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// What one [`execute`] call did.
#[derive(Debug)]
pub struct ExecReport {
    /// Files written, in expansion order (not completion order).
    pub written: Vec<PathBuf>,
    /// Failed runs as `(label, error)`, in expansion order.
    pub failures: Vec<(String, String)>,
    /// Runs never dispatched because the time budget expired, in
    /// expansion order. Skips are not failures: a budgeted campaign that
    /// completes a clean subset exits clean.
    pub skipped: Vec<String>,
}

impl ExecReport {
    /// `true` when every *dispatched* run produced its file.
    pub fn all_ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// How one queued run ended.
#[derive(Debug)]
enum RunOutcome {
    Wrote(PathBuf),
    Failed(String),
    Skipped,
}

/// Runs every config, `jobs` at a time, writing
/// `<out_dir>/<label>.json` per run — each file byte-identical to the
/// stdout of the equivalent single `scenarios` invocation. Equivalent to
/// [`execute_with_budget`] with no deadline.
///
/// # Errors
///
/// An error creating the output directory or spawning workers; per-run
/// failures are collected in the report instead, so one bad cell cannot
/// discard a half-finished campaign.
pub fn execute(
    configs: &[RunConfig],
    out_dir: &Path,
    jobs: usize,
    verbose: bool,
) -> Result<ExecReport, String> {
    execute_with_budget(configs, out_dir, jobs, verbose, None)
}

/// [`execute`] under an optional wall-clock budget: once `budget`
/// elapses, remaining queued runs are recorded as skipped instead of
/// dispatched (runs already in flight finish and keep their files).
///
/// Worker threads pull from one shared MPMC channel, so a slow run never
/// idles the pool the way static slicing would. `verbose` prints a
/// completion line per run to stderr (completion order, which is the one
/// nondeterministic thing here and is why it is *not* part of any
/// artifact).
///
/// Every invocation writes `<out_dir>/manifest.json` listing completed,
/// failed and skipped run labels in expansion order — the resume ledger
/// for budget-truncated campaigns.
///
/// # Errors
///
/// An error creating the output directory, spawning workers, or writing
/// the manifest; per-run failures are collected in the report instead.
pub fn execute_with_budget(
    configs: &[RunConfig],
    out_dir: &Path,
    jobs: usize,
    verbose: bool,
    budget: Option<Duration>,
) -> Result<ExecReport, String> {
    std::fs::create_dir_all(out_dir).map_err(|e| format!("creating {}: {e}", out_dir.display()))?;
    let total = configs.len();
    let workers = jobs.max(1).min(total.max(1));
    let deadline = budget.map(|b| Instant::now() + b);

    let (tx, rx) = channel::unbounded();
    for (idx, cfg) in configs.iter().enumerate() {
        tx.send((idx, cfg.clone())).expect("receiver is alive");
    }
    drop(tx); // disconnect: workers drain the queue and stop

    // (idx, label, outcome) per run, gathered from each worker's return
    // value and re-sorted into expansion order afterwards
    let mut outcomes: Vec<(usize, String, RunOutcome)> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let rx = rx.clone();
                s.spawn(move || {
                    let mut done = Vec::new();
                    for (idx, cfg) in rx.iter() {
                        let label = cfg.label();
                        // the budget gates *dispatch*: a run either gets
                        // its full deterministic execution or none at all
                        if deadline.is_some_and(|d| Instant::now() >= d) {
                            if verbose {
                                eprintln!(
                                    "campaign: [{}/{total}] {label}: skipped (budget exhausted)",
                                    idx + 1
                                );
                            }
                            done.push((idx, label, RunOutcome::Skipped));
                            continue;
                        }
                        let outcome = match run_to_file(&cfg, out_dir) {
                            Ok(path) => RunOutcome::Wrote(path),
                            Err(e) => RunOutcome::Failed(e),
                        };
                        if verbose {
                            match &outcome {
                                RunOutcome::Failed(e) => {
                                    eprintln!("campaign: [{}/{total}] {label}: {e}", idx + 1)
                                }
                                _ => eprintln!("campaign: [{}/{total}] {label}", idx + 1),
                            }
                        }
                        done.push((idx, label, outcome));
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap_or_default())
            .collect()
    });
    outcomes.sort_by_key(|(idx, _, _)| *idx);
    if outcomes.len() != total {
        // only possible if a worker panicked mid-queue; the runs it had
        // claimed are lost and must be reported, not silently dropped
        let seen: Vec<usize> = outcomes.iter().map(|(i, _, _)| *i).collect();
        let lost: Vec<String> = (0..total)
            .filter(|i| !seen.contains(i))
            .map(|i| configs[i].label())
            .collect();
        return Err(format!("worker panic lost runs: {}", lost.join(", ")));
    }

    let mut report = ExecReport {
        written: Vec::new(),
        failures: Vec::new(),
        skipped: Vec::new(),
    };
    for (_, label, outcome) in outcomes {
        match outcome {
            RunOutcome::Wrote(path) => report.written.push(path),
            RunOutcome::Failed(e) => report.failures.push((label, e)),
            RunOutcome::Skipped => report.skipped.push(label),
        }
    }
    write_manifest(&report, total, out_dir)?;
    Ok(report)
}

/// The campaign ledger: run dispositions in expansion order. Content is
/// a pure function of the outcome set (no timestamps), so an unbudgeted
/// re-run reproduces it byte for byte.
#[derive(Debug, serde::Serialize)]
struct Manifest {
    total: usize,
    completed: Vec<String>,
    skipped: Vec<String>,
    failures: Vec<ManifestFailure>,
}

#[derive(Debug, serde::Serialize)]
struct ManifestFailure {
    label: String,
    error: String,
}

fn write_manifest(report: &ExecReport, total: usize, out_dir: &Path) -> Result<(), String> {
    let manifest = Manifest {
        total,
        completed: report
            .written
            .iter()
            .map(|p| {
                p.file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_default()
            })
            .collect(),
        skipped: report.skipped.clone(),
        failures: report
            .failures
            .iter()
            .map(|(label, error)| ManifestFailure {
                label: label.clone(),
                error: error.clone(),
            })
            .collect(),
    };
    let path = out_dir.join("manifest.json");
    let json = serde_json::to_string_pretty(&manifest).expect("manifest always serializes");
    std::fs::write(&path, format!("{json}\n"))
        .map_err(|e| format!("writing {}: {e}", path.display()))
}

/// One run, one file: exactly the bytes `scenarios … > file` would leave.
fn run_to_file(cfg: &RunConfig, out_dir: &Path) -> Result<PathBuf, String> {
    let report = drive::run(cfg)?;
    let path = out_dir.join(format!("{}.json", cfg.label()));
    let json = drive::reports_to_json(&[report], false);
    std::fs::write(&path, json).map_err(|e| format!("writing {}: {e}", path.display()))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mm-campaign-exec-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn parallel_files_equal_serial_runs() {
        let configs: Vec<RunConfig> = [7u64, 11, 13]
            .iter()
            .map(|&seed| RunConfig::new("steady-state", 32, seed))
            .collect();
        let dir = scratch("parallel");
        let rep = execute(&configs, &dir, 3, false).unwrap();
        assert!(rep.all_ok());
        assert!(rep.skipped.is_empty());
        assert_eq!(rep.written.len(), 3);
        for (cfg, path) in configs.iter().zip(&rep.written) {
            let got = std::fs::read_to_string(path).unwrap();
            let want = drive::reports_to_json(&[drive::run(cfg).unwrap()], false);
            assert_eq!(
                got,
                want,
                "{}: campaign file differs from direct run",
                cfg.label()
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn per_run_failures_do_not_abort_the_campaign() {
        let good = RunConfig::new("steady-state", 32, 7);
        let bad = RunConfig::new("no-such-scenario", 32, 7);
        let dir = scratch("failures");
        let rep = execute(&[good.clone(), bad], &dir, 2, false).unwrap();
        assert_eq!(rep.written.len(), 1);
        assert_eq!(rep.failures.len(), 1);
        assert!(rep.failures[0].0.starts_with("no-such-scenario"));
        assert!(dir.join(format!("{}.json", good.label())).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn exhausted_budget_skips_runs_and_records_the_manifest() {
        let configs: Vec<RunConfig> = (0..6)
            .map(|seed| RunConfig::new("steady-state", 32, seed))
            .collect();
        let dir = scratch("budget");
        // a zero budget is already exhausted at dispatch: every run skips
        let rep = execute_with_budget(&configs, &dir, 2, false, Some(Duration::ZERO)).unwrap();
        assert!(rep.all_ok(), "skips are not failures");
        assert!(rep.written.is_empty());
        assert_eq!(rep.skipped.len(), 6);
        // skips are recorded in expansion order
        let labels: Vec<String> = configs.iter().map(|c| c.label()).collect();
        assert_eq!(rep.skipped, labels);
        let manifest = std::fs::read_to_string(dir.join("manifest.json")).unwrap();
        assert!(manifest.contains(&labels[5]), "manifest lists skipped runs");
        assert!(manifest.contains("\"total\": 6"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn partial_budgeted_campaign_files_equal_their_unbudgeted_twins() {
        let configs: Vec<RunConfig> = (0..4)
            .map(|seed| RunConfig::new("steady-state", 32, seed))
            .collect();
        let full_dir = scratch("budget-full");
        let part_dir = scratch("budget-part");
        execute(&configs, &full_dir, 2, false).unwrap();
        // generous budget: everything completes; the point is that a
        // budgeted run's files are the same bytes as an unbudgeted one's
        let rep = execute_with_budget(
            &configs,
            &part_dir,
            2,
            false,
            Some(Duration::from_secs(600)),
        )
        .unwrap();
        assert!(rep.all_ok());
        // the manifest rides alongside the run files without confusing
        // the aggregator, and grouping is label-keyed, so any subset of
        // the full run set aggregates cleanly
        let agg = crate::agg::load_dir(&part_dir).unwrap();
        assert_eq!(agg.unique.len(), rep.written.len());
        for cfg in &configs {
            let name = format!("{}.json", cfg.label());
            if part_dir.join(&name).exists() {
                assert_eq!(
                    std::fs::read_to_string(part_dir.join(&name)).unwrap(),
                    std::fs::read_to_string(full_dir.join(&name)).unwrap(),
                    "{name}: budgeted file differs from unbudgeted"
                );
            }
        }
        std::fs::remove_dir_all(&full_dir).unwrap();
        std::fs::remove_dir_all(&part_dir).unwrap();
    }
}
