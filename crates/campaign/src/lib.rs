//! # mm-campaign — declarative experiment campaigns
//!
//! The paper's tables are cross-products: a strategy family evaluated
//! over a range of network sizes, each cell an average over repeated
//! trials. Reproducing them one `scenarios` invocation at a time does not
//! scale past a handful of cells, and hand-rolled sweep scripts rot. This
//! crate makes the cross-product itself the unit of work:
//!
//! * [`paramset`] — a campaign **experiment** is an ID that expands to a
//!   deterministic `scenario × n × strategy × queue × runtime × seed`
//!   cross-product of [`RunConfig`](mm_workload::drive::RunConfig)s.
//! * [`exec`] — the parallel executor: a shared work queue (the vendored
//!   `crossbeam` MPMC channel) drained by scoped worker threads, one JSON
//!   file per run. Because every worker calls
//!   [`mm_workload::drive`] — the same code path as the `scenarios`
//!   binary — each per-run file is **byte-identical** to the output of
//!   the equivalent single CLI invocation at the same seed, no matter how
//!   many workers ran or in what order runs finished.
//! * [`agg`] — the order-independent aggregation pipeline: joins a
//!   directory of per-run JSON back into theory-vs-measured tables
//!   (through `mm-analysis` summaries and scaling fits), emits a
//!   deterministic `BENCH_8.json` trajectory entry, and gates CI by
//!   failing when deterministic event counts drift from a committed
//!   snapshot — or when two runs that must agree byte-for-byte (same
//!   scenario/strategy/n/seed across queues or runtimes) do not.
//!
//! Determinism is inherited, not re-implemented: a campaign is just many
//! single runs, and single runs are already byte-reproducible.

pub mod agg;
pub mod exec;
pub mod paramset;

pub use agg::{Aggregate, BenchCase};
pub use exec::{execute, execute_with_budget, ExecReport};
pub use paramset::{by_id, Experiment, EXPERIMENTS};
