//! Declarative paramsets: an experiment ID expands to a cross-product of
//! run configurations.
//!
//! Expansion order is part of the contract — nested loops over
//! `scenario → n → strategy → topology → cost → queue → runtime → seed`,
//! each axis in its declared order — so run indices, progress lines and
//! file listings are stable across machines and re-runs. The *results*
//! are order-free anyway (each run is an independent deterministic
//! simulation keyed by its own config), but a stable expansion makes
//! campaigns diffable.

use mm_sim::{CostModel, QueueKind};
use mm_workload::drive::RunConfig;
use mm_workload::RuntimeKind;

/// A named cross-product of run axes. All axes are static: the
/// experiment library is code, reviewed like code, not a config file
/// that can silently drift from what a paper table claims.
#[derive(Debug, Clone, Copy)]
pub struct Experiment {
    /// The ID the CLI addresses this experiment by.
    pub id: &'static str,
    /// One-line description for `campaign --list`.
    pub description: &'static str,
    /// Scenario axis (library workload names).
    pub scenarios: &'static [&'static str],
    /// Network-size axis.
    pub ns: &'static [usize],
    /// Strategy axis.
    pub strategies: &'static [&'static str],
    /// Topology axis (CLI topology names). A single `"complete"` entry
    /// reproduces the historical labels byte for byte.
    pub topologies: &'static [&'static str],
    /// Cost-model axis paired positionally 1:1 with `topologies` — each
    /// entry names a `topology × cost` *cell*, not an independent axis,
    /// because the interesting combinations are sparse (complete is only
    /// buildable under uniform at scale; sparse topologies are only
    /// interesting under hops).
    pub costs: &'static [CostModel],
    /// Event-queue axis. More than one entry turns the campaign into a
    /// conformance experiment: the aggregator requires runs differing
    /// only in queue to be byte-identical.
    pub queues: &'static [QueueKind],
    /// Runtime axis; like `queues`, multiple entries assert conformance.
    pub runtimes: &'static [RuntimeKind],
    /// Seed axis (independent trials per cell).
    pub seeds: &'static [u64],
    /// Simulator shard count for every run (0 = single-threaded core).
    /// Output-invariant — sharding never changes bytes — so it is a
    /// scalar, not an axis: it only buys wall-clock at large `ns`.
    pub shards: usize,
    /// Worker threads driving shard rounds (relevant when `shards > 0`).
    pub shard_threads: usize,
}

impl Experiment {
    /// The number of runs the experiment expands to.
    pub fn runs(&self) -> usize {
        self.scenarios.len()
            * self.ns.len()
            * self.strategies.len()
            * self.topologies.len()
            * self.queues.len()
            * self.runtimes.len()
            * self.seeds.len()
    }

    /// Expands the cross-product in the canonical order.
    ///
    /// # Panics
    ///
    /// Panics if `topologies` and `costs` differ in length (they are
    /// paired cells, not independent axes).
    pub fn expand(&self) -> Vec<RunConfig> {
        assert_eq!(
            self.topologies.len(),
            self.costs.len(),
            "{}: topologies and costs pair 1:1",
            self.id
        );
        let mut out = Vec::with_capacity(self.runs());
        for &scenario in self.scenarios {
            for &n in self.ns {
                for &strategy in self.strategies {
                    for (&topology, &cost) in self.topologies.iter().zip(self.costs) {
                        for &queue in self.queues {
                            for &runtime in self.runtimes {
                                for &seed in self.seeds {
                                    let mut cfg = RunConfig::new(scenario, n, seed);
                                    cfg.strategy = strategy.to_string();
                                    cfg.topology = topology.to_string();
                                    cfg.cost = cost;
                                    cfg.queue = queue;
                                    cfg.runtime = runtime;
                                    cfg.shards = self.shards;
                                    cfg.shard_threads = self.shard_threads;
                                    out.push(cfg);
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// The default topology cell: the paper's complete network under the
/// uniform cost model — what every pre-existing experiment ran.
const DEFAULT_TOPO: &[&str] = &["complete"];
const DEFAULT_COST: &[CostModel] = &[CostModel::Uniform];

/// The experiment library.
pub const EXPERIMENTS: &[Experiment] = &[
    Experiment {
        id: "core-matrix",
        description: "open-loop core: 2 scenarios x {64,256} x {checkerboard,hash} x 2 seeds (16 runs)",
        scenarios: &["steady-state", "flash-crowd"],
        ns: &[64, 256],
        strategies: &["checkerboard", "hash"],
        topologies: DEFAULT_TOPO,
        costs: DEFAULT_COST,
        queues: &[QueueKind::Calendar],
        runtimes: &[RuntimeKind::Sim],
        seeds: &[7, 11],
        shards: 0,
        shard_threads: 1,
    },
    Experiment {
        id: "ci-smoke",
        description: "small CI gate: 2 scenarios x {64,128} x checkerboard x 2 seeds (8 runs)",
        scenarios: &["steady-state", "flash-crowd"],
        ns: &[64, 128],
        strategies: &["checkerboard"],
        topologies: DEFAULT_TOPO,
        costs: DEFAULT_COST,
        queues: &[QueueKind::Calendar],
        runtimes: &[RuntimeKind::Sim],
        seeds: &[7, 11],
        shards: 0,
        shard_threads: 1,
    },
    Experiment {
        id: "conformance",
        description: "byte-identity gate: steady-state x 64, queues must agree per runtime (4 runs, 2 unique)",
        scenarios: &["steady-state"],
        ns: &[64],
        strategies: &["checkerboard"],
        topologies: DEFAULT_TOPO,
        costs: DEFAULT_COST,
        queues: &[QueueKind::Calendar, QueueKind::BTree],
        runtimes: &[RuntimeKind::Sim, RuntimeKind::Live],
        seeds: &[7],
        shards: 0,
        shard_threads: 1,
    },
    Experiment {
        id: "strategy-scaling",
        description: "scaling fit: steady-state x {64,256,1024} x {checkerboard,hash,broadcast} (9 runs)",
        scenarios: &["steady-state"],
        ns: &[64, 256, 1024],
        strategies: &["checkerboard", "hash", "broadcast"],
        topologies: DEFAULT_TOPO,
        costs: DEFAULT_COST,
        queues: &[QueueKind::Calendar],
        runtimes: &[RuntimeKind::Sim],
        seeds: &[7],
        shards: 0,
        shard_threads: 1,
    },
    Experiment {
        id: "topology-matrix",
        description: "topology x cost sweep: 2 scenarios x {64,256} x {checkerboard,hash} x \
                      {complete/uniform,grid/hops,torus/hops,ring/hops,hypercube/hops} (40 runs)",
        scenarios: &["steady-state", "rolling-churn"],
        ns: &[64, 256],
        strategies: &["checkerboard", "hash"],
        topologies: &["complete", "grid", "torus", "ring", "hypercube"],
        costs: &[
            CostModel::Uniform,
            CostModel::Hops,
            CostModel::Hops,
            CostModel::Hops,
            CostModel::Hops,
        ],
        queues: &[QueueKind::Calendar],
        runtimes: &[RuntimeKind::Sim],
        seeds: &[7],
        shards: 0,
        shard_threads: 1,
    },
    Experiment {
        id: "topology-scale",
        description: "O(1)-memory routing at scale: steady-state x {65536,1048576} x \
                      {grid,torus,hypercube,ring}/hops, sharded core (8 runs)",
        scenarios: &["steady-state"],
        ns: &[65_536, 1_048_576],
        strategies: &["checkerboard"],
        topologies: &["grid", "torus", "hypercube", "ring"],
        costs: &[
            CostModel::Hops,
            CostModel::Hops,
            CostModel::Hops,
            CostModel::Hops,
        ],
        queues: &[QueueKind::Calendar],
        runtimes: &[RuntimeKind::Sim],
        seeds: &[7],
        shards: 8,
        shard_threads: 4,
    },
];

/// Looks an experiment up by ID.
pub fn by_id(id: &str) -> Option<&'static Experiment> {
    EXPERIMENTS.iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_matrix_expands_to_sixteen_unique_labels() {
        let e = by_id("core-matrix").unwrap();
        let runs = e.expand();
        assert_eq!(runs.len(), 16);
        assert_eq!(runs.len(), e.runs());
        let mut labels: Vec<String> = runs.iter().map(|c| c.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 16, "labels must be unique");
    }

    #[test]
    fn expansion_order_is_stable() {
        let e = by_id("ci-smoke").unwrap();
        let first = e.expand();
        let again = e.expand();
        assert_eq!(first, again);
        // scenario is the outermost axis
        assert_eq!(first[0].scenario, "steady-state");
        assert_eq!(first.last().unwrap().scenario, "flash-crowd");
        // seed is the innermost axis
        assert_eq!(first[0].seed, 7);
        assert_eq!(first[1].seed, 11);
    }

    #[test]
    fn every_library_experiment_is_well_formed() {
        for e in EXPERIMENTS {
            assert!(e.runs() > 0, "{}: empty cross-product", e.id);
            assert_eq!(e.expand().len(), e.runs(), "{}", e.id);
            assert!(by_id(e.id).is_some());
        }
        assert!(by_id("no-such-experiment").is_none());
    }

    #[test]
    fn topology_matrix_sweeps_paired_cells_with_unique_labels() {
        let e = by_id("topology-matrix").unwrap();
        let runs = e.expand();
        assert_eq!(runs.len(), 40);
        // complete rides uniform; every sparse topology rides hops
        for cfg in &runs {
            match cfg.topology.as_str() {
                "complete" => assert_eq!(cfg.cost, mm_sim::CostModel::Uniform),
                _ => assert_eq!(cfg.cost, mm_sim::CostModel::Hops),
            }
        }
        // the non-default cells extend the label, so file stems stay
        // collision-free within the sweep
        let mut labels: Vec<String> = runs.iter().map(|c| c.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 40, "labels must be unique");
        assert!(runs.iter().any(|c| c.label().contains("-grid-hops-")));
        assert!(runs.iter().any(|c| c.label().contains("-torus-hops-")));
    }

    #[test]
    fn topology_scale_runs_sharded_with_analytic_memory_footprint() {
        let e = by_id("topology-scale").unwrap();
        let runs = e.expand();
        assert_eq!(runs.len(), 8);
        for cfg in &runs {
            assert_eq!(cfg.cost, mm_sim::CostModel::Hops);
            assert_eq!(cfg.shards, 8, "scale cells run the sharded core");
            assert_eq!(cfg.shard_threads, 4);
            // the default Auto router resolves these analytically: the
            // million-node cells would be unbuildable through the table
            assert_eq!(cfg.router, mm_sim::RouterKind::Auto);
            // sharding and the router are output-invariant: labels must
            // not mention them, so files stay comparable to single-core
            // table-backed runs of the same cell
            assert!(!cfg.label().contains("shard"));
        }
        assert!(runs.iter().any(|c| c.n == 1_048_576));
    }

    #[test]
    fn default_topology_cell_keeps_historical_labels() {
        let e = by_id("core-matrix").unwrap();
        let labels: Vec<String> = e.expand().iter().map(|c| c.label()).collect();
        assert!(labels.contains(&"steady-state-n64-checkerboard-calendar-sim-s7".to_string()));
    }
}
