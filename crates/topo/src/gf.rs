//! Arithmetic in the prime field `GF(p)`.
//!
//! Backing for the projective-plane generator ([`crate::gen::projective`]):
//! `PG(2,k)` is built from homogeneous coordinates over `GF(k)`, which this
//! module provides for prime `k`. The paper's §3.4 only requires that the
//! plane exist for the orders used in experiments; prime orders cover a
//! dense set (2, 3, 5, 7, 11, ..., 31, ...) which is plenty for the sweeps.

use crate::graph::TopoError;

/// Deterministic primality check for `u64` (trial division; inputs here are
/// small plane orders, so simplicity beats Miller–Rabin).
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    if n.is_multiple_of(2) {
        return n == 2;
    }
    let mut d = 3u64;
    while d.saturating_mul(d) <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 2;
    }
    true
}

/// The prime field `GF(p)`, holding the modulus.
///
/// Elements are represented as `u64` values in `0..p`. All operations
/// reduce modulo `p`.
///
/// # Example
///
/// ```
/// use mm_topo::gf::Gf;
/// let f = Gf::new(7).unwrap();
/// assert_eq!(f.mul(3, 5), 1);       // 15 mod 7
/// assert_eq!(f.inv(3).unwrap(), 5); // 3*5 = 1 (mod 7)
/// assert_eq!(f.add(6, 6), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gf {
    p: u64,
}

impl Gf {
    /// Creates the field of prime order `p`.
    ///
    /// # Errors
    ///
    /// Returns [`TopoError::InvalidParameter`] if `p` is not prime.
    pub fn new(p: u64) -> Result<Self, TopoError> {
        if is_prime(p) {
            Ok(Gf { p })
        } else {
            Err(TopoError::InvalidParameter {
                reason: format!("GF({p}): order must be prime"),
            })
        }
    }

    /// The field order.
    pub fn order(self) -> u64 {
        self.p
    }

    /// Reduces an arbitrary value into the field.
    pub fn reduce(self, a: u64) -> u64 {
        a % self.p
    }

    /// Addition in `GF(p)`.
    pub fn add(self, a: u64, b: u64) -> u64 {
        (a % self.p + b % self.p) % self.p
    }

    /// Subtraction in `GF(p)`.
    pub fn sub(self, a: u64, b: u64) -> u64 {
        (a % self.p + self.p - b % self.p) % self.p
    }

    /// Negation in `GF(p)`.
    pub fn neg(self, a: u64) -> u64 {
        (self.p - a % self.p) % self.p
    }

    /// Multiplication in `GF(p)` (via `u128` to avoid overflow).
    pub fn mul(self, a: u64, b: u64) -> u64 {
        ((a as u128 % self.p as u128) * (b as u128 % self.p as u128) % self.p as u128) as u64
    }

    /// Exponentiation by squaring.
    pub fn pow(self, mut base: u64, mut exp: u64) -> u64 {
        base %= self.p;
        let mut acc = 1u64;
        while exp > 0 {
            if exp & 1 == 1 {
                acc = self.mul(acc, base);
            }
            base = self.mul(base, base);
            exp >>= 1;
        }
        acc
    }

    /// Multiplicative inverse by Fermat's little theorem.
    ///
    /// Returns `None` for `a ≡ 0`.
    pub fn inv(self, a: u64) -> Option<u64> {
        let a = a % self.p;
        (a != 0).then(|| self.pow(a, self.p - 2))
    }

    /// Division `a / b`.
    ///
    /// Returns `None` if `b ≡ 0`.
    pub fn div(self, a: u64, b: u64) -> Option<u64> {
        self.inv(b).map(|bi| self.mul(a, bi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primality() {
        let primes = [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 101];
        for p in primes {
            assert!(is_prime(p), "{p} is prime");
        }
        for c in [0u64, 1, 4, 6, 9, 15, 21, 25, 49, 100] {
            assert!(!is_prime(c), "{c} is composite");
        }
    }

    #[test]
    fn non_prime_order_rejected() {
        assert!(Gf::new(6).is_err());
        assert!(Gf::new(1).is_err());
        assert!(Gf::new(7).is_ok());
    }

    #[test]
    fn field_axioms_small() {
        for p in [2u64, 3, 5, 7, 11] {
            let f = Gf::new(p).unwrap();
            for a in 0..p {
                // additive inverse
                assert_eq!(f.add(a, f.neg(a)), 0);
                if a != 0 {
                    // multiplicative inverse
                    let ai = f.inv(a).unwrap();
                    assert_eq!(f.mul(a, ai), 1);
                }
                for b in 0..p {
                    assert_eq!(f.add(a, b), f.add(b, a));
                    assert_eq!(f.mul(a, b), f.mul(b, a));
                    assert_eq!(f.sub(f.add(a, b), b), a);
                    for c in 0..p {
                        // distributivity
                        assert_eq!(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
                    }
                }
            }
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let f = Gf::new(13).unwrap();
        let mut acc = 1;
        for e in 0..20u64 {
            assert_eq!(f.pow(6, e), acc);
            acc = f.mul(acc, 6);
        }
    }

    #[test]
    fn inv_of_zero_is_none() {
        let f = Gf::new(5).unwrap();
        assert_eq!(f.inv(0), None);
        assert_eq!(f.div(3, 0), None);
        assert_eq!(f.div(0, 3), Some(0));
    }
}
