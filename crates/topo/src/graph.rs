//! Undirected graph with compact adjacency lists.
//!
//! The paper models a store-and-forward network as an undirected
//! communications graph `G = (U, E)`: nodes are processors, edges are
//! bidirectional non-interfering channels. A *message pass* (hop) is the
//! transmission of a message across one edge. [`Graph`] is the substrate all
//! other crates build on.

use std::fmt;

/// Identifier of a network node (a processor in the paper's model).
///
/// A thin newtype over `u32` so node identity cannot be confused with hop
/// counts, labels, part indices etc. (cf. C-NEWTYPE).
///
/// # Example
///
/// ```
/// use mm_topo::NodeId;
/// let a = NodeId::new(7);
/// assert_eq!(a.index(), 7);
/// assert_eq!(NodeId::from(7u32), a);
/// ```
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
#[serde(transparent)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node identifier from a raw index.
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// Returns the raw index as `usize`, for array indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw index as `u32`.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<usize> for NodeId {
    /// # Panics
    ///
    /// Panics if `v` does not fit in `u32`.
    fn from(v: usize) -> Self {
        NodeId(u32::try_from(v).expect("node index exceeds u32::MAX"))
    }
}

impl From<NodeId> for u32 {
    fn from(v: NodeId) -> Self {
        v.0
    }
}

impl From<NodeId> for usize {
    fn from(v: NodeId) -> Self {
        v.index()
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Errors produced while constructing or manipulating topologies.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopoError {
    /// A node index referenced a node outside `0..node_count`.
    NodeOutOfRange {
        /// The offending index.
        node: u32,
        /// The number of nodes in the graph.
        node_count: usize,
    },
    /// A self-loop `(v, v)` was rejected; the paper's networks are simple.
    SelfLoop {
        /// The node with the attempted self-loop.
        node: u32,
    },
    /// A generator received an invalid parameter (e.g. `PG(2,k)` with
    /// non-prime `k`, or an empty grid side).
    InvalidParameter {
        /// Human-readable description of the violated requirement.
        reason: String,
    },
    /// An operation that requires a connected graph was given a
    /// disconnected one.
    Disconnected,
}

impl fmt::Display for TopoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopoError::NodeOutOfRange { node, node_count } => {
                write!(
                    f,
                    "node index {node} out of range for graph with {node_count} nodes"
                )
            }
            TopoError::SelfLoop { node } => write!(f, "self-loop at node {node} rejected"),
            TopoError::InvalidParameter { reason } => write!(f, "invalid parameter: {reason}"),
            TopoError::Disconnected => write!(f, "operation requires a connected graph"),
        }
    }
}

impl std::error::Error for TopoError {}

/// An undirected simple graph over nodes `0..n`.
///
/// Stored as per-node sorted adjacency lists. Edge insertion is idempotent:
/// inserting an existing edge is a no-op that reports `false`.
///
/// # Example
///
/// ```
/// use mm_topo::{Graph, NodeId};
///
/// let mut g = Graph::new(3);
/// g.add_edge(NodeId::new(0), NodeId::new(1)).unwrap();
/// g.add_edge(NodeId::new(1), NodeId::new(2)).unwrap();
/// assert_eq!(g.edge_count(), 2);
/// assert_eq!(g.degree(NodeId::new(1)), 2);
/// assert!(g.has_edge(NodeId::new(0), NodeId::new(1)));
/// assert!(!g.has_edge(NodeId::new(0), NodeId::new(2)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Graph {
    adj: Vec<Vec<u32>>,
    edge_count: usize,
    name: String,
}

impl Graph {
    /// Creates a graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            edge_count: 0,
            name: String::from("graph"),
        }
    }

    /// Creates a named graph with `n` isolated nodes. The name is reported
    /// by experiment harnesses and `Display`.
    pub fn with_name(n: usize, name: impl Into<String>) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            edge_count: 0,
            name: name.into(),
        }
    }

    /// Builds a graph from an edge list.
    ///
    /// # Errors
    ///
    /// Returns [`TopoError::NodeOutOfRange`] or [`TopoError::SelfLoop`] on
    /// the first offending pair.
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self, TopoError>
    where
        I: IntoIterator<Item = (u32, u32)>,
    {
        let mut g = Graph::new(n);
        for (a, b) in edges {
            g.add_edge(NodeId::new(a), NodeId::new(b))?;
        }
        Ok(g)
    }

    /// Returns the topology name (e.g. `"hypercube(6)"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Replaces the topology name.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of nodes `n = #U`.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges `#E`.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Returns `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Iterates over all node identifiers `0..n`.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.adj.len() as u32).map(NodeId::new)
    }

    /// Iterates over all edges as `(a, b)` with `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.adj.iter().enumerate().flat_map(|(a, nbrs)| {
            nbrs.iter()
                .filter(move |&&b| (a as u32) < b)
                .map(move |&b| (NodeId::new(a as u32), NodeId::new(b)))
        })
    }

    /// Validates that `v` indexes a node of this graph.
    ///
    /// # Errors
    ///
    /// Returns [`TopoError::NodeOutOfRange`] otherwise.
    pub fn check_node(&self, v: NodeId) -> Result<(), TopoError> {
        if v.index() < self.adj.len() {
            Ok(())
        } else {
            Err(TopoError::NodeOutOfRange {
                node: v.raw(),
                node_count: self.adj.len(),
            })
        }
    }

    /// Inserts the undirected edge `{a, b}`.
    ///
    /// Returns `true` if the edge was newly inserted, `false` if it already
    /// existed (insertion is idempotent).
    ///
    /// # Errors
    ///
    /// Returns [`TopoError::SelfLoop`] if `a == b` and
    /// [`TopoError::NodeOutOfRange`] if either endpoint is invalid.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> Result<bool, TopoError> {
        self.check_node(a)?;
        self.check_node(b)?;
        if a == b {
            return Err(TopoError::SelfLoop { node: a.raw() });
        }
        match self.adj[a.index()].binary_search(&b.raw()) {
            Ok(_) => Ok(false),
            Err(pos_a) => {
                self.adj[a.index()].insert(pos_a, b.raw());
                let pos_b = self.adj[b.index()]
                    .binary_search(&a.raw())
                    .expect_err("adjacency lists out of sync");
                self.adj[b.index()].insert(pos_b, a.raw());
                self.edge_count += 1;
                Ok(true)
            }
        }
    }

    /// Removes the undirected edge `{a, b}` if present; reports whether an
    /// edge was removed.
    ///
    /// # Errors
    ///
    /// Returns [`TopoError::NodeOutOfRange`] if either endpoint is invalid.
    pub fn remove_edge(&mut self, a: NodeId, b: NodeId) -> Result<bool, TopoError> {
        self.check_node(a)?;
        self.check_node(b)?;
        match self.adj[a.index()].binary_search(&b.raw()) {
            Err(_) => Ok(false),
            Ok(pos_a) => {
                self.adj[a.index()].remove(pos_a);
                let pos_b = self.adj[b.index()]
                    .binary_search(&a.raw())
                    .expect("adjacency lists out of sync");
                self.adj[b.index()].remove(pos_b);
                self.edge_count -= 1;
                Ok(true)
            }
        }
    }

    /// Returns `true` if the undirected edge `{a, b}` exists.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.adj
            .get(a.index())
            .is_some_and(|nbrs| nbrs.binary_search(&b.raw()).is_ok())
    }

    /// The sorted neighbor list of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: NodeId) -> &[u32] {
        &self.adj[v.index()]
    }

    /// Iterates over the neighbors of `v` as [`NodeId`]s.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbor_ids(&self, v: NodeId) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        self.adj[v.index()].iter().map(|&u| NodeId::new(u))
    }

    /// Degree of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v.index()].len()
    }

    /// Returns the subgraph induced by `keep` (nodes renumbered `0..k` in
    /// the order given), together with the mapping from new to old ids.
    ///
    /// # Errors
    ///
    /// Returns [`TopoError::NodeOutOfRange`] if any listed node is invalid.
    pub fn induced_subgraph(&self, keep: &[NodeId]) -> Result<(Graph, Vec<NodeId>), TopoError> {
        for &v in keep {
            self.check_node(v)?;
        }
        let mut old_to_new = vec![u32::MAX; self.adj.len()];
        for (new, &old) in keep.iter().enumerate() {
            old_to_new[old.index()] = new as u32;
        }
        let mut g = Graph::with_name(keep.len(), format!("{}[induced]", self.name));
        for (new_a, &old_a) in keep.iter().enumerate() {
            for &old_b in &self.adj[old_a.index()] {
                let new_b = old_to_new[old_b as usize];
                if new_b != u32::MAX && (new_a as u32) < new_b {
                    g.add_edge(NodeId::new(new_a as u32), NodeId::new(new_b))
                        .expect("induced edge endpoints are valid by construction");
                }
            }
        }
        Ok((g, keep.to_vec()))
    }

    /// Removes a node's incident edges (the node stays, isolated), modelling
    /// a processor crash in the fault-injection machinery.
    ///
    /// Returns the number of edges removed.
    ///
    /// # Errors
    ///
    /// Returns [`TopoError::NodeOutOfRange`] if `v` is invalid.
    pub fn isolate_node(&mut self, v: NodeId) -> Result<usize, TopoError> {
        self.check_node(v)?;
        let nbrs = std::mem::take(&mut self.adj[v.index()]);
        for &u in &nbrs {
            let pos = self.adj[u as usize]
                .binary_search(&v.raw())
                .expect("adjacency lists out of sync");
            self.adj[u as usize].remove(pos);
        }
        self.edge_count -= nbrs.len();
        Ok(nbrs.len())
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (n={}, m={})",
            self.name,
            self.node_count(),
            self.edge_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(0);
        assert!(g.is_empty());
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.nodes().count(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn add_and_query_edges() {
        let mut g = Graph::new(4);
        assert!(g.add_edge(n(0), n(1)).unwrap());
        assert!(g.add_edge(n(1), n(2)).unwrap());
        assert!(!g.add_edge(n(1), n(0)).unwrap(), "idempotent re-insert");
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(n(0), n(1)));
        assert!(g.has_edge(n(1), n(0)));
        assert!(!g.has_edge(n(0), n(3)));
        assert_eq!(g.neighbors(n(1)), &[0, 2]);
        assert_eq!(g.degree(n(1)), 2);
        assert_eq!(g.degree(n(3)), 0);
    }

    #[test]
    fn rejects_self_loop() {
        let mut g = Graph::new(2);
        assert_eq!(g.add_edge(n(1), n(1)), Err(TopoError::SelfLoop { node: 1 }));
    }

    #[test]
    fn rejects_out_of_range() {
        let mut g = Graph::new(2);
        let err = g.add_edge(n(0), n(5)).unwrap_err();
        assert_eq!(
            err,
            TopoError::NodeOutOfRange {
                node: 5,
                node_count: 2
            }
        );
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn remove_edge_roundtrip() {
        let mut g = Graph::new(3);
        g.add_edge(n(0), n(1)).unwrap();
        g.add_edge(n(1), n(2)).unwrap();
        assert!(g.remove_edge(n(0), n(1)).unwrap());
        assert!(!g.remove_edge(n(0), n(1)).unwrap());
        assert_eq!(g.edge_count(), 1);
        assert!(!g.has_edge(n(0), n(1)));
        assert!(g.has_edge(n(1), n(2)));
    }

    #[test]
    fn edges_iterator_lists_each_edge_once() {
        let mut g = Graph::new(4);
        g.add_edge(n(0), n(1)).unwrap();
        g.add_edge(n(2), n(1)).unwrap();
        g.add_edge(n(3), n(0)).unwrap();
        let mut edges: Vec<_> = g.edges().map(|(a, b)| (a.raw(), b.raw())).collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (0, 3), (1, 2)]);
    }

    #[test]
    fn from_edges_builder() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert!(Graph::from_edges(2, [(0, 3)]).is_err());
    }

    #[test]
    fn induced_subgraph_renumbers() {
        let mut g = Graph::new(5);
        for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)] {
            g.add_edge(n(a), n(b)).unwrap();
        }
        let (sub, map) = g.induced_subgraph(&[n(1), n(2), n(3)]).unwrap();
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.edge_count(), 2); // 1-2 and 2-3 survive
        assert!(sub.has_edge(n(0), n(1)));
        assert!(sub.has_edge(n(1), n(2)));
        assert!(!sub.has_edge(n(0), n(2)));
        assert_eq!(map, vec![n(1), n(2), n(3)]);
    }

    #[test]
    fn isolate_node_models_crash() {
        let mut g = Graph::new(4);
        for (a, b) in [(0, 1), (0, 2), (0, 3), (1, 2)] {
            g.add_edge(n(a), n(b)).unwrap();
        }
        let removed = g.isolate_node(n(0)).unwrap();
        assert_eq!(removed, 3);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(n(0)), 0);
        assert!(g.has_edge(n(1), n(2)));
    }

    #[test]
    fn node_id_conversions() {
        let v = NodeId::new(9);
        assert_eq!(u32::from(v), 9);
        assert_eq!(usize::from(v), 9);
        assert_eq!(NodeId::from(9usize), v);
        assert_eq!(v.to_string(), "9");
    }

    #[test]
    fn display_mentions_name_and_sizes() {
        let mut g = Graph::with_name(2, "test-net");
        g.add_edge(n(0), n(1)).unwrap();
        assert_eq!(g.to_string(), "test-net (n=2, m=1)");
    }
}
