//! Trees: balanced `a`-ary trees and level-degree-profile trees.
//!
//! Paper §3.6 analyses organically grown networks that "resemble an
//! undirected tree with a core in which we can imagine the root". With
//! level-dependent degree `d(i)` (root at level `l`, leaves at level 0) a
//! factorial relation `d(l)·d(l−1)⋯d(1) = n` holds. Two profiles are
//! studied:
//!
//! * `d(i) = c·i^{1+ε}` ⟹ depth `l ≈ log n / ((1+ε)·log log n)`
//! * `d(i) = c·2^{εi}` ⟹ depth `l ≈ √(2·log n / ε)` (up to lower-order
//!   terms)
//!
//! The match-making strategy on such trees posts and queries along the path
//! to the root: `m(n) = O(l)`.

use crate::graph::{Graph, NodeId, TopoError};

/// Structural description of a generated tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeInfo {
    /// The tree itself (node 0 is the root).
    pub graph: Graph,
    /// `parent[v]`: tree parent, `u32::MAX` for the root.
    pub parent: Vec<u32>,
    /// `depth[v]`: distance from the root.
    pub depth: Vec<u32>,
    /// Number of levels (root level = 0, max depth = `levels − 1`).
    pub levels: usize,
}

impl TreeInfo {
    /// The path from `v` up to and including the root.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn path_to_root(&self, v: NodeId) -> Vec<NodeId> {
        let mut path = vec![v];
        let mut cur = v.raw();
        while self.parent[cur as usize] != u32::MAX {
            cur = self.parent[cur as usize];
            path.push(NodeId::new(cur));
        }
        path
    }

    /// Number of nodes in the subtree rooted at each node.
    pub fn subtree_sizes(&self) -> Vec<usize> {
        let n = self.graph.node_count();
        let mut size = vec![1usize; n];
        // children have larger ids than parents in our generators, so a
        // reverse sweep accumulates sizes bottom-up
        for v in (1..n).rev() {
            let p = self.parent[v];
            if p != u32::MAX {
                size[p as usize] += size[v];
            }
        }
        size
    }
}

/// Balanced `a`-ary tree with the given number of `levels` (a single root
/// for `levels = 1`). Node ids are assigned in BFS order, root = 0.
///
/// # Errors
///
/// Returns [`TopoError::InvalidParameter`] if `arity == 0`, `levels == 0`,
/// or the tree would exceed `2^31` nodes.
pub fn balanced_tree(arity: usize, levels: usize) -> Result<TreeInfo, TopoError> {
    if arity == 0 || levels == 0 {
        return Err(TopoError::InvalidParameter {
            reason: "balanced tree needs arity >= 1 and levels >= 1".into(),
        });
    }
    let mut level_sizes = Vec::with_capacity(levels);
    let mut sz = 1usize;
    for _ in 0..levels {
        level_sizes.push(sz);
        sz = sz
            .checked_mul(arity)
            .ok_or_else(|| TopoError::InvalidParameter {
                reason: "balanced tree too large".into(),
            })?;
    }
    profile_tree(
        &level_sizes
            .iter()
            .skip(1)
            .map(|_| arity)
            .collect::<Vec<_>>(),
    )
    .map(|mut t| {
        t.graph
            .set_name(format!("balanced_tree(a={arity},l={levels})"));
        t
    })
}

/// Tree from a *branching profile*: `branching[i]` children for every node
/// at depth `i` (so `branching.len()` is the number of edge-levels; the
/// tree has `branching.len() + 1` node-levels). An empty profile yields the
/// single-root tree.
///
/// This directly realizes the paper's `d(l)·d(l−1)⋯d(1) = n` factorial
/// relation with `d` read off per level.
///
/// # Errors
///
/// Returns [`TopoError::InvalidParameter`] if any branching factor is zero
/// or the tree exceeds `2^31` nodes.
pub fn profile_tree(branching: &[usize]) -> Result<TreeInfo, TopoError> {
    if branching.contains(&0) {
        return Err(TopoError::InvalidParameter {
            reason: "branching factors must be positive".into(),
        });
    }
    // count nodes
    let mut n: usize = 1;
    let mut level = 1usize;
    for &b in branching {
        level = level
            .checked_mul(b)
            .ok_or_else(|| TopoError::InvalidParameter {
                reason: "profile tree too large".into(),
            })?;
        n = n
            .checked_add(level)
            .ok_or_else(|| TopoError::InvalidParameter {
                reason: "profile tree too large".into(),
            })?;
    }
    if n > (1 << 31) {
        return Err(TopoError::InvalidParameter {
            reason: "profile tree too large".into(),
        });
    }

    let mut g = Graph::with_name(
        n,
        format!(
            "profile_tree({})",
            branching
                .iter()
                .map(|b| b.to_string())
                .collect::<Vec<_>>()
                .join(",")
        ),
    );
    let mut parent = vec![u32::MAX; n];
    let mut depth = vec![0u32; n];
    let mut frontier = vec![0u32]; // current level's nodes
    let mut next_id = 1u32;
    for (lvl, &b) in branching.iter().enumerate() {
        let mut next_frontier = Vec::with_capacity(frontier.len() * b);
        for &p in &frontier {
            for _ in 0..b {
                let c = next_id;
                next_id += 1;
                parent[c as usize] = p;
                depth[c as usize] = (lvl + 1) as u32;
                g.add_edge(NodeId::new(p), NodeId::new(c))
                    .expect("tree edge");
                next_frontier.push(c);
            }
        }
        frontier = next_frontier;
    }
    Ok(TreeInfo {
        graph: g,
        parent,
        depth,
        levels: branching.len() + 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::is_tree;

    #[test]
    fn balanced_binary_tree() {
        let t = balanced_tree(2, 4).unwrap(); // 1+2+4+8 = 15
        assert_eq!(t.graph.node_count(), 15);
        assert!(is_tree(&t.graph));
        assert_eq!(t.levels, 4);
        assert_eq!(t.depth[14], 3);
        assert_eq!(t.parent[0], u32::MAX);
    }

    #[test]
    fn single_root() {
        let t = balanced_tree(5, 1).unwrap();
        assert_eq!(t.graph.node_count(), 1);
        assert_eq!(t.levels, 1);
        let p = profile_tree(&[]).unwrap();
        assert_eq!(p.graph.node_count(), 1);
    }

    #[test]
    fn profile_tree_structure() {
        // root with 3 children, each with 2 children: 1 + 3 + 6 = 10
        let t = profile_tree(&[3, 2]).unwrap();
        assert_eq!(t.graph.node_count(), 10);
        assert!(is_tree(&t.graph));
        assert_eq!(t.graph.degree(NodeId::new(0)), 3);
        // level-1 nodes: degree 3 (parent + 2 children)
        assert_eq!(t.graph.degree(NodeId::new(1)), 3);
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(balanced_tree(0, 3).is_err());
        assert!(balanced_tree(2, 0).is_err());
        assert!(profile_tree(&[2, 0, 2]).is_err());
    }

    #[test]
    fn path_to_root_lengths() {
        let t = balanced_tree(2, 5).unwrap();
        for v in t.graph.nodes() {
            let path = t.path_to_root(v);
            assert_eq!(path.len() as u32, t.depth[v.index()] + 1);
            assert_eq!(*path.last().unwrap(), NodeId::new(0));
        }
    }

    #[test]
    fn subtree_sizes_sum() {
        let t = balanced_tree(3, 3).unwrap(); // 1+3+9 = 13
        let sizes = t.subtree_sizes();
        assert_eq!(sizes[0], 13);
        assert_eq!(sizes[1], 4); // level-1 node: itself + 3 leaves
        assert_eq!(sizes[12], 1);
    }

    #[test]
    fn factorial_relation_holds() {
        // paper: d(l)*d(l-1)*...*d(1) = number of leaves
        let branching = [4usize, 3, 2];
        let t = profile_tree(&branching).unwrap();
        let leaves = t
            .graph
            .nodes()
            .filter(|&v| t.depth[v.index()] as usize == t.levels - 1)
            .count();
        assert_eq!(leaves, 4 * 3 * 2);
    }
}
