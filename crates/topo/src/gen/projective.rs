//! Projective planes `PG(2,k)` over prime fields.
//!
//! Paper §3.4: *"The projective plane `PG(2,k)` has `n = k² + k + 1` points
//! and equally many lines. Each line consists of `k+1` points and `k+1`
//! lines pass through each point. Each pair of lines has exactly one point
//! in common. A server posts its (port, address) to all nodes on an
//! arbitrary line incident on its host node. A client queries all nodes on
//! an arbitrary line incident on its own host node. The common node of the
//! two lines is the rendez-vous node."* — `m(n) = 2(k+1) ≈ 2√n`.
//!
//! Construction: points and lines are the 1- and 2-dimensional subspaces of
//! `GF(k)³`, represented by normalized homogeneous coordinates; point `p`
//! lies on line `l` iff `p · l = 0 (mod k)`. Prime `k` only (documented in
//! DESIGN.md; prime orders suffice for the paper's sweeps).

use crate::gf::Gf;
use crate::graph::{Graph, NodeId, TopoError};

/// A projective plane of prime order `k`, with incidence both ways.
///
/// Points and lines are indexed `0..n` where `n = k² + k + 1`.
///
/// # Example
///
/// ```
/// use mm_topo::ProjectivePlane;
/// let pg = ProjectivePlane::new(3).unwrap();
/// assert_eq!(pg.point_count(), 13);
/// assert_eq!(pg.line(0).len(), 4); // k + 1 points per line
/// // any two distinct lines meet in exactly one point
/// let common = pg.line_intersection(0, 5);
/// assert_eq!(common.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ProjectivePlane {
    k: u64,
    n: usize,
    /// Normalized homogeneous coordinates of each point.
    points: Vec<[u64; 3]>,
    /// `lines[l]` = sorted point ids on line `l`.
    lines: Vec<Vec<u32>>,
    /// `through[p]` = sorted line ids through point `p`.
    through: Vec<Vec<u32>>,
}

impl ProjectivePlane {
    /// Constructs `PG(2,k)` for prime `k`.
    ///
    /// # Errors
    ///
    /// Returns [`TopoError::InvalidParameter`] if `k` is not prime.
    pub fn new(k: u64) -> Result<Self, TopoError> {
        let f = Gf::new(k)?;
        let coords = Self::homogeneous_reps(k);
        let n = coords.len();
        debug_assert_eq!(n as u64, k * k + k + 1);

        // Incidence: point p on line l iff dot(p, l) == 0 (mod k). Lines use
        // the same normalized representatives (self-duality of PG(2,k)).
        let mut lines = vec![Vec::new(); n];
        let mut through = vec![Vec::new(); n];
        for (li, l) in coords.iter().enumerate() {
            for (pi, p) in coords.iter().enumerate() {
                let dot = f.add(
                    f.add(f.mul(p[0], l[0]), f.mul(p[1], l[1])),
                    f.mul(p[2], l[2]),
                );
                if dot == 0 {
                    lines[li].push(pi as u32);
                    through[pi].push(li as u32);
                }
            }
        }
        Ok(ProjectivePlane {
            k,
            n,
            points: coords,
            lines,
            through,
        })
    }

    /// Canonical representatives of the projective points: first nonzero
    /// coordinate equals 1 — `(1,a,b)`, `(0,1,c)`, `(0,0,1)`.
    fn homogeneous_reps(k: u64) -> Vec<[u64; 3]> {
        let mut v = Vec::with_capacity((k * k + k + 1) as usize);
        for a in 0..k {
            for b in 0..k {
                v.push([1, a, b]);
            }
        }
        for c in 0..k {
            v.push([0, 1, c]);
        }
        v.push([0, 0, 1]);
        v
    }

    /// The plane order `k`.
    pub fn order(&self) -> u64 {
        self.k
    }

    /// Number of points (= number of lines) `n = k² + k + 1`.
    pub fn point_count(&self) -> usize {
        self.n
    }

    /// Homogeneous coordinates of point `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p >= point_count()`.
    pub fn point_coords(&self, p: usize) -> [u64; 3] {
        self.points[p]
    }

    /// The sorted points on line `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l >= point_count()`.
    pub fn line(&self, l: usize) -> &[u32] {
        &self.lines[l]
    }

    /// The sorted lines through point `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p >= point_count()`.
    pub fn lines_through(&self, p: usize) -> &[u32] {
        &self.through[p]
    }

    /// Points common to lines `a` and `b` (exactly one for `a != b`).
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn line_intersection(&self, a: usize, b: usize) -> Vec<u32> {
        let (la, lb) = (&self.lines[a], &self.lines[b]);
        la.iter()
            .copied()
            .filter(|p| lb.binary_search(p).is_ok())
            .collect()
    }

    /// A deterministic "home line" for a node hosting a server or client:
    /// the first line through the point. The paper allows *any* incident
    /// line; a deterministic pick keeps simulations reproducible, and
    /// [`ProjectivePlane::lines_through`] exposes the alternatives for the
    /// fault-tolerance experiments.
    ///
    /// # Panics
    ///
    /// Panics if `p >= point_count()`.
    pub fn home_line(&self, p: usize) -> usize {
        self.through[p][0] as usize
    }

    /// Builds a communications graph on the points: consecutive points of
    /// every line are joined, so posting along a line is a connected sweep
    /// of `k` message passes.
    pub fn incidence_graph(&self) -> Graph {
        let mut g = Graph::with_name(self.n, format!("pg(2,{})", self.k));
        for line in &self.lines {
            for w in line.windows(2) {
                let _ = g.add_edge(NodeId::new(w[0]), NodeId::new(w[1]));
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::is_connected;

    #[test]
    fn axioms_for_small_orders() {
        for k in [2u64, 3, 5, 7] {
            let pg = ProjectivePlane::new(k).unwrap();
            let n = (k * k + k + 1) as usize;
            assert_eq!(pg.point_count(), n);
            // each line has k+1 points; k+1 lines through each point
            for l in 0..n {
                assert_eq!(pg.line(l).len() as u64, k + 1, "k={k} line {l}");
            }
            for p in 0..n {
                assert_eq!(pg.lines_through(p).len() as u64, k + 1, "k={k} point {p}");
            }
            // every pair of lines meets in exactly one point
            for a in 0..n {
                for b in (a + 1)..n {
                    assert_eq!(pg.line_intersection(a, b).len(), 1, "k={k} lines {a},{b}");
                }
            }
        }
    }

    #[test]
    fn fano_plane() {
        let pg = ProjectivePlane::new(2).unwrap();
        assert_eq!(pg.point_count(), 7);
        assert_eq!(pg.order(), 2);
        // 7 lines of 3 points each: 21 incidences
        let total: usize = (0..7).map(|l| pg.line(l).len()).sum();
        assert_eq!(total, 21);
    }

    #[test]
    fn non_prime_rejected() {
        assert!(ProjectivePlane::new(4).is_err(), "GF(4) not supported");
        assert!(ProjectivePlane::new(6).is_err());
        assert!(ProjectivePlane::new(1).is_err());
    }

    #[test]
    fn home_line_is_incident() {
        let pg = ProjectivePlane::new(5).unwrap();
        for p in 0..pg.point_count() {
            let l = pg.home_line(p);
            assert!(pg.line(l).binary_search(&(p as u32)).is_ok());
        }
    }

    #[test]
    fn incidence_graph_connected() {
        for k in [2u64, 3, 5] {
            let pg = ProjectivePlane::new(k).unwrap();
            let g = pg.incidence_graph();
            assert_eq!(g.node_count(), pg.point_count());
            assert!(is_connected(&g));
        }
    }

    #[test]
    fn duality_point_line_counts_match() {
        let pg = ProjectivePlane::new(11).unwrap();
        let incidences_by_lines: usize = (0..pg.point_count()).map(|l| pg.line(l).len()).sum();
        let incidences_by_points: usize = (0..pg.point_count())
            .map(|p| pg.lines_through(p).len())
            .sum();
        assert_eq!(incidences_by_lines, incidences_by_points);
    }
}
