//! Random connected graphs and random trees, used as "general network"
//! inputs for the decomposition-based locate algorithm (paper §3) and for
//! randomized property tests.

use crate::graph::{Graph, NodeId, TopoError};
use rand::Rng;

/// Uniform-attachment random tree on `n` nodes: node `v` (for `v ≥ 1`)
/// attaches to a uniformly random earlier node.
pub fn random_tree<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Graph {
    let mut g = Graph::with_name(n, format!("random_tree({n})"));
    for v in 1..n {
        let parent = rng.gen_range(0..v);
        g.add_edge(NodeId::from(v), NodeId::from(parent))
            .expect("tree edge");
    }
    g
}

/// Connected random graph with `n` nodes and (about) `m` edges: a random
/// spanning tree plus uniformly random extra edges.
///
/// The result has exactly `max(m, n−1)` edges unless the graph saturates
/// (`m > n(n−1)/2`), in which case it is the complete graph.
///
/// # Errors
///
/// Returns [`TopoError::InvalidParameter`] if `n == 0`.
pub fn random_connected<R: Rng + ?Sized>(
    n: usize,
    m: usize,
    rng: &mut R,
) -> Result<Graph, TopoError> {
    if n == 0 {
        return Err(TopoError::InvalidParameter {
            reason: "random_connected requires n >= 1".into(),
        });
    }
    let mut g = random_tree(n, rng);
    g.set_name(format!("random_connected({n},{m})"));
    let max_edges = n * (n - 1) / 2;
    let want = m.clamp(g.edge_count(), max_edges);
    let mut guard = 0usize;
    while g.edge_count() < want && guard < 100 * max_edges + 100 {
        guard += 1;
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            let _ = g.add_edge(NodeId::from(a), NodeId::from(b));
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::{is_connected, is_tree};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_tree_is_tree() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in [1usize, 2, 17, 100] {
            let g = random_tree(n, &mut rng);
            assert_eq!(g.node_count(), n);
            if n >= 1 {
                assert!(is_tree(&g), "n={n}");
            }
        }
    }

    #[test]
    fn random_connected_edge_counts() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = random_connected(50, 120, &mut rng).unwrap();
        assert_eq!(g.edge_count(), 120);
        assert!(is_connected(&g));

        // m below n-1 clamps to spanning tree
        let g2 = random_connected(50, 0, &mut rng).unwrap();
        assert_eq!(g2.edge_count(), 49);

        // m above max clamps to complete
        let g3 = random_connected(8, 1000, &mut rng).unwrap();
        assert_eq!(g3.edge_count(), 28);
    }

    #[test]
    fn zero_nodes_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(random_connected(0, 5, &mut rng).is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let a = random_connected(40, 80, &mut StdRng::seed_from_u64(9)).unwrap();
        let b = random_connected(40, 80, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(a, b);
    }
}
