//! Hierarchical networks (paper §3.5).
//!
//! *"Assume that a level `i` network connects `n_i` level `i−1` networks
//! through `n_i` gateways, for each `1 < i ≤ k` (or basic nodes, at the
//! lowest level 0 for `i = 1`)."*
//!
//! [`Hierarchy`] is the combinatorial structure: basic nodes live at level
//! 0; a level-`i` group consists of `n_i` level-`(i−1)` subgroups; each
//! subgroup is represented by one *gateway* node inside it (its first basic
//! node). A server posts at `√n_i` gateways per level on its path to the
//! top; a client queries `√n_i` per level; they intersect at the lowest
//! common level — `m(n) = O(Σ_i √n_i)`, and for `n_i = a` with
//! `k = ½·log₂ n` levels, `m(n) = O(log n)`.
//!
//! [`hierarchy_graph`] realizes the hierarchy physically: the gateways of
//! every group form a complete subnetwork at their level.

use crate::graph::{Graph, NodeId, TopoError};

/// A `k`-level hierarchical network over `n = Π n_i` basic nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hierarchy {
    /// `branching[i]` = `n_{i+1}`: how many level-`i` groups make up a
    /// level-`i+1` group (index 0 = lowest level).
    branching: Vec<usize>,
    /// `stride[i]` = number of basic nodes in a level-`i` group
    /// (`stride[0] = 1`).
    stride: Vec<usize>,
    n: usize,
}

impl Hierarchy {
    /// Builds a hierarchy from per-level branching factors, lowest level
    /// first. `branching = [a, b]` means: groups of `a` basic nodes, and
    /// `b` such groups per top-level group; `n = a·b`.
    ///
    /// # Errors
    ///
    /// Returns [`TopoError::InvalidParameter`] if `branching` is empty,
    /// contains a factor `< 2`, or overflows.
    pub fn new(branching: &[usize]) -> Result<Self, TopoError> {
        if branching.is_empty() || branching.iter().any(|&b| b < 2) {
            return Err(TopoError::InvalidParameter {
                reason: "hierarchy needs >=1 level with branching factors >= 2".into(),
            });
        }
        let mut stride = Vec::with_capacity(branching.len() + 1);
        stride.push(1usize);
        for &b in branching {
            let next = stride.last().unwrap().checked_mul(b).ok_or_else(|| {
                TopoError::InvalidParameter {
                    reason: "hierarchy too large".into(),
                }
            })?;
            stride.push(next);
        }
        let n = *stride.last().unwrap();
        Ok(Hierarchy {
            branching: branching.to_vec(),
            stride,
            n,
        })
    }

    /// Uniform hierarchy: `levels` levels of branching `a` (`n = a^levels`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Hierarchy::new`].
    pub fn uniform(a: usize, levels: usize) -> Result<Self, TopoError> {
        Self::new(&vec![a; levels])
    }

    /// Number of basic nodes `n`.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of levels `k`.
    pub fn levels(&self) -> usize {
        self.branching.len()
    }

    /// Branching factor `n_level` (`level` is 1-based, `1..=k`).
    ///
    /// # Panics
    ///
    /// Panics if `level` is 0 or greater than [`Hierarchy::levels`].
    pub fn branching_at(&self, level: usize) -> usize {
        self.branching[level - 1]
    }

    /// Index of the level-`level` group containing basic node `v`
    /// (`level = 0` gives `v` itself; `level = k` gives 0).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or `level > levels()`.
    pub fn group_of(&self, v: NodeId, level: usize) -> usize {
        assert!(v.index() < self.n, "node out of range");
        v.index() / self.stride[level]
    }

    /// Which subgroup (0-based child index) of its level-`level` group the
    /// node `v` belongs to, for `level` in `1..=k`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or `level` is not in `1..=levels()`.
    pub fn child_index(&self, v: NodeId, level: usize) -> usize {
        assert!(v.index() < self.n, "node out of range");
        (v.index() / self.stride[level - 1]) % self.branching[level - 1]
    }

    /// The gateway node representing subgroup `child` of the level-`level`
    /// group `group`: the first basic node of that subgroup.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range `level`, `group` or `child`.
    pub fn gateway(&self, level: usize, group: usize, child: usize) -> NodeId {
        assert!(level >= 1 && level <= self.levels(), "level out of range");
        assert!(child < self.branching[level - 1], "child out of range");
        let base = group * self.stride[level];
        assert!(base < self.n, "group out of range");
        NodeId::from(base + child * self.stride[level - 1])
    }

    /// All gateways of the level-`level` group `group` (one per subgroup).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range `level` or `group`.
    pub fn gateways(&self, level: usize, group: usize) -> Vec<NodeId> {
        (0..self.branching[level - 1])
            .map(|c| self.gateway(level, group, c))
            .collect()
    }

    /// Number of level-`level` groups.
    ///
    /// # Panics
    ///
    /// Panics if `level > levels()`.
    pub fn group_count(&self, level: usize) -> usize {
        self.n / self.stride[level]
    }
}

/// Physical realization: within every group at every level, the group's
/// gateways form a complete subnetwork. Connected by construction.
pub fn hierarchy_graph(h: &Hierarchy) -> Graph {
    let mut g = Graph::with_name(
        h.node_count(),
        format!(
            "hierarchy({})",
            (1..=h.levels())
                .map(|l| h.branching_at(l).to_string())
                .collect::<Vec<_>>()
                .join(",")
        ),
    );
    for level in 1..=h.levels() {
        for group in 0..h.group_count(level) {
            let gws = h.gateways(level, group);
            for i in 0..gws.len() {
                for j in (i + 1)..gws.len() {
                    let _ = g.add_edge(gws[i], gws[j]);
                }
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::is_connected;

    #[test]
    fn uniform_hierarchy_counts() {
        let h = Hierarchy::uniform(4, 3).unwrap();
        assert_eq!(h.node_count(), 64);
        assert_eq!(h.levels(), 3);
        assert_eq!(h.group_count(1), 16);
        assert_eq!(h.group_count(2), 4);
        assert_eq!(h.group_count(3), 1);
    }

    #[test]
    fn mixed_branching() {
        let h = Hierarchy::new(&[3, 5, 2]).unwrap();
        assert_eq!(h.node_count(), 30);
        assert_eq!(h.branching_at(1), 3);
        assert_eq!(h.branching_at(2), 5);
        assert_eq!(h.branching_at(3), 2);
    }

    #[test]
    fn invalid_rejected() {
        assert!(Hierarchy::new(&[]).is_err());
        assert!(Hierarchy::new(&[1]).is_err());
        assert!(Hierarchy::new(&[4, 0]).is_err());
    }

    #[test]
    fn group_and_child_indices() {
        let h = Hierarchy::new(&[4, 3]).unwrap(); // n = 12
        let v = NodeId::new(7); // group at level1 = 1 (nodes 4..8), level2 = 0
        assert_eq!(h.group_of(v, 0), 7);
        assert_eq!(h.group_of(v, 1), 1);
        assert_eq!(h.group_of(v, 2), 0);
        assert_eq!(h.child_index(v, 1), 3); // 4th node of its level-1 group
        assert_eq!(h.child_index(v, 2), 1); // 2nd subgroup of the top group
    }

    #[test]
    fn gateways_are_subgroup_firsts() {
        let h = Hierarchy::new(&[4, 3]).unwrap();
        assert_eq!(
            h.gateways(2, 0),
            vec![NodeId::new(0), NodeId::new(4), NodeId::new(8)]
        );
        assert_eq!(
            h.gateways(1, 2),
            vec![
                NodeId::new(8),
                NodeId::new(9),
                NodeId::new(10),
                NodeId::new(11)
            ]
        );
    }

    #[test]
    fn graph_is_connected() {
        for (a, l) in [(2usize, 2usize), (3, 3), (4, 2), (5, 1)] {
            let h = Hierarchy::uniform(a, l).unwrap();
            let g = hierarchy_graph(&h);
            assert!(is_connected(&g), "hierarchy({a},{l}) must be connected");
            assert_eq!(g.node_count(), h.node_count());
        }
    }

    #[test]
    fn every_node_in_exactly_one_group_per_level() {
        let h = Hierarchy::new(&[3, 2, 2]).unwrap();
        for level in 1..=3usize {
            let mut seen = vec![0usize; h.node_count()];
            for group in 0..h.group_count(level) {
                for c in 0..h.branching_at(level) {
                    let _gw = h.gateway(level, group, c);
                }
            }
            for (v, s) in seen.iter_mut().enumerate() {
                let g = h.group_of(NodeId::from(v), level);
                assert!(g < h.group_count(level));
                *s += 1;
            }
            assert!(seen.iter().all(|&s| s == 1));
        }
    }
}
