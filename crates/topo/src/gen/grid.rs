//! Manhattan networks: rectangular grids, tori and d-dimensional meshes.
//!
//! Paper §3.1: *"The network is laid out as a `p × q` rectangular grid of
//! nodes. Post availability of a service along its row and request a
//! service along the column the client is on."* — `m(n) = O(p+q)`, and for
//! `p = q`, `m(n) = 2√n`. Wrap-around versions serve cylindrical and
//! torus-shaped networks (the Stony Brook Microcomputer Network). The
//! obvious generalization to d-dimensional meshes takes
//! `m(n) = 2·n^{(d−1)/d}` message passes.

use crate::graph::{Graph, NodeId, TopoError};

/// `p × q` rectangular grid; node `(r, c)` has index `r*q + c`.
///
/// With `wrap = true` rows and columns close into cycles (torus). Wrapping
/// requires the side to have length ≥ 3 to stay a simple graph; shorter
/// sides are silently left unwrapped (a 2-long side already has its single
/// edge).
pub fn grid(p: usize, q: usize, wrap: bool) -> Graph {
    let name = if wrap {
        format!("torus({p}x{q})")
    } else {
        format!("grid({p}x{q})")
    };
    let mut g = Graph::with_name(p * q, name);
    let id = |r: usize, c: usize| NodeId::from(r * q + c);
    for r in 0..p {
        for c in 0..q {
            if c + 1 < q {
                g.add_edge(id(r, c), id(r, c + 1)).expect("grid row edge");
            }
            if r + 1 < p {
                g.add_edge(id(r, c), id(r + 1, c))
                    .expect("grid column edge");
            }
        }
    }
    if wrap {
        if q >= 3 {
            for r in 0..p {
                g.add_edge(id(r, q - 1), id(r, 0)).expect("torus row wrap");
            }
        }
        if p >= 3 {
            for c in 0..q {
                g.add_edge(id(p - 1, c), id(0, c))
                    .expect("torus column wrap");
            }
        }
    }
    g
}

/// d-dimensional mesh with the given side lengths; `wrap` closes every
/// dimension of length ≥ 3 into a cycle.
///
/// Node coordinates are mixed-radix over `sides`: the node with coordinates
/// `(x_0, …, x_{d−1})` has index `x_0 + x_1·s_0 + x_2·s_0·s_1 + …`.
///
/// # Errors
///
/// Returns [`TopoError::InvalidParameter`] if `sides` is empty or contains
/// a zero.
pub fn mesh(sides: &[usize], wrap: bool) -> Result<Graph, TopoError> {
    if sides.is_empty() || sides.contains(&0) {
        return Err(TopoError::InvalidParameter {
            reason: "mesh sides must be non-empty and positive".into(),
        });
    }
    let n: usize = sides.iter().product();
    let name = format!(
        "{}({})",
        if wrap { "torus" } else { "mesh" },
        sides
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join("x")
    );
    let mut g = Graph::with_name(n, name);

    // stride[d] = product of sides[0..d]
    let mut stride = vec![1usize; sides.len()];
    for d in 1..sides.len() {
        stride[d] = stride[d - 1] * sides[d - 1];
    }

    for v in 0..n {
        for (d, &side) in sides.iter().enumerate() {
            let coord = (v / stride[d]) % side;
            if coord + 1 < side {
                g.add_edge(NodeId::from(v), NodeId::from(v + stride[d]))
                    .expect("mesh edge");
            } else if wrap && side >= 3 {
                let wrapped = v - coord * stride[d];
                g.add_edge(NodeId::from(v), NodeId::from(wrapped))
                    .expect("mesh wrap edge");
            }
        }
    }
    Ok(g)
}

/// Decodes a mesh node index into coordinates under `sides`.
///
/// # Panics
///
/// Panics if `sides` contains a zero.
pub fn mesh_coords(v: NodeId, sides: &[usize]) -> Vec<usize> {
    let mut rest = v.index();
    sides
        .iter()
        .map(|&s| {
            let c = rest % s;
            rest /= s;
            c
        })
        .collect()
}

/// Encodes mesh coordinates into a node index under `sides`.
///
/// # Panics
///
/// Panics if `coords.len() != sides.len()` or a coordinate is out of range.
pub fn mesh_index(coords: &[usize], sides: &[usize]) -> NodeId {
    assert_eq!(coords.len(), sides.len(), "coordinate arity mismatch");
    let mut idx = 0usize;
    let mut stride = 1usize;
    for (&c, &s) in coords.iter().zip(sides) {
        assert!(c < s, "coordinate {c} out of range for side {s}");
        idx += c * stride;
        stride *= s;
    }
    NodeId::from(idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::{degree_stats, is_connected};
    use crate::routing::RoutingTable;

    #[test]
    fn grid_structure() {
        let g = grid(3, 4, false);
        assert_eq!(g.node_count(), 12);
        // edges: 3 rows * 3 + 4 cols * 2 = 9 + 8 = 17
        assert_eq!(g.edge_count(), 17);
        assert!(is_connected(&g));
        let rt = RoutingTable::new(&g);
        // manhattan distance from (0,0) to (2,3) = 5
        assert_eq!(rt.distance(NodeId::new(0), NodeId::new(11)), Some(5));
    }

    #[test]
    fn torus_is_regular() {
        let g = grid(4, 5, true);
        let s = degree_stats(&g).unwrap();
        assert_eq!((s.min, s.max), (4, 4));
        assert_eq!(g.edge_count(), 2 * 20);
    }

    #[test]
    fn small_torus_sides_do_not_double_edges() {
        let g = grid(2, 5, true);
        // p=2: column wrap suppressed (edge already there); rows wrap fine
        assert!(is_connected(&g));
        let s = degree_stats(&g).unwrap();
        assert_eq!(s.max, 3); // 2 row nbrs + 1 col nbr
    }

    #[test]
    fn mesh_matches_grid() {
        let m = mesh(&[4, 3], false).unwrap();
        let g = grid(3, 4, false); // note: grid(p,q) rows-major vs mesh dims
        assert_eq!(m.node_count(), g.node_count());
        assert_eq!(m.edge_count(), g.edge_count());
    }

    #[test]
    fn mesh_3d() {
        let m = mesh(&[3, 3, 3], false).unwrap();
        assert_eq!(m.node_count(), 27);
        // 3 dims * 3*3 planes * 2 edges-per-line = 54
        assert_eq!(m.edge_count(), 54);
        assert!(is_connected(&m));
        let t = mesh(&[3, 3, 3], true).unwrap();
        let s = degree_stats(&t).unwrap();
        assert_eq!((s.min, s.max), (6, 6));
    }

    #[test]
    fn mesh_invalid_params() {
        assert!(mesh(&[], false).is_err());
        assert!(mesh(&[3, 0], false).is_err());
    }

    #[test]
    fn coords_roundtrip() {
        let sides = [4usize, 3, 5];
        for v in 0..60usize {
            let c = mesh_coords(NodeId::from(v), &sides);
            assert_eq!(mesh_index(&c, &sides), NodeId::from(v));
        }
    }

    #[test]
    fn mesh_distance_is_manhattan() {
        let sides = [5usize, 4];
        let m = mesh(&sides, false).unwrap();
        let rt = RoutingTable::new(&m);
        let a = mesh_index(&[1, 1], &sides);
        let b = mesh_index(&[4, 3], &sides);
        assert_eq!(rt.distance(a, b), Some(3 + 2));
    }
}
