//! UUCPnet: the paper's example of an organically grown wide-area network
//! (§3.6), including the published August-15-1984 degree table and a
//! synthetic generator producing networks with the same character
//! ("an undirected tree with a core ... and some additional edges thrown
//! in", extra edges between nearby nodes, pronounced degree hierarchy).

use crate::graph::{Graph, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// One row of the paper's UUCPnet degree table: `sites` nodes of degree
/// `degree`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DegreeBucket {
    /// Node degree.
    pub degree: u32,
    /// Number of sites with that degree.
    pub sites: u32,
    /// `true` for the rows whose site counts are illegible in the 1985
    /// scan and were reconstructed (see module docs of `uucp`); the
    /// reconstruction preserves the published totals to within 0.5%.
    pub reconstructed: bool,
}

const fn row(degree: u32, sites: u32) -> DegreeBucket {
    DegreeBucket {
        degree,
        sites,
        reconstructed: false,
    }
}

const fn row_r(degree: u32, sites: u32) -> DegreeBucket {
    DegreeBucket {
        degree,
        sites,
        reconstructed: true,
    }
}

/// The UUCPnet degree table of paper §3.6 (state of the known sites at
/// August 15, 1984; 1916 sites, 3848 edges).
///
/// Rows for degrees 16–24 are marked [`DegreeBucket::reconstructed`]: their
/// site counts are illegible in the scanned paper and were filled with a
/// smoothly decreasing tail that preserves the published totals (the
/// reconstruction yields 1916 sites and 3829 edges, within 0.5% of the
/// published 3848). Famous sites from the text are recognizable: `ihnp4`
/// at degree 641, the 471-degree super-backbone, `decvax`/`mcvax` around
/// degree 40–45, feeder sites near 17, and 840 terminal sites of degree 1.
pub const UUCP_DEGREE_TABLE: &[DegreeBucket] = &[
    row(0, 25),
    row(1, 840),
    row(2, 384),
    row(3, 207),
    row(4, 115),
    row(5, 83),
    row(6, 71),
    row(7, 32),
    row(8, 29),
    row(9, 11),
    row(10, 17),
    row(11, 5),
    row(12, 7),
    row(13, 14),
    row(14, 10),
    row(15, 6),
    row_r(16, 6),
    row_r(17, 4),
    row_r(18, 3),
    row_r(19, 3),
    row_r(20, 3),
    row_r(21, 2),
    row_r(22, 2),
    row_r(23, 2),
    row_r(24, 1),
    row(25, 3),
    row(27, 1),
    row(28, 2),
    row(30, 2),
    row(32, 2),
    row(33, 1),
    row(34, 2),
    row(35, 1),
    row(36, 2),
    row(37, 1),
    row(38, 1),
    row(39, 1),
    row(40, 1),
    row(42, 1),
    row(43, 1),
    row(44, 1),
    row(45, 3),
    row(46, 1),
    row(47, 1),
    row(52, 1),
    row(63, 2),
    row(70, 1),
    row(471, 1),
    row(641, 1),
];

/// Totals of the embedded table: `(sites, edges)` where
/// `edges = Σ sites·degree / 2`.
pub fn uucp_table_totals() -> (u64, u64) {
    let sites: u64 = UUCP_DEGREE_TABLE.iter().map(|b| b.sites as u64).sum();
    let degsum: u64 = UUCP_DEGREE_TABLE
        .iter()
        .map(|b| b.sites as u64 * b.degree as u64)
        .sum();
    (sites, degsum / 2)
}

/// Samples a degree from the (nonzero-degree part of the) table
/// distribution.
fn sample_degree<R: Rng + ?Sized>(rng: &mut R) -> u32 {
    let total: u32 = UUCP_DEGREE_TABLE
        .iter()
        .filter(|b| b.degree > 0)
        .map(|b| b.sites)
        .sum();
    let mut pick = rng.gen_range(0..total);
    for b in UUCP_DEGREE_TABLE.iter().filter(|b| b.degree > 0) {
        if pick < b.sites {
            return b.degree;
        }
        pick -= b.sites;
    }
    unreachable!("sample index within total")
}

/// Generates a connected UUCP-like network of `n ≥ 1` nodes.
///
/// Construction mirrors §3.6's description:
///
/// 1. target degrees are sampled from the published table (scaled to `n`),
/// 2. a spanning tree is grown by attaching each new node to an existing
///    node chosen with probability proportional to its *remaining* target
///    degree — producing the pronounced backbone/feeder/terminal hierarchy,
/// 3. up to `n/2` extra edges are thrown in between tree-nearby nodes
///    (endpoints within 3 tree hops), keeping the network "planar to a
///    large extent" in spirit and the number of extra edges below the
///    spanning-tree size, as observed for UUCPnet.
pub fn uucp_like<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Graph {
    let mut g = Graph::with_name(n, format!("uucp_like({n})"));
    if n <= 1 {
        return g;
    }

    // 1. target degrees, sorted descending so the backbone forms first
    let mut targets: Vec<u32> = (0..n).map(|_| sample_degree(rng)).collect();
    targets.sort_unstable_by(|a, b| b.cmp(a));

    // 2. capacity-weighted tree growth
    let mut capacity: Vec<u64> = targets.iter().map(|&t| t as u64).collect();
    for v in 1..n {
        let total: u64 = capacity[..v].iter().sum();
        let parent = if total == 0 {
            rng.gen_range(0..v)
        } else {
            let mut pick = rng.gen_range(0..total);
            let mut chosen = 0;
            for (u, &c) in capacity[..v].iter().enumerate() {
                if pick < c {
                    chosen = u;
                    break;
                }
                pick -= c;
            }
            chosen
        };
        g.add_edge(NodeId::from(v), NodeId::from(parent))
            .expect("tree edge");
        capacity[parent] = capacity[parent].saturating_sub(1);
        capacity[v] = capacity[v].saturating_sub(1);
    }

    // 3. extra local edges: random walks of length 2..=3 from random nodes
    let extra_target = n / 2;
    let mut added = 0usize;
    let mut attempts = 0usize;
    while added < extra_target && attempts < 10 * extra_target + 10 {
        attempts += 1;
        let u = NodeId::from(rng.gen_range(0..n));
        // short random walk
        let mut cur = u;
        let steps = rng.gen_range(2..=3);
        for _ in 0..steps {
            let nbrs = g.neighbors(cur);
            if nbrs.is_empty() {
                break;
            }
            cur = NodeId::new(*nbrs.choose(rng).expect("nonempty neighbors"));
        }
        if cur != u && !g.has_edge(u, cur) {
            g.add_edge(u, cur).expect("extra edge");
            added += 1;
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::{degree_stats, is_connected};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn table_totals_match_paper() {
        let (sites, edges) = uucp_table_totals();
        assert_eq!(sites, 1916, "published site count");
        // published edge count is 3848; the reconstructed rows land within 0.5%
        assert!((edges as i64 - 3848).abs() <= 20, "edges = {edges}");
    }

    #[test]
    fn table_extremes_present() {
        let max = UUCP_DEGREE_TABLE.iter().map(|b| b.degree).max().unwrap();
        assert_eq!(max, 641, "ihnp4's degree");
        let deg1 = UUCP_DEGREE_TABLE
            .iter()
            .find(|b| b.degree == 1)
            .unwrap()
            .sites;
        assert_eq!(deg1, 840, "terminal sites");
        assert_eq!(
            UUCP_DEGREE_TABLE.iter().filter(|b| b.reconstructed).count(),
            9
        );
    }

    #[test]
    fn generated_network_is_connected_tree_plus_extras() {
        let mut rng = StdRng::seed_from_u64(42);
        for n in [1usize, 2, 10, 200, 1000] {
            let g = uucp_like(n, &mut rng);
            assert_eq!(g.node_count(), n);
            if n >= 2 {
                assert!(is_connected(&g), "n={n} must be connected");
                assert!(g.edge_count() >= n - 1);
                assert!(
                    g.edge_count() <= 2 * n,
                    "extra edges bounded by spanning-tree size"
                );
            }
        }
    }

    #[test]
    fn generated_degree_hierarchy_is_pronounced() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = uucp_like(1500, &mut rng);
        let s = degree_stats(&g).unwrap();
        // backbone node should tower over the mean like ihnp4 does
        assert!(
            s.max as f64 > 10.0 * s.mean,
            "max {} vs mean {}",
            s.max,
            s.mean
        );
        assert!(s.min >= 1);
    }

    #[test]
    fn generation_is_deterministic_under_seed() {
        let g1 = uucp_like(300, &mut StdRng::seed_from_u64(5));
        let g2 = uucp_like(300, &mut StdRng::seed_from_u64(5));
        assert_eq!(g1, g2);
    }

    #[test]
    fn degree_sampler_never_returns_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            assert!(sample_degree(&mut rng) >= 1);
        }
    }
}
