//! Topology generators for every network family the paper analyses.
//!
//! * basic: [`complete`], [`ring`], [`path`], [`star`]
//! * §3.1 Manhattan: [`grid()`](grid()), [`mesh()`](mesh()) (d-dimensional, optional wraparound)
//! * §3.2 hypercube: [`hypercube()`](hypercube())
//! * §3.3 fast permutation networks: [`cube_connected_cycles`]
//! * §3.4 projective planes: [`projective`]
//! * §3.5 hierarchical networks: [`hierarchy`]
//! * §3.6 organically grown (UUCP-like) networks: [`uucp`], [`tree`]
//! * random connected graphs for the general algorithm: [`random`]

pub mod grid;
pub mod hierarchy;
pub mod hypercube;
pub mod projective;
pub mod random;
pub mod tree;
pub mod uucp;

pub use grid::{grid, mesh};
pub use hierarchy::{hierarchy_graph, Hierarchy};
pub use hypercube::{cube_connected_cycles, hypercube, CccNode};
pub use projective::ProjectivePlane;
pub use random::{random_connected, random_tree};
pub use tree::{balanced_tree, profile_tree, TreeInfo};
pub use uucp::{uucp_like, UUCP_DEGREE_TABLE};

use crate::graph::{Graph, NodeId};

/// Complete graph `K_n`: the paper's topology-independent setting ("assume
/// that all messages can be routed in one message pass to their
/// destinations").
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::with_name(n, format!("complete({n})"));
    for a in 0..n {
        for b in (a + 1)..n {
            g.add_edge(NodeId::from(a), NodeId::from(b))
                .expect("complete-graph edges are valid");
        }
    }
    g
}

/// An edgeless stand-in for [`complete`]: same node count and name, no
/// adjacency. O(n) to build instead of O(n²), which is what makes
/// 64k-node complete-network sweeps possible at all.
///
/// Only valid where edges are never consulted — e.g. simulations under
/// `mm_sim::CostModel::Uniform`, which charge one pass per destination
/// and never route. Anything that routes, measures degrees, or walks
/// neighbors must use [`complete`].
pub fn complete_shell(n: usize) -> Graph {
    Graph::with_name(n, format!("complete({n})"))
}

/// Cycle `C_n` (ring). Paper §2.3.5: on a ring no match-making algorithm
/// does significantly better than broadcasting, `m(n) = Ω(n)`.
///
/// For `n <= 2` this degenerates to the path (no multi-edges).
pub fn ring(n: usize) -> Graph {
    let mut g = Graph::with_name(n, format!("ring({n})"));
    if n >= 2 {
        for a in 0..n - 1 {
            g.add_edge(NodeId::from(a), NodeId::from(a + 1))
                .expect("ring edges are valid");
        }
        if n >= 3 {
            g.add_edge(NodeId::from(n - 1), NodeId::from(0usize))
                .expect("ring closing edge is valid");
        }
    }
    g
}

/// Path `P_n`: nodes `0..n` connected in a line.
pub fn path(n: usize) -> Graph {
    let mut g = Graph::with_name(n, format!("path({n})"));
    for a in 1..n {
        g.add_edge(NodeId::from(a - 1), NodeId::from(a))
            .expect("path edges are valid");
    }
    g
}

/// Star: node 0 is the center, nodes `1..=leaves` are leaves
/// (`leaves + 1` nodes in total). The pathological case for connected
/// decomposition and the idealized centralized name server.
pub fn star(leaves: usize) -> Graph {
    let mut g = Graph::with_name(leaves + 1, format!("star({leaves})"));
    for leaf in 1..=leaves {
        g.add_edge(NodeId::from(0usize), NodeId::from(leaf))
            .expect("star edges are valid");
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::{degree_stats, is_connected};

    #[test]
    fn complete_graph_sizes() {
        let g = complete(7);
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 21);
        assert!(is_connected(&g));
        let s = degree_stats(&g).unwrap();
        assert_eq!((s.min, s.max), (6, 6));
    }

    #[test]
    fn complete_trivial() {
        assert_eq!(complete(0).node_count(), 0);
        assert_eq!(complete(1).edge_count(), 0);
        assert_eq!(complete(2).edge_count(), 1);
    }

    #[test]
    fn ring_shapes() {
        let g = ring(6);
        assert_eq!(g.edge_count(), 6);
        let s = degree_stats(&g).unwrap();
        assert_eq!((s.min, s.max), (2, 2));
        assert_eq!(ring(2).edge_count(), 1, "2-ring degenerates to an edge");
        assert_eq!(ring(1).edge_count(), 0);
        assert_eq!(ring(3).edge_count(), 3);
    }

    #[test]
    fn path_and_star() {
        assert_eq!(path(5).edge_count(), 4);
        assert!(is_connected(&path(5)));
        let st = star(9);
        assert_eq!(st.node_count(), 10);
        assert_eq!(st.degree(NodeId::new(0)), 9);
    }
}
