//! Binary hypercubes and cube-connected cycles.
//!
//! Paper §3.2: the d-dimensional binary cube has `n = 2^d` nodes addressed
//! by `d`-bit strings, with edges between addresses differing in a single
//! bit. The match-making strategy splits the address in half: a server
//! broadcasts into the subcube fixing the *low* half of its address, a
//! client into the subcube fixing its *high* half; they meet at exactly one
//! corner. §3.3 applies a tuned variant to fast permutation networks such
//! as the cube-connected cycles (CCC).

use crate::graph::{Graph, NodeId, TopoError};

/// d-dimensional binary hypercube, `n = 2^d` nodes.
///
/// Node `v`'s neighbors are `v ^ (1 << b)` for each bit `b < d`. `d = 0`
/// yields the single-node graph.
///
/// # Panics
///
/// Panics if `d > 30` (the graph would not fit in memory anyway).
pub fn hypercube(d: u32) -> Graph {
    assert!(d <= 30, "hypercube dimension too large");
    let n = 1usize << d;
    let mut g = Graph::with_name(n, format!("hypercube({d})"));
    for v in 0..n {
        for b in 0..d {
            let u = v ^ (1usize << b);
            if v < u {
                g.add_edge(NodeId::from(v), NodeId::from(u))
                    .expect("hypercube edge");
            }
        }
    }
    g
}

/// A node of the cube-connected cycles network: cycle position `pos` on the
/// cycle replacing hypercube corner `corner`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CccNode {
    /// The hypercube corner this cycle replaces (`0..2^d`).
    pub corner: u32,
    /// Position within the cycle (`0..d`).
    pub pos: u32,
}

impl CccNode {
    /// Flat node index for dimension `d`: `corner * d + pos`.
    pub fn index(self, d: u32) -> NodeId {
        NodeId::new(self.corner * d + self.pos)
    }

    /// Inverse of [`CccNode::index`].
    pub fn from_index(v: NodeId, d: u32) -> Self {
        CccNode {
            corner: v.raw() / d,
            pos: v.raw() % d,
        }
    }
}

/// Cube-connected cycles `CCC(d)`: each corner of the d-cube is replaced by
/// a cycle of `d` nodes; node `(w, i)` connects to `(w, i±1 mod d)` (cycle
/// edges) and `(w ^ 2^i, i)` (cube edge). `n = d·2^d`.
///
/// # Errors
///
/// Returns [`TopoError::InvalidParameter`] for `d < 1` or `d > 24`.
pub fn cube_connected_cycles(d: u32) -> Result<Graph, TopoError> {
    if !(1..=24).contains(&d) {
        return Err(TopoError::InvalidParameter {
            reason: format!("CCC dimension {d} out of supported range 1..=24"),
        });
    }
    let corners = 1u32 << d;
    let n = (corners * d) as usize;
    let mut g = Graph::with_name(n, format!("ccc({d})"));
    for w in 0..corners {
        for i in 0..d {
            let here = CccNode { corner: w, pos: i }.index(d);
            // cycle edge to (w, i+1 mod d); for d == 1 there is no cycle,
            // for d == 2 the two positions get a single edge
            if d >= 2 {
                let next = CccNode {
                    corner: w,
                    pos: (i + 1) % d,
                }
                .index(d);
                let _ = g.add_edge(here, next); // idempotent for d == 2
            }
            // cube edge to (w ^ 2^i, i)
            let across = CccNode {
                corner: w ^ (1 << i),
                pos: i,
            }
            .index(d);
            if here < across {
                g.add_edge(here, across).expect("ccc cube edge");
            }
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::{degree_stats, is_connected};
    use crate::routing::RoutingTable;

    #[test]
    fn hypercube_counts() {
        for d in 0..=6u32 {
            let g = hypercube(d);
            assert_eq!(g.node_count(), 1 << d);
            assert_eq!(g.edge_count(), (d as usize) << d.saturating_sub(1));
            assert!(is_connected(&g));
        }
    }

    #[test]
    fn hypercube_neighbors_differ_one_bit() {
        let g = hypercube(5);
        for (a, b) in g.edges() {
            assert_eq!((a.raw() ^ b.raw()).count_ones(), 1);
        }
    }

    #[test]
    fn hypercube_diameter_is_d() {
        let g = hypercube(4);
        let rt = RoutingTable::new(&g);
        assert_eq!(rt.diameter(), 4);
    }

    #[test]
    fn ccc_counts_and_regularity() {
        let g = cube_connected_cycles(3).unwrap();
        assert_eq!(g.node_count(), 24);
        assert!(is_connected(&g));
        let s = degree_stats(&g).unwrap();
        assert_eq!((s.min, s.max), (3, 3), "CCC(d>=3) is 3-regular");
        // edges: 3n/2
        assert_eq!(g.edge_count(), 36);
    }

    #[test]
    fn ccc_small_dims() {
        let g1 = cube_connected_cycles(1).unwrap();
        assert_eq!(g1.node_count(), 2);
        assert_eq!(g1.edge_count(), 1); // only the cube edge
        let g2 = cube_connected_cycles(2).unwrap();
        assert_eq!(g2.node_count(), 8);
        assert!(is_connected(&g2));
        assert!(cube_connected_cycles(0).is_err());
        assert!(cube_connected_cycles(25).is_err());
    }

    #[test]
    fn ccc_node_index_roundtrip() {
        let d = 4;
        let g = cube_connected_cycles(d).unwrap();
        for v in g.nodes() {
            let c = CccNode::from_index(v, d);
            assert_eq!(c.index(d), v);
            assert!(c.pos < d);
            assert!(c.corner < 1 << d);
        }
    }
}
