//! Division of a connected graph into `O(√n)` disjoint connected subgraphs
//! of `≈√n` nodes each.
//!
//! Paper §3: *"In \[Erdős, Gerencsér, Máté\] a construction is given to
//! divide every connected graph in `O(√n)` disjoint connected subgraphs of
//! `≈√n` nodes each. Number the nodes in each subgraph 1 through `√n` (if
//! necessary, divide the excess numbers over the nodes)."*
//!
//! [`Decomposition::new`] implements a spanning-tree chunking that yields
//! disjoint **connected** parts covering all nodes, each of size at most
//! `2t − 1` where `t = ⌈√n⌉`, and at least `t` wherever the topology
//! permits (high-degree "star" centers can force smaller parts — in that
//! case, exactly as the paper prescribes, the `t` labels are divided over
//! the part's nodes so every label is still present in every part).
//!
//! The general-network locate algorithm (paper §3, implemented in
//! `mm-core::strategies::decomposed`) uses the decomposition as follows: a
//! server whose node carries label `ℓ` in its own part posts at every node
//! carrying label `ℓ` in *all* parts; a client broadcasts its query within
//! its own part. The rendezvous is the node labelled `ℓ` in the client's
//! part.

use crate::graph::{Graph, NodeId, TopoError};
use crate::props::is_connected;
use crate::spanning::SpanningTree;

/// A partition of a connected graph into connected parts with per-part
/// label assignments (labels `0..t`).
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// Target part size `t ≈ √n`; also the number of labels.
    pub t: usize,
    parts: Vec<Vec<NodeId>>,
    part_of: Vec<u32>,
    /// `label_to_node[part][label]` = the node in `part` carrying `label`.
    label_to_node: Vec<Vec<NodeId>>,
    /// `labels_of[v]` = the labels carried by node `v` within its part.
    labels_of: Vec<Vec<u32>>,
}

impl Decomposition {
    /// Decomposes connected `g` with the default target size `t = ⌈√n⌉`.
    ///
    /// # Errors
    ///
    /// Returns [`TopoError::Disconnected`] if `g` is not connected, and
    /// [`TopoError::InvalidParameter`] if `g` is empty.
    pub fn new(g: &Graph) -> Result<Self, TopoError> {
        let n = g.node_count();
        let t = (n as f64).sqrt().ceil() as usize;
        Self::with_part_size(g, t.max(1))
    }

    /// Decomposes connected `g` into parts of target size `t`.
    ///
    /// Every part is connected and has at most `2t − 1` nodes. Parts are
    /// at least `t` nodes wherever possible; undersized parts only occur
    /// when forced by topology (e.g. around very high-degree nodes) and the
    /// labels are divided over their nodes.
    ///
    /// # Errors
    ///
    /// Returns [`TopoError::Disconnected`] if `g` is not connected, and
    /// [`TopoError::InvalidParameter`] if `g` is empty or `t == 0`.
    pub fn with_part_size(g: &Graph, t: usize) -> Result<Self, TopoError> {
        let n = g.node_count();
        if n == 0 || t == 0 {
            return Err(TopoError::InvalidParameter {
                reason: "decomposition requires a non-empty graph and t >= 1".into(),
            });
        }
        if !is_connected(g) {
            return Err(TopoError::Disconnected);
        }

        let tree = SpanningTree::bfs(g, NodeId::new(0));
        let children = tree.children();

        // Post-order chunking. pending[v] accumulates v plus the uncut
        // subtrees of its children; when it reaches t it is cut as a part.
        // Processing children one at a time keeps every part below 2t.
        let mut parts: Vec<Vec<NodeId>> = Vec::new();
        let mut pending: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        // iterate nodes in reverse BFS order = children before parents
        for &v in tree.order.iter().rev() {
            let mut acc = vec![v];
            for &c in &children[v.index()] {
                let child_pending = std::mem::take(&mut pending[c.index()]);
                if child_pending.is_empty() {
                    continue;
                }
                if acc.len() + child_pending.len() >= 2 * t {
                    // cutting child_pending alone keeps it connected (it is
                    // a c-rooted residual subtree); it has < t nodes but we
                    // cannot merge it through v without overshooting.
                    if child_pending.len() >= t {
                        parts.push(child_pending);
                    } else if acc.len() >= child_pending.len() {
                        // prefer cutting the larger accumulated chunk; but
                        // acc must stay connected through v, so cut acc only
                        // when v can be spared: v must stay to connect the
                        // remaining children, so cut the child chunk.
                        parts.push(child_pending);
                    } else {
                        parts.push(child_pending);
                    }
                } else {
                    acc.extend(child_pending);
                }
                if acc.len() >= t {
                    // acc = v + some full child subtrees: connected via v.
                    // v must remain available to attach the *next* child
                    // chunks; cutting acc with v would orphan them, so we
                    // only cut acc once all children are folded in — unless
                    // acc already reached t and the remaining children can
                    // be emitted standalone. Simpler invariant: keep
                    // accumulating; final cut happens after the loop.
                }
            }
            if acc.len() >= t {
                parts.push(acc);
            } else {
                pending[v.index()] = acc;
            }
        }
        // Root remainder: fewer than t nodes left over.
        let root_pending = std::mem::take(&mut pending[0]);
        if !root_pending.is_empty() {
            // Merge into the part adjacent to the root if that stays < 2t;
            // otherwise keep it as an (undersized) part of its own.
            let merged = parts.iter_mut().find(|p| {
                p.len() + root_pending.len() < 2 * t
                    && p.iter()
                        .any(|&u| root_pending.iter().any(|&w| g.has_edge(u, w)))
            });
            match merged {
                Some(part) => part.extend(root_pending.iter().copied()),
                None => parts.push(root_pending),
            }
        }

        // Canonical ordering inside parts and across parts.
        for p in &mut parts {
            p.sort_unstable();
        }
        parts.sort_by_key(|p| p[0]);

        let mut part_of = vec![u32::MAX; n];
        for (pi, p) in parts.iter().enumerate() {
            for &v in p {
                part_of[v.index()] = pi as u32;
            }
        }
        debug_assert!(part_of.iter().all(|&p| p != u32::MAX));

        // Assign labels 0..t round-robin over each part's nodes: every
        // label appears in every part ("divide the excess numbers over the
        // nodes"), and in a part of size >= t each node carries >= 1 label.
        let mut label_to_node = Vec::with_capacity(parts.len());
        let mut labels_of = vec![Vec::new(); n];
        for p in &parts {
            let mut l2n = Vec::with_capacity(t);
            for label in 0..t {
                let v = p[label % p.len()];
                l2n.push(v);
                labels_of[v.index()].push(label as u32);
            }
            label_to_node.push(l2n);
        }

        Ok(Decomposition {
            t,
            parts,
            part_of,
            label_to_node,
            labels_of,
        })
    }

    /// The parts, each a sorted list of nodes.
    pub fn parts(&self) -> &[Vec<NodeId>] {
        &self.parts
    }

    /// Number of parts.
    pub fn part_count(&self) -> usize {
        self.parts.len()
    }

    /// The part index containing `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn part_of(&self, v: NodeId) -> usize {
        self.part_of[v.index()] as usize
    }

    /// The node carrying `label` within `part`.
    ///
    /// # Panics
    ///
    /// Panics if `part >= part_count()` or `label >= t`.
    pub fn node_with_label(&self, part: usize, label: u32) -> NodeId {
        self.label_to_node[part][label as usize]
    }

    /// The labels carried by `v` (possibly several in undersized parts,
    /// possibly none in parts larger than `t`).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn labels_of(&self, v: NodeId) -> &[u32] {
        &self.labels_of[v.index()]
    }

    /// A canonical label for `v`: its first label if it carries any, or
    /// `v's position in its part` modulo `t` otherwise (parts larger than
    /// `t` leave some nodes label-less; the strategy needs *some* label for
    /// every server host).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn canonical_label(&self, v: NodeId) -> u32 {
        if let Some(&l) = self.labels_of[v.index()].first() {
            return l;
        }
        let part = &self.parts[self.part_of(v)];
        let pos = part
            .binary_search(&v)
            .expect("node must be in its own part");
        (pos % self.t) as u32
    }

    /// All nodes carrying `label`, one (or more, for oversized parts —
    /// exactly one per part) across the whole network: the server's posting
    /// set in the general-network algorithm.
    ///
    /// # Panics
    ///
    /// Panics if `label >= t`.
    pub fn nodes_with_label(&self, label: u32) -> Vec<NodeId> {
        (0..self.part_count())
            .map(|p| self.node_with_label(p, label))
            .collect()
    }
}

/// Maps every node to one of `shards` worker shards (the sharded
/// simulator core's partition key).
///
/// When the graph is connected and the `√n` [`Decomposition`] yields at
/// least `shards` parts, whole parts map to the same shard (contiguous
/// part-index ranges), preserving the decomposition's locality: a part's
/// intra-part protocol traffic — the dominant traffic of the paper's
/// general-network algorithm — stays shard-local. For disconnected or
/// edgeless graphs (e.g. the O(n) "complete shell" used under the uniform
/// cost model, where no locality exists to exploit) and for shard counts
/// finer than the decomposition, it falls back to balanced contiguous
/// index bands.
///
/// The assignment is deterministic for a given `(graph, shards)`. The
/// sharded executor's output is byte-identical under *any* assignment;
/// this choice only affects parallel locality, never results.
pub fn shard_map(g: &Graph, shards: usize) -> Vec<u32> {
    let n = g.node_count();
    let shards = shards.clamp(1, n.max(1));
    if shards > 1 {
        if let Ok(d) = Decomposition::new(g) {
            let parts = d.part_count();
            if parts >= shards {
                return (0..n)
                    .map(|v| (d.part_of(NodeId::new(v as u32)) * shards / parts) as u32)
                    .collect();
            }
        }
    }
    (0..n).map(|v| (v * shards / n) as u32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::props::components;

    fn check_partition(g: &Graph, d: &Decomposition) {
        // disjoint cover
        let mut seen = vec![false; g.node_count()];
        for p in d.parts() {
            for &v in p {
                assert!(!seen[v.index()], "node {v} in two parts");
                seen[v.index()] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "partition must cover all nodes");
        // connected parts
        for p in d.parts() {
            let (sub, _) = g.induced_subgraph(p).unwrap();
            assert_eq!(components(&sub).len(), 1, "part must be connected");
        }
        // size bound
        for p in d.parts() {
            assert!(p.len() <= 2 * d.t, "part exceeds 2t");
        }
        // every label present in every part
        for part in 0..d.part_count() {
            for label in 0..d.t as u32 {
                let v = d.node_with_label(part, label);
                assert_eq!(d.part_of(v), part);
            }
        }
    }

    #[test]
    fn decompose_grid() {
        let g = gen::grid(8, 8, false);
        let d = Decomposition::new(&g).unwrap();
        check_partition(&g, &d);
        assert_eq!(d.t, 8);
        // most parts should be of size >= t on a grid
        let big = d.parts().iter().filter(|p| p.len() >= d.t).count();
        assert!(big >= d.part_count() - 1);
    }

    #[test]
    fn decompose_ring_exact() {
        let g = gen::ring(16);
        let d = Decomposition::new(&g).unwrap();
        check_partition(&g, &d);
        assert_eq!(d.t, 4);
        assert!(d.part_count() >= 2);
    }

    #[test]
    fn decompose_star_tolerates_undersized_parts() {
        let g = gen::star(24); // 25 nodes, t = 5
        let d = Decomposition::new(&g).unwrap();
        check_partition(&g, &d);
        // a star cannot be cut into >=t connected parts; labels still work
        for label in 0..d.t as u32 {
            assert_eq!(d.nodes_with_label(label).len(), d.part_count());
        }
    }

    #[test]
    fn decompose_complete() {
        let g = gen::complete(30);
        let d = Decomposition::new(&g).unwrap();
        check_partition(&g, &d);
    }

    #[test]
    fn decompose_single_node() {
        let g = Graph::new(1);
        let d = Decomposition::new(&g).unwrap();
        assert_eq!(d.part_count(), 1);
        assert_eq!(d.t, 1);
        assert_eq!(d.canonical_label(NodeId::new(0)), 0);
    }

    #[test]
    fn disconnected_rejected() {
        let g = Graph::new(3);
        assert_eq!(Decomposition::new(&g).unwrap_err(), TopoError::Disconnected);
    }

    #[test]
    fn zero_t_rejected() {
        let g = gen::ring(4);
        assert!(Decomposition::with_part_size(&g, 0).is_err());
    }

    #[test]
    fn canonical_label_defined_for_all_nodes() {
        let g = gen::grid(7, 9, false);
        let d = Decomposition::new(&g).unwrap();
        for v in g.nodes() {
            let l = d.canonical_label(v);
            assert!((l as usize) < d.t);
        }
    }

    #[test]
    fn shard_map_covers_all_shards_and_respects_parts() {
        let g = gen::grid(16, 16, false); // 256 nodes, t = 16, ~16 parts
        let d = Decomposition::new(&g).unwrap();
        let shards = 4;
        let map = shard_map(&g, shards);
        assert_eq!(map.len(), 256);
        // every shard is populated
        for s in 0..shards as u32 {
            assert!(map.contains(&s), "shard {s} empty");
        }
        // nodes of one part never straddle shards
        for v in g.nodes() {
            for w in g.nodes() {
                if d.part_of(v) == d.part_of(w) {
                    assert_eq!(map[v.index()], map[w.index()]);
                }
            }
        }
    }

    #[test]
    fn shard_map_falls_back_to_index_bands() {
        // edgeless graph: no decomposition possible
        let g = Graph::new(10);
        let map = shard_map(&g, 4);
        assert_eq!(map.len(), 10);
        assert!(map.windows(2).all(|w| w[0] <= w[1]), "contiguous bands");
        for s in 0..4 {
            assert!(map.contains(&s));
        }
        // more shards than nodes clamps; single shard maps everything to 0
        assert!(shard_map(&g, 100).iter().all(|&m| (m as usize) < 10));
        assert!(shard_map(&g, 1).iter().all(|&m| m == 0));
    }

    #[test]
    fn part_count_scales_like_sqrt_n() {
        for side in [6usize, 10, 14] {
            let n = side * side;
            let g = gen::grid(side, side, false);
            let d = Decomposition::new(&g).unwrap();
            // between n/(2t) and n/t parts plus slack for undersized ones
            let t = d.t;
            assert!(d.part_count() >= n / (2 * t));
            assert!(
                d.part_count() <= n / t * 2 + 2,
                "too many parts: {}",
                d.part_count()
            );
        }
    }
}
