//! Next-hop routing as a *capability*, not a table.
//!
//! The paper's §3 cost model gives every node a full Dalal–Metcalfe
//! routing table — O(n²) space once materialized in [`RoutingTable`].
//! That is faithful, but it is also the one hard wall between the sharded
//! core and million-node structured fabrics: a 65,536-node table is
//! already ~34 GB. For the structured generators (ring, grid, torus,
//! hypercube, complete) the table content is pure arithmetic, so this
//! module factors routing behind the [`Router`] trait and provides
//! closed-form, O(1)-memory, allocation-free implementations per family.
//!
//! Canonical tie-break. [`RoutingTable`] pins `next(s, v)` to the
//! *lowest-numbered* neighbor of `s` that starts a shortest path to `v`,
//! and every analytic router here reproduces exactly that choice. The
//! consequence is strong: any simulation driven through a [`Router`] is
//! byte-identical whether the backend is a materialized table or closed
//! forms — the table stays available as the conformance oracle for
//! arbitrary graphs (the same oracle pattern as `QueueKind::BTree` and
//! `ShardMode::Single`).
//!
//! [`AnyRouter::for_graph`] picks the backend by the graph's generator
//! name (`"ring(8)"`, `"grid(4x5)"`, `"torus(3x3)"`, `"hypercube(5)"`,
//! `"complete(64)"`), which means structured topologies can be built as
//! *shell* graphs — correct node count and name, zero edges — and still
//! route: nothing in the closed forms ever consults adjacency.

use crate::graph::{Graph, NodeId};
use crate::routing::RoutingTable;

/// Shortest-path next-hop routing over a fixed node universe.
///
/// Implementations must agree with the canonical [`RoutingTable`] built
/// over the same graph: identical distances and identical (lowest-numbered
/// shortest-path neighbor) next hops for every ordered pair. The
/// conformance suite proptests this for every analytic family.
pub trait Router {
    /// Number of nodes routed over.
    fn node_count(&self) -> usize;

    /// Hop distance from `a` to `b`, or `None` if unreachable.
    fn distance(&self, a: NodeId, b: NodeId) -> Option<u32>;

    /// First hop on the canonical shortest path from `a` to `b`; `None`
    /// when `a == b` or `b` is unreachable.
    fn next_hop(&self, a: NodeId, b: NodeId) -> Option<NodeId>;

    /// Calls `f` for each neighbor of `v`, in ascending node order.
    ///
    /// For analytic routers the neighborhood is closed-form; for a
    /// [`RoutingTable`] it is recovered as the distance-1 row (an O(n)
    /// scan — fine for the beam/reverse-path uses this serves).
    fn for_each_neighbor(&self, v: NodeId, f: &mut dyn FnMut(NodeId));

    /// Walks the canonical shortest path from `a` to `b` hop by hop,
    /// yielding each node *after* `a` (the final item is `b`).
    /// Allocation-free; empty when `a == b` or `b` is unreachable.
    fn hops(&self, a: NodeId, b: NodeId) -> RouteWalk<'_, Self>
    where
        Self: Sized,
    {
        RouteWalk {
            router: self,
            cur: a,
            dest: b,
        }
    }

    /// The §4 reverse-path trick (Dalal–Metcalfe tables "back-to-front"):
    /// the neighbors `u` of `v` whose canonical route to `origin` starts
    /// with `v`. Walking such edges moves strictly *away* from the origin,
    /// which is what simulates a straight-line beam — and it needs no
    /// materialized graph, only `next_hop` and the neighborhood.
    fn reverse_next_hops(&self, origin: NodeId, v: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.for_each_neighbor(v, &mut |u| {
            if self.next_hop(u, origin) == Some(v) {
                out.push(u);
            }
        });
        out
    }
}

/// Allocation-free shortest-path walk produced by [`Router::hops`].
#[derive(Debug, Clone)]
pub struct RouteWalk<'a, R> {
    router: &'a R,
    cur: NodeId,
    dest: NodeId,
}

impl<R: Router> Iterator for RouteWalk<'_, R> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if self.cur == self.dest {
            return None;
        }
        self.cur = self.router.next_hop(self.cur, self.dest)?;
        Some(self.cur)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self.router.distance(self.cur, self.dest) {
            Some(d) => (d as usize, Some(d as usize)),
            None => (0, Some(0)),
        }
    }
}

impl Router for RoutingTable {
    fn node_count(&self) -> usize {
        RoutingTable::node_count(self)
    }

    fn distance(&self, a: NodeId, b: NodeId) -> Option<u32> {
        RoutingTable::distance(self, a, b)
    }

    fn next_hop(&self, a: NodeId, b: NodeId) -> Option<NodeId> {
        RoutingTable::next_hop(self, a, b)
    }

    fn for_each_neighbor(&self, v: NodeId, f: &mut dyn FnMut(NodeId)) {
        let n = RoutingTable::node_count(self);
        for u in 0..n as u32 {
            if RoutingTable::distance(self, v, NodeId::new(u)) == Some(1) {
                f(NodeId::new(u));
            }
        }
    }
}

/// K_n: every pair at distance 1; the next hop *is* the destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompleteRouter {
    n: u32,
}

impl CompleteRouter {
    /// Router for `complete(n)`.
    pub fn new(n: usize) -> Self {
        CompleteRouter { n: n as u32 }
    }
}

impl Router for CompleteRouter {
    fn node_count(&self) -> usize {
        self.n as usize
    }

    fn distance(&self, a: NodeId, b: NodeId) -> Option<u32> {
        debug_assert!(a.raw() < self.n && b.raw() < self.n);
        Some(u32::from(a != b))
    }

    fn next_hop(&self, a: NodeId, b: NodeId) -> Option<NodeId> {
        debug_assert!(a.raw() < self.n && b.raw() < self.n);
        (a != b).then_some(b)
    }

    fn for_each_neighbor(&self, v: NodeId, f: &mut dyn FnMut(NodeId)) {
        for u in 0..self.n {
            if u != v.raw() {
                f(NodeId::new(u));
            }
        }
    }
}

/// Cycle C_n (`ring(n)`): route the strictly shorter way around; on the
/// antipodal tie (even n) take the lower-numbered neighbor, matching the
/// canonical table. `ring(2)` is the single edge, `ring(1)` a lone node —
/// exactly what the generator degenerates to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingRouter {
    n: u32,
}

impl RingRouter {
    /// Router for `ring(n)`.
    pub fn new(n: usize) -> Self {
        RingRouter { n: n as u32 }
    }

    /// (forward distance, backward distance) from `a` to `b`.
    fn arcs(&self, a: u32, b: u32) -> (u32, u32) {
        let fwd = (b + self.n - a) % self.n;
        (fwd, (self.n - fwd) % self.n)
    }
}

impl Router for RingRouter {
    fn node_count(&self) -> usize {
        self.n as usize
    }

    fn distance(&self, a: NodeId, b: NodeId) -> Option<u32> {
        debug_assert!(a.raw() < self.n && b.raw() < self.n);
        let (fwd, bwd) = self.arcs(a.raw(), b.raw());
        Some(fwd.min(bwd))
    }

    fn next_hop(&self, a: NodeId, b: NodeId) -> Option<NodeId> {
        debug_assert!(a.raw() < self.n && b.raw() < self.n);
        if a == b {
            return None;
        }
        let (fwd, bwd) = self.arcs(a.raw(), b.raw());
        let succ = (a.raw() + 1) % self.n;
        let pred = (a.raw() + self.n - 1) % self.n;
        let hop = match fwd.cmp(&bwd) {
            std::cmp::Ordering::Less => succ,
            std::cmp::Ordering::Greater => pred,
            std::cmp::Ordering::Equal => succ.min(pred),
        };
        Some(NodeId::new(hop))
    }

    fn for_each_neighbor(&self, v: NodeId, f: &mut dyn FnMut(NodeId)) {
        if self.n < 2 {
            return;
        }
        let succ = (v.raw() + 1) % self.n;
        let pred = (v.raw() + self.n - 1) % self.n;
        if succ == pred {
            f(NodeId::new(succ));
        } else {
            f(NodeId::new(succ.min(pred)));
            f(NodeId::new(succ.max(pred)));
        }
    }
}

/// p×q mesh (`grid(pxq)`) or torus (`torus(pxq)`, `wrap = true`).
///
/// Node (r, c) is index `r·q + c`. Distance is per-axis: plain |Δ| on an
/// open axis, cyclic min(|Δ|, len−|Δ|) on a wrapped one. Wrap is
/// *suppressed per axis* for sides < 3, mirroring the generator (a length-2
/// cycle would duplicate the edge). The next hop scans the ≤ 4 closed-form
/// neighbors and keeps the lowest-numbered distance-decreaser — the
/// canonical rule by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridRouter {
    p: u32,
    q: u32,
    wrap: bool,
}

impl GridRouter {
    /// Router for `grid(pxq)` (`wrap = false`) or `torus(pxq)`.
    pub fn new(p: usize, q: usize, wrap: bool) -> Self {
        GridRouter {
            p: p as u32,
            q: q as u32,
            wrap,
        }
    }

    fn axis_dist(x1: u32, x2: u32, len: u32, wrapped: bool) -> u32 {
        let d = x1.abs_diff(x2);
        if wrapped {
            d.min(len - d)
        } else {
            d
        }
    }

    fn dist_to(&self, r: u32, c: u32, r2: u32, c2: u32) -> u32 {
        Self::axis_dist(r, r2, self.p, self.wrap && self.p >= 3)
            + Self::axis_dist(c, c2, self.q, self.wrap && self.q >= 3)
    }

    /// The ≤ 4 neighbors of (r, c) as (row, col) pairs, unordered.
    fn neighbors_of(&self, r: u32, c: u32) -> [Option<(u32, u32)>; 4] {
        let mut out = [None; 4];
        let (wp, wq) = (self.wrap && self.p >= 3, self.wrap && self.q >= 3);
        if wp {
            out[0] = Some(((r + self.p - 1) % self.p, c));
            out[1] = Some(((r + 1) % self.p, c));
        } else {
            out[0] = (r > 0).then(|| (r - 1, c));
            out[1] = (r + 1 < self.p).then(|| (r + 1, c));
        }
        if wq {
            out[2] = Some((r, (c + self.q - 1) % self.q));
            out[3] = Some((r, (c + 1) % self.q));
        } else {
            out[2] = (c > 0).then(|| (r, c - 1));
            out[3] = (c + 1 < self.q).then(|| (r, c + 1));
        }
        out
    }
}

impl Router for GridRouter {
    fn node_count(&self) -> usize {
        (self.p * self.q) as usize
    }

    fn distance(&self, a: NodeId, b: NodeId) -> Option<u32> {
        debug_assert!(a.raw() < self.p * self.q && b.raw() < self.p * self.q);
        let (r1, c1) = (a.raw() / self.q, a.raw() % self.q);
        let (r2, c2) = (b.raw() / self.q, b.raw() % self.q);
        Some(self.dist_to(r1, c1, r2, c2))
    }

    fn next_hop(&self, a: NodeId, b: NodeId) -> Option<NodeId> {
        if a == b {
            return None;
        }
        let d = self.distance(a, b)?;
        let (r1, c1) = (a.raw() / self.q, a.raw() % self.q);
        let (r2, c2) = (b.raw() / self.q, b.raw() % self.q);
        let mut best = u32::MAX;
        for (r, c) in self.neighbors_of(r1, c1).into_iter().flatten() {
            if self.dist_to(r, c, r2, c2) + 1 == d {
                best = best.min(r * self.q + c);
            }
        }
        debug_assert_ne!(best, u32::MAX, "a neighbor must decrease distance");
        Some(NodeId::new(best))
    }

    fn for_each_neighbor(&self, v: NodeId, f: &mut dyn FnMut(NodeId)) {
        let (r, c) = (v.raw() / self.q, v.raw() % self.q);
        let mut ids = [u32::MAX; 4];
        for (slot, (nr, nc)) in ids
            .iter_mut()
            .zip(self.neighbors_of(r, c).into_iter().flatten())
        {
            *slot = nr * self.q + nc;
        }
        ids.sort_unstable();
        for id in ids {
            if id != u32::MAX {
                f(NodeId::new(id));
            }
        }
    }
}

/// d-cube (`hypercube(d)`): distance is Hamming. The canonical next hop
/// is *not* plain lowest-set-bit XOR: the lowest-numbered shortest-path
/// neighbor first clears the **highest** bit of `a & (a^b)` (clearing any
/// bit beats setting one, and clearing the highest clears the most), and
/// only once `a`'s surplus bits are gone sets the **lowest** bit of `a^b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HypercubeRouter {
    d: u32,
}

impl HypercubeRouter {
    /// Router for `hypercube(d)`, n = 2^d.
    ///
    /// # Panics
    ///
    /// Panics if `d > 30` (mirrors the generator's limit).
    pub fn new(d: u32) -> Self {
        assert!(d <= 30, "hypercube dimension too large: {d}");
        HypercubeRouter { d }
    }
}

impl Router for HypercubeRouter {
    fn node_count(&self) -> usize {
        1usize << self.d
    }

    fn distance(&self, a: NodeId, b: NodeId) -> Option<u32> {
        debug_assert!(a.index() < self.node_count() && b.index() < self.node_count());
        Some((a.raw() ^ b.raw()).count_ones())
    }

    fn next_hop(&self, a: NodeId, b: NodeId) -> Option<NodeId> {
        let diff = a.raw() ^ b.raw();
        if diff == 0 {
            return None;
        }
        let down = diff & a.raw();
        let bit = if down != 0 {
            31 - down.leading_zeros()
        } else {
            diff.trailing_zeros()
        };
        Some(NodeId::new(a.raw() ^ (1 << bit)))
    }

    fn for_each_neighbor(&self, v: NodeId, f: &mut dyn FnMut(NodeId)) {
        // ascending order: clearing bit i yields v − 2^i (descending i ⇒
        // ascending value, all below v), then setting yields v + 2^i.
        for i in (0..self.d).rev() {
            if v.raw() & (1 << i) != 0 {
                f(NodeId::new(v.raw() ^ (1 << i)));
            }
        }
        for i in 0..self.d {
            if v.raw() & (1 << i) == 0 {
                f(NodeId::new(v.raw() ^ (1 << i)));
            }
        }
    }
}

/// A routing backend: one of the closed-form families, or the BFS table
/// oracle for arbitrary graphs. Enum (not `dyn`) so the sim hot path
/// dispatches with a branch instead of a vtable and the whole thing stays
/// trivially `Send + Sync` for the sharded core.
#[derive(Debug, Clone)]
pub enum AnyRouter {
    /// `complete(n)` — everything one hop away.
    Complete(CompleteRouter),
    /// `ring(n)` — shorter arc, canonical antipodal tie-break.
    Ring(RingRouter),
    /// `grid(pxq)` / `torus(pxq)` — per-axis Manhattan / cyclic.
    Grid(GridRouter),
    /// `hypercube(d)` — Hamming distance, canonical bit order.
    Hypercube(HypercubeRouter),
    /// BFS all-pairs table: the O(n²) oracle of §3, for arbitrary graphs.
    Table(RoutingTable),
}

impl AnyRouter {
    /// Resolves an analytic router from a generator-convention graph name
    /// (`"complete(64)"`, `"ring(8)"`, `"grid(4x5)"`, `"torus(3x3)"`,
    /// `"hypercube(5)"`), validated against the node count `n`. Returns
    /// `None` for anything else — including a name whose advertised shape
    /// does not match `n`.
    pub fn analytic_for(name: &str, n: usize) -> Option<AnyRouter> {
        if n == 0 || n > u32::MAX as usize {
            return None;
        }
        if let Some(k) = parse_arg(name, "complete") {
            return (k == n as u64).then(|| AnyRouter::Complete(CompleteRouter::new(n)));
        }
        if let Some(k) = parse_arg(name, "ring") {
            return (k == n as u64).then(|| AnyRouter::Ring(RingRouter::new(n)));
        }
        if let Some(d) = parse_arg(name, "hypercube") {
            if d <= 30 && (1u64 << d) == n as u64 {
                return Some(AnyRouter::Hypercube(HypercubeRouter::new(d as u32)));
            }
            return None;
        }
        for (prefix, wrap) in [("grid", false), ("torus", true)] {
            if let Some((p, q)) = parse_dims(name, prefix) {
                return (p * q == n as u64)
                    .then(|| AnyRouter::Grid(GridRouter::new(p as usize, q as usize, wrap)));
            }
        }
        None
    }

    /// The routing backend for `g`: analytic when the graph name matches a
    /// structured family (edges are never consulted — shell graphs route
    /// fine), the BFS table oracle otherwise.
    pub fn for_graph(g: &Graph) -> AnyRouter {
        Self::analytic_for(g.name(), g.node_count())
            .unwrap_or_else(|| AnyRouter::Table(RoutingTable::new(g)))
    }

    /// The table oracle for `g`, regardless of name. O(n²) memory.
    pub fn table_for(g: &Graph) -> AnyRouter {
        AnyRouter::Table(RoutingTable::new(g))
    }

    /// `true` for the closed-form backends, `false` for the table oracle.
    pub fn is_analytic(&self) -> bool {
        !matches!(self, AnyRouter::Table(_))
    }

    /// Short label for reports/diagnostics: `"analytic"` or `"table"`.
    pub fn kind_label(&self) -> &'static str {
        if self.is_analytic() {
            "analytic"
        } else {
            "table"
        }
    }
}

/// `"ring(8)"` with prefix `"ring"` → `Some(8)`.
fn parse_arg(name: &str, prefix: &str) -> Option<u64> {
    parse_paren(name, prefix)?.parse().ok()
}

/// `"grid(4x5)"` with prefix `"grid"` → `Some((4, 5))`.
fn parse_dims(name: &str, prefix: &str) -> Option<(u64, u64)> {
    let (p, q) = parse_paren(name, prefix)?.split_once('x')?;
    Some((p.parse().ok()?, q.parse().ok()?))
}

fn parse_paren<'a>(name: &'a str, prefix: &str) -> Option<&'a str> {
    name.strip_prefix(prefix)?
        .strip_prefix('(')?
        .strip_suffix(')')
}

impl Router for AnyRouter {
    fn node_count(&self) -> usize {
        match self {
            AnyRouter::Complete(r) => r.node_count(),
            AnyRouter::Ring(r) => r.node_count(),
            AnyRouter::Grid(r) => r.node_count(),
            AnyRouter::Hypercube(r) => r.node_count(),
            AnyRouter::Table(r) => Router::node_count(r),
        }
    }

    fn distance(&self, a: NodeId, b: NodeId) -> Option<u32> {
        match self {
            AnyRouter::Complete(r) => r.distance(a, b),
            AnyRouter::Ring(r) => r.distance(a, b),
            AnyRouter::Grid(r) => r.distance(a, b),
            AnyRouter::Hypercube(r) => r.distance(a, b),
            AnyRouter::Table(r) => Router::distance(r, a, b),
        }
    }

    fn next_hop(&self, a: NodeId, b: NodeId) -> Option<NodeId> {
        match self {
            AnyRouter::Complete(r) => r.next_hop(a, b),
            AnyRouter::Ring(r) => r.next_hop(a, b),
            AnyRouter::Grid(r) => r.next_hop(a, b),
            AnyRouter::Hypercube(r) => r.next_hop(a, b),
            AnyRouter::Table(r) => Router::next_hop(r, a, b),
        }
    }

    fn for_each_neighbor(&self, v: NodeId, f: &mut dyn FnMut(NodeId)) {
        match self {
            AnyRouter::Complete(r) => r.for_each_neighbor(v, f),
            AnyRouter::Ring(r) => r.for_each_neighbor(v, f),
            AnyRouter::Grid(r) => r.for_each_neighbor(v, f),
            AnyRouter::Hypercube(r) => r.for_each_neighbor(v, f),
            AnyRouter::Table(r) => Router::for_each_neighbor(r, v, f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    /// Every ordered pair: distance, next hop, neighborhood, and reverse
    /// next-hops must match the canonical table oracle exactly.
    fn assert_conformant(g: &Graph, r: &AnyRouter) {
        assert!(r.is_analytic(), "expected analytic router for {}", g.name());
        let oracle = RoutingTable::new(g);
        assert_eq!(r.node_count(), g.node_count());
        for a in g.nodes() {
            let mut mine = Vec::new();
            r.for_each_neighbor(a, &mut |u| mine.push(u));
            let real: Vec<NodeId> = g.neighbor_ids(a).collect();
            assert_eq!(mine, real, "{}: neighbors of {a:?}", g.name());
            for b in g.nodes() {
                assert_eq!(
                    r.distance(a, b),
                    RoutingTable::distance(&oracle, a, b),
                    "{}: distance {a:?}->{b:?}",
                    g.name()
                );
                assert_eq!(
                    r.next_hop(a, b),
                    RoutingTable::next_hop(&oracle, a, b),
                    "{}: next hop {a:?}->{b:?}",
                    g.name()
                );
                assert_eq!(
                    r.reverse_next_hops(a, b),
                    Router::reverse_next_hops(&oracle, a, b),
                    "{}: reverse hops origin {a:?} at {b:?}",
                    g.name()
                );
            }
        }
    }

    #[test]
    fn ring_conforms_to_oracle() {
        for k in [1usize, 2, 3, 4, 5, 6, 7, 8, 9, 12, 31] {
            let g = gen::ring(k);
            assert_conformant(&g, &AnyRouter::for_graph(&g));
        }
    }

    #[test]
    fn grid_and_torus_conform_to_oracle() {
        for (p, q) in [
            (1, 1),
            (1, 5),
            (2, 2),
            (2, 6),
            (3, 3),
            (4, 5),
            (5, 4),
            (7, 3),
        ] {
            for wrap in [false, true] {
                let g = gen::grid(p, q, wrap);
                assert_conformant(&g, &AnyRouter::for_graph(&g));
            }
        }
    }

    #[test]
    fn hypercube_conforms_to_oracle() {
        for d in 0u32..=6 {
            let g = gen::hypercube(d);
            assert_conformant(&g, &AnyRouter::for_graph(&g));
        }
    }

    #[test]
    fn complete_conforms_to_oracle() {
        for k in [1usize, 2, 3, 9] {
            let g = gen::complete(k);
            assert_conformant(&g, &AnyRouter::for_graph(&g));
        }
    }

    #[test]
    fn shell_graph_routes_without_edges() {
        // the whole point: a named, edgeless shell routes identically to
        // the materialized graph.
        let real = gen::grid(4, 6, true);
        let shell = Graph::with_name(24, "torus(4x6)");
        let r = AnyRouter::for_graph(&shell);
        assert!(r.is_analytic());
        let oracle = RoutingTable::new(&real);
        for a in real.nodes() {
            for b in real.nodes() {
                assert_eq!(r.distance(a, b), RoutingTable::distance(&oracle, a, b));
                assert_eq!(r.next_hop(a, b), RoutingTable::next_hop(&oracle, a, b));
            }
        }
    }

    #[test]
    fn hops_walk_matches_table_walk() {
        let g = gen::ring(9);
        let r = AnyRouter::for_graph(&g);
        let rt = RoutingTable::new(&g);
        for a in g.nodes() {
            for b in g.nodes() {
                let walked: Vec<NodeId> = r.hops(a, b).collect();
                let oracle: Vec<NodeId> = rt.hops(a, b).collect();
                assert_eq!(walked, oracle);
                assert_eq!(r.hops(a, b).size_hint().0, walked.len());
            }
        }
    }

    #[test]
    fn name_resolution_validates_shape() {
        // mismatched node counts must not resolve analytically.
        assert!(AnyRouter::analytic_for("ring(8)", 9).is_none());
        assert!(AnyRouter::analytic_for("grid(4x5)", 21).is_none());
        assert!(AnyRouter::analytic_for("hypercube(3)", 9).is_none());
        assert!(AnyRouter::analytic_for("complete(4)", 5).is_none());
        assert!(AnyRouter::analytic_for("", 5).is_none());
        assert!(AnyRouter::analytic_for("path(5)", 5).is_none());
        assert!(AnyRouter::analytic_for("ring(8", 8).is_none());
        // matched ones do.
        assert!(AnyRouter::analytic_for("ring(8)", 8).is_some());
        assert!(AnyRouter::analytic_for("torus(3x4)", 12).is_some());
        assert!(AnyRouter::analytic_for("hypercube(4)", 16).is_some());
    }

    #[test]
    fn unnamed_graph_falls_back_to_table() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let r = AnyRouter::for_graph(&g);
        assert!(!r.is_analytic());
        assert_eq!(r.kind_label(), "table");
        assert_eq!(r.next_hop(n(0), n(3)), Some(n(1)));
    }

    #[test]
    fn million_node_routers_are_cheap() {
        // 1M-node fabrics: distance and next hop in O(1), no allocation.
        let ring = RingRouter::new(1 << 20);
        assert_eq!(ring.distance(n(0), n(1 << 19)), Some(1 << 19));
        let grid = GridRouter::new(1024, 1024, false);
        assert_eq!(grid.distance(n(0), n((1 << 20) - 1)), Some(2046));
        let torus = GridRouter::new(1024, 1024, true);
        assert_eq!(torus.distance(n(0), n((1 << 20) - 1)), Some(2));
        let cube = HypercubeRouter::new(20);
        assert_eq!(cube.distance(n(0), n((1 << 20) - 1)), Some(20));
        // a canonical walk across the cube terminates in d hops.
        assert_eq!(cube.hops(n(0), n((1 << 20) - 1)).count(), 20);
    }
}
