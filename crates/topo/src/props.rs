//! Structural graph properties: connectivity, components, degree
//! statistics. Used for validating generators and for reproducing the
//! UUCPnet degree table of paper §3.6.

use crate::graph::{Graph, NodeId};
use crate::routing::bfs;

/// Returns `true` if the graph is connected (vacuously true for `n <= 1`).
pub fn is_connected(g: &Graph) -> bool {
    match g.node_count() {
        0 | 1 => true,
        n => bfs(g, NodeId::new(0)).order.len() == n,
    }
}

/// Connected components as node lists, each sorted ascending; components
/// ordered by their smallest node.
pub fn components(g: &Graph) -> Vec<Vec<NodeId>> {
    let n = g.node_count();
    let mut seen = vec![false; n];
    let mut out = Vec::new();
    for s in 0..n {
        if seen[s] {
            continue;
        }
        let b = bfs(g, NodeId::new(s as u32));
        let mut comp: Vec<NodeId> = b.order;
        for v in &comp {
            seen[v.index()] = true;
        }
        comp.sort_unstable();
        out.push(comp);
    }
    out
}

/// Degree histogram: `hist[d]` = number of nodes of degree `d`.
///
/// The vector has length `max_degree + 1` (empty for an empty graph). This
/// regenerates the *shape* of the UUCPnet table of §3.6.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = Vec::new();
    for v in g.nodes() {
        let d = g.degree(v);
        if hist.len() <= d {
            hist.resize(d + 1, 0);
        }
        hist[d] += 1;
    }
    hist
}

/// Summary degree statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree `2m/n`.
    pub mean: f64,
}

/// Computes min/max/mean degree. Returns `None` for an empty graph.
pub fn degree_stats(g: &Graph) -> Option<DegreeStats> {
    if g.is_empty() {
        return None;
    }
    let mut min = usize::MAX;
    let mut max = 0;
    for v in g.nodes() {
        let d = g.degree(v);
        min = min.min(d);
        max = max.max(d);
    }
    Some(DegreeStats {
        min,
        max,
        mean: 2.0 * g.edge_count() as f64 / g.node_count() as f64,
    })
}

/// Returns `true` if the graph is a tree (connected, `m = n - 1`).
pub fn is_tree(g: &Graph) -> bool {
    g.node_count() > 0 && g.edge_count() == g.node_count() - 1 && is_connected(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn connectivity() {
        assert!(is_connected(&gen::ring(5)));
        assert!(is_connected(&Graph::new(1)));
        assert!(is_connected(&Graph::new(0)));
        assert!(!is_connected(&Graph::new(2)));
        assert!(!is_connected(
            &Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap()
        ));
    }

    #[test]
    fn component_listing() {
        let g = Graph::from_edges(5, [(0, 1), (3, 4)]).unwrap();
        let comps = components(&g);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![NodeId::new(0), NodeId::new(1)]);
        assert_eq!(comps[1], vec![NodeId::new(2)]);
        assert_eq!(comps[2], vec![NodeId::new(3), NodeId::new(4)]);
    }

    #[test]
    fn degree_histogram_of_star() {
        let g = gen::star(5); // center 0, leaves 1..5
        let hist = degree_histogram(&g);
        assert_eq!(hist[1], 5);
        assert_eq!(hist[5], 1);
        assert_eq!(hist.iter().sum::<usize>(), 6);
    }

    #[test]
    fn degree_stats_of_complete() {
        let g = gen::complete(5);
        let s = degree_stats(&g).unwrap();
        assert_eq!(s.min, 4);
        assert_eq!(s.max, 4);
        assert!((s.mean - 4.0).abs() < 1e-12);
        assert_eq!(degree_stats(&Graph::new(0)), None);
    }

    #[test]
    fn tree_detection() {
        assert!(is_tree(&gen::path(5)));
        assert!(is_tree(&gen::star(4)));
        assert!(!is_tree(&gen::ring(5)));
        assert!(!is_tree(&Graph::new(2)));
    }
}
