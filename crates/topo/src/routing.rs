//! Shortest-path routing.
//!
//! The paper assumes (§3): *"each node has a table containing the names of
//! all other nodes together with the minimum cost to reach them and the
//! neighbor at which the minimum cost path starts."* [`RoutingTable`] is
//! exactly that: all-pairs hop distances plus first-hop (next-hop) entries,
//! computed by `n` breadth-first searches. It also supports the
//! *reverse-path* trick of §4 (Dalal–Metcalfe tables used "back-to-front")
//! via [`Router::reverse_next_hops`](crate::router::Router::reverse_next_hops).
//!
//! The table is *canonical*: when several neighbors start a shortest path,
//! the next hop is always the lowest-numbered one. That pins a unique path
//! per (src, dst) pair, which is what lets the closed-form routers in
//! [`crate::router`] reproduce table-backed runs byte-for-byte.

use crate::graph::{Graph, NodeId};
use std::sync::atomic::{AtomicU64, Ordering};

/// Global count of [`RoutingTable::new`] invocations (process-wide).
///
/// This exists for the memory-regression guard: structured-topology runs
/// that resolve to an analytic [`crate::router::AnyRouter`] must never
/// build an O(n²) table, and tests assert it by diffing this counter
/// around a run. Monotonic; never reset.
pub fn table_build_count() -> u64 {
    TABLE_BUILDS.load(Ordering::Relaxed)
}

static TABLE_BUILDS: AtomicU64 = AtomicU64::new(0);

/// Result of a single-source BFS: hop distances and BFS-tree parents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bfs {
    /// `dist[v]` is the hop distance from the source, `u32::MAX` if
    /// unreachable.
    pub dist: Vec<u32>,
    /// `parent[v]` is the predecessor of `v` on a shortest path from the
    /// source; `u32::MAX` for the source itself and unreachable nodes.
    pub parent: Vec<u32>,
    /// Nodes in visit (non-decreasing distance) order, starting with the
    /// source.
    pub order: Vec<NodeId>,
}

/// Runs a breadth-first search from `src`.
///
/// # Panics
///
/// Panics if `src` is out of range.
pub fn bfs(g: &Graph, src: NodeId) -> Bfs {
    let n = g.node_count();
    let mut dist = vec![u32::MAX; n];
    let mut parent = vec![u32::MAX; n];
    let mut order = Vec::with_capacity(n);
    let mut queue = std::collections::VecDeque::new();
    dist[src.index()] = 0;
    queue.push_back(src.raw());
    while let Some(v) = queue.pop_front() {
        order.push(NodeId::new(v));
        let dv = dist[v as usize];
        for &u in g.neighbors(NodeId::new(v)) {
            if dist[u as usize] == u32::MAX {
                dist[u as usize] = dv + 1;
                parent[u as usize] = v;
                queue.push_back(u);
            }
        }
    }
    Bfs {
        dist,
        parent,
        order,
    }
}

/// All-pairs hop distances and next-hop table over a fixed graph.
///
/// Construction costs `O(n·(n+m))` time and `O(n²)` space, mirroring the
/// per-node tables the paper assumes each processor maintains.
///
/// # Example
///
/// ```
/// use mm_topo::{gen, RoutingTable, NodeId};
///
/// let g = gen::ring(6);
/// let rt = RoutingTable::new(&g);
/// assert_eq!(rt.distance(NodeId::new(0), NodeId::new(3)), Some(3));
/// let path = rt.path(NodeId::new(0), NodeId::new(2)).unwrap();
/// assert_eq!(path.len(), 3); // 0 -> 1 -> 2
/// ```
#[derive(Debug, Clone)]
pub struct RoutingTable {
    n: usize,
    /// Row-major `n×n`: hop distance or `u32::MAX`.
    dist: Vec<u32>,
    /// Row-major `n×n`: first hop on a shortest path from row to column;
    /// `u32::MAX` when unreachable or `row == col`.
    next: Vec<u32>,
}

impl RoutingTable {
    /// Builds the all-pairs table for `g`.
    ///
    /// Next hops are canonical: `next[s][v]` is the *lowest-numbered*
    /// neighbor `u` of `s` with `dist(u, v) + 1 == dist(s, v)`. This makes
    /// the table a deterministic oracle independent of BFS visit order, so
    /// the analytic routers in [`crate::router`] can match it exactly.
    pub fn new(g: &Graph) -> Self {
        TABLE_BUILDS.fetch_add(1, Ordering::Relaxed);
        let n = g.node_count();
        let mut dist = vec![u32::MAX; n * n];
        for s in 0..n {
            let b = bfs(g, NodeId::new(s as u32));
            dist[s * n..(s + 1) * n].copy_from_slice(&b.dist);
        }
        let mut next = vec![u32::MAX; n * n];
        for s in 0..n {
            for v in 0..n {
                let d = dist[s * n + v];
                if v == s || d == u32::MAX {
                    continue;
                }
                // adjacency lists are sorted ascending, so the first
                // distance-decreasing neighbor is the lowest-numbered one.
                for &u in g.neighbors(NodeId::new(s as u32)) {
                    if dist[u as usize * n + v] + 1 == d {
                        next[s * n + v] = u;
                        break;
                    }
                }
            }
        }
        RoutingTable { n, dist, next }
    }

    /// Number of nodes the table covers.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Hop distance from `a` to `b`, or `None` if unreachable.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn distance(&self, a: NodeId, b: NodeId) -> Option<u32> {
        let d = self.dist[a.index() * self.n + b.index()];
        (d != u32::MAX).then_some(d)
    }

    /// First hop on a shortest path from `a` to `b`.
    ///
    /// Returns `None` if `a == b` or `b` is unreachable from `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn next_hop(&self, a: NodeId, b: NodeId) -> Option<NodeId> {
        let h = self.next[a.index() * self.n + b.index()];
        (h != u32::MAX).then_some(NodeId::new(h))
    }

    /// Full shortest path from `a` to `b` inclusive of both endpoints.
    ///
    /// Returns `None` if `b` is unreachable from `a`. For `a == b` the path
    /// is the single node `[a]`.
    ///
    /// Allocates the whole path; hot paths that only need to *visit* the
    /// hops (hop counting, crash checks) should use [`RoutingTable::hops`]
    /// instead, which walks the same next-hop entries without materializing
    /// a `Vec`.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn path(&self, a: NodeId, b: NodeId) -> Option<Vec<NodeId>> {
        if a == b {
            return Some(vec![a]);
        }
        self.distance(a, b)?;
        let mut path = vec![a];
        path.extend(self.hops(a, b));
        Some(path)
    }

    /// Walks the shortest path from `a` to `b` hop by hop, yielding each
    /// node *after* `a` (so the final item is `b`). Allocation-free: each
    /// step is one next-hop table lookup.
    ///
    /// The walk is empty when `a == b` and also when `b` is unreachable
    /// from `a` — callers that need to distinguish the two should check
    /// [`RoutingTable::distance`] first.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range (on the first `next` call).
    pub fn hops(&self, a: NodeId, b: NodeId) -> HopWalk<'_> {
        HopWalk {
            table: self,
            cur: a,
            dest: b,
        }
    }

    /// Eccentricity of `v`: max distance to any reachable node.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn eccentricity(&self, v: NodeId) -> u32 {
        self.dist[v.index() * self.n..(v.index() + 1) * self.n]
            .iter()
            .copied()
            .filter(|&d| d != u32::MAX)
            .max()
            .unwrap_or(0)
    }

    /// Graph diameter over reachable pairs (0 for empty/singleton graphs).
    pub fn diameter(&self) -> u32 {
        (0..self.n)
            .map(|v| self.eccentricity(NodeId::new(v as u32)))
            .max()
            .unwrap_or(0)
    }
}

/// Allocation-free shortest-path walk produced by [`RoutingTable::hops`].
#[derive(Debug, Clone)]
pub struct HopWalk<'a> {
    table: &'a RoutingTable,
    cur: NodeId,
    dest: NodeId,
}

impl Iterator for HopWalk<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if self.cur == self.dest {
            return None;
        }
        self.cur = self.table.next_hop(self.cur, self.dest)?;
        Some(self.cur)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self.table.distance(self.cur, self.dest) {
            Some(d) => (d as usize, Some(d as usize)),
            None => (0, Some(0)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn bfs_on_path_graph() {
        let g = gen::path(5);
        let b = bfs(&g, n(0));
        assert_eq!(b.dist, vec![0, 1, 2, 3, 4]);
        assert_eq!(b.order[0], n(0));
        assert_eq!(b.parent[4], 3);
    }

    #[test]
    fn bfs_unreachable() {
        let g = Graph::from_edges(4, [(0, 1)]).unwrap();
        let b = bfs(&g, n(0));
        assert_eq!(b.dist[2], u32::MAX);
        assert_eq!(b.dist[3], u32::MAX);
        assert_eq!(b.order.len(), 2);
    }

    #[test]
    fn ring_distances_and_paths() {
        let g = gen::ring(8);
        let rt = RoutingTable::new(&g);
        assert_eq!(rt.distance(n(0), n(4)), Some(4));
        assert_eq!(rt.distance(n(0), n(7)), Some(1));
        assert_eq!(rt.diameter(), 4);
        let p = rt.path(n(0), n(3)).unwrap();
        assert_eq!(p, vec![n(0), n(1), n(2), n(3)]);
        assert_eq!(rt.path(n(2), n(2)).unwrap(), vec![n(2)]);
    }

    #[test]
    fn next_hop_is_a_neighbor_on_shortest_path() {
        let g = gen::grid(4, 5, false);
        let rt = RoutingTable::new(&g);
        for a in g.nodes() {
            for b in g.nodes() {
                if a == b {
                    assert_eq!(rt.next_hop(a, b), None);
                    continue;
                }
                let h = rt.next_hop(a, b).unwrap();
                assert!(g.has_edge(a, h), "next hop must be adjacent");
                assert_eq!(
                    rt.distance(h, b).unwrap() + 1,
                    rt.distance(a, b).unwrap(),
                    "next hop must decrease distance by one"
                );
            }
        }
    }

    #[test]
    fn hops_walk_matches_materialized_path() {
        let g = gen::grid(4, 5, false);
        let rt = RoutingTable::new(&g);
        for a in g.nodes() {
            for b in g.nodes() {
                let walked: Vec<NodeId> = rt.hops(a, b).collect();
                let path = rt.path(a, b).unwrap();
                assert_eq!(path[0], a);
                assert_eq!(&path[1..], &walked[..], "walk is the path minus its start");
                assert_eq!(rt.hops(a, b).size_hint().0 as u32, walked.len() as u32);
            }
        }
    }

    #[test]
    fn hops_walk_is_empty_for_self_and_unreachable() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let rt = RoutingTable::new(&g);
        assert_eq!(rt.hops(n(1), n(1)).count(), 0);
        assert_eq!(rt.hops(n(0), n(2)).count(), 0, "unreachable walk ends");
    }

    #[test]
    fn unreachable_pairs_have_no_route() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let rt = RoutingTable::new(&g);
        assert_eq!(rt.distance(n(0), n(2)), None);
        assert_eq!(rt.next_hop(n(0), n(2)), None);
        assert_eq!(rt.path(n(0), n(2)), None);
    }

    #[test]
    fn hypercube_distance_is_hamming() {
        let g = gen::hypercube(5);
        let rt = RoutingTable::new(&g);
        for a in 0u32..32 {
            for b in 0u32..32 {
                let hamming = (a ^ b).count_ones();
                assert_eq!(rt.distance(n(a), n(b)), Some(hamming));
            }
        }
    }

    #[test]
    fn reverse_next_hops_move_away_from_origin() {
        use crate::router::Router;
        let g = gen::grid(5, 5, false);
        let rt = RoutingTable::new(&g);
        let origin = n(12); // center of the 5x5 grid
        for v in g.nodes() {
            for u in rt.reverse_next_hops(origin, v) {
                let dv = rt.distance(origin, v).unwrap();
                let du = rt.distance(origin, u).unwrap();
                assert_eq!(du, dv + 1, "beam step must increase distance from origin");
            }
        }
    }

    #[test]
    fn eccentricity_of_path_ends() {
        let g = gen::path(6);
        let rt = RoutingTable::new(&g);
        assert_eq!(rt.eccentricity(n(0)), 5);
        assert_eq!(rt.eccentricity(n(3)), 3);
        assert_eq!(rt.diameter(), 5);
    }
}
