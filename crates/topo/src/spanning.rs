//! Spanning-tree broadcast and multicast cost accounting.
//!
//! The paper's complexity unit is the *message pass* (one hop). For a
//! complete network, posting at `P(i)` costs `#P(i)` passes. In a
//! store-and-forward network (§2.3.5):
//!
//! * if the subgraph induced by the addressed set (plus the sender) is
//!   connected, broadcasting over a spanning tree of it costs exactly
//!   `#addressed nodes` passes (one per tree edge reaching a new node);
//! * otherwise there is a routing *overhead*
//!   `m(i,j) − #P(i) − #Q(j) > 0`.
//!
//! [`multicast_cost`] computes the exact number of message passes needed to
//! deliver one message from a source to every node of a target set, using a
//! shortest-path Steiner-tree approximation (union of greedily-chosen
//! shortest paths): this is what a reasonable implementation would achieve
//! with per-node routing tables, and it degrades gracefully to the
//! spanning-tree number when the target set is locally connected.

use crate::graph::{Graph, NodeId};
use crate::routing::{bfs, RoutingTable};

/// A rooted spanning tree of (the reachable part of) a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanningTree {
    /// The root the tree was grown from.
    pub root: NodeId,
    /// `parent[v]` is `v`'s tree parent, `u32::MAX` for the root and for
    /// nodes unreachable from it.
    pub parent: Vec<u32>,
    /// Nodes reachable from the root, in BFS order (root first).
    pub order: Vec<NodeId>,
}

impl SpanningTree {
    /// Grows a BFS spanning tree of `g` from `root`.
    ///
    /// # Panics
    ///
    /// Panics if `root` is out of range.
    pub fn bfs(g: &Graph, root: NodeId) -> Self {
        let b = bfs(g, root);
        SpanningTree {
            root,
            parent: b.parent,
            order: b.order,
        }
    }

    /// Number of nodes the tree spans (reachable from the root).
    pub fn spanned(&self) -> usize {
        self.order.len()
    }

    /// Message passes to broadcast from the root to every spanned node:
    /// one per tree edge, i.e. `spanned() - 1`.
    pub fn broadcast_cost(&self) -> u64 {
        self.spanned().saturating_sub(1) as u64
    }

    /// The children lists of the tree (index = node).
    pub fn children(&self) -> Vec<Vec<NodeId>> {
        let mut ch = vec![Vec::new(); self.parent.len()];
        for &v in &self.order {
            let p = self.parent[v.index()];
            if p != u32::MAX {
                ch[p as usize].push(v);
            }
        }
        ch
    }
}

/// Message passes to deliver one message from `src` to every node in
/// `targets`, multicasting over a tree of shortest paths.
///
/// Builds a Steiner-tree approximation: starting from `{src}`, repeatedly
/// connect the closest not-yet-connected target through a shortest path to
/// the partial tree, and count each newly used edge as one message pass.
/// Duplicate targets and `src` itself are ignored.
///
/// Returns `None` if some target is unreachable from `src`.
///
/// # Panics
///
/// Panics if `src` or any target is out of range.
///
/// # Example
///
/// ```
/// use mm_topo::{gen, spanning::multicast_cost, RoutingTable, NodeId};
///
/// let g = gen::path(5); // 0-1-2-3-4
/// let rt = RoutingTable::new(&g);
/// // reaching nodes 2 and 4 from 0 shares the prefix 0-1-2: 4 passes total
/// let cost = multicast_cost(&g, &rt, NodeId::new(0),
///                           &[NodeId::new(2), NodeId::new(4)]).unwrap();
/// assert_eq!(cost, 4);
/// ```
pub fn multicast_cost(
    g: &Graph,
    rt: &RoutingTable,
    src: NodeId,
    targets: &[NodeId],
) -> Option<u64> {
    let n = g.node_count();
    let mut in_tree = vec![false; n];
    in_tree[src.index()] = true;
    let mut remaining: Vec<NodeId> = targets
        .iter()
        .copied()
        .filter(|&t| t != src)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let mut cost = 0u64;

    while !remaining.is_empty() {
        // Closest remaining target to the current tree. With all-pairs
        // distances this is exact: min over (tree node, target) pairs would
        // be O(|tree|·|targets|); we keep it near-linear by running a BFS
        // from the tree frontier instead when the tree grows large.
        let mut best: Option<(u32, usize, NodeId)> = None; // (dist, idx, attach)
        for (idx, &t) in remaining.iter().enumerate() {
            // distance from t to nearest tree node, via routing table rows
            let mut local_best: Option<(u32, NodeId)> = None;
            for (v, &in_t) in in_tree.iter().enumerate() {
                if !in_t {
                    continue;
                }
                if let Some(d) = rt.distance(NodeId::new(v as u32), t) {
                    if local_best.is_none_or(|(bd, _)| d < bd) {
                        local_best = Some((d, NodeId::new(v as u32)));
                    }
                }
            }
            let (d, attach) = local_best?;
            if best.is_none_or(|(bd, _, _)| d < bd) {
                best = Some((d, idx, attach));
            }
        }
        let (_, idx, attach) = best?;
        let t = remaining.swap_remove(idx);
        // walk the shortest path without materializing it
        for hop in rt.hops(attach, t) {
            // each newly traversed edge is one message pass; nodes joining
            // the tree stop needing re-delivery
            if !in_tree[hop.index()] {
                in_tree[hop.index()] = true;
                cost += 1;
            }
        }
    }
    Some(cost)
}

/// Message passes for a point-to-point send: the hop distance.
///
/// Returns `None` if `dst` is unreachable from `src`.
///
/// # Panics
///
/// Panics if `src` or `dst` is out of range.
pub fn unicast_cost(rt: &RoutingTable, src: NodeId, dst: NodeId) -> Option<u64> {
    rt.distance(src, dst).map(u64::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn spanning_tree_of_ring() {
        let g = gen::ring(6);
        let t = SpanningTree::bfs(&g, n(0));
        assert_eq!(t.spanned(), 6);
        assert_eq!(t.broadcast_cost(), 5);
        let ch = t.children();
        assert_eq!(ch[0].len(), 2); // ring root has two subtrees
    }

    #[test]
    fn spanning_tree_of_disconnected_graph_spans_component() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2)]).unwrap();
        let t = SpanningTree::bfs(&g, n(0));
        assert_eq!(t.spanned(), 3);
        assert_eq!(t.broadcast_cost(), 2);
    }

    #[test]
    fn multicast_to_connected_neighborhood_is_set_size() {
        // In a complete graph every target is one hop: cost = #targets.
        let g = gen::complete(6);
        let rt = RoutingTable::new(&g);
        let targets: Vec<NodeId> = (1..5).map(n).collect();
        assert_eq!(multicast_cost(&g, &rt, n(0), &targets), Some(4));
    }

    #[test]
    fn multicast_shares_path_prefixes() {
        let g = gen::path(7);
        let rt = RoutingTable::new(&g);
        // targets 3 and 6 share prefix 0-1-2-3: total = 6 edges not 9
        assert_eq!(multicast_cost(&g, &rt, n(0), &[n(3), n(6)]), Some(6));
    }

    #[test]
    fn multicast_ignores_duplicates_and_source() {
        let g = gen::path(4);
        let rt = RoutingTable::new(&g);
        assert_eq!(multicast_cost(&g, &rt, n(0), &[n(0), n(2), n(2)]), Some(2));
        assert_eq!(multicast_cost(&g, &rt, n(0), &[]), Some(0));
    }

    #[test]
    fn multicast_unreachable_target_is_none() {
        let g = Graph::from_edges(4, [(0, 1)]).unwrap();
        let rt = RoutingTable::new(&g);
        assert_eq!(multicast_cost(&g, &rt, n(0), &[n(3)]), None);
    }

    #[test]
    fn unicast_is_distance() {
        let g = gen::ring(10);
        let rt = RoutingTable::new(&g);
        assert_eq!(unicast_cost(&rt, n(0), n(5)), Some(5));
        assert_eq!(unicast_cost(&rt, n(0), n(9)), Some(1));
    }

    #[test]
    fn grid_multicast_row_costs_row_length_minus_one() {
        // In a p×q grid, posting along the whole row from a row member is a
        // connected sweep: q-1 passes. This is the Manhattan server cost.
        let g = gen::grid(4, 6, false);
        let rt = RoutingTable::new(&g);
        // row 2 = nodes 12..18
        let row: Vec<NodeId> = (12..18).map(n).collect();
        assert_eq!(multicast_cost(&g, &rt, n(14), &row), Some(5));
    }
}
