//! Spanning-tree broadcast and multicast cost accounting.
//!
//! The paper's complexity unit is the *message pass* (one hop). For a
//! complete network, posting at `P(i)` costs `#P(i)` passes. In a
//! store-and-forward network (§2.3.5):
//!
//! * if the subgraph induced by the addressed set (plus the sender) is
//!   connected, broadcasting over a spanning tree of it costs exactly
//!   `#addressed nodes` passes (one per tree edge reaching a new node);
//! * otherwise there is a routing *overhead*
//!   `m(i,j) − #P(i) − #Q(j) > 0`.
//!
//! [`multicast_cost`] computes the exact number of message passes needed to
//! deliver one message from a source to every node of a target set, using a
//! shortest-path Steiner-tree approximation (union of greedily-chosen
//! shortest paths): this is what a reasonable implementation would achieve
//! with per-node routing tables, and it degrades gracefully to the
//! spanning-tree number when the target set is locally connected.
//!
//! Cost accounting is generic over [`Router`], so it works equally on the
//! O(n²) table oracle and on the closed-form analytic routers — no
//! materialized graph or table is required.

use crate::graph::{Graph, NodeId};
use crate::router::Router;
use crate::routing::bfs;

/// A rooted spanning tree of (the reachable part of) a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanningTree {
    /// The root the tree was grown from.
    pub root: NodeId,
    /// `parent[v]` is `v`'s tree parent, `u32::MAX` for the root and for
    /// nodes unreachable from it.
    pub parent: Vec<u32>,
    /// Nodes reachable from the root, in BFS order (root first).
    pub order: Vec<NodeId>,
}

impl SpanningTree {
    /// Grows a BFS spanning tree of `g` from `root`.
    ///
    /// # Panics
    ///
    /// Panics if `root` is out of range.
    pub fn bfs(g: &Graph, root: NodeId) -> Self {
        let b = bfs(g, root);
        SpanningTree {
            root,
            parent: b.parent,
            order: b.order,
        }
    }

    /// Number of nodes the tree spans (reachable from the root).
    pub fn spanned(&self) -> usize {
        self.order.len()
    }

    /// Message passes to broadcast from the root to every spanned node:
    /// one per tree edge, i.e. `spanned() - 1`.
    pub fn broadcast_cost(&self) -> u64 {
        self.spanned().saturating_sub(1) as u64
    }

    /// The children lists of the tree (index = node).
    pub fn children(&self) -> Vec<Vec<NodeId>> {
        let mut ch = vec![Vec::new(); self.parent.len()];
        for &v in &self.order {
            let p = self.parent[v.index()];
            if p != u32::MAX {
                ch[p as usize].push(v);
            }
        }
        ch
    }
}

/// Message passes to deliver one message from `src` to every node in
/// `targets`, multicasting over a tree of shortest paths.
///
/// Builds a Steiner-tree approximation: targets are connected in ascending
/// node order, each through the canonical shortest path from its nearest
/// *anchor* — the source or an earlier-connected target, first-scanned wins
/// a distance tie — and each edge reaching a not-yet-covered node counts as
/// one message pass. Shared path prefixes are charged once. Duplicate
/// targets and `src` itself are ignored.
///
/// The accounting uses only [`Router::distance`] and [`Router::hops`], so
/// the cost of computing the cost is O(|targets|² + Σ path lengths) —
/// independent of which backend routes, and never O(n·|targets|²) like a
/// tree-membership scan would be. That is what keeps hop-cost multicast
/// feasible at n = 1,048,576.
///
/// Returns `None` if some target is unreachable from `src`.
///
/// # Panics
///
/// Panics if `src` or any target is out of range.
///
/// # Example
///
/// ```
/// use mm_topo::{gen, spanning::multicast_cost, RoutingTable, NodeId};
///
/// let g = gen::path(5); // 0-1-2-3-4
/// let rt = RoutingTable::new(&g);
/// // reaching nodes 2 and 4 from 0 shares the prefix 0-1-2: 4 passes total
/// let cost = multicast_cost(&rt, NodeId::new(0),
///                           &[NodeId::new(2), NodeId::new(4)]).unwrap();
/// assert_eq!(cost, 4);
/// ```
pub fn multicast_cost<R: Router>(rt: &R, src: NodeId, targets: &[NodeId]) -> Option<u64> {
    let n = rt.node_count();
    let mut covered = vec![false; n];
    covered[src.index()] = true;
    let sorted: Vec<NodeId> = targets
        .iter()
        .copied()
        .filter(|&t| t != src)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let mut anchors: Vec<NodeId> = Vec::with_capacity(sorted.len() + 1);
    anchors.push(src);
    let mut cost = 0u64;

    for &t in &sorted {
        // nearest anchor; on ties the earliest-connected anchor wins.
        let mut best: Option<(u32, NodeId)> = None;
        for &a in &anchors {
            if let Some(d) = rt.distance(a, t) {
                if best.is_none_or(|(bd, _)| d < bd) {
                    best = Some((d, a));
                }
            }
        }
        let (_, attach) = best?;
        // walk the canonical shortest path without materializing it; each
        // edge reaching a new node is one message pass.
        for hop in rt.hops(attach, t) {
            if !covered[hop.index()] {
                covered[hop.index()] = true;
                cost += 1;
            }
        }
        anchors.push(t);
    }
    Some(cost)
}

/// Message passes for a point-to-point send: the hop distance.
///
/// Returns `None` if `dst` is unreachable from `src`.
///
/// # Panics
///
/// Panics if `src` or `dst` is out of range.
pub fn unicast_cost<R: Router>(rt: &R, src: NodeId, dst: NodeId) -> Option<u64> {
    rt.distance(src, dst).map(u64::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::routing::RoutingTable;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn spanning_tree_of_ring() {
        let g = gen::ring(6);
        let t = SpanningTree::bfs(&g, n(0));
        assert_eq!(t.spanned(), 6);
        assert_eq!(t.broadcast_cost(), 5);
        let ch = t.children();
        assert_eq!(ch[0].len(), 2); // ring root has two subtrees
    }

    #[test]
    fn spanning_tree_of_disconnected_graph_spans_component() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2)]).unwrap();
        let t = SpanningTree::bfs(&g, n(0));
        assert_eq!(t.spanned(), 3);
        assert_eq!(t.broadcast_cost(), 2);
    }

    #[test]
    fn multicast_to_connected_neighborhood_is_set_size() {
        // In a complete graph every target is one hop: cost = #targets.
        let g = gen::complete(6);
        let rt = RoutingTable::new(&g);
        let targets: Vec<NodeId> = (1..5).map(n).collect();
        assert_eq!(multicast_cost(&rt, n(0), &targets), Some(4));
    }

    #[test]
    fn multicast_shares_path_prefixes() {
        let g = gen::path(7);
        let rt = RoutingTable::new(&g);
        // targets 3 and 6 share prefix 0-1-2-3: total = 6 edges not 9
        assert_eq!(multicast_cost(&rt, n(0), &[n(3), n(6)]), Some(6));
    }

    #[test]
    fn multicast_ignores_duplicates_and_source() {
        let g = gen::path(4);
        let rt = RoutingTable::new(&g);
        assert_eq!(multicast_cost(&rt, n(0), &[n(0), n(2), n(2)]), Some(2));
        assert_eq!(multicast_cost(&rt, n(0), &[]), Some(0));
    }

    #[test]
    fn multicast_unreachable_target_is_none() {
        let g = Graph::from_edges(4, [(0, 1)]).unwrap();
        let rt = RoutingTable::new(&g);
        assert_eq!(multicast_cost(&rt, n(0), &[n(3)]), None);
    }

    #[test]
    fn unicast_is_distance() {
        let g = gen::ring(10);
        let rt = RoutingTable::new(&g);
        assert_eq!(unicast_cost(&rt, n(0), n(5)), Some(5));
        assert_eq!(unicast_cost(&rt, n(0), n(9)), Some(1));
    }

    #[test]
    fn grid_multicast_row_costs_row_length_minus_one() {
        // In a p×q grid, posting along the whole row from a row member is a
        // connected sweep: q-1 passes. This is the Manhattan server cost.
        let g = gen::grid(4, 6, false);
        let rt = RoutingTable::new(&g);
        // row 2 = nodes 12..18
        let row: Vec<NodeId> = (12..18).map(n).collect();
        assert_eq!(multicast_cost(&rt, n(14), &row), Some(5));
    }

    /// Cost pins on every analytic family: the table oracle and the
    /// closed-form router must charge identical passes, and the values are
    /// pinned so accounting drift is loud.
    #[test]
    fn multicast_and_unicast_pin_on_all_generators() {
        use crate::router::AnyRouter;
        let cases: [(Graph, u32, Vec<u32>, u64); 5] = [
            // complete: every target one hop → #targets
            (gen::complete(8), 0, (1..6).collect(), 5),
            // ring(12): targets 3,6,9 from 0 — 0→3 (3), 3→6 (3), 9 via
            // 0 backwards (3): contiguous sweeps, 9 passes
            (gen::ring(12), 0, vec![3, 6, 9], 9),
            // grid(3x4): row 1 (4..8) plus far corner 11 from 5 — the
            // corner attaches to row-end 7, one hop down: 4 total
            (gen::grid(3, 4, false), 5, vec![4, 6, 7, 11], 4),
            // torus(4x4): opposite corner is 2 hops with wrap
            (gen::grid(4, 4, true), 0, vec![15], 2),
            // hypercube(4): antipode + two of its neighbors share a prefix
            (gen::hypercube(4), 0, vec![15, 14, 7], 6),
        ];
        for (g, src, targets, want) in cases {
            let targets: Vec<NodeId> = targets.into_iter().map(n).collect();
            let table = AnyRouter::table_for(&g);
            let analytic = AnyRouter::for_graph(&g);
            assert!(analytic.is_analytic(), "{}", g.name());
            let via_table = multicast_cost(&table, n(src), &targets);
            let via_closed = multicast_cost(&analytic, n(src), &targets);
            assert_eq!(via_table, via_closed, "{}", g.name());
            assert_eq!(via_table, Some(want), "{}", g.name());
            for &t in &targets {
                assert_eq!(
                    unicast_cost(&table, n(src), t),
                    unicast_cost(&analytic, n(src), t),
                    "{}",
                    g.name()
                );
            }
        }
    }
}
