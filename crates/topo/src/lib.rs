//! # mm-topo — network-topology substrate for distributed match-making
//!
//! This crate provides the graph machinery that the match-making theory of
//! Mullender & Vitányi (PODC 1985) is exercised on:
//!
//! * [`Graph`] — a compact undirected graph with adjacency lists,
//! * [`routing`] — BFS shortest paths and all-pairs next-hop routing tables
//!   (the paper assumes "each node has a table containing the names of all
//!   other nodes together with the minimum cost to reach them and the
//!   neighbor at which the minimum cost path starts"),
//! * [`router`] — the [`Router`] trait with closed-form, O(1)-memory
//!   next-hop routing for the structured families (ring, grid, torus,
//!   hypercube, complete), byte-conformant to the [`RoutingTable`] oracle,
//! * [`spanning`] — spanning-tree broadcast and multicast (Steiner) cost
//!   accounting in *message passes*, the paper's complexity unit,
//! * [`decompose`] — the Erdős–Gerencsér–Máté style division of a connected
//!   graph into `O(√n)` disjoint connected subgraphs of `≈√n` nodes each
//!   (paper §3, used by the general-network locate algorithm),
//! * [`gen`] — generators for every topology the paper analyses: complete
//!   graphs, rings, Manhattan grids and tori, d-dimensional meshes, binary
//!   hypercubes, cube-connected cycles, projective planes `PG(2,k)`,
//!   balanced and degree-profile trees, hierarchical networks and synthetic
//!   UUCP-like networks,
//! * [`gf`] — `GF(p)` arithmetic backing the projective-plane construction.
//!
//! # Example
//!
//! ```
//! use mm_topo::{gen, routing::RoutingTable};
//!
//! let g = gen::hypercube(4); // 16 nodes
//! assert_eq!(g.node_count(), 16);
//! let rt = RoutingTable::new(&g);
//! // opposite corners of a 4-cube are 4 hops apart
//! assert_eq!(rt.distance(0u32.into(), 15u32.into()), Some(4));
//! ```

pub mod decompose;
pub mod gen;
pub mod gf;
pub mod graph;
pub mod props;
pub mod router;
pub mod routing;
pub mod spanning;

pub use decompose::Decomposition;
pub use gen::projective::ProjectivePlane;
pub use graph::{Graph, NodeId, TopoError};
pub use router::{AnyRouter, Router};
pub use routing::RoutingTable;
