//! Conformance gate for the analytic routers (ISSUE 10, satellite 1).
//!
//! The closed-form routers must be *indistinguishable* from the BFS
//! routing-table oracle: same distances, same canonical min-index next
//! hops, same reverse-path neighbor sets, on every (src, dst) pair of
//! every generated topology. Property tests sweep randomized generator
//! parameters (hundreds of topology instances), and fixed spot checks
//! pin the n = 4096 upper edge of the oracle's range — beyond it only
//! the analytic forms exist, which is exactly why byte-equivalence must
//! be airtight below it.

use mm_topo::{gen, AnyRouter, NodeId, Router};
use proptest::prelude::*;

/// Asserts full all-pairs agreement between the analytic router for `g`
/// and the freshly-built table oracle.
fn assert_conformant(g: &mm_topo::Graph) {
    let analytic = AnyRouter::for_graph(g);
    assert!(
        analytic.is_analytic(),
        "{}: expected an analytic resolution",
        g.name()
    );
    let oracle = AnyRouter::table_for(g);
    let n = g.node_count();
    assert_eq!(analytic.node_count(), n, "{}", g.name());
    for a in 0..n {
        let a = NodeId::new(a as u32);
        for b in 0..n {
            let b = NodeId::new(b as u32);
            assert_eq!(
                analytic.distance(a, b),
                oracle.distance(a, b),
                "{}: distance({a}, {b})",
                g.name()
            );
            assert_eq!(
                analytic.next_hop(a, b),
                oracle.next_hop(a, b),
                "{}: next_hop({a}, {b})",
                g.name()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ring_router_matches_oracle(n in 1usize..96) {
        assert_conformant(&gen::ring(n));
    }

    #[test]
    fn grid_and_torus_routers_match_oracle(
        p in 1usize..14,
        q in 1usize..14,
        wrap in 0u8..2,
    ) {
        assert_conformant(&gen::grid(p, q, wrap == 1));
    }

    #[test]
    fn hypercube_router_matches_oracle(d in 0u32..8) {
        assert_conformant(&gen::hypercube(d));
    }

    #[test]
    fn complete_router_matches_oracle(n in 1usize..48) {
        assert_conformant(&gen::complete(n));
    }

    #[test]
    fn hop_walks_reproduce_oracle_paths(
        p in 2usize..12,
        q in 2usize..12,
        wrap in 0u8..2,
        seed in any::<u64>(),
    ) {
        // the walk (the delivery-time hot path) must traverse the exact
        // oracle path, node for node, not merely match its length
        let g = gen::grid(p, q, wrap == 1);
        let analytic = AnyRouter::for_graph(&g);
        let oracle = AnyRouter::table_for(&g);
        let n = g.node_count() as u64;
        let a = NodeId::new((seed % n) as u32);
        let b = NodeId::new((seed / 7 % n) as u32);
        let walked: Vec<NodeId> = analytic.hops(a, b).collect();
        let want: Vec<NodeId> = oracle.hops(a, b).collect();
        prop_assert_eq!(walked, want);
    }

    #[test]
    fn reverse_next_hops_match_oracle(
        p in 1usize..10,
        q in 1usize..10,
        wrap in 0u8..2,
        seed in any::<u64>(),
    ) {
        // lighthouse beams (§4 reverse-path) depend on the away-from-origin
        // neighbor sets AND their order; both must agree with the oracle
        let g = gen::grid(p, q, wrap == 1);
        let analytic = AnyRouter::for_graph(&g);
        let oracle = AnyRouter::table_for(&g);
        let n = g.node_count() as u64;
        let origin = NodeId::new((seed % n) as u32);
        let v = NodeId::new((seed / 11 % n) as u32);
        prop_assert_eq!(
            analytic.reverse_next_hops(origin, v),
            oracle.reverse_next_hops(origin, v)
        );
    }
}

/// The oracle's upper edge: every structured family at n = 4096 (the
/// `--router table` ceiling), checked all-pairs. Everything larger is
/// analytic-only, extrapolated from exactly this boundary.
#[test]
fn conformance_holds_at_the_table_ceiling() {
    assert_conformant(&gen::ring(4096));
    assert_conformant(&gen::grid(64, 64, false));
    assert_conformant(&gen::grid(64, 64, true));
    assert_conformant(&gen::hypercube(12));
}

/// Analytic routing needs no adjacency: a named, edgeless shell answers
/// the same routes as the materialized graph.
#[test]
fn shell_graphs_route_identically_to_materialized_graphs() {
    let materialized = AnyRouter::for_graph(&gen::grid(9, 7, true));
    let shell = AnyRouter::analytic_for("torus(9x7)", 63).unwrap();
    for a in 0..63u32 {
        for b in 0..63u32 {
            let (a, b) = (NodeId::new(a), NodeId::new(b));
            assert_eq!(materialized.distance(a, b), shell.distance(a, b));
            assert_eq!(materialized.next_hop(a, b), shell.next_hop(a, b));
        }
    }
}

/// Distance spot checks at n = 1,048,576 — far beyond anything a table
/// could hold (it would need 8 TiB) — pin the closed forms at the scale
/// the topology-scale campaign actually runs.
#[test]
fn million_node_routers_answer_in_constant_space() {
    let ring = AnyRouter::analytic_for("ring(1048576)", 1 << 20).unwrap();
    assert_eq!(
        ring.distance(NodeId::new(0), NodeId::new(1 << 19)),
        Some(1 << 19)
    );
    let torus = AnyRouter::analytic_for("torus(1024x1024)", 1 << 20).unwrap();
    assert_eq!(
        torus.distance(NodeId::new(0), NodeId::new((1 << 20) - 1)),
        Some(2)
    );
    let cube = AnyRouter::analytic_for("hypercube(20)", 1 << 20).unwrap();
    assert_eq!(
        cube.distance(NodeId::new(0), NodeId::new((1 << 20) - 1)),
        Some(20)
    );
    // a full shortest walk across the hypercube terminates in d hops
    assert_eq!(
        cube.hops(NodeId::new(0), NodeId::new((1 << 20) - 1))
            .count(),
        20
    );
}
