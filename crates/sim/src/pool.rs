//! Persistent worker pool for the sharded executor.
//!
//! One OS thread per worker, each with its own job channel so a shard is
//! always executed by the same worker (`shard k → worker k % threads`,
//! keeping shard state cache-warm across rounds). Jobs are type-erased
//! function-pointer calls over raw state pointers; the coordinator blocks
//! until every job of a round completes (a `parking_lot` mutex + condvar
//! countdown), which is what makes the lifetime erasure sound: no job
//! pointer outlives the `run` call that lent it out.

use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A type-erased unit of round work: `run(state, ctx)`.
#[derive(Debug)]
pub(crate) struct Job {
    /// Monomorphized shard entry point (created where the concrete
    /// `M`/`N` types — and their `Send` obligations — are known).
    pub run: unsafe fn(*mut (), *const ()),
    /// Exclusive pointer to that shard's `ShardState<M, N>`.
    pub state: *mut (),
    /// Shared pointer to the round's `RoundCtx`.
    pub ctx: *const (),
}

// SAFETY: a Job is only constructed by the sharded core, which (a) requires
// `M: Send, N: Send` at construction time for any core that owns a pool,
// (b) hands each shard's state pointer to exactly one job per round, and
// (c) blocks on the countdown until every job returns, so the pointed-to
// state and ctx strictly outlive the worker's use of them.
unsafe impl Send for Job {}

/// Countdown the coordinator parks on while a round is in flight.
type DoneGate = Arc<(Mutex<usize>, Condvar)>;

/// Fixed set of persistent workers executing [`Job`]s.
#[derive(Debug)]
pub(crate) struct ShardPool {
    txs: Vec<Sender<Job>>,
    done: DoneGate,
    handles: Vec<JoinHandle<()>>,
}

impl ShardPool {
    /// Spawns `threads` workers (at least one).
    pub(crate) fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let done: DoneGate = Arc::new((Mutex::new(0), Condvar::new()));
        let mut txs = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let (tx, rx) = unbounded::<Job>();
            let done = Arc::clone(&done);
            handles.push(std::thread::spawn(move || {
                for job in rx.iter() {
                    // SAFETY: upheld by the Job construction contract above.
                    unsafe { (job.run)(job.state, job.ctx) };
                    let mut remaining = done.0.lock();
                    *remaining -= 1;
                    if *remaining == 0 {
                        done.1.notify_one();
                    }
                }
            }));
            txs.push(tx);
        }
        ShardPool { txs, done, handles }
    }

    /// Worker count.
    pub(crate) fn threads(&self) -> usize {
        self.txs.len()
    }

    /// Dispatches `jobs` (job `k` to worker `k % threads`) and blocks
    /// until all of them have run.
    pub(crate) fn run(&self, jobs: Vec<Job>) {
        if jobs.is_empty() {
            return;
        }
        *self.done.0.lock() = jobs.len();
        for (k, job) in jobs.into_iter().enumerate() {
            self.txs[k % self.txs.len()]
                .send(job)
                .expect("pool worker alive while pool exists");
        }
        let mut remaining = self.done.0.lock();
        while *remaining > 0 {
            self.done.1.wait(&mut remaining);
        }
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        // disconnect the channels so the worker loops terminate
        self.txs.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_every_job_and_blocks_until_done() {
        unsafe fn bump(state: *mut (), ctx: *const ()) {
            let slot = unsafe { &mut *(state as *mut u64) };
            let add = unsafe { &*(ctx as *const u64) };
            *slot += *add;
        }
        let pool = ShardPool::new(3);
        let mut slots = [0u64; 8];
        let add = 7u64;
        for _round in 0..5 {
            let jobs = slots
                .iter_mut()
                .map(|s| Job {
                    run: bump,
                    state: s as *mut u64 as *mut (),
                    ctx: &add as *const u64 as *const (),
                })
                .collect();
            pool.run(jobs);
        }
        assert!(slots.iter().all(|&s| s == 35));
    }
}
