//! The sharded parallel executor core.
//!
//! Nodes are partitioned across a fixed number of shards (keyed by the
//! `√n` decomposition via [`mm_topo::decompose::shard_map`]), each shard
//! owning one calendar queue and its nodes' handler state. Execution is
//! conservative parallel discrete-event simulation with a per-tick
//! barrier: the minimum cross-shard hop cost is one tick (every remote
//! send costs ≥ 1 tick under both cost models; zero-delay events are
//! strictly node-local), so all shards can execute one tick's events
//! concurrently without ever seeing a message from the "future".
//!
//! # Determinism: exact replay of the single-core order
//!
//! Byte-identical output regardless of shard count and worker-thread
//! count is achieved by *reconstructing the single core's global
//! `(time, sequence)` execution order* at every tick boundary, not by
//! merely approximating it:
//!
//! * One global sequence counter lives at the coordinator. Every event in
//!   any shard queue carries the seq it would have had in the single
//!   core's queue.
//! * During a tick, a shard executes its due events in local `(seq, FIFO)`
//!   order — provably the projection of the single core's global order
//!   onto that shard (zero-delay children are node-local, and their
//!   breadth-first FIFO order matches global seq order restricted to the
//!   shard) — recording a flat execution log: outcome, routing counter
//!   deltas, and emitted pushes, in order.
//! * After the barrier, the coordinator performs a k-way merge of the
//!   shard logs by ascending seq, replaying pops and pushes in exactly
//!   the single core's order: it assigns fresh seqs to pushes from the
//!   global counter, samples the queue-depth histogram at the same
//!   depths, accumulates `Metrics` in the same order, and routes
//!   future-tick events into the destination shard's inbox.
//!
//! The merge is sequential but cheap (tens of ns per event) compared to
//! handler execution; Amdahl leaves near-linear scaling to a handful of
//! worker threads.

use crate::metrics::Metrics;
use crate::pool::{Job, ShardPool};
use crate::queue::{EventQueue, QueueKind};
use crate::route::{self, NetEnv, RouteCounters};
use crate::{
    CostModel, Envelope, Event, Node, NodeApi, Op, RouterKind, SimTime, QUEUE_DEPTH_BUCKETS,
};
use mm_topo::{AnyRouter, Graph, NodeId};
use std::collections::VecDeque;

/// Where an executed event came from, as recorded in a shard's log.
#[derive(Debug, Clone, Copy)]
enum Source {
    /// Popped from the shard queue under this coordinator-assigned seq.
    Queue(u64),
    /// Zero-delay child executed within the tick; its seq is assigned by
    /// the coordinator's merge when the parent's push is replayed.
    Child,
}

/// How one event's execution ended (drives the merge's metric replay).
#[derive(Debug, Clone, Copy)]
enum Outcome {
    Delivered,
    DroppedAtCrashed,
    TimerFired,
    TimerSkipped,
}

/// One executed event in a shard's per-tick log.
#[derive(Debug)]
struct ExecRec {
    src: Source,
    /// The node the event targeted (for `node_load`).
    node: NodeId,
    outcome: Outcome,
    sends: u64,
    passes: u64,
    route_dropped: u64,
    /// Number of entries this event appended to the shard's flat push
    /// buffer (the merge consumes them with a per-shard cursor).
    push_count: u32,
}

/// One event emission recorded during shard execution.
#[derive(Debug)]
struct PushRec<M> {
    at: SimTime,
    dest: NodeId,
    /// `None` for zero-delay (same-node, hence same-shard) children:
    /// their payload went straight onto the shard's work deque and only
    /// the seq assignment happens at the coordinator.
    ev: Option<Event<M>>,
}

/// Per-shard state: handler slices, queue, inbox, and round buffers.
#[derive(Debug)]
struct ShardState<M, N> {
    /// Handlers owned by this shard, in ascending global `NodeId` order.
    nodes: Vec<N>,
    /// Local index → global id (inverse of the coordinator's `local_idx`).
    local_ids: Vec<NodeId>,
    queue: EventQueue<Event<M>>,
    /// Cross-round mail from the coordinator, in ascending seq order.
    inbox: Vec<(SimTime, u64, Event<M>)>,
    /// Earliest `at` currently in the inbox.
    inbox_min: Option<SimTime>,
    /// The queue's next event time as of the end of this shard's last
    /// round (`None` before the first round / when drained).
    cached_next: Option<SimTime>,
    /// Round output: executed events in local order.
    log: Vec<ExecRec>,
    /// Round output: emitted pushes, flat, in log order.
    pushes: Vec<PushRec<M>>,
    /// Merge scratch: seqs assigned to zero-delay children whose exec
    /// records have not been replayed yet (FIFO).
    pending: VecDeque<u64>,
    /// Reusable work deque for the tick-local breadth-first execution.
    fifo: VecDeque<(Source, Event<M>)>,
    /// Reusable handler-op buffer.
    scratch: Vec<Op<M>>,
}

impl<M, N> ShardState<M, N> {
    fn push_inbox(&mut self, at: SimTime, seq: u64, ev: Event<M>) {
        self.inbox.push((at, seq, ev));
        if self.inbox_min.is_none_or(|m| at < m) {
            self.inbox_min = Some(at);
        }
    }

    /// Earliest event time owned by this shard (queue or inbox).
    fn next_time(&self) -> Option<SimTime> {
        match (self.cached_next, self.inbox_min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

/// Read-only world view shared by every shard during one round, plus the
/// tick being executed. Non-generic so it erases to one pointer.
struct RoundCtx<'a> {
    routing: Option<&'a AnyRouter>,
    crashed: &'a [bool],
    crashed_count: usize,
    cost_model: CostModel,
    local_idx: &'a [u32],
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    shard_of: &'a [u32],
    tick: SimTime,
}

/// Executes one shard's share of tick `ctx.tick`: drain the inbox into
/// the queue, pop everything due, run the tick-local breadth-first
/// cascade (zero-delay children execute inline, never entering the
/// queue), and record the execution log for the coordinator's merge.
fn run_shard_round<M: Clone, N: Node<M>>(st: &mut ShardState<M, N>, ctx: &RoundCtx<'_>) {
    for (at, seq, ev) in st.inbox.drain(..) {
        st.queue.push_seq(at, seq, ev);
    }
    st.inbox_min = None;
    let t = ctx.tick;
    debug_assert!(st.log.is_empty() && st.pushes.is_empty());
    let mut fifo = std::mem::take(&mut st.fifo);
    debug_assert!(fifo.is_empty());
    while let Some((at, seq, ev)) = st.queue.pop_seq_until(t) {
        debug_assert_eq!(at, t, "rounds run at the global minimum event time");
        fifo.push_back((Source::Queue(seq), ev));
    }
    let env = NetEnv {
        routing: ctx.routing,
        crashed: ctx.crashed,
        crashed_count: ctx.crashed_count,
        cost_model: ctx.cost_model,
    };
    let mut ops = std::mem::take(&mut st.scratch);
    debug_assert!(ops.is_empty());
    while let Some((src, ev)) = fifo.pop_front() {
        let node = ev.target();
        let crashed = ctx.crashed[node.index()];
        let mut c = RouteCounters::default();
        let pushes_before = st.pushes.len();
        let outcome = match ev {
            Event::Deliver(_) if crashed => Outcome::DroppedAtCrashed,
            Event::Timer { .. } if crashed => Outcome::TimerSkipped,
            ev => {
                let mut api = NodeApi {
                    ops: &mut ops,
                    now: t,
                    me: node,
                };
                let handler = &mut st.nodes[ctx.local_idx[node.index()] as usize];
                let outcome = match ev {
                    Event::Deliver(env_msg) => {
                        handler.on_message(env_msg, &mut api);
                        Outcome::Delivered
                    }
                    Event::Timer { tag, .. } => {
                        handler.on_timer(tag, &mut api);
                        Outcome::TimerFired
                    }
                };
                let pushes = &mut st.pushes;
                route::apply_ops(&env, t, node, &mut ops, &mut c, &mut |at, child| {
                    if at == t {
                        // zero-delay events are node-local by the cost
                        // models' construction — this is the conservative
                        // lookahead the per-tick barrier relies on
                        debug_assert_eq!(
                            ctx.shard_of[child.target().index()],
                            ctx.shard_of[node.index()],
                            "zero-delay events must be shard-local"
                        );
                        pushes.push(PushRec {
                            at,
                            dest: child.target(),
                            ev: None,
                        });
                        fifo.push_back((Source::Child, child));
                    } else {
                        let dest = child.target();
                        pushes.push(PushRec {
                            at,
                            dest,
                            ev: Some(child),
                        });
                    }
                });
                outcome
            }
        };
        st.log.push(ExecRec {
            src,
            node,
            outcome,
            sends: c.sends,
            passes: c.passes,
            route_dropped: c.dropped,
            push_count: (st.pushes.len() - pushes_before) as u32,
        });
    }
    st.scratch = ops;
    st.fifo = fifo;
    st.cached_next = st.queue.peek_next_time();
}

/// Erased round entry point handed to the worker pool. Monomorphized at
/// [`ShardedCore::new`], where the concrete `M`/`N` are known and their
/// `Send` obligations are discharged.
///
/// # Safety
///
/// `state` must point to a live `ShardState<M, N>` with no other borrows
/// for the duration of the call, and `ctx` to a `RoundCtx` that outlives
/// it.
unsafe fn shard_job<M: Clone, N: Node<M>>(state: *mut (), ctx: *const ()) {
    let st = unsafe { &mut *(state.cast::<ShardState<M, N>>()) };
    let ctx = unsafe { &*(ctx.cast::<RoundCtx<'_>>()) };
    run_shard_round(st, ctx);
}

/// The sharded parallel core: per-shard queues + handler slices, a
/// coordinator-owned global sequence space, and a canonical per-tick
/// merge that replays the single core's execution order exactly.
#[derive(Debug)]
pub(crate) struct ShardedCore<M, N> {
    graph: Graph,
    routing: Option<AnyRouter>,
    crashed: Vec<bool>,
    /// Number of currently crashed nodes (lets routing skip hop walks
    /// entirely while everyone is alive).
    crashed_count: usize,
    cost_model: CostModel,
    /// Global node id → owning shard.
    shard_of: Vec<u32>,
    /// Global node id → index within its shard's `nodes`.
    local_idx: Vec<u32>,
    // boxed so each shard's state keeps a stable heap address for the
    // type-erased job pointers handed to the worker pool
    #[allow(clippy::vec_box)]
    shards: Vec<Box<ShardState<M, N>>>,
    /// Worker pool (`None` ⇒ rounds run inline on the coordinator).
    pool: Option<ShardPool>,
    /// Monomorphized erased round entry point (see [`shard_job`]).
    job: unsafe fn(*mut (), *const ()),
    now: SimTime,
    /// The single global sequence counter (mirrors the single core's
    /// queue-internal counter exactly).
    next_seq: u64,
    /// Conceptual global queue depth (what the single core's queue `len`
    /// would be), maintained by the merge replay.
    global_depth: u64,
    metrics: Metrics,
    /// Per-shard metrics: every sample/count of the global `metrics` is
    /// attributed to exactly one shard (the executing/pushing shard;
    /// coordinator injects and crashes to the owning shard), so additive
    /// fields sum — and peaks max — to the global values exactly.
    shard_metrics: Vec<Metrics>,
    depth_buckets: [u64; QUEUE_DEPTH_BUCKETS],
    /// Round scratch: indices of shards active at the current tick.
    active: Vec<usize>,
}

impl<M: Clone, N: Node<M>> ShardedCore<M, N> {
    pub(crate) fn new(
        graph: Graph,
        nodes: Vec<N>,
        cost_model: CostModel,
        kind: QueueKind,
        shard_count: usize,
        threads: usize,
        router: RouterKind,
    ) -> Self
    where
        M: Send,
        N: Send,
    {
        // the erased-job contract additionally needs the shared world
        // view to be safely shareable across workers
        fn assert_sync<T: Sync>() {}
        assert_sync::<Graph>();
        assert_sync::<AnyRouter>();

        assert_eq!(
            nodes.len(),
            graph.node_count(),
            "one handler per graph node required"
        );
        let n = graph.node_count();
        let routing = match cost_model {
            CostModel::Hops => Some(router.build(&graph)),
            CostModel::Uniform => None,
        };
        let shard_of = mm_topo::decompose::shard_map(&graph, shard_count);
        let shard_count = shard_of.iter().map(|&s| s as usize + 1).max().unwrap_or(1);
        let mut counts = vec![0u32; shard_count];
        let mut local_idx = vec![0u32; n];
        for v in 0..n {
            let s = shard_of[v] as usize;
            local_idx[v] = counts[s];
            counts[s] += 1;
        }
        let mut shards: Vec<Box<ShardState<M, N>>> = counts
            .iter()
            .map(|&c| {
                Box::new(ShardState {
                    nodes: Vec::with_capacity(c as usize),
                    local_ids: Vec::with_capacity(c as usize),
                    queue: EventQueue::new(kind),
                    inbox: Vec::new(),
                    inbox_min: None,
                    cached_next: None,
                    log: Vec::new(),
                    pushes: Vec::new(),
                    pending: VecDeque::new(),
                    fifo: VecDeque::new(),
                    scratch: Vec::new(),
                })
            })
            .collect();
        for (v, node) in nodes.into_iter().enumerate() {
            let s = &mut shards[shard_of[v] as usize];
            s.nodes.push(node);
            s.local_ids.push(NodeId::new(v as u32));
        }
        let shard_metrics = counts.iter().map(|&c| Metrics::new(c as usize)).collect();
        let pool =
            (threads > 1 && shard_count > 1).then(|| ShardPool::new(threads.min(shard_count)));
        ShardedCore {
            graph,
            routing,
            crashed: vec![false; n],
            crashed_count: 0,
            cost_model,
            shard_of,
            local_idx,
            shards,
            pool,
            job: shard_job::<M, N>,
            now: 0,
            next_seq: 0,
            global_depth: 0,
            metrics: Metrics::new(n),
            shard_metrics,
            depth_buckets: [0; QUEUE_DEPTH_BUCKETS],
            active: Vec::new(),
        }
    }

    pub(crate) fn graph(&self) -> &Graph {
        &self.graph
    }

    pub(crate) fn routing(&self) -> Option<&AnyRouter> {
        self.routing.as_ref()
    }

    pub(crate) fn now(&self) -> SimTime {
        self.now
    }

    pub(crate) fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    pub(crate) fn shard_count(&self) -> usize {
        self.shards.len()
    }

    pub(crate) fn threads(&self) -> usize {
        self.pool.as_ref().map_or(1, ShardPool::threads)
    }

    pub(crate) fn shard_metrics(&self) -> &[Metrics] {
        &self.shard_metrics
    }

    /// Folds the per-shard metrics back into one global view: additive
    /// fields sum, peaks max, per-shard `node_load` scatters through the
    /// local→global id map. Equals [`Self::metrics`] exactly (asserted by
    /// the cross-shard determinism suite).
    pub(crate) fn merged_shard_metrics(&self) -> Metrics {
        let mut m = Metrics::new(self.graph.node_count());
        for (i, sm) in self.shard_metrics.iter().enumerate() {
            m.message_passes += sm.message_passes;
            m.sends += sm.sends;
            m.delivered += sm.delivered;
            m.dropped += sm.dropped;
            m.crashes += sm.crashes;
            m.events_executed += sm.events_executed;
            m.peak_queue_depth = m.peak_queue_depth.max(sm.peak_queue_depth);
            for (li, &load) in sm.node_load.iter().enumerate() {
                m.node_load[self.shards[i].local_ids[li].index()] += load;
            }
        }
        m
    }

    pub(crate) fn node(&self, v: NodeId) -> &N {
        let s = &self.shards[self.shard_of[v.index()] as usize];
        &s.nodes[self.local_idx[v.index()] as usize]
    }

    pub(crate) fn node_mut(&mut self, v: NodeId) -> &mut N {
        let s = &mut self.shards[self.shard_of[v.index()] as usize];
        &mut s.nodes[self.local_idx[v.index()] as usize]
    }

    pub(crate) fn crash(&mut self, v: NodeId) {
        if !self.crashed[v.index()] {
            self.crashed[v.index()] = true;
            self.crashed_count += 1;
        }
        self.metrics.crashes += 1;
        self.shard_metrics[self.shard_of[v.index()] as usize].crashes += 1;
    }

    pub(crate) fn restore(&mut self, v: NodeId) {
        if self.crashed[v.index()] {
            self.crashed[v.index()] = false;
            self.crashed_count -= 1;
        }
    }

    pub(crate) fn is_crashed(&self, v: NodeId) -> bool {
        self.crashed[v.index()]
    }

    pub(crate) fn inject(&mut self, from: NodeId, at: NodeId, msg: M) {
        let env = Envelope {
            from,
            to: at,
            sent_at: self.now,
            msg,
        };
        self.push_external(self.now, Event::Deliver(env));
    }

    pub(crate) fn inject_timer(&mut self, at: NodeId, delay: SimTime, tag: u64) {
        self.push_external(self.now + delay, Event::Timer { at, tag });
    }

    /// Coordinator-side push (injects between rounds): assigns the next
    /// global seq, samples depth, and mails the owning shard.
    fn push_external(&mut self, at: SimTime, ev: Event<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.global_depth += 1;
        let d = self.shard_of[ev.target().index()] as usize;
        self.sample_depth(d);
        self.shards[d].push_inbox(at, seq, ev);
    }

    /// One depth-histogram observation at the current conceptual global
    /// depth, attributed to `shard`.
    fn sample_depth(&mut self, shard: usize) {
        let depth = self.global_depth;
        if depth > self.metrics.peak_queue_depth {
            self.metrics.peak_queue_depth = depth;
        }
        let sm = &mut self.shard_metrics[shard];
        if depth > sm.peak_queue_depth {
            sm.peak_queue_depth = depth;
        }
        self.depth_buckets[(64 - depth.leading_zeros()) as usize] += 1;
    }

    pub(crate) fn queue_depth_buckets(&self) -> &[u64; QUEUE_DEPTH_BUCKETS] {
        &self.depth_buckets
    }

    /// Earliest event time across every shard (queues and inboxes).
    fn next_time(&self) -> Option<SimTime> {
        self.shards.iter().filter_map(|s| s.next_time()).min()
    }

    pub(crate) fn run(&mut self) -> SimTime {
        while self.step() {}
        self.now
    }

    pub(crate) fn run_until(&mut self, deadline: SimTime) -> SimTime {
        while let Some(t) = self.next_time() {
            if t > deadline {
                break;
            }
            self.now = t;
            self.round(t);
        }
        self.now = self.now.max(deadline);
        self.now
    }

    /// Executes one *round* (every event due at the next tick, across all
    /// shards). The single core's `step` runs one event; a sharded step
    /// is one tick — callers that need event-granular stepping use
    /// `ShardMode::Single`.
    pub(crate) fn step(&mut self) -> bool {
        let Some(t) = self.next_time() else {
            return false;
        };
        self.now = t;
        self.round(t);
        true
    }

    /// Runs tick `t` on every shard that has work due, then merges.
    fn round(&mut self, t: SimTime) {
        let mut active = std::mem::take(&mut self.active);
        active.clear();
        for (i, s) in self.shards.iter().enumerate() {
            if s.next_time() == Some(t) {
                active.push(i);
            }
        }
        debug_assert!(!active.is_empty(), "a round only runs at an event time");
        {
            let ctx = RoundCtx {
                routing: self.routing.as_ref(),
                crashed: &self.crashed,
                crashed_count: self.crashed_count,
                cost_model: self.cost_model,
                local_idx: &self.local_idx,
                shard_of: &self.shard_of,
                tick: t,
            };
            let ctx_ptr = (&raw const ctx).cast::<()>();
            match &self.pool {
                Some(pool) if active.len() > 1 => {
                    let jobs: Vec<Job> = active
                        .iter()
                        .map(|&i| Job {
                            run: self.job,
                            state: (&raw mut *self.shards[i]).cast::<()>(),
                            ctx: ctx_ptr,
                        })
                        .collect();
                    // blocks until every shard's round completes — the
                    // barrier that bounds the erased pointers' lifetimes
                    pool.run(jobs);
                }
                _ => {
                    for &i in &active {
                        // SAFETY: unique state pointer, live ctx, same
                        // M/N monomorphization as at construction.
                        unsafe { (self.job)((&raw mut *self.shards[i]).cast::<()>(), ctx_ptr) };
                    }
                }
            }
        }
        self.merge_round(t, &active);
        self.active = active;
    }

    /// Replays the shard logs in ascending global-seq order — exactly the
    /// single core's execution order at tick `t` — assigning push seqs,
    /// sampling queue depth, accumulating metrics, and mailing
    /// future-tick events to their destination shards.
    fn merge_round(&mut self, t: SimTime, active: &[usize]) {
        struct Cursor<M> {
            shard: usize,
            log: Vec<ExecRec>,
            pushes: Vec<PushRec<M>>,
            pending: VecDeque<u64>,
            r: usize,
            p: usize,
        }
        let mut cursors: Vec<Cursor<M>> = active
            .iter()
            .map(|&i| {
                let s = &mut self.shards[i];
                Cursor {
                    shard: i,
                    log: std::mem::take(&mut s.log),
                    pushes: std::mem::take(&mut s.pushes),
                    pending: std::mem::take(&mut s.pending),
                    r: 0,
                    p: 0,
                }
            })
            .collect();
        loop {
            // k-way pick: smallest next seq across shard logs (k is the
            // shard count, so a linear scan beats a heap by locality)
            let mut best: Option<(usize, u64)> = None;
            for (k, w) in cursors.iter().enumerate() {
                if w.r < w.log.len() {
                    let seq = match w.log[w.r].src {
                        Source::Queue(s) => s,
                        Source::Child => *w
                            .pending
                            .front()
                            .expect("child seq assigned before its exec record"),
                    };
                    if best.is_none_or(|(_, b)| seq < b) {
                        best = Some((k, seq));
                    }
                }
            }
            let Some((k, _)) = best else { break };
            let w = &mut cursors[k];
            let rec = &w.log[w.r];
            w.r += 1;
            if matches!(rec.src, Source::Child) {
                w.pending.pop_front();
            }
            // the pop, in oracle order
            self.global_depth -= 1;
            self.metrics.events_executed += 1;
            let sm = &mut self.shard_metrics[w.shard];
            sm.events_executed += 1;
            match rec.outcome {
                Outcome::Delivered => {
                    self.metrics.delivered += 1;
                    self.metrics.node_load[rec.node.index()] += 1;
                    sm.delivered += 1;
                    sm.node_load[self.local_idx[rec.node.index()] as usize] += 1;
                }
                Outcome::DroppedAtCrashed => {
                    self.metrics.dropped += 1;
                    sm.dropped += 1;
                }
                Outcome::TimerFired | Outcome::TimerSkipped => {}
            }
            sm.sends += rec.sends;
            sm.message_passes += rec.passes;
            sm.dropped += rec.route_dropped;
            self.metrics.sends += rec.sends;
            self.metrics.message_passes += rec.passes;
            self.metrics.dropped += rec.route_dropped;
            // the pushes, in oracle order
            let push_count = rec.push_count as usize;
            let shard = w.shard;
            let p0 = w.p;
            w.p += push_count;
            for j in 0..push_count {
                let (at, dest, ev) = {
                    let p = &mut cursors[k].pushes[p0 + j];
                    (p.at, p.dest, p.ev.take())
                };
                let seq = self.next_seq;
                self.next_seq += 1;
                self.global_depth += 1;
                self.sample_depth(shard);
                if at == t {
                    debug_assert!(ev.is_none(), "zero-delay payloads stay shard-local");
                    cursors[k].pending.push_back(seq);
                } else {
                    let ev = ev.expect("future push carries its payload");
                    let d = self.shard_of[dest.index()] as usize;
                    self.shards[d].push_inbox(at, seq, ev);
                }
            }
        }
        // hand the (now empty) buffers back for reuse
        for w in cursors {
            debug_assert!(
                w.pending.is_empty(),
                "zero-delay children all execute within their round"
            );
            debug_assert_eq!(w.p, w.pushes.len(), "every recorded push replayed");
            let s = &mut self.shards[w.shard];
            s.log = w.log;
            s.log.clear();
            s.pushes = w.pushes;
            s.pushes.clear();
            s.pending = w.pending;
        }
    }
}
