//! # mm-sim — deterministic discrete-event network simulator
//!
//! The paper measures match-making algorithms in *message passes* ("hops"):
//! the sending of a message from one node to a direct neighbor in the
//! store-and-forward communications graph. This crate provides a simulator
//! that accounts for exactly that quantity:
//!
//! * [`Sim`] — the event loop: nodes implement [`Node`] handlers, exchange
//!   messages over a [`mm_topo::Graph`], and every edge traversal is
//!   counted.
//! * [`CostModel`] — `Hops` routes every message along shortest paths
//!   (store-and-forward, §2.3.5); `Uniform` charges one pass per
//!   destination (the paper's complete-network assumption of §2.1, "all
//!   messages can be routed in one message pass to their destinations").
//! * [`Metrics`] — message passes, sends, deliveries, drops, per-node load.
//! * fault injection — [`Sim::crash`]/[`Sim::restore`]: crashed processors
//!   neither receive nor forward; messages die at the first crashed node
//!   on their path, and the passes spent up to that point stay spent.
//!
//! Everything is deterministic: events execute in `(time, sequence)` order
//! and the only randomness is whatever the embedded protocols draw from
//! their own seeded generators.
//!
//! # Example
//!
//! ```
//! use mm_sim::{Sim, Node, NodeApi, Envelope, CostModel};
//! use mm_topo::{gen, NodeId};
//!
//! #[derive(Clone, Debug)]
//! enum Msg { Ping, Pong }
//!
//! struct Echo;
//! impl Node<Msg> for Echo {
//!     fn on_message(&mut self, env: Envelope<Msg>, api: &mut NodeApi<'_, Msg>) {
//!         if matches!(env.msg, Msg::Ping) {
//!             api.send(env.from, Msg::Pong);
//!         }
//!     }
//! }
//!
//! let g = gen::ring(8);
//! let mut sim = Sim::new(g, (0..8).map(|_| Echo).collect(), CostModel::Hops);
//! sim.inject(NodeId::new(0), NodeId::new(4), Msg::Ping);
//! sim.run();
//! // the injected ping is an external stimulus (free); the pong 4->0
//! // travels 4 hops around the ring
//! assert_eq!(sim.metrics().message_passes, 4);
//! ```

pub mod metrics;
pub mod queue;
pub mod targets;

pub use metrics::Metrics;
pub use queue::QueueKind;
pub use targets::TargetSet;

use mm_topo::spanning::multicast_cost;
use mm_topo::{Graph, NodeId, RoutingTable};
use queue::EventQueue;

/// Simulated time in abstract ticks (one tick = one hop of latency).
pub type SimTime = u64;

/// How message passes are charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostModel {
    /// Store-and-forward: a message from `a` to `b` costs `dist(a,b)`
    /// passes and arrives after that many ticks; multicasts share path
    /// prefixes (Steiner-tree accounting).
    Hops,
    /// Complete-network abstraction: every destination costs exactly one
    /// pass and one tick (paper §2.1 framework assumption 1).
    Uniform,
}

/// A delivered message with its envelope metadata.
#[derive(Debug, Clone)]
pub struct Envelope<M> {
    /// Originating node.
    pub from: NodeId,
    /// Destination node (the node receiving this envelope).
    pub to: NodeId,
    /// Tick at which the message was sent.
    pub sent_at: SimTime,
    /// The payload.
    pub msg: M,
}

/// Handler interface for a simulated processor.
///
/// Handlers react to messages and timers through [`NodeApi`]; they never
/// block. State lives in the implementing struct.
pub trait Node<M> {
    /// A message arrived at this node.
    fn on_message(&mut self, env: Envelope<M>, api: &mut NodeApi<'_, M>);

    /// A timer set via [`NodeApi::set_timer`] fired.
    fn on_timer(&mut self, _tag: u64, _api: &mut NodeApi<'_, M>) {}
}

/// Buffered actions a handler can take; applied by the simulator after the
/// handler returns (so handlers can't observe in-flight state).
#[derive(Debug)]
enum Op<M> {
    Send { to: NodeId, msg: M },
    Multicast { to: TargetSet, msg: M },
    Timer { delay: SimTime, tag: u64 },
}

/// The per-invocation API handed to [`Node`] handlers.
#[derive(Debug)]
pub struct NodeApi<'a, M> {
    ops: &'a mut Vec<Op<M>>,
    now: SimTime,
    me: NodeId,
}

impl<M> NodeApi<'_, M> {
    /// Sends `msg` to `to` (point-to-point).
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.ops.push(Op::Send { to, msg });
    }

    /// Sends `msg` to every node in `to`, sharing path prefixes under
    /// [`CostModel::Hops`]. Duplicates and the sender itself are delivered
    /// once / locally for free.
    pub fn multicast(&mut self, to: &[NodeId], msg: M)
    where
        M: Clone,
    {
        self.ops.push(Op::Multicast {
            to: TargetSet::new(to),
            msg,
        });
    }

    /// Sends `msg` to an interned target set without copying it — the
    /// zero-allocation path for resolvers that reuse `P`/`Q` sets across
    /// operations. The sender itself (if a member) is delivered locally
    /// for free.
    pub fn multicast_set(&mut self, to: TargetSet, msg: M)
    where
        M: Clone,
    {
        self.ops.push(Op::Multicast { to, msg });
    }

    /// Schedules [`Node::on_timer`] with `tag` after `delay` ticks.
    pub fn set_timer(&mut self, delay: SimTime, tag: u64) {
        self.ops.push(Op::Timer { delay, tag });
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The node this handler runs on.
    pub fn me(&self) -> NodeId {
        self.me
    }
}

#[derive(Debug)]
enum Event<M> {
    Deliver(Envelope<M>),
    Timer { at: NodeId, tag: u64 },
}

/// The simulator: a graph, one [`Node`] state machine per graph node, an
/// event queue, and exact message-pass metrics.
#[derive(Debug)]
pub struct Sim<M, N> {
    graph: Graph,
    /// Built only under [`CostModel::Hops`]; `Uniform` never routes.
    routing: Option<RoutingTable>,
    nodes: Vec<N>,
    crashed: Vec<bool>,
    queue: EventQueue<Event<M>>,
    now: SimTime,
    cost_model: CostModel,
    metrics: Metrics,
    /// Handler-op buffer reused across `step` calls (no per-event `Vec`).
    scratch: Vec<Op<M>>,
    /// Log₂ histogram of queue depth, sampled at every push: bucket 0
    /// holds depth 0, bucket `k > 0` holds depths in `[2^(k-1), 2^k)`.
    /// Identical across queue implementations (same pending-event set).
    depth_buckets: [u64; QUEUE_DEPTH_BUCKETS],
}

/// Number of log₂ queue-depth buckets tracked by [`Sim`].
pub const QUEUE_DEPTH_BUCKETS: usize = 65;

impl<M: Clone, N: Node<M>> Sim<M, N> {
    /// Creates a simulator over `graph` with one handler per node, using
    /// the production calendar event queue.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len() != graph.node_count()`.
    pub fn new(graph: Graph, nodes: Vec<N>, cost_model: CostModel) -> Self {
        Self::with_queue(graph, nodes, cost_model, QueueKind::Calendar)
    }

    /// Creates a simulator with an explicit event-queue implementation.
    /// [`QueueKind::BTree`] is the pre-calendar reference core, kept for
    /// determinism cross-checks and queue-isolated benchmarks.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len() != graph.node_count()`.
    pub fn with_queue(graph: Graph, nodes: Vec<N>, cost_model: CostModel, kind: QueueKind) -> Self {
        assert_eq!(
            nodes.len(),
            graph.node_count(),
            "one handler per graph node required"
        );
        let routing = match cost_model {
            CostModel::Hops => Some(RoutingTable::new(&graph)),
            CostModel::Uniform => None,
        };
        let n = graph.node_count();
        Sim {
            graph,
            routing,
            nodes,
            crashed: vec![false; n],
            queue: EventQueue::new(kind),
            now: 0,
            cost_model,
            metrics: Metrics::new(n),
            scratch: Vec::new(),
            depth_buckets: [0; QUEUE_DEPTH_BUCKETS],
        }
    }

    /// The simulated network graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The routing tables in use (`None` under [`CostModel::Uniform`],
    /// which never routes).
    pub fn routing(&self) -> Option<&RoutingTable> {
        self.routing.as_ref()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Accumulated metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Immutable access to a node's state.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn node(&self, v: NodeId) -> &N {
        &self.nodes[v.index()]
    }

    /// Mutable access to a node's state (for test setup and inspection —
    /// protocol logic should live in handlers).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn node_mut(&mut self, v: NodeId) -> &mut N {
        &mut self.nodes[v.index()]
    }

    /// Marks `v` crashed: it stops receiving, forwarding and firing timers.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn crash(&mut self, v: NodeId) {
        self.crashed[v.index()] = true;
        self.metrics.crashes += 1;
    }

    /// Restores a crashed node (its state is as it was; protocols decide
    /// what re-joining means).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn restore(&mut self, v: NodeId) {
        self.crashed[v.index()] = false;
    }

    /// Is `v` currently crashed?
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn is_crashed(&self, v: NodeId) -> bool {
        self.crashed[v.index()]
    }

    /// Injects an external message to `at` (delivered at the current time,
    /// no message passes charged — models a local request arriving at a
    /// process, e.g. "locate port X").
    pub fn inject(&mut self, from: NodeId, at: NodeId, msg: M) {
        let env = Envelope {
            from,
            to: at,
            sent_at: self.now,
            msg,
        };
        self.push(self.now, Event::Deliver(env));
    }

    /// Schedules a timer externally (e.g. protocol drivers).
    pub fn inject_timer(&mut self, at: NodeId, delay: SimTime, tag: u64) {
        self.push(self.now + delay, Event::Timer { at, tag });
    }

    fn push(&mut self, at: SimTime, ev: Event<M>) {
        self.queue.push(at, ev);
        let depth = self.queue.len() as u64;
        if depth > self.metrics.peak_queue_depth {
            self.metrics.peak_queue_depth = depth;
        }
        self.depth_buckets[(64 - depth.leading_zeros()) as usize] += 1;
    }

    /// Cumulative queue-depth histogram (one observation per event
    /// push). Snapshot and subtract to attribute pressure to a phase.
    pub fn queue_depth_buckets(&self) -> &[u64; QUEUE_DEPTH_BUCKETS] {
        &self.depth_buckets
    }

    /// Runs until the event queue drains; returns the final time.
    pub fn run(&mut self) -> SimTime {
        while self.step() {}
        self.now
    }

    /// Runs every event scheduled at or before `deadline`, then advances
    /// the clock to `deadline` (idle gaps between scheduled work — e.g.
    /// quiet phases of a workload — pass in one jump). The clock never
    /// moves backwards: a `deadline` already in the past only drains
    /// events due now.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        while self.step_until(deadline) {}
        self.now = self.now.max(deadline);
        self.now
    }

    /// Executes the next event. Returns `false` when idle.
    pub fn step(&mut self) -> bool {
        self.step_until(SimTime::MAX)
    }

    /// Executes the next event if it is due at or before `deadline`.
    fn step_until(&mut self, deadline: SimTime) -> bool {
        let Some((t, ev)) = self.queue.pop_next_until(deadline) else {
            return false;
        };
        self.now = t;
        self.metrics.events_executed += 1;
        // reuse one ops buffer across events instead of allocating per
        // handler invocation; apply_ops drains it back to empty
        let mut ops = std::mem::take(&mut self.scratch);
        debug_assert!(ops.is_empty());
        match ev {
            Event::Deliver(env) => {
                let at = env.to;
                if self.crashed[at.index()] {
                    self.metrics.dropped += 1;
                    self.scratch = ops;
                    return true;
                }
                self.metrics.delivered += 1;
                self.metrics.node_load[at.index()] += 1;
                let mut api = NodeApi {
                    ops: &mut ops,
                    now: self.now,
                    me: at,
                };
                self.nodes[at.index()].on_message(env, &mut api);
                self.apply_ops(at, &mut ops);
            }
            Event::Timer { at, tag } => {
                if self.crashed[at.index()] {
                    self.scratch = ops;
                    return true;
                }
                let mut api = NodeApi {
                    ops: &mut ops,
                    now: self.now,
                    me: at,
                };
                self.nodes[at.index()].on_timer(tag, &mut api);
                self.apply_ops(at, &mut ops);
            }
        }
        self.scratch = ops;
        true
    }

    fn apply_ops(&mut self, from: NodeId, ops: &mut Vec<Op<M>>) {
        for op in ops.drain(..) {
            match op {
                Op::Send { to, msg } => self.route(from, to, msg),
                Op::Multicast { to, msg } => self.route_multicast(from, &to, msg),
                Op::Timer { delay, tag } => {
                    self.push(self.now + delay, Event::Timer { at: from, tag })
                }
            }
        }
    }

    /// Point-to-point routing with hop accounting and crash truncation.
    fn route(&mut self, from: NodeId, to: NodeId, msg: M) {
        self.metrics.sends += 1;
        if from == to {
            // local delivery is free (intra-host communication)
            let env = Envelope {
                from,
                to,
                sent_at: self.now,
                msg,
            };
            self.push(self.now, Event::Deliver(env));
            return;
        }
        match self.cost_model {
            CostModel::Uniform => {
                self.metrics.message_passes += 1;
                let env = Envelope {
                    from,
                    to,
                    sent_at: self.now,
                    msg,
                };
                self.push(self.now + 1, Event::Deliver(env));
            }
            CostModel::Hops => {
                let routing = self.routing.as_ref().expect("Hops model builds routing");
                if routing.distance(from, to).is_none() {
                    self.metrics.dropped += 1;
                    return;
                }
                // walk the next-hop entries directly (no path `Vec`);
                // die at the first crashed intermediate
                let mut travelled = 0u64;
                let mut blocked = false;
                for hop in routing.hops(from, to) {
                    travelled += 1;
                    if self.crashed[hop.index()] {
                        blocked = true;
                        break;
                    }
                }
                // passes spent up to (and into) a crash point stay spent
                self.metrics.message_passes += travelled;
                if blocked {
                    self.metrics.dropped += 1;
                    return;
                }
                let env = Envelope {
                    from,
                    to,
                    sent_at: self.now,
                    msg,
                };
                self.push(self.now + travelled, Event::Deliver(env));
            }
        }
    }

    /// Multicast with shared-prefix (spanning/Steiner tree) accounting.
    ///
    /// `targets` is already sorted and duplicate-free ([`TargetSet`]'s
    /// construction invariant), so no per-operation sort/dedup happens
    /// here.
    fn route_multicast(&mut self, from: NodeId, targets: &TargetSet, msg: M) {
        match self.cost_model {
            CostModel::Uniform => {
                for t in targets.iter() {
                    if t == from {
                        let env = Envelope {
                            from,
                            to: t,
                            sent_at: self.now,
                            msg: msg.clone(),
                        };
                        self.push(self.now, Event::Deliver(env));
                        continue;
                    }
                    self.metrics.sends += 1;
                    self.metrics.message_passes += 1;
                    let env = Envelope {
                        from,
                        to: t,
                        sent_at: self.now,
                        msg: msg.clone(),
                    };
                    self.push(self.now + 1, Event::Deliver(env));
                }
            }
            CostModel::Hops => {
                // charge the Steiner-tree cost once; deliver along
                // shortest paths, truncated at crashed nodes. The remote
                // slice is the target set itself unless the sender is a
                // member (the only case that still copies).
                let routing = self.routing.as_ref().expect("Hops model builds routing");
                let self_in_set = targets.contains(from);
                let filtered: Vec<NodeId>;
                let remote: &[NodeId] = if self_in_set {
                    filtered = targets.iter().filter(|&t| t != from).collect();
                    &filtered
                } else {
                    targets.as_slice()
                };
                if let Some(cost) = multicast_cost(&self.graph, routing, from, remote) {
                    self.metrics.message_passes += cost;
                } else {
                    // unreachable targets: fall back to per-target routing
                    for &t in remote {
                        self.route(from, t, msg.clone());
                    }
                    // plus local copy if requested
                    if self_in_set {
                        let env = Envelope {
                            from,
                            to: from,
                            sent_at: self.now,
                            msg,
                        };
                        self.push(self.now, Event::Deliver(env));
                    }
                    return;
                }
                self.metrics.sends += remote.len() as u64;
                for t in targets.iter() {
                    if t == from {
                        let env = Envelope {
                            from,
                            to: t,
                            sent_at: self.now,
                            msg: msg.clone(),
                        };
                        self.push(self.now, Event::Deliver(env));
                        continue;
                    }
                    // walk next-hop entries: hop count plus
                    // first-crashed-intermediate check, no path `Vec`
                    let routing = self.routing.as_ref().expect("Hops model builds routing");
                    let mut d = 0u64;
                    let mut blocked = false;
                    for hop in routing.hops(from, t) {
                        d += 1;
                        if self.crashed[hop.index()] {
                            blocked = true;
                            break;
                        }
                    }
                    if blocked {
                        self.metrics.dropped += 1;
                        continue;
                    }
                    let env = Envelope {
                        from,
                        to: t,
                        sent_at: self.now,
                        msg: msg.clone(),
                    };
                    self.push(self.now + d, Event::Deliver(env));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_topo::gen;

    #[derive(Clone, Debug, PartialEq)]
    enum Msg {
        Ping,
        Pong,
        Spread(Vec<NodeId>),
        Note,
    }

    #[derive(Default)]
    struct Recorder {
        got: Vec<(NodeId, Msg, SimTime)>,
        timers: Vec<u64>,
    }

    impl Node<Msg> for Recorder {
        fn on_message(&mut self, env: Envelope<Msg>, api: &mut NodeApi<'_, Msg>) {
            self.got.push((env.from, env.msg.clone(), api.now()));
            match env.msg {
                Msg::Ping => api.send(env.from, Msg::Pong),
                Msg::Spread(targets) => api.multicast(&targets, Msg::Note),
                _ => {}
            }
        }
        fn on_timer(&mut self, tag: u64, _api: &mut NodeApi<'_, Msg>) {
            self.timers.push(tag);
        }
    }

    fn recorders(n: usize) -> Vec<Recorder> {
        (0..n).map(|_| Recorder::default()).collect()
    }

    fn nid(v: u32) -> NodeId {
        NodeId::new(v)
    }

    #[test]
    fn ping_pong_hop_accounting() {
        let g = gen::path(5); // 0-1-2-3-4
        let mut sim = Sim::new(g, recorders(5), CostModel::Hops);
        sim.inject(nid(0), nid(4), Msg::Ping);
        sim.run();
        // the injected ping is free; the pong reply travels 4 hops back
        assert_eq!(sim.metrics().message_passes, 4);
        assert_eq!(sim.metrics().delivered, 2);
        let back = &sim.node(nid(0)).got;
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].1, Msg::Pong);
        assert_eq!(back[0].2, 4, "pong arrives at t=4");
    }

    #[test]
    fn uniform_model_charges_one_per_send() {
        let g = gen::path(5);
        let mut sim = Sim::new(g, recorders(5), CostModel::Uniform);
        sim.inject(nid(0), nid(4), Msg::Ping);
        sim.run();
        // free injection + one uniform pass for the pong
        assert_eq!(sim.metrics().message_passes, 1);
    }

    #[test]
    fn multicast_shares_prefix() {
        let g = gen::path(7);
        let mut sim = Sim::new(g, recorders(7), CostModel::Hops);
        // node 0 spreads to 3 and 6: Steiner cost = 6
        sim.inject(nid(0), nid(0), Msg::Spread(vec![nid(3), nid(6)]));
        sim.run();
        assert_eq!(sim.metrics().message_passes, 6);
        assert_eq!(sim.node(nid(3)).got.len(), 1);
        assert_eq!(sim.node(nid(6)).got.len(), 1);
        assert_eq!(sim.node(nid(6)).got[0].1, Msg::Note);
    }

    #[test]
    fn multicast_to_self_is_free() {
        let g = gen::ring(4);
        let mut sim = Sim::new(g, recorders(4), CostModel::Hops);
        sim.inject(nid(1), nid(1), Msg::Spread(vec![nid(1)]));
        sim.run();
        // the external inject + the self-delivery
        assert_eq!(sim.metrics().message_passes, 0);
        assert_eq!(sim.node(nid(1)).got.len(), 2);
    }

    #[test]
    fn crashed_destination_drops() {
        let g = gen::path(3);
        let mut sim = Sim::new(g, recorders(3), CostModel::Hops);
        sim.crash(nid(2));
        sim.inject(nid(0), nid(0), Msg::Spread(vec![nid(2)]));
        sim.run();
        assert_eq!(sim.node(nid(2)).got.len(), 0);
        // the Steiner tree to {2} is the 2-edge path; both passes are
        // charged even though the message dies at its destination
        assert_eq!(sim.metrics().message_passes, 2);
        assert_eq!(sim.metrics().dropped, 1);
    }

    #[test]
    fn crashed_intermediate_truncates_path_cost() {
        let g = gen::path(5);
        let mut sim = Sim::new(g, recorders(5), CostModel::Hops);
        sim.crash(nid(2));
        // handler-driven multicast 0 -> {4} dies at node 2
        sim.inject(nid(0), nid(0), Msg::Spread(vec![nid(4)]));
        sim.run();
        assert_eq!(sim.node(nid(4)).got.len(), 0);
        // the Steiner tree 0-1-2-3-4 is charged in full (4 passes): the
        // spanning-tree forwarding commits the copies before the crash is
        // discovered, so a dead intermediate wastes the whole branch
        assert_eq!(sim.metrics().message_passes, 4);
        assert_eq!(sim.metrics().sends, 1);
        assert_eq!(sim.metrics().dropped, 1);
        assert_eq!(sim.metrics().delivered, 1, "only the free injection lands");
    }

    #[test]
    fn crashed_branch_keeps_live_deliveries_and_full_tree_cost() {
        // 0-1-2-3-4-5-6 with node 2 dead: multicast 0 -> {1, 4}.
        // The Steiner tree (0-1-2-3-4, 4 edges) is charged once; the live
        // branch to 1 still delivers while the branch through 2 drops.
        let g = gen::path(7);
        let mut sim = Sim::new(g, recorders(7), CostModel::Hops);
        sim.crash(nid(2));
        sim.inject(nid(0), nid(0), Msg::Spread(vec![nid(1), nid(4)]));
        sim.run();
        assert_eq!(sim.metrics().message_passes, 4);
        assert_eq!(sim.metrics().dropped, 1);
        assert_eq!(sim.node(nid(1)).got.len(), 1);
        assert_eq!(sim.node(nid(4)).got.len(), 0);
    }

    #[test]
    fn run_until_advances_clock_through_idle_gaps() {
        let g = gen::ring(3);
        let mut sim = Sim::new(g, recorders(3), CostModel::Hops);
        // nothing scheduled at all: the clock must still reach the deadline
        assert_eq!(sim.run_until(100), 100);
        assert_eq!(sim.now(), 100);
        // a timer far in the future is not executed early, but the clock
        // advances to the deadline between phases
        sim.inject_timer(nid(0), 400, 9); // fires at t = 500
        assert_eq!(sim.run_until(250), 250);
        assert!(sim.node(nid(0)).timers.is_empty());
        assert_eq!(sim.run_until(600), 600);
        assert_eq!(sim.node(nid(0)).timers, vec![9]);
        // the clock never moves backwards
        assert_eq!(sim.run_until(10), 600);
    }

    #[test]
    fn run_until_executes_events_at_deadline_inclusive() {
        let g = gen::ring(3);
        let mut sim = Sim::new(g, recorders(3), CostModel::Hops);
        sim.inject_timer(nid(1), 50, 1);
        assert_eq!(sim.run_until(50), 50);
        assert_eq!(sim.node(nid(1)).timers, vec![1]);
    }

    #[test]
    fn restore_lets_messages_flow_again() {
        let g = gen::path(3);
        let mut sim = Sim::new(g, recorders(3), CostModel::Hops);
        sim.crash(nid(1));
        sim.inject(nid(0), nid(1), Msg::Note);
        sim.run();
        assert_eq!(sim.node(nid(1)).got.len(), 0);
        sim.restore(nid(1));
        sim.inject(nid(0), nid(1), Msg::Note);
        sim.run();
        assert_eq!(sim.node(nid(1)).got.len(), 1);
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerNode {
            fired: Vec<(u64, SimTime)>,
        }
        impl Node<Msg> for TimerNode {
            fn on_message(&mut self, _env: Envelope<Msg>, api: &mut NodeApi<'_, Msg>) {
                api.set_timer(10, 1);
                api.set_timer(5, 2);
                api.set_timer(10, 3);
            }
            fn on_timer(&mut self, tag: u64, api: &mut NodeApi<'_, Msg>) {
                self.fired.push((tag, api.now()));
            }
        }
        let g = gen::ring(3);
        let nodes = (0..3).map(|_| TimerNode { fired: vec![] }).collect();
        let mut sim = Sim::new(g, nodes, CostModel::Hops);
        sim.inject(nid(0), nid(0), Msg::Note);
        sim.run();
        let fired = &sim.node(nid(0)).fired;
        assert_eq!(fired.len(), 3);
        assert_eq!(fired[0], (2, 5));
        assert_eq!(fired[1], (1, 10));
        assert_eq!(fired[2], (3, 10), "same-time timers keep insertion order");
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let g = gen::grid(4, 4, false);
            let mut sim = Sim::new(g, recorders(16), CostModel::Hops);
            sim.inject(nid(0), nid(15), Msg::Ping);
            sim.inject(nid(3), nid(12), Msg::Ping);
            sim.inject(nid(5), nid(5), Msg::Spread(vec![nid(0), nid(10), nid(15)]));
            sim.run();
            (
                sim.metrics().message_passes,
                sim.metrics().delivered,
                sim.now(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn node_load_tracks_deliveries() {
        let g = gen::complete(4);
        let mut sim = Sim::new(g, recorders(4), CostModel::Uniform);
        sim.inject(nid(1), nid(0), Msg::Ping); // 0 receives, answers to 1
        sim.run();
        assert_eq!(sim.metrics().node_load[0], 1);
        assert_eq!(sim.metrics().node_load[1], 1);
        assert_eq!(sim.metrics().node_load[2], 0);
    }

    #[test]
    #[should_panic(expected = "one handler per graph node")]
    fn node_count_mismatch_panics() {
        let _ = Sim::new(gen::ring(3), recorders(2), CostModel::Hops);
    }

    #[test]
    fn queue_depth_histogram_counts_every_push() {
        let g = gen::complete(4);
        let mut sim = Sim::new(g, recorders(4), CostModel::Uniform);
        sim.inject(nid(1), nid(0), Msg::Ping); // push at depth 1
        sim.run(); // the pong is pushed at depth 1 again
        let buckets = sim.queue_depth_buckets();
        assert_eq!(buckets.iter().sum::<u64>(), 2, "one sample per push");
        assert_eq!(buckets[1], 2, "both pushes saw depth 1");
    }
}
