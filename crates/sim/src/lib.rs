//! # mm-sim — deterministic discrete-event network simulator
//!
//! The paper measures match-making algorithms in *message passes* ("hops"):
//! the sending of a message from one node to a direct neighbor in the
//! store-and-forward communications graph. This crate provides a simulator
//! that accounts for exactly that quantity:
//!
//! * [`Sim`] — the event loop: nodes implement [`Node`] handlers, exchange
//!   messages over a [`mm_topo::Graph`], and every edge traversal is
//!   counted.
//! * [`CostModel`] — `Hops` routes every message along shortest paths
//!   (store-and-forward, §2.3.5); `Uniform` charges one pass per
//!   destination (the paper's complete-network assumption of §2.1, "all
//!   messages can be routed in one message pass to their destinations").
//! * [`Metrics`] — message passes, sends, deliveries, drops, per-node load.
//! * fault injection — [`Sim::crash`]/[`Sim::restore`]: crashed processors
//!   neither receive nor forward; messages die at the first crashed node
//!   on their path, and the passes spent up to that point stay spent.
//! * [`ShardMode`] — the execution core: `Single` is the original
//!   one-queue event loop; `Sharded` partitions nodes across per-shard
//!   calendar queues (keyed by the `√n` decomposition) and executes each
//!   tick's events on a worker pool, with a canonical merge that replays
//!   the single core's `(time, sequence)` order exactly. Output is
//!   byte-identical across shard and thread counts — the single core is
//!   the oracle the sharded core is cross-checked against, exactly as
//!   [`QueueKind::BTree`] is the oracle for the calendar queue.
//!
//! Everything is deterministic: events execute in `(time, sequence)` order
//! and the only randomness is whatever the embedded protocols draw from
//! their own seeded generators.
//!
//! # Example
//!
//! ```
//! use mm_sim::{Sim, Node, NodeApi, Envelope, CostModel};
//! use mm_topo::{gen, NodeId};
//!
//! #[derive(Clone, Debug)]
//! enum Msg { Ping, Pong }
//!
//! struct Echo;
//! impl Node<Msg> for Echo {
//!     fn on_message(&mut self, env: Envelope<Msg>, api: &mut NodeApi<'_, Msg>) {
//!         if matches!(env.msg, Msg::Ping) {
//!             api.send(env.from, Msg::Pong);
//!         }
//!     }
//! }
//!
//! let g = gen::ring(8);
//! let mut sim = Sim::new(g, (0..8).map(|_| Echo).collect(), CostModel::Hops);
//! sim.inject(NodeId::new(0), NodeId::new(4), Msg::Ping);
//! sim.run();
//! // the injected ping is an external stimulus (free); the pong 4->0
//! // travels 4 hops around the ring
//! assert_eq!(sim.metrics().message_passes, 4);
//! ```

pub mod metrics;
mod pool;
pub mod queue;
mod route;
mod shard;
mod single;
pub mod targets;

pub use metrics::Metrics;
pub use queue::QueueKind;
pub use targets::TargetSet;

use mm_topo::{AnyRouter, Graph, NodeId};
use shard::ShardedCore;
use single::SingleCore;

/// Which routing backend a hop-cost simulation uses.
///
/// Output-invariant by construction: the analytic routers are
/// byte-conformant to the [`mm_topo::RoutingTable`] oracle,
/// so every variant produces identical simulations — they differ only in
/// memory (O(1) vs O(n²)) and next-hop cost. Like [`QueueKind`] and
/// [`ShardMode`], the non-default variants exist for conformance checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RouterKind {
    /// Closed-form router when the graph is a recognized structured
    /// family (by generator name), BFS table otherwise. The default.
    #[default]
    Auto,
    /// Closed-form router, or panic if the graph is not a recognized
    /// structured family — the guard for shell graphs, where a silent
    /// table fallback would BFS an edgeless graph and break routing.
    Analytic,
    /// Always the O(n²) BFS [`mm_topo::RoutingTable`] oracle of §3.
    Table,
}

impl RouterKind {
    /// Builds the routing backend for `g` under this policy.
    ///
    /// # Panics
    ///
    /// Panics if the policy is [`RouterKind::Analytic`] and `g` is not a
    /// recognized structured family.
    pub fn build(self, g: &Graph) -> AnyRouter {
        match self {
            RouterKind::Auto => AnyRouter::for_graph(g),
            RouterKind::Analytic => AnyRouter::analytic_for(g.name(), g.node_count())
                .unwrap_or_else(|| {
                    panic!(
                        "no analytic router for graph {:?} (n = {})",
                        g.name(),
                        g.node_count()
                    )
                }),
            RouterKind::Table => AnyRouter::table_for(g),
        }
    }
}

/// Simulated time in abstract ticks (one tick = one hop of latency).
pub type SimTime = u64;

/// How message passes are charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostModel {
    /// Store-and-forward: a message from `a` to `b` costs `dist(a,b)`
    /// passes and arrives after that many ticks; multicasts share path
    /// prefixes (Steiner-tree accounting).
    Hops,
    /// Complete-network abstraction: every destination costs exactly one
    /// pass and one tick (paper §2.1 framework assumption 1).
    Uniform,
}

/// A delivered message with its envelope metadata.
#[derive(Debug, Clone)]
pub struct Envelope<M> {
    /// Originating node.
    pub from: NodeId,
    /// Destination node (the node receiving this envelope).
    pub to: NodeId,
    /// Tick at which the message was sent.
    pub sent_at: SimTime,
    /// The payload.
    pub msg: M,
}

/// Handler interface for a simulated processor.
///
/// Handlers react to messages and timers through [`NodeApi`]; they never
/// block. State lives in the implementing struct.
pub trait Node<M> {
    /// A message arrived at this node.
    fn on_message(&mut self, env: Envelope<M>, api: &mut NodeApi<'_, M>);

    /// A timer set via [`NodeApi::set_timer`] fired.
    fn on_timer(&mut self, _tag: u64, _api: &mut NodeApi<'_, M>) {}
}

/// Buffered actions a handler can take; applied by the simulator after the
/// handler returns (so handlers can't observe in-flight state).
#[derive(Debug)]
pub(crate) enum Op<M> {
    Send { to: NodeId, msg: M },
    Multicast { to: TargetSet, msg: M },
    Timer { delay: SimTime, tag: u64 },
}

/// The per-invocation API handed to [`Node`] handlers.
#[derive(Debug)]
pub struct NodeApi<'a, M> {
    pub(crate) ops: &'a mut Vec<Op<M>>,
    pub(crate) now: SimTime,
    pub(crate) me: NodeId,
}

impl<M> NodeApi<'_, M> {
    /// Sends `msg` to `to` (point-to-point).
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.ops.push(Op::Send { to, msg });
    }

    /// Sends `msg` to every node in `to`, sharing path prefixes under
    /// [`CostModel::Hops`]. Duplicates and the sender itself are delivered
    /// once / locally for free.
    pub fn multicast(&mut self, to: &[NodeId], msg: M)
    where
        M: Clone,
    {
        self.ops.push(Op::Multicast {
            to: TargetSet::new(to),
            msg,
        });
    }

    /// Sends `msg` to an interned target set without copying it — the
    /// zero-allocation path for resolvers that reuse `P`/`Q` sets across
    /// operations. The sender itself (if a member) is delivered locally
    /// for free.
    pub fn multicast_set(&mut self, to: TargetSet, msg: M)
    where
        M: Clone,
    {
        self.ops.push(Op::Multicast { to, msg });
    }

    /// Schedules [`Node::on_timer`] with `tag` after `delay` ticks.
    pub fn set_timer(&mut self, delay: SimTime, tag: u64) {
        self.ops.push(Op::Timer { delay, tag });
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The node this handler runs on.
    pub fn me(&self) -> NodeId {
        self.me
    }
}

/// A scheduled simulator event.
#[derive(Debug)]
pub(crate) enum Event<M> {
    Deliver(Envelope<M>),
    Timer { at: NodeId, tag: u64 },
}

impl<M> Event<M> {
    /// The node this event executes on (delivery destination / timer
    /// owner) — the sharded core's partition key.
    pub(crate) fn target(&self) -> NodeId {
        match self {
            Event::Deliver(env) => env.to,
            Event::Timer { at, .. } => *at,
        }
    }
}

/// Number of log₂ queue-depth buckets tracked by [`Sim`].
pub const QUEUE_DEPTH_BUCKETS: usize = 65;

/// Which execution core drives the event loop.
///
/// Output (metrics, depth histogram, handler-observable delivery order) is
/// byte-identical across every mode — `Sharded` reconstructs the single
/// core's global `(time, sequence)` execution order at each tick boundary.
/// `Single` remains the oracle for conformance checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardMode {
    /// One queue, one thread: the original exact event loop.
    Single,
    /// Nodes partitioned over `shards` calendar queues (keyed by the `√n`
    /// decomposition), ticks executed by `threads` pooled workers.
    /// `shards` is clamped to `[1, n]`; `threads` is clamped to the
    /// effective shard count, and `threads <= 1` runs the shard rounds
    /// inline on the calling thread (still sharded, still identical).
    Sharded { shards: usize, threads: usize },
}

#[derive(Debug)]
enum Core<M, N> {
    Single(SingleCore<M, N>),
    Sharded(ShardedCore<M, N>),
}

/// The simulator: a graph, one [`Node`] state machine per graph node, an
/// event queue (or several, sharded), and exact message-pass metrics.
#[derive(Debug)]
pub struct Sim<M, N> {
    core: Core<M, N>,
}

impl<M: Clone, N: Node<M>> Sim<M, N> {
    /// Creates a simulator over `graph` with one handler per node, using
    /// the production calendar event queue on the single-threaded core.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len() != graph.node_count()`.
    pub fn new(graph: Graph, nodes: Vec<N>, cost_model: CostModel) -> Self {
        Self::with_queue(graph, nodes, cost_model, QueueKind::Calendar)
    }

    /// Creates a simulator with an explicit event-queue implementation.
    /// [`QueueKind::BTree`] is the pre-calendar reference core, kept for
    /// determinism cross-checks and queue-isolated benchmarks.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len() != graph.node_count()`.
    pub fn with_queue(graph: Graph, nodes: Vec<N>, cost_model: CostModel, kind: QueueKind) -> Self {
        Sim {
            core: Core::Single(SingleCore::with_queue(
                graph,
                nodes,
                cost_model,
                kind,
                RouterKind::Auto,
            )),
        }
    }

    /// The simulated network graph.
    pub fn graph(&self) -> &Graph {
        match &self.core {
            Core::Single(c) => c.graph(),
            Core::Sharded(c) => c.graph(),
        }
    }

    /// The routing backend in use (`None` under [`CostModel::Uniform`],
    /// which never routes).
    pub fn routing(&self) -> Option<&AnyRouter> {
        match &self.core {
            Core::Single(c) => c.routing(),
            Core::Sharded(c) => c.routing(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        match &self.core {
            Core::Single(c) => c.now(),
            Core::Sharded(c) => c.now(),
        }
    }

    /// Accumulated metrics.
    pub fn metrics(&self) -> &Metrics {
        match &self.core {
            Core::Single(c) => c.metrics(),
            Core::Sharded(c) => c.metrics(),
        }
    }

    /// Per-shard metrics under [`ShardMode::Sharded`] (`None` on the
    /// single core). Every global sample is attributed to exactly one
    /// shard, so [`Sim::merged_shard_metrics`] equals [`Sim::metrics`].
    pub fn shard_metrics(&self) -> Option<&[Metrics]> {
        match &self.core {
            Core::Single(_) => None,
            Core::Sharded(c) => Some(c.shard_metrics()),
        }
    }

    /// Folds the per-shard metrics back into one global `Metrics`
    /// (`None` on the single core). Equals [`Sim::metrics`] exactly.
    pub fn merged_shard_metrics(&self) -> Option<Metrics> {
        match &self.core {
            Core::Single(_) => None,
            Core::Sharded(c) => Some(c.merged_shard_metrics()),
        }
    }

    /// Effective shard count (1 on the single core).
    pub fn shard_count(&self) -> usize {
        match &self.core {
            Core::Single(_) => 1,
            Core::Sharded(c) => c.shard_count(),
        }
    }

    /// Worker threads executing shard rounds (1 on the single core and
    /// for inline sharded execution).
    pub fn shard_threads(&self) -> usize {
        match &self.core {
            Core::Single(_) => 1,
            Core::Sharded(c) => c.threads(),
        }
    }

    /// Immutable access to a node's state.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn node(&self, v: NodeId) -> &N {
        match &self.core {
            Core::Single(c) => c.node(v),
            Core::Sharded(c) => c.node(v),
        }
    }

    /// Mutable access to a node's state (for test setup and inspection —
    /// protocol logic should live in handlers).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn node_mut(&mut self, v: NodeId) -> &mut N {
        match &mut self.core {
            Core::Single(c) => c.node_mut(v),
            Core::Sharded(c) => c.node_mut(v),
        }
    }

    /// Marks `v` crashed: it stops receiving, forwarding and firing timers.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn crash(&mut self, v: NodeId) {
        match &mut self.core {
            Core::Single(c) => c.crash(v),
            Core::Sharded(c) => c.crash(v),
        }
    }

    /// Restores a crashed node (its state is as it was; protocols decide
    /// what re-joining means).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn restore(&mut self, v: NodeId) {
        match &mut self.core {
            Core::Single(c) => c.restore(v),
            Core::Sharded(c) => c.restore(v),
        }
    }

    /// Is `v` currently crashed?
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn is_crashed(&self, v: NodeId) -> bool {
        match &self.core {
            Core::Single(c) => c.is_crashed(v),
            Core::Sharded(c) => c.is_crashed(v),
        }
    }

    /// Injects an external message to `at` (delivered at the current time,
    /// no message passes charged — models a local request arriving at a
    /// process, e.g. "locate port X").
    pub fn inject(&mut self, from: NodeId, at: NodeId, msg: M) {
        match &mut self.core {
            Core::Single(c) => c.inject(from, at, msg),
            Core::Sharded(c) => c.inject(from, at, msg),
        }
    }

    /// Schedules a timer externally (e.g. protocol drivers).
    pub fn inject_timer(&mut self, at: NodeId, delay: SimTime, tag: u64) {
        match &mut self.core {
            Core::Single(c) => c.inject_timer(at, delay, tag),
            Core::Sharded(c) => c.inject_timer(at, delay, tag),
        }
    }

    /// Cumulative queue-depth histogram (one observation per event
    /// push). Snapshot and subtract to attribute pressure to a phase.
    /// The sharded core samples the *conceptual global* depth at the
    /// canonical merge, so the histogram is identical across modes.
    pub fn queue_depth_buckets(&self) -> &[u64; QUEUE_DEPTH_BUCKETS] {
        match &self.core {
            Core::Single(c) => c.queue_depth_buckets(),
            Core::Sharded(c) => c.queue_depth_buckets(),
        }
    }

    /// Runs until the event queue drains; returns the final time.
    pub fn run(&mut self) -> SimTime {
        match &mut self.core {
            Core::Single(c) => c.run(),
            Core::Sharded(c) => c.run(),
        }
    }

    /// Runs every event scheduled at or before `deadline`, then advances
    /// the clock to `deadline` (idle gaps between scheduled work — e.g.
    /// quiet phases of a workload — pass in one jump). The clock never
    /// moves backwards: a `deadline` already in the past only drains
    /// events due now.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        match &mut self.core {
            Core::Single(c) => c.run_until(deadline),
            Core::Sharded(c) => c.run_until(deadline),
        }
    }

    /// Executes the next unit of work; returns `false` when idle. On the
    /// single core this is one event; on the sharded core it is one
    /// *tick* (every event due at the next time, all shards). Callers
    /// needing event-granular stepping use [`ShardMode::Single`].
    pub fn step(&mut self) -> bool {
        match &mut self.core {
            Core::Single(c) => c.step(),
            Core::Sharded(c) => c.step(),
        }
    }
}

impl<M: Clone + Send, N: Node<M> + Send> Sim<M, N> {
    /// Creates a simulator on an explicit execution core. `Send` bounds
    /// on the message and handler types are required here — the only
    /// construction path for a core that may own a worker pool — which is
    /// what makes the pool's type-erased job dispatch sound.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len() != graph.node_count()`.
    pub fn with_shards(
        graph: Graph,
        nodes: Vec<N>,
        cost_model: CostModel,
        kind: QueueKind,
        mode: ShardMode,
    ) -> Self {
        Self::with_router(graph, nodes, cost_model, kind, mode, RouterKind::Auto)
    }

    /// Creates a simulator with every backend choice explicit: event
    /// queue, execution core, and routing backend. All three axes are
    /// output-invariant; this is the constructor conformance suites use
    /// to pit the analytic routers against the table oracle.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len() != graph.node_count()`, or if `router` is
    /// [`RouterKind::Analytic`] and the graph is not a structured family.
    pub fn with_router(
        graph: Graph,
        nodes: Vec<N>,
        cost_model: CostModel,
        kind: QueueKind,
        mode: ShardMode,
        router: RouterKind,
    ) -> Self {
        let core = match mode {
            ShardMode::Single => Core::Single(SingleCore::with_queue(
                graph, nodes, cost_model, kind, router,
            )),
            ShardMode::Sharded { shards, threads } => Core::Sharded(ShardedCore::new(
                graph, nodes, cost_model, kind, shards, threads, router,
            )),
        };
        Sim { core }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_topo::gen;
    use proptest::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Msg {
        Ping,
        Pong,
        Spread(Vec<NodeId>),
        Note,
    }

    #[derive(Default)]
    struct Recorder {
        got: Vec<(NodeId, Msg, SimTime)>,
        timers: Vec<u64>,
    }

    impl Node<Msg> for Recorder {
        fn on_message(&mut self, env: Envelope<Msg>, api: &mut NodeApi<'_, Msg>) {
            self.got.push((env.from, env.msg.clone(), api.now()));
            match env.msg {
                Msg::Ping => api.send(env.from, Msg::Pong),
                Msg::Spread(targets) => api.multicast(&targets, Msg::Note),
                _ => {}
            }
        }
        fn on_timer(&mut self, tag: u64, _api: &mut NodeApi<'_, Msg>) {
            self.timers.push(tag);
        }
    }

    fn recorders(n: usize) -> Vec<Recorder> {
        (0..n).map(|_| Recorder::default()).collect()
    }

    fn nid(v: u32) -> NodeId {
        NodeId::new(v)
    }

    #[test]
    fn ping_pong_hop_accounting() {
        let g = gen::path(5); // 0-1-2-3-4
        let mut sim = Sim::new(g, recorders(5), CostModel::Hops);
        sim.inject(nid(0), nid(4), Msg::Ping);
        sim.run();
        // the injected ping is free; the pong reply travels 4 hops back
        assert_eq!(sim.metrics().message_passes, 4);
        assert_eq!(sim.metrics().delivered, 2);
        let back = &sim.node(nid(0)).got;
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].1, Msg::Pong);
        assert_eq!(back[0].2, 4, "pong arrives at t=4");
    }

    #[test]
    fn uniform_model_charges_one_per_send() {
        let g = gen::path(5);
        let mut sim = Sim::new(g, recorders(5), CostModel::Uniform);
        sim.inject(nid(0), nid(4), Msg::Ping);
        sim.run();
        // free injection + one uniform pass for the pong
        assert_eq!(sim.metrics().message_passes, 1);
    }

    #[test]
    fn multicast_shares_prefix() {
        let g = gen::path(7);
        let mut sim = Sim::new(g, recorders(7), CostModel::Hops);
        // node 0 spreads to 3 and 6: Steiner cost = 6
        sim.inject(nid(0), nid(0), Msg::Spread(vec![nid(3), nid(6)]));
        sim.run();
        assert_eq!(sim.metrics().message_passes, 6);
        assert_eq!(sim.node(nid(3)).got.len(), 1);
        assert_eq!(sim.node(nid(6)).got.len(), 1);
        assert_eq!(sim.node(nid(6)).got[0].1, Msg::Note);
    }

    #[test]
    fn multicast_to_self_is_free() {
        let g = gen::ring(4);
        let mut sim = Sim::new(g, recorders(4), CostModel::Hops);
        sim.inject(nid(1), nid(1), Msg::Spread(vec![nid(1)]));
        sim.run();
        // the external inject + the self-delivery
        assert_eq!(sim.metrics().message_passes, 0);
        assert_eq!(sim.node(nid(1)).got.len(), 2);
    }

    #[test]
    fn crashed_destination_drops() {
        let g = gen::path(3);
        let mut sim = Sim::new(g, recorders(3), CostModel::Hops);
        sim.crash(nid(2));
        sim.inject(nid(0), nid(0), Msg::Spread(vec![nid(2)]));
        sim.run();
        assert_eq!(sim.node(nid(2)).got.len(), 0);
        // the Steiner tree to {2} is the 2-edge path; both passes are
        // charged even though the message dies at its destination
        assert_eq!(sim.metrics().message_passes, 2);
        assert_eq!(sim.metrics().dropped, 1);
    }

    #[test]
    fn crashed_intermediate_truncates_path_cost() {
        let g = gen::path(5);
        let mut sim = Sim::new(g, recorders(5), CostModel::Hops);
        sim.crash(nid(2));
        // handler-driven multicast 0 -> {4} dies at node 2
        sim.inject(nid(0), nid(0), Msg::Spread(vec![nid(4)]));
        sim.run();
        assert_eq!(sim.node(nid(4)).got.len(), 0);
        // the Steiner tree 0-1-2-3-4 is charged in full (4 passes): the
        // spanning-tree forwarding commits the copies before the crash is
        // discovered, so a dead intermediate wastes the whole branch
        assert_eq!(sim.metrics().message_passes, 4);
        assert_eq!(sim.metrics().sends, 1);
        assert_eq!(sim.metrics().dropped, 1);
        assert_eq!(sim.metrics().delivered, 1, "only the free injection lands");
    }

    #[test]
    fn crashed_branch_keeps_live_deliveries_and_full_tree_cost() {
        // 0-1-2-3-4-5-6 with node 2 dead: multicast 0 -> {1, 4}.
        // The Steiner tree (0-1-2-3-4, 4 edges) is charged once; the live
        // branch to 1 still delivers while the branch through 2 drops.
        let g = gen::path(7);
        let mut sim = Sim::new(g, recorders(7), CostModel::Hops);
        sim.crash(nid(2));
        sim.inject(nid(0), nid(0), Msg::Spread(vec![nid(1), nid(4)]));
        sim.run();
        assert_eq!(sim.metrics().message_passes, 4);
        assert_eq!(sim.metrics().dropped, 1);
        assert_eq!(sim.node(nid(1)).got.len(), 1);
        assert_eq!(sim.node(nid(4)).got.len(), 0);
    }

    #[test]
    fn run_until_advances_clock_through_idle_gaps() {
        let g = gen::ring(3);
        let mut sim = Sim::new(g, recorders(3), CostModel::Hops);
        // nothing scheduled at all: the clock must still reach the deadline
        assert_eq!(sim.run_until(100), 100);
        assert_eq!(sim.now(), 100);
        // a timer far in the future is not executed early, but the clock
        // advances to the deadline between phases
        sim.inject_timer(nid(0), 400, 9); // fires at t = 500
        assert_eq!(sim.run_until(250), 250);
        assert!(sim.node(nid(0)).timers.is_empty());
        assert_eq!(sim.run_until(600), 600);
        assert_eq!(sim.node(nid(0)).timers, vec![9]);
        // the clock never moves backwards
        assert_eq!(sim.run_until(10), 600);
    }

    #[test]
    fn run_until_executes_events_at_deadline_inclusive() {
        let g = gen::ring(3);
        let mut sim = Sim::new(g, recorders(3), CostModel::Hops);
        sim.inject_timer(nid(1), 50, 1);
        assert_eq!(sim.run_until(50), 50);
        assert_eq!(sim.node(nid(1)).timers, vec![1]);
    }

    #[test]
    fn restore_lets_messages_flow_again() {
        let g = gen::path(3);
        let mut sim = Sim::new(g, recorders(3), CostModel::Hops);
        sim.crash(nid(1));
        sim.inject(nid(0), nid(1), Msg::Note);
        sim.run();
        assert_eq!(sim.node(nid(1)).got.len(), 0);
        sim.restore(nid(1));
        sim.inject(nid(0), nid(1), Msg::Note);
        sim.run();
        assert_eq!(sim.node(nid(1)).got.len(), 1);
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerNode {
            fired: Vec<(u64, SimTime)>,
        }
        impl Node<Msg> for TimerNode {
            fn on_message(&mut self, _env: Envelope<Msg>, api: &mut NodeApi<'_, Msg>) {
                api.set_timer(10, 1);
                api.set_timer(5, 2);
                api.set_timer(10, 3);
            }
            fn on_timer(&mut self, tag: u64, api: &mut NodeApi<'_, Msg>) {
                self.fired.push((tag, api.now()));
            }
        }
        let g = gen::ring(3);
        let nodes = (0..3).map(|_| TimerNode { fired: vec![] }).collect();
        let mut sim = Sim::new(g, nodes, CostModel::Hops);
        sim.inject(nid(0), nid(0), Msg::Note);
        sim.run();
        let fired = &sim.node(nid(0)).fired;
        assert_eq!(fired.len(), 3);
        assert_eq!(fired[0], (2, 5));
        assert_eq!(fired[1], (1, 10));
        assert_eq!(fired[2], (3, 10), "same-time timers keep insertion order");
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let g = gen::grid(4, 4, false);
            let mut sim = Sim::new(g, recorders(16), CostModel::Hops);
            sim.inject(nid(0), nid(15), Msg::Ping);
            sim.inject(nid(3), nid(12), Msg::Ping);
            sim.inject(nid(5), nid(5), Msg::Spread(vec![nid(0), nid(10), nid(15)]));
            sim.run();
            (
                sim.metrics().message_passes,
                sim.metrics().delivered,
                sim.now(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn node_load_tracks_deliveries() {
        let g = gen::complete(4);
        let mut sim = Sim::new(g, recorders(4), CostModel::Uniform);
        sim.inject(nid(1), nid(0), Msg::Ping); // 0 receives, answers to 1
        sim.run();
        assert_eq!(sim.metrics().node_load[0], 1);
        assert_eq!(sim.metrics().node_load[1], 1);
        assert_eq!(sim.metrics().node_load[2], 0);
    }

    #[test]
    #[should_panic(expected = "one handler per graph node")]
    fn node_count_mismatch_panics() {
        let _ = Sim::new(gen::ring(3), recorders(2), CostModel::Hops);
    }

    #[test]
    fn queue_depth_histogram_counts_every_push() {
        let g = gen::complete(4);
        let mut sim = Sim::new(g, recorders(4), CostModel::Uniform);
        sim.inject(nid(1), nid(0), Msg::Ping); // push at depth 1
        sim.run(); // the pong is pushed at depth 1 again
        let buckets = sim.queue_depth_buckets();
        assert_eq!(buckets.iter().sum::<u64>(), 2, "one sample per push");
        assert_eq!(buckets[1], 2, "both pushes saw depth 1");
    }

    // ---- sharded core equivalence against the single-threaded oracle ----

    /// Drives one busy scenario (pings, multicasts, timers, a crash +
    /// restore, phased `run_until`) on the given core and returns every
    /// observable output.
    fn drive(mode: Option<ShardMode>) -> SimOutput {
        let g = gen::grid(6, 6, false);
        let n = 36;
        let mut sim = match mode {
            None => Sim::new(g, recorders(n), CostModel::Hops),
            Some(mode) => {
                Sim::with_shards(g, recorders(n), CostModel::Hops, QueueKind::Calendar, mode)
            }
        };
        sim.inject(nid(0), nid(35), Msg::Ping);
        sim.inject(nid(3), nid(30), Msg::Ping);
        sim.inject(nid(5), nid(5), Msg::Spread(vec![nid(0), nid(17), nid(35)]));
        sim.inject_timer(nid(9), 7, 42);
        sim.run_until(6);
        sim.crash(nid(14));
        sim.inject(nid(2), nid(14), Msg::Note);
        sim.inject(nid(20), nid(20), Msg::Spread(vec![nid(8), nid(26)]));
        sim.run_until(40);
        sim.restore(nid(14));
        sim.inject(nid(2), nid(14), Msg::Ping);
        sim.run();
        let logs = (0..n)
            .map(|v| sim.node(nid(v as u32)).got.clone())
            .collect();
        let timers = (0..n)
            .map(|v| sim.node(nid(v as u32)).timers.clone())
            .collect();
        SimOutput {
            metrics: sim.metrics().clone(),
            merged: sim.merged_shard_metrics(),
            buckets: *sim.queue_depth_buckets(),
            now: sim.now(),
            logs,
            timers,
        }
    }

    struct SimOutput {
        metrics: Metrics,
        merged: Option<Metrics>,
        buckets: [u64; QUEUE_DEPTH_BUCKETS],
        now: SimTime,
        logs: Vec<Vec<(NodeId, Msg, SimTime)>>,
        timers: Vec<Vec<u64>>,
    }

    #[test]
    fn sharded_core_matches_single_oracle() {
        let oracle = drive(None);
        for (shards, threads) in [(1, 1), (4, 1), (4, 2), (16, 4), (36, 3)] {
            let got = drive(Some(ShardMode::Sharded { shards, threads }));
            assert_eq!(got.metrics, oracle.metrics, "s={shards} t={threads}");
            assert_eq!(got.buckets, oracle.buckets, "s={shards} t={threads}");
            assert_eq!(got.now, oracle.now, "s={shards} t={threads}");
            assert_eq!(got.logs, oracle.logs, "s={shards} t={threads}");
            assert_eq!(got.timers, oracle.timers, "s={shards} t={threads}");
            assert_eq!(
                got.merged.as_ref(),
                Some(&oracle.metrics),
                "per-shard metrics must merge to the global view (s={shards} t={threads})"
            );
        }
    }

    #[test]
    fn shard_mode_single_is_the_plain_core() {
        let oracle = drive(None);
        let got = drive(Some(ShardMode::Single));
        assert_eq!(got.metrics, oracle.metrics);
        assert_eq!(got.buckets, oracle.buckets);
        assert!(got.merged.is_none());
    }

    #[test]
    fn shard_counts_report_clamping() {
        let g = gen::ring(8);
        let sim: Sim<Msg, Recorder> = Sim::with_shards(
            g,
            recorders(8),
            CostModel::Uniform,
            QueueKind::Calendar,
            ShardMode::Sharded {
                shards: 64,
                threads: 64,
            },
        );
        assert!(sim.shard_count() <= 8);
        assert!(sim.shard_threads() <= sim.shard_count());
        let single: Sim<Msg, Recorder> = Sim::new(gen::ring(3), recorders(3), CostModel::Uniform);
        assert_eq!(single.shard_count(), 1);
        assert_eq!(single.shard_threads(), 1);
    }

    /// splitmix64 — deterministic traffic generator for the property
    /// suite (no external RNG state, reproduces per test name).
    fn mix(x: &mut u64) -> u64 {
        *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Drives a deterministic pseudo-random batch of pings, multicasts,
    /// timers, phased `run_until`s and a crash/restore cycle.
    fn random_traffic(sim: &mut Sim<Msg, Recorder>, n: usize, mut s: u64) {
        let node = |s: &mut u64| nid((mix(s) % n as u64) as u32);
        for phase in 0..4 {
            for _ in 0..6 {
                match mix(&mut s) % 4 {
                    0 => {
                        let (a, b) = (node(&mut s), node(&mut s));
                        sim.inject(a, b, Msg::Ping);
                    }
                    1 => {
                        let from = node(&mut s);
                        let targets: Vec<NodeId> =
                            (0..1 + mix(&mut s) % 5).map(|_| node(&mut s)).collect();
                        sim.inject(from, from, Msg::Spread(targets));
                    }
                    2 => {
                        let at = node(&mut s);
                        sim.inject_timer(at, 1 + mix(&mut s) % 40, mix(&mut s));
                    }
                    _ => {
                        let v = node(&mut s);
                        if sim.is_crashed(v) {
                            sim.restore(v);
                        } else {
                            sim.crash(v);
                        }
                    }
                }
            }
            let deadline = sim.now() + 10 + mix(&mut s) % 30;
            sim.run_until(deadline);
            if phase == 2 {
                // drain fully once mid-sequence, then keep going
                sim.run();
            }
        }
        sim.run();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Random traffic, random shard/thread counts: the sharded core
        /// reproduces the single-core metrics and depth histogram, and
        /// the per-shard metrics merge to exactly the global `Metrics`.
        #[test]
        fn random_traffic_is_core_invariant_and_shard_metrics_merge(
            seed in any::<u64>(),
            shards in 1usize..24,
            threads in 1usize..5,
            w in 3usize..7,
            h in 3usize..7,
        ) {
            let n = w * h;
            let mut single = Sim::new(gen::grid(w, h, false), recorders(n), CostModel::Hops);
            random_traffic(&mut single, n, seed);
            let mut sharded = Sim::with_shards(
                gen::grid(w, h, false),
                recorders(n),
                CostModel::Hops,
                QueueKind::Calendar,
                ShardMode::Sharded { shards, threads },
            );
            random_traffic(&mut sharded, n, seed);
            prop_assert_eq!(sharded.metrics(), single.metrics());
            prop_assert_eq!(sharded.queue_depth_buckets(), single.queue_depth_buckets());
            prop_assert_eq!(sharded.now(), single.now());
            prop_assert_eq!(
                sharded.merged_shard_metrics().as_ref(),
                Some(sharded.metrics()),
                "per-shard metrics must merge to exactly the global view"
            );
        }
    }

    #[test]
    fn sharded_uniform_model_matches_oracle() {
        let run = |mode: Option<ShardMode>| {
            let g = gen::complete(12);
            let mut sim = match mode {
                None => Sim::new(g, recorders(12), CostModel::Uniform),
                Some(m) => {
                    Sim::with_shards(g, recorders(12), CostModel::Uniform, QueueKind::Calendar, m)
                }
            };
            for v in 0..12u32 {
                sim.inject(nid(v), nid((v + 5) % 12), Msg::Ping);
            }
            sim.inject(nid(0), nid(0), Msg::Spread((0..12).map(nid).collect()));
            sim.run();
            (sim.metrics().clone(), *sim.queue_depth_buckets())
        };
        let oracle = run(None);
        for threads in [1, 2, 4] {
            assert_eq!(
                run(Some(ShardMode::Sharded { shards: 4, threads })),
                oracle,
                "t={threads}"
            );
        }
    }
}
