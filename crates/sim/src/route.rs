//! Routing shared by the single-threaded and sharded executor cores.
//!
//! This is the old `Sim::route`/`Sim::route_multicast` logic, extracted
//! so both cores charge message passes identically by construction: the
//! single core feeds `emit` straight into its event queue, while a shard
//! records the emissions for the coordinator's canonical merge. Counter
//! deltas accumulate in [`RouteCounters`] (additive, so the caller may
//! fold them into its `Metrics` in any order without affecting output).
//!
//! Routing goes through [`AnyRouter`], never through graph adjacency:
//! under an analytic backend a structured topology needs no edges at all,
//! which is what lets hop-cost runs scale to n = 1,048,576. When no node
//! is crashed, hop walks collapse to O(1) `distance` lookups — the walk
//! exists only to find the first crashed intermediate.

use crate::{CostModel, Envelope, Event, Op, SimTime, TargetSet};
use mm_topo::spanning::multicast_cost;
use mm_topo::{AnyRouter, NodeId, Router};

/// Read-only world view routing needs: routes and crash state.
pub(crate) struct NetEnv<'a> {
    /// Built only under [`CostModel::Hops`]; `Uniform` never routes.
    pub routing: Option<&'a AnyRouter>,
    pub crashed: &'a [bool],
    /// Number of `true` entries in `crashed`; maintained by the cores so
    /// the common all-alive case can skip hop walks entirely.
    pub crashed_count: usize,
    pub cost_model: CostModel,
}

/// Additive metric deltas produced while routing one batch of ops.
#[derive(Debug, Default)]
pub(crate) struct RouteCounters {
    pub sends: u64,
    pub passes: u64,
    pub dropped: u64,
}

/// Applies a handler's buffered ops: routes sends/multicasts, schedules
/// timers. Every scheduled event is handed to `emit(at, event)` in a
/// deterministic order (op order, and within a multicast, target order).
pub(crate) fn apply_ops<M: Clone>(
    env: &NetEnv<'_>,
    now: SimTime,
    from: NodeId,
    ops: &mut Vec<Op<M>>,
    c: &mut RouteCounters,
    emit: &mut impl FnMut(SimTime, Event<M>),
) {
    for op in ops.drain(..) {
        match op {
            Op::Send { to, msg } => route(env, now, from, to, msg, c, emit),
            Op::Multicast { to, msg } => route_multicast(env, now, from, &to, msg, c, emit),
            Op::Timer { delay, tag } => emit(now + delay, Event::Timer { at: from, tag }),
        }
    }
}

/// Hops travelled toward `to` and whether a crashed intermediate blocked
/// the delivery. `dist` is the known full distance; with nobody crashed
/// the answer is immediate, otherwise the next-hop walk runs until the
/// first crashed node (passes spent up to and into it stay spent).
fn crash_truncated(
    env: &NetEnv<'_>,
    routing: &AnyRouter,
    from: NodeId,
    to: NodeId,
    dist: u32,
) -> (u64, bool) {
    if env.crashed_count == 0 {
        return (u64::from(dist), false);
    }
    if matches!(routing, AnyRouter::Ring(_)) {
        // Ring paths average n/4 hops; at n = 1M a crash window would
        // pay ~260k `next_hop` steps per delivery even when the path
        // never meets a crashed node. The canonical path is one
        // contiguous arc, so scan the crash flags over that arc — the
        // same first-crashed node, found at memory-scan speed.
        return ring_crash_truncated(env.crashed, routing, from, to, dist);
    }
    let mut travelled = 0u64;
    for hop in routing.hops(from, to) {
        travelled += 1;
        if env.crashed[hop.index()] {
            return (travelled, true);
        }
    }
    (travelled, false)
}

/// Arc-scan equivalent of the next-hop walk for [`AnyRouter::Ring`].
///
/// The first hop (which carries the canonical antipodal tie-break)
/// fixes the direction; every later step provably continues the same
/// way around, so the walked nodes are exactly one index arc of length
/// `dist` ending at `to`. Returns the hop count into the first crashed
/// node on that arc, or `(dist, false)` if the whole arc is alive.
fn ring_crash_truncated(
    crashed: &[bool],
    routing: &AnyRouter,
    from: NodeId,
    to: NodeId,
    dist: u32,
) -> (u64, bool) {
    let n = crashed.len();
    let s = from.index();
    let first = routing
        .next_hop(from, to)
        .expect("distinct ring nodes always have a next hop")
        .index();
    let d = dist as usize;
    if first == (s + 1) % n {
        // ascending: (s+1)%n, (s+2)%n, ..., (s+d)%n
        let start = (s + 1) % n;
        let len1 = (n - start).min(d);
        if let Some(k) = crashed[start..start + len1].iter().position(|&c| c) {
            return (k as u64 + 1, true);
        }
        let rem = d - len1;
        if let Some(k) = crashed[..rem].iter().position(|&c| c) {
            return ((len1 + k) as u64 + 1, true);
        }
    } else {
        // descending: s-1, s-2, ..., s-d (all mod n); scan each slice
        // segment from its high end to preserve walk order
        let len1 = s.min(d);
        if let Some(k) = crashed[s - len1..s].iter().rev().position(|&c| c) {
            return (k as u64 + 1, true);
        }
        let rem = d - len1;
        if let Some(k) = crashed[n - rem..].iter().rev().position(|&c| c) {
            return ((len1 + k) as u64 + 1, true);
        }
    }
    (u64::from(dist), false)
}

/// Point-to-point routing with hop accounting and crash truncation.
pub(crate) fn route<M>(
    env: &NetEnv<'_>,
    now: SimTime,
    from: NodeId,
    to: NodeId,
    msg: M,
    c: &mut RouteCounters,
    emit: &mut impl FnMut(SimTime, Event<M>),
) {
    c.sends += 1;
    if from == to {
        // local delivery is free (intra-host communication)
        let env_msg = Envelope {
            from,
            to,
            sent_at: now,
            msg,
        };
        emit(now, Event::Deliver(env_msg));
        return;
    }
    match env.cost_model {
        CostModel::Uniform => {
            c.passes += 1;
            let env_msg = Envelope {
                from,
                to,
                sent_at: now,
                msg,
            };
            emit(now + 1, Event::Deliver(env_msg));
        }
        CostModel::Hops => {
            let routing = env.routing.expect("Hops model builds routing");
            let Some(dist) = routing.distance(from, to) else {
                c.dropped += 1;
                return;
            };
            let (travelled, blocked) = crash_truncated(env, routing, from, to, dist);
            // passes spent up to (and into) a crash point stay spent
            c.passes += travelled;
            if blocked {
                c.dropped += 1;
                return;
            }
            let env_msg = Envelope {
                from,
                to,
                sent_at: now,
                msg,
            };
            emit(now + travelled, Event::Deliver(env_msg));
        }
    }
}

/// Multicast with shared-prefix (spanning/Steiner tree) accounting.
///
/// `targets` is already sorted and duplicate-free ([`TargetSet`]'s
/// construction invariant), so no per-operation sort/dedup happens here.
pub(crate) fn route_multicast<M: Clone>(
    env: &NetEnv<'_>,
    now: SimTime,
    from: NodeId,
    targets: &TargetSet,
    msg: M,
    c: &mut RouteCounters,
    emit: &mut impl FnMut(SimTime, Event<M>),
) {
    match env.cost_model {
        CostModel::Uniform => {
            for t in targets.iter() {
                if t == from {
                    let env_msg = Envelope {
                        from,
                        to: t,
                        sent_at: now,
                        msg: msg.clone(),
                    };
                    emit(now, Event::Deliver(env_msg));
                    continue;
                }
                c.sends += 1;
                c.passes += 1;
                let env_msg = Envelope {
                    from,
                    to: t,
                    sent_at: now,
                    msg: msg.clone(),
                };
                emit(now + 1, Event::Deliver(env_msg));
            }
        }
        CostModel::Hops => {
            // charge the Steiner-tree cost once; deliver along
            // shortest paths, truncated at crashed nodes. The remote
            // slice is the target set itself unless the sender is a
            // member (the only case that still copies).
            let routing = env.routing.expect("Hops model builds routing");
            let self_in_set = targets.contains(from);
            let filtered: Vec<NodeId>;
            let remote: &[NodeId] = if self_in_set {
                filtered = targets.iter().filter(|&t| t != from).collect();
                &filtered
            } else {
                targets.as_slice()
            };
            if let Some(cost) = multicast_cost(routing, from, remote) {
                c.passes += cost;
            } else {
                // unreachable targets: fall back to per-target routing
                for &t in remote {
                    route(env, now, from, t, msg.clone(), c, emit);
                }
                // plus local copy if requested
                if self_in_set {
                    let env_msg = Envelope {
                        from,
                        to: from,
                        sent_at: now,
                        msg,
                    };
                    emit(now, Event::Deliver(env_msg));
                }
                return;
            }
            c.sends += remote.len() as u64;
            for t in targets.iter() {
                if t == from {
                    let env_msg = Envelope {
                        from,
                        to: t,
                        sent_at: now,
                        msg: msg.clone(),
                    };
                    emit(now, Event::Deliver(env_msg));
                    continue;
                }
                // reachable (the Steiner cost above proved it); hop count
                // plus first-crashed-intermediate check, no path `Vec`
                let dist = routing.distance(from, t).expect("target reachable");
                let (d, blocked) = crash_truncated(env, routing, from, t, dist);
                if blocked {
                    c.dropped += 1;
                    continue;
                }
                let env_msg = Envelope {
                    from,
                    to: t,
                    sent_at: now,
                    msg: msg.clone(),
                };
                emit(now + d, Event::Deliver(env_msg));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The generic next-hop walk `ring_crash_truncated` replaces.
    fn walk_truncated(
        crashed: &[bool],
        routing: &AnyRouter,
        from: NodeId,
        to: NodeId,
    ) -> (u64, bool) {
        let mut travelled = 0u64;
        for hop in routing.hops(from, to) {
            travelled += 1;
            if crashed[hop.index()] {
                return (travelled, true);
            }
        }
        (travelled, false)
    }

    #[test]
    fn ring_arc_scan_matches_the_next_hop_walk() {
        // every (n, from, to) pair — odd and even rings, antipodal
        // tie-breaks, wraparound in both directions — under crash
        // patterns derived from a deterministic counter
        for n in [2usize, 3, 5, 8, 9, 16] {
            let routing =
                AnyRouter::analytic_for(&format!("ring({n})"), n).expect("ring is analytic");
            for pattern in 0u64..64 {
                let crashed: Vec<bool> = (0..n)
                    .map(|i| (pattern.wrapping_mul(0x9e37_79b9).rotate_left(i as u32)) & 1 == 1)
                    .collect();
                for s in 0..n {
                    for t in 0..n {
                        if s == t {
                            continue;
                        }
                        let (a, b) = (NodeId::new(s as u32), NodeId::new(t as u32));
                        let dist = routing.distance(a, b).expect("ring is connected");
                        assert_eq!(
                            ring_crash_truncated(&crashed, &routing, a, b, dist),
                            walk_truncated(&crashed, &routing, a, b),
                            "n={n} pattern={pattern} {s}->{t}"
                        );
                    }
                }
            }
        }
    }
}
