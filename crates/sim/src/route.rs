//! Routing shared by the single-threaded and sharded executor cores.
//!
//! This is the old `Sim::route`/`Sim::route_multicast` logic, extracted
//! so both cores charge message passes identically by construction: the
//! single core feeds `emit` straight into its event queue, while a shard
//! records the emissions for the coordinator's canonical merge. Counter
//! deltas accumulate in [`RouteCounters`] (additive, so the caller may
//! fold them into its `Metrics` in any order without affecting output).

use crate::{CostModel, Envelope, Event, Op, SimTime, TargetSet};
use mm_topo::spanning::multicast_cost;
use mm_topo::{Graph, NodeId, RoutingTable};

/// Read-only world view routing needs: topology, routes, crash state.
pub(crate) struct NetEnv<'a> {
    pub graph: &'a Graph,
    /// Built only under [`CostModel::Hops`]; `Uniform` never routes.
    pub routing: Option<&'a RoutingTable>,
    pub crashed: &'a [bool],
    pub cost_model: CostModel,
}

/// Additive metric deltas produced while routing one batch of ops.
#[derive(Debug, Default)]
pub(crate) struct RouteCounters {
    pub sends: u64,
    pub passes: u64,
    pub dropped: u64,
}

/// Applies a handler's buffered ops: routes sends/multicasts, schedules
/// timers. Every scheduled event is handed to `emit(at, event)` in a
/// deterministic order (op order, and within a multicast, target order).
pub(crate) fn apply_ops<M: Clone>(
    env: &NetEnv<'_>,
    now: SimTime,
    from: NodeId,
    ops: &mut Vec<Op<M>>,
    c: &mut RouteCounters,
    emit: &mut impl FnMut(SimTime, Event<M>),
) {
    for op in ops.drain(..) {
        match op {
            Op::Send { to, msg } => route(env, now, from, to, msg, c, emit),
            Op::Multicast { to, msg } => route_multicast(env, now, from, &to, msg, c, emit),
            Op::Timer { delay, tag } => emit(now + delay, Event::Timer { at: from, tag }),
        }
    }
}

/// Point-to-point routing with hop accounting and crash truncation.
pub(crate) fn route<M>(
    env: &NetEnv<'_>,
    now: SimTime,
    from: NodeId,
    to: NodeId,
    msg: M,
    c: &mut RouteCounters,
    emit: &mut impl FnMut(SimTime, Event<M>),
) {
    c.sends += 1;
    if from == to {
        // local delivery is free (intra-host communication)
        let env_msg = Envelope {
            from,
            to,
            sent_at: now,
            msg,
        };
        emit(now, Event::Deliver(env_msg));
        return;
    }
    match env.cost_model {
        CostModel::Uniform => {
            c.passes += 1;
            let env_msg = Envelope {
                from,
                to,
                sent_at: now,
                msg,
            };
            emit(now + 1, Event::Deliver(env_msg));
        }
        CostModel::Hops => {
            let routing = env.routing.expect("Hops model builds routing");
            if routing.distance(from, to).is_none() {
                c.dropped += 1;
                return;
            }
            // walk the next-hop entries directly (no path `Vec`);
            // die at the first crashed intermediate
            let mut travelled = 0u64;
            let mut blocked = false;
            for hop in routing.hops(from, to) {
                travelled += 1;
                if env.crashed[hop.index()] {
                    blocked = true;
                    break;
                }
            }
            // passes spent up to (and into) a crash point stay spent
            c.passes += travelled;
            if blocked {
                c.dropped += 1;
                return;
            }
            let env_msg = Envelope {
                from,
                to,
                sent_at: now,
                msg,
            };
            emit(now + travelled, Event::Deliver(env_msg));
        }
    }
}

/// Multicast with shared-prefix (spanning/Steiner tree) accounting.
///
/// `targets` is already sorted and duplicate-free ([`TargetSet`]'s
/// construction invariant), so no per-operation sort/dedup happens here.
pub(crate) fn route_multicast<M: Clone>(
    env: &NetEnv<'_>,
    now: SimTime,
    from: NodeId,
    targets: &TargetSet,
    msg: M,
    c: &mut RouteCounters,
    emit: &mut impl FnMut(SimTime, Event<M>),
) {
    match env.cost_model {
        CostModel::Uniform => {
            for t in targets.iter() {
                if t == from {
                    let env_msg = Envelope {
                        from,
                        to: t,
                        sent_at: now,
                        msg: msg.clone(),
                    };
                    emit(now, Event::Deliver(env_msg));
                    continue;
                }
                c.sends += 1;
                c.passes += 1;
                let env_msg = Envelope {
                    from,
                    to: t,
                    sent_at: now,
                    msg: msg.clone(),
                };
                emit(now + 1, Event::Deliver(env_msg));
            }
        }
        CostModel::Hops => {
            // charge the Steiner-tree cost once; deliver along
            // shortest paths, truncated at crashed nodes. The remote
            // slice is the target set itself unless the sender is a
            // member (the only case that still copies).
            let routing = env.routing.expect("Hops model builds routing");
            let self_in_set = targets.contains(from);
            let filtered: Vec<NodeId>;
            let remote: &[NodeId] = if self_in_set {
                filtered = targets.iter().filter(|&t| t != from).collect();
                &filtered
            } else {
                targets.as_slice()
            };
            if let Some(cost) = multicast_cost(env.graph, routing, from, remote) {
                c.passes += cost;
            } else {
                // unreachable targets: fall back to per-target routing
                for &t in remote {
                    route(env, now, from, t, msg.clone(), c, emit);
                }
                // plus local copy if requested
                if self_in_set {
                    let env_msg = Envelope {
                        from,
                        to: from,
                        sent_at: now,
                        msg,
                    };
                    emit(now, Event::Deliver(env_msg));
                }
                return;
            }
            c.sends += remote.len() as u64;
            for t in targets.iter() {
                if t == from {
                    let env_msg = Envelope {
                        from,
                        to: t,
                        sent_at: now,
                        msg: msg.clone(),
                    };
                    emit(now, Event::Deliver(env_msg));
                    continue;
                }
                // walk next-hop entries: hop count plus
                // first-crashed-intermediate check, no path `Vec`
                let mut d = 0u64;
                let mut blocked = false;
                for hop in routing.hops(from, t) {
                    d += 1;
                    if env.crashed[hop.index()] {
                        blocked = true;
                        break;
                    }
                }
                if blocked {
                    c.dropped += 1;
                    continue;
                }
                let env_msg = Envelope {
                    from,
                    to: t,
                    sent_at: now,
                    msg: msg.clone(),
                };
                emit(now + d, Event::Deliver(env_msg));
            }
        }
    }
}
