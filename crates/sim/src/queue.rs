//! Event-queue implementations for the simulator core.
//!
//! The simulator's contract is strict: events execute in ascending
//! `(time, sequence)` order, where the sequence number is assigned at push
//! time — same-timestamp events run in FIFO order. Two implementations
//! honor it:
//!
//! * [`CalendarQueue`] — the production queue. A ring of unit-time buckets
//!   (all simulator delays are small integers: hop latencies and short
//!   timers), with a binary-heap overflow for events beyond the current
//!   bucket window and geometric window growth under overflow pressure.
//!   Push and pop are O(1) amortized, against `BTreeMap`'s O(log n) with
//!   node churn on every operation.
//! * [`BTreeQueue`] — the reference implementation (the simulator's
//!   original `BTreeMap<(SimTime, u64), Event>` core), kept as the
//!   behavioral oracle: property tests drive both with identical op
//!   sequences, and the determinism suite runs whole scenarios through
//!   each and asserts byte-identical reports.
//!
//! [`QueueKind`] selects between them at `Sim` construction time.

use crate::SimTime;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

/// Which event-queue implementation a [`Sim`](crate::Sim) uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueKind {
    /// Bucketed calendar queue (production default).
    #[default]
    Calendar,
    /// `BTreeMap` reference queue — the pre-calendar event core, kept as
    /// the ordering oracle for determinism cross-checks.
    BTree,
}

/// Initial bucket-window width (must be a power of two). Typical delays
/// are a handful of ticks, so almost everything lands in the window.
const INITIAL_SPAN: u64 = 1024;

/// Bucket windows stop doubling here; overflow beyond this span stays in
/// the heap (bounded memory for pathological far-future schedules).
const MAX_SPAN: u64 = 1 << 22;

/// An event parked in the overflow heap, ordered by `(at, seq)` only.
#[derive(Debug)]
struct Parked<T> {
    at: SimTime,
    seq: u64,
    ev: T,
}

impl<T> PartialEq for Parked<T> {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl<T> Eq for Parked<T> {}
impl<T> PartialOrd for Parked<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Parked<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // reversed: BinaryHeap is a max-heap, we want the earliest first
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Bucketed calendar queue with unit-time buckets and an overflow heap.
///
/// Invariants:
/// * every bucketed event has `at` in the window `[cursor, cursor + span)`,
///   so each bucket holds at most one distinct timestamp at any moment and
///   per-bucket FIFO order is global `(at, seq)` order;
/// * `cursor` never exceeds the earliest queued event's time, and never
///   moves backwards;
/// * overflow events migrate into buckets (in `(at, seq)` order, which
///   preserves FIFO because their sequence numbers predate any bucketed
///   event they join) before any push or pop that could observe them.
#[derive(Debug)]
pub struct CalendarQueue<T> {
    /// `buckets[t & mask]` holds the events scheduled at time `t` for the
    /// window times; entries are `(at, seq, event)` in push order.
    buckets: Vec<VecDeque<(SimTime, u64, T)>>,
    /// `buckets.len() - 1`; the length is a power of two.
    mask: u64,
    /// Scan position: a lower bound on the earliest queued event time.
    cursor: SimTime,
    /// Number of events currently in buckets.
    bucketed: usize,
    /// Events at or beyond `cursor + span`.
    overflow: BinaryHeap<Parked<T>>,
    /// Next sequence number (FIFO tiebreak for equal timestamps).
    seq: u64,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::with_span(INITIAL_SPAN)
    }
}

impl<T> CalendarQueue<T> {
    /// A queue with an explicit initial window width (rounded up to a
    /// power of two). Mainly for tests that want to exercise window
    /// growth; production code uses `Default`.
    pub fn with_span(span: u64) -> Self {
        let span = span.next_power_of_two().max(2);
        CalendarQueue {
            buckets: (0..span).map(|_| VecDeque::new()).collect(),
            mask: span - 1,
            cursor: 0,
            bucketed: 0,
            overflow: BinaryHeap::new(),
            seq: 0,
        }
    }

    fn span(&self) -> u64 {
        self.buckets.len() as u64
    }

    /// Total queued events.
    pub fn len(&self) -> usize {
        self.bucketed + self.overflow.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedules `ev` at `at`, after every already-queued event with the
    /// same timestamp.
    ///
    /// `at` must not precede an already-popped event (the simulator never
    /// schedules into the past); pushing earlier than the last popped time
    /// would violate the bucket-window invariant.
    pub fn push(&mut self, at: SimTime, ev: T) {
        let seq = self.seq;
        self.seq += 1;
        self.push_seq(at, seq, ev);
    }

    /// Schedules `ev` at `at` under an externally assigned sequence
    /// number. The sharded executor owns one global sequence space at the
    /// coordinator and feeds each shard queue slices of it; within any
    /// timestamp, successive pushes must carry strictly increasing `seq`
    /// (the coordinator's merge emits them in ascending order, so the
    /// per-bucket FIFO invariant is preserved by construction).
    pub fn push_seq(&mut self, at: SimTime, seq: u64, ev: T) {
        debug_assert!(
            at >= self.cursor,
            "push into the past: {at} < {}",
            self.cursor
        );
        if at.saturating_sub(self.cursor) >= self.span() {
            self.overflow.push(Parked { at, seq, ev });
            if self.overflow.len() > self.buckets.len() && self.span() < MAX_SPAN {
                self.grow();
            }
        } else {
            // keep FIFO: older (smaller-seq) overflow twins of this
            // timestamp must enter the bucket first
            self.migrate_due();
            self.bucket_insert(at, seq, ev);
        }
    }

    fn bucket_insert(&mut self, at: SimTime, seq: u64, ev: T) {
        let b = &mut self.buckets[(at & self.mask) as usize];
        debug_assert!(b.back().is_none_or(|&(t, s, _)| (t, s) < (at, seq)));
        b.push_back((at, seq, ev));
        self.bucketed += 1;
    }

    /// Moves every overflow event that now fits the window into its bucket.
    ///
    /// The window is `[cursor, cursor + span)`. Near the top of the time
    /// domain `cursor + span` overflows `u64`; a saturating add would pin
    /// the horizon at `u64::MAX` and the strict `<` comparison would then
    /// refuse to migrate an event scheduled *at* `u64::MAX` forever — the
    /// queue would report itself nonempty while the pop scan finds no
    /// bucketed event and runs off the end of time. `checked_add`
    /// distinguishes the two cases: `None` means the window already
    /// covers everything up to and including `u64::MAX` (its true size,
    /// `u64::MAX − cursor + 1`, is ≤ span exactly when the add overflows,
    /// so the one-timestamp-per-bucket invariant still holds).
    fn migrate_due(&mut self) {
        let horizon = self.cursor.checked_add(self.span());
        while self
            .overflow
            .peek()
            .is_some_and(|p| horizon.is_none_or(|h| p.at < h))
        {
            let Parked { at, seq, ev } = self.overflow.pop().expect("peeked");
            self.bucket_insert(at, seq, ev);
        }
    }

    /// Doubles the bucket window and re-homes everything.
    fn grow(&mut self) {
        let new_span = (self.span() * 2).min(MAX_SPAN);
        let mut all: Vec<(SimTime, u64, T)> = Vec::with_capacity(self.len());
        for b in &mut self.buckets {
            all.extend(b.drain(..));
        }
        all.extend(
            std::mem::take(&mut self.overflow)
                .into_iter()
                .map(|p| (p.at, p.seq, p.ev)),
        );
        all.sort_unstable_by_key(|&(at, seq, _)| (at, seq));
        self.buckets = (0..new_span).map(|_| VecDeque::new()).collect();
        self.mask = new_span - 1;
        self.bucketed = 0;
        // same overflow-aware horizon as `migrate_due`: a `None` means the
        // widened window reaches the end of the time domain, so nothing
        // may be parked back into overflow (an event at u64::MAX would
        // otherwise bounce between grow() and a migrate that never fires)
        let horizon = self.cursor.checked_add(new_span);
        for (at, seq, ev) in all {
            if horizon.is_some_and(|h| at >= h) {
                self.overflow.push(Parked { at, seq, ev });
            } else {
                self.bucket_insert(at, seq, ev);
            }
        }
    }

    /// Pops the earliest event if its time is `<= deadline`.
    ///
    /// Returns `None` when the queue is empty or the next event lies
    /// beyond the deadline (the queue is left untouched in both cases,
    /// though the internal scan cursor may advance up to the earliest
    /// event time).
    pub fn pop_next_until(&mut self, deadline: SimTime) -> Option<(SimTime, T)> {
        self.pop_seq_until(deadline).map(|(at, _seq, ev)| (at, ev))
    }

    /// [`pop_next_until`](Self::pop_next_until), additionally exposing the
    /// event's sequence number — the sharded executor's merge needs it to
    /// reconstruct the global execution order.
    pub fn pop_seq_until(&mut self, deadline: SimTime) -> Option<(SimTime, u64, T)> {
        if self.is_empty() {
            return None;
        }
        self.migrate_due();
        if self.bucketed == 0 {
            // everything lives beyond the window: jump straight there
            let t = self.overflow.peek().expect("len > 0").at;
            if t > deadline {
                return None;
            }
            self.cursor = t;
            self.migrate_due();
        }
        // scan unit buckets from the cursor; bounded by the window width
        // because at least one bucketed event exists. The cursor only
        // advances on an actual pop: a deadline miss must leave every
        // time >= the last popped event legal for future pushes.
        let mut t = self.cursor;
        loop {
            let b = &mut self.buckets[(t & self.mask) as usize];
            if let Some(&(at, _, _)) = b.front() {
                debug_assert_eq!(at, t, "one timestamp per bucket inside the window");
                if t > deadline {
                    return None;
                }
                self.cursor = t;
                let (at, seq, ev) = b.pop_front().expect("front observed");
                self.bucketed -= 1;
                return Some((at, seq, ev));
            }
            t += 1;
            debug_assert!(
                t - self.cursor <= self.span(),
                "bucketed > 0 guarantees a hit within one window"
            );
        }
    }

    /// The timestamp of the earliest queued event without removing it.
    ///
    /// `&mut` because due overflow events migrate into buckets first (an
    /// order-preserving internal reshuffle); the scan itself leaves the
    /// cursor untouched, so a subsequent push at any time `>=` the last
    /// popped event remains legal.
    pub fn peek_next_time(&mut self) -> Option<SimTime> {
        if self.is_empty() {
            return None;
        }
        self.migrate_due();
        if self.bucketed == 0 {
            return Some(self.overflow.peek().expect("len > 0").at);
        }
        let mut t = self.cursor;
        loop {
            if let Some(&(at, _, _)) = self.buckets[(t & self.mask) as usize].front() {
                debug_assert_eq!(at, t, "one timestamp per bucket inside the window");
                return Some(t);
            }
            t += 1;
            debug_assert!(
                t - self.cursor <= self.span(),
                "bucketed > 0 guarantees a hit within one window"
            );
        }
    }

    /// Pops the earliest event unconditionally.
    pub fn pop_next(&mut self) -> Option<(SimTime, T)> {
        self.pop_next_until(SimTime::MAX)
    }
}

/// Reference queue: the original `BTreeMap` event core.
#[derive(Debug)]
pub struct BTreeQueue<T> {
    map: BTreeMap<(SimTime, u64), T>,
    seq: u64,
}

impl<T> Default for BTreeQueue<T> {
    fn default() -> Self {
        BTreeQueue {
            map: BTreeMap::new(),
            seq: 0,
        }
    }
}

impl<T> BTreeQueue<T> {
    /// Total queued events.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Schedules `ev` at `at` (FIFO among equal timestamps).
    pub fn push(&mut self, at: SimTime, ev: T) {
        self.map.insert((at, self.seq), ev);
        self.seq += 1;
    }

    /// Schedules `ev` at `at` under an externally assigned sequence
    /// number (see [`CalendarQueue::push_seq`]).
    pub fn push_seq(&mut self, at: SimTime, seq: u64, ev: T) {
        self.map.insert((at, seq), ev);
    }

    /// Pops the earliest event if its time is `<= deadline`.
    pub fn pop_next_until(&mut self, deadline: SimTime) -> Option<(SimTime, T)> {
        self.pop_seq_until(deadline).map(|(at, _seq, ev)| (at, ev))
    }

    /// [`pop_next_until`](Self::pop_next_until) with the sequence number.
    pub fn pop_seq_until(&mut self, deadline: SimTime) -> Option<(SimTime, u64, T)> {
        let (&(t, _), _) = self.map.iter().next()?;
        if t > deadline {
            return None;
        }
        let ((t, seq), ev) = self.map.pop_first().expect("nonempty");
        Some((t, seq, ev))
    }

    /// The timestamp of the earliest queued event without removing it
    /// (`&mut` only for signature parity with [`CalendarQueue`]).
    pub fn peek_next_time(&mut self) -> Option<SimTime> {
        self.map.keys().next().map(|&(t, _)| t)
    }

    /// Pops the earliest event unconditionally.
    pub fn pop_next(&mut self) -> Option<(SimTime, T)> {
        self.pop_next_until(SimTime::MAX)
    }
}

/// Runtime-selected queue implementation used by `Sim`.
#[derive(Debug)]
pub(crate) enum EventQueue<T> {
    Calendar(CalendarQueue<T>),
    BTree(BTreeQueue<T>),
}

impl<T> EventQueue<T> {
    pub(crate) fn new(kind: QueueKind) -> Self {
        match kind {
            QueueKind::Calendar => EventQueue::Calendar(CalendarQueue::default()),
            QueueKind::BTree => EventQueue::BTree(BTreeQueue::default()),
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            EventQueue::Calendar(q) => q.len(),
            EventQueue::BTree(q) => q.len(),
        }
    }

    pub(crate) fn push(&mut self, at: SimTime, ev: T) {
        match self {
            EventQueue::Calendar(q) => q.push(at, ev),
            EventQueue::BTree(q) => q.push(at, ev),
        }
    }

    pub(crate) fn push_seq(&mut self, at: SimTime, seq: u64, ev: T) {
        match self {
            EventQueue::Calendar(q) => q.push_seq(at, seq, ev),
            EventQueue::BTree(q) => q.push_seq(at, seq, ev),
        }
    }

    pub(crate) fn pop_next_until(&mut self, deadline: SimTime) -> Option<(SimTime, T)> {
        match self {
            EventQueue::Calendar(q) => q.pop_next_until(deadline),
            EventQueue::BTree(q) => q.pop_next_until(deadline),
        }
    }

    pub(crate) fn pop_seq_until(&mut self, deadline: SimTime) -> Option<(SimTime, u64, T)> {
        match self {
            EventQueue::Calendar(q) => q.pop_seq_until(deadline),
            EventQueue::BTree(q) => q.pop_seq_until(deadline),
        }
    }

    pub(crate) fn peek_next_time(&mut self) -> Option<SimTime> {
        match self {
            EventQueue::Calendar(q) => q.peek_next_time(),
            EventQueue::BTree(q) => q.peek_next_time(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fifo_within_a_timestamp() {
        let mut q = CalendarQueue::default();
        q.push(5, "a");
        q.push(5, "b");
        q.push(3, "c");
        q.push(5, "d");
        let order: Vec<_> = std::iter::from_fn(|| q.pop_next()).collect();
        assert_eq!(order, vec![(3, "c"), (5, "a"), (5, "b"), (5, "d")]);
    }

    #[test]
    fn deadline_leaves_later_events_queued() {
        let mut q = CalendarQueue::default();
        q.push(10, 1u32);
        q.push(20, 2);
        assert_eq!(q.pop_next_until(15), Some((10, 1)));
        assert_eq!(q.pop_next_until(15), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_next_until(25), Some((20, 2)));
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_events_overflow_and_come_back() {
        let mut q = CalendarQueue::with_span(4);
        q.push(2, "near");
        q.push(1_000_000, "far");
        q.push(500, "mid");
        assert_eq!(q.pop_next(), Some((2, "near")));
        assert_eq!(q.pop_next(), Some((500, "mid")));
        assert_eq!(q.pop_next(), Some((1_000_000, "far")));
        assert_eq!(q.pop_next(), None);
    }

    #[test]
    fn overflow_pressure_grows_the_window() {
        let mut q = CalendarQueue::with_span(2);
        for i in 0..64u64 {
            q.push(10 + i * 7, i);
        }
        assert!(q.span() > 2, "overflow pressure must widen the window");
        let mut last = None;
        while let Some((t, _)) = q.pop_next() {
            assert!(last.is_none_or(|l| l <= t));
            last = Some(t);
        }
    }

    #[test]
    fn interleaved_pushes_at_a_migrated_timestamp_stay_fifo() {
        // regression for the overflow/bucket FIFO race: an event parked in
        // overflow for time T must still pop before a later push at T.
        // With span 4 and cursor 0, t=5 parks in overflow; popping t=2
        // advances the cursor to 2 (window now [2, 6)) WITHOUT migrating
        // the parked event — the next push at t=5 takes the bucket path
        // and must migrate the older overflow twin first.
        let mut q = CalendarQueue::with_span(4);
        q.push(5, "early-seq"); // 5 - 0 >= span: parked in overflow
        q.push(2, "near");
        assert_eq!(q.pop_next(), Some((2, "near"))); // cursor -> 2
        q.push(5, "late-seq"); // 5 - 2 < span: bucket insert at a due time
        assert_eq!(q.pop_next(), Some((5, "early-seq")));
        assert_eq!(q.pop_next(), Some((5, "late-seq")));
    }

    /// Satellite regression (PR 8): `migrate_due`'s horizon used to be
    /// `cursor.saturating_add(span)`, which pins at `u64::MAX` — an event
    /// scheduled *at* `u64::MAX` then never satisfied the strict `<` and
    /// never migrated out of overflow, so the queue claimed to be
    /// nonempty while `pop_next_until(u64::MAX)` found nothing bucketed
    /// and ran its scan cursor off the end of time. Both `QueueKind`s
    /// must drain events at the saturation boundary.
    #[test]
    fn events_at_the_end_of_time_still_pop() {
        let mut cal = CalendarQueue::default();
        let mut bt = BTreeQueue::default();
        for q in [
            &mut cal as &mut dyn FnPush,
            &mut bt as &mut dyn FnPush, // both kinds, same sequence
        ] {
            q.do_push(3, 0);
            q.do_push(u64::MAX - 1, 1);
            q.do_push(u64::MAX, 2);
            q.do_push(u64::MAX, 3); // FIFO twin at the last representable tick
        }
        for q in [&mut cal as &mut dyn FnPush, &mut bt as &mut dyn FnPush] {
            assert_eq!(q.do_pop(u64::MAX), Some((3, 0)));
            assert_eq!(q.do_pop(u64::MAX), Some((u64::MAX - 1, 1)));
            assert_eq!(q.do_pop(u64::MAX), Some((u64::MAX, 2)));
            assert_eq!(q.do_pop(u64::MAX), Some((u64::MAX, 3)));
            assert_eq!(q.do_pop(u64::MAX), None);
        }
    }

    /// Object-safe push/pop facade so the boundary tests can drive both
    /// queue kinds through one code path (mirrors `EventQueue`'s match).
    trait FnPush {
        fn do_push(&mut self, at: SimTime, v: u32);
        fn do_pop(&mut self, deadline: SimTime) -> Option<(SimTime, u32)>;
    }
    impl FnPush for CalendarQueue<u32> {
        fn do_push(&mut self, at: SimTime, v: u32) {
            self.push(at, v);
        }
        fn do_pop(&mut self, deadline: SimTime) -> Option<(SimTime, u32)> {
            self.pop_next_until(deadline)
        }
    }
    impl FnPush for BTreeQueue<u32> {
        fn do_push(&mut self, at: SimTime, v: u32) {
            self.push(at, v);
        }
        fn do_pop(&mut self, deadline: SimTime) -> Option<(SimTime, u32)> {
            self.pop_next_until(deadline)
        }
    }

    /// Explicit-sequence pushes (the sharded executor's path) must honor
    /// the externally assigned order, and `peek_next_time` must report the
    /// earliest event without disturbing pop order or legal push times.
    #[test]
    fn explicit_seq_push_and_peek() {
        let mut cal = CalendarQueue::with_span(4);
        let mut bt = BTreeQueue::default();
        // coordinator-assigned seqs: ascending per timestamp, but sparse
        for (at, seq) in [(7u64, 10u64), (7, 42), (3, 5), (900, 17)] {
            cal.push_seq(at, seq, seq);
            bt.push_seq(at, seq, seq);
        }
        assert_eq!(cal.peek_next_time(), Some(3));
        assert_eq!(bt.peek_next_time(), Some(3));
        for q in [&mut cal as &mut dyn FnPopSeq, &mut bt as &mut dyn FnPopSeq] {
            assert_eq!(q.do_pop_seq(u64::MAX), Some((3, 5, 5)));
            assert_eq!(q.do_pop_seq(u64::MAX), Some((7, 10, 10)));
            assert_eq!(q.do_pop_seq(u64::MAX), Some((7, 42, 42)));
        }
        // peek after pops sees the overflow-parked event; a later push at
        // a nearer time is still legal (the peek scan left the cursor put)
        assert_eq!(cal.peek_next_time(), Some(900));
        cal.push_seq(8, 50, 50);
        assert_eq!(cal.pop_seq_until(u64::MAX), Some((8, 50, 50)));
        assert_eq!(cal.pop_seq_until(u64::MAX), Some((900, 17, 17)));
        assert_eq!(cal.peek_next_time(), None);
    }

    trait FnPopSeq {
        fn do_pop_seq(&mut self, deadline: SimTime) -> Option<(SimTime, u64, u64)>;
    }
    impl FnPopSeq for CalendarQueue<u64> {
        fn do_pop_seq(&mut self, deadline: SimTime) -> Option<(SimTime, u64, u64)> {
            self.pop_seq_until(deadline)
        }
    }
    impl FnPopSeq for BTreeQueue<u64> {
        fn do_pop_seq(&mut self, deadline: SimTime) -> Option<(SimTime, u64, u64)> {
            self.pop_seq_until(deadline)
        }
    }

    /// A deadline below the far event must leave it queued — and the
    /// cursor parked — even when the event sits at `u64::MAX`.
    #[test]
    fn deadline_below_the_boundary_leaves_the_last_event_queued() {
        let mut q = CalendarQueue::with_span(4);
        q.push(u64::MAX, "omega");
        assert_eq!(q.pop_next_until(u64::MAX - 1), None);
        assert_eq!(q.len(), 1, "the boundary event must not be lost");
        assert_eq!(q.pop_next_until(u64::MAX), Some((u64::MAX, "omega")));
        assert!(q.is_empty());
    }

    /// Pushing at `u64::MAX` once the cursor itself sits at `u64::MAX`
    /// takes the bucket path (distance 0 < span); the overflow twin
    /// parked earlier must still pop first (FIFO by sequence).
    #[test]
    fn push_at_a_saturated_cursor_keeps_fifo_with_parked_twins() {
        let mut q = CalendarQueue::with_span(4);
        q.push(u64::MAX, "first");
        q.push(10, "near");
        assert_eq!(q.pop_next(), Some((10, "near")));
        // cursor advances to u64::MAX on the next pop's overflow jump;
        // push another twin before that pop to exercise push-side
        // migration at the pinned horizon
        q.push(u64::MAX, "second");
        assert_eq!(q.pop_next(), Some((u64::MAX, "first")));
        assert_eq!(q.pop_next(), Some((u64::MAX, "second")));
        assert_eq!(q.pop_next(), None);
    }

    /// Window growth with the cursor near the top of the time domain:
    /// `grow()`'s re-homing horizon overflows `u64`, and everything —
    /// including events at `u64::MAX` — must land in buckets, not bounce
    /// back into overflow forever.
    #[test]
    fn window_growth_at_the_boundary_rehomes_everything() {
        let mut q = CalendarQueue::with_span(2);
        let base = u64::MAX - 64;
        q.push(base, 0u64);
        assert_eq!(q.pop_next(), Some((base, 0)), "advance cursor near MAX");
        // flood the overflow heap to force grow() while cursor ~ MAX
        for i in 1..=64u64 {
            q.push(base + i, i);
        }
        assert!(q.span() > 2, "overflow pressure must widen the window");
        for i in 1..=64u64 {
            assert_eq!(q.pop_next(), Some((base + i, i)));
        }
        assert_eq!(q.pop_next(), None);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn calendar_matches_btreemap_oracle(
            ops in prop::collection::vec((0u8..5, any::<u64>()), 1..200),
            span in 1u64..64,
        ) {
            let mut cal = CalendarQueue::with_span(span);
            let mut oracle = BTreeQueue::default();
            let mut now = 0u64;
            let mut val = 0u64;
            for &(kind, x) in &ops {
                match kind {
                    0 => { // near-future push
                        cal.push(now + x % 16, val);
                        oracle.push(now + x % 16, val);
                        val += 1;
                    }
                    1 => { // mid-range push, crosses windows
                        cal.push(now + x % 5000, val);
                        oracle.push(now + x % 5000, val);
                        val += 1;
                    }
                    2 => { // far-future push: overflow + window growth
                        let at = now + 1_000 + x % (1 << 30);
                        cal.push(at, val);
                        oracle.push(at, val);
                        val += 1;
                    }
                    3 => { // drain up to a bounded deadline
                        let deadline = now + x % 64;
                        loop {
                            let a = cal.pop_next_until(deadline);
                            let b = oracle.pop_next_until(deadline);
                            prop_assert_eq!(a, b);
                            match a {
                                Some((t, _)) => now = t,
                                None => break,
                            }
                        }
                    }
                    _ => { // single pop
                        let a = cal.pop_next();
                        let b = oracle.pop_next();
                        prop_assert_eq!(a, b);
                        if let Some((t, _)) = a {
                            now = t;
                        }
                    }
                }
                prop_assert_eq!(cal.len(), oracle.len());
            }
            // full drain must agree event by event
            loop {
                let a = cal.pop_next();
                let b = oracle.pop_next();
                prop_assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
        }
    }
}
