//! Simulation metrics: exact message-pass counts and load distribution.

/// Counters accumulated by a [`Sim`](crate::Sim) run.
///
/// `message_passes` is the paper's complexity measure: one per edge
/// traversal (hop). `sends`/`delivered`/`dropped` count whole messages.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Metrics {
    /// Total edge traversals — the paper's `m` numerator.
    pub message_passes: u64,
    /// Messages handed to the network (excluding free local deliveries).
    pub sends: u64,
    /// Messages delivered to a live destination handler.
    pub delivered: u64,
    /// Messages that died (crashed destination or severed path).
    pub dropped: u64,
    /// Number of crash events injected.
    pub crashes: u64,
    /// Events executed by the simulator loop (deliveries, timer firings
    /// and drops at crashed nodes) — the denominator for events/sec.
    pub events_executed: u64,
    /// Highest number of simultaneously queued events observed — the
    /// event core's working-set size.
    pub peak_queue_depth: u64,
    /// Deliveries per node — cache pressure / rendezvous load.
    pub node_load: Vec<u64>,
}

impl Metrics {
    /// Fresh counters for an `n`-node simulation.
    pub fn new(n: usize) -> Self {
        Metrics {
            message_passes: 0,
            sends: 0,
            delivered: 0,
            dropped: 0,
            crashes: 0,
            events_executed: 0,
            peak_queue_depth: 0,
            node_load: vec![0; n],
        }
    }

    /// Resets all counters (e.g. after a warm-up phase) while keeping the
    /// node count.
    pub fn reset(&mut self) {
        let n = self.node_load.len();
        *self = Metrics::new(n);
    }

    /// Counter-wise difference `self - earlier`: what happened between two
    /// snapshots. Used by the workload runners (simulator *and* live) to
    /// attribute traffic to phases from the same report-building code.
    /// `peak_queue_depth` is a high-water mark, not a counter, so the
    /// later snapshot's value is kept as-is.
    ///
    /// # Panics
    ///
    /// Panics if the snapshots disagree on the node count.
    pub fn delta(&self, earlier: &Metrics) -> Metrics {
        assert_eq!(
            self.node_load.len(),
            earlier.node_load.len(),
            "snapshots must come from the same network"
        );
        Metrics {
            message_passes: self.message_passes - earlier.message_passes,
            sends: self.sends - earlier.sends,
            delivered: self.delivered - earlier.delivered,
            dropped: self.dropped - earlier.dropped,
            crashes: self.crashes - earlier.crashes,
            events_executed: self.events_executed - earlier.events_executed,
            peak_queue_depth: self.peak_queue_depth,
            node_load: self
                .node_load
                .iter()
                .zip(&earlier.node_load)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }

    /// The most-loaded node and its delivery count, if any deliveries
    /// happened.
    pub fn hottest_node(&self) -> Option<(usize, u64)> {
        self.node_load
            .iter()
            .copied()
            .enumerate()
            .max_by_key(|&(_, l)| l)
            .filter(|&(_, l)| l > 0)
    }

    /// Mean deliveries per node.
    pub fn mean_load(&self) -> f64 {
        if self.node_load.is_empty() {
            return 0.0;
        }
        self.node_load.iter().sum::<u64>() as f64 / self.node_load.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_zeroed() {
        let m = Metrics::new(3);
        assert_eq!(m.message_passes, 0);
        assert_eq!(m.node_load, vec![0, 0, 0]);
        assert_eq!(m.hottest_node(), None);
        assert_eq!(m.mean_load(), 0.0);
    }

    #[test]
    fn hottest_and_mean() {
        let mut m = Metrics::new(4);
        m.node_load = vec![1, 5, 0, 2];
        assert_eq!(m.hottest_node(), Some((1, 5)));
        assert_eq!(m.mean_load(), 2.0);
    }

    #[test]
    fn delta_subtracts_counters_and_keeps_peak() {
        let mut before = Metrics::new(2);
        before.message_passes = 5;
        before.delivered = 3;
        before.node_load = vec![2, 1];
        before.peak_queue_depth = 9;
        let mut after = before.clone();
        after.message_passes = 12;
        after.delivered = 8;
        after.node_load = vec![4, 4];
        after.peak_queue_depth = 11;
        let d = after.delta(&before);
        assert_eq!(d.message_passes, 7);
        assert_eq!(d.delivered, 5);
        assert_eq!(d.node_load, vec![2, 3]);
        assert_eq!(d.peak_queue_depth, 11, "high-water mark, not a counter");
    }

    #[test]
    fn reset_keeps_size() {
        let mut m = Metrics::new(2);
        m.message_passes = 10;
        m.node_load[1] = 4;
        m.reset();
        assert_eq!(m, Metrics::new(2));
    }
}
