//! Interned multicast target sets.
//!
//! Post and query sets (`P(i)`, `Q(j)`) are computed per `(node, port)`
//! and then reused for every operation that node issues; cloning a
//! `Vec<NodeId>` per multicast was one of the simulator's dominant
//! allocation costs. [`TargetSet`] is a shared, canonically sorted,
//! deduplicated `Arc<[NodeId]>`: cloning is a reference-count bump, and
//! the simulator's multicast path can skip its own sort/dedup because the
//! invariant is established once at construction.

use mm_topo::NodeId;
use std::ops::Deref;
use std::sync::Arc;

/// A shared, sorted, duplicate-free set of multicast targets.
///
/// # Example
///
/// ```
/// use mm_sim::TargetSet;
/// use mm_topo::NodeId;
///
/// let set = TargetSet::new(&[NodeId::new(3), NodeId::new(1), NodeId::new(3)]);
/// assert_eq!(&*set, &[NodeId::new(1), NodeId::new(3)]);
/// let cheap = set.clone(); // refcount bump, no copy
/// assert!(cheap.contains(NodeId::new(1)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TargetSet {
    ids: Arc<[NodeId]>,
}

// Concurrency audit (sharded executor): `TargetSet` rides inside messages
// that cross shard — and therefore worker-thread — boundaries. The share
// is an `Arc` (atomic refcount, not `Rc`) over an immutable slice, so
// clones/drops from concurrent shard rounds are sound and the contents
// can never be observed mid-mutation. Pinned here so a future swap to a
// non-atomic smart pointer fails to compile instead of racing.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<TargetSet>();
};

impl TargetSet {
    /// Builds a set from arbitrary targets (copies, sorts, dedups).
    pub fn new(targets: &[NodeId]) -> Self {
        Self::from_vec(targets.to_vec())
    }

    /// Builds a set from an owned vector (sorts and dedups in place; no
    /// extra copy beyond the final shared allocation).
    pub fn from_vec(mut targets: Vec<NodeId>) -> Self {
        targets.sort_unstable();
        targets.dedup();
        TargetSet {
            ids: targets.into(),
        }
    }

    /// The empty set.
    pub fn empty() -> Self {
        TargetSet { ids: Arc::new([]) }
    }

    /// The targets, ascending and duplicate-free.
    pub fn as_slice(&self) -> &[NodeId] {
        &self.ids
    }

    /// Number of distinct targets.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` for the empty set.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Membership test (binary search).
    pub fn contains(&self, v: NodeId) -> bool {
        self.ids.binary_search(&v).is_ok()
    }

    /// Iterates the targets in ascending order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        self.ids.iter().copied()
    }
}

impl Deref for TargetSet {
    type Target = [NodeId];

    fn deref(&self) -> &[NodeId] {
        &self.ids
    }
}

impl From<Vec<NodeId>> for TargetSet {
    fn from(v: Vec<NodeId>) -> Self {
        TargetSet::from_vec(v)
    }
}

impl From<&[NodeId]> for TargetSet {
    fn from(v: &[NodeId]) -> Self {
        TargetSet::new(v)
    }
}

impl<'a> IntoIterator for &'a TargetSet {
    type Item = NodeId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, NodeId>>;

    fn into_iter(self) -> Self::IntoIter {
        self.ids.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn sorts_and_dedups() {
        let s = TargetSet::new(&[n(5), n(1), n(5), n(3), n(1)]);
        assert_eq!(s.as_slice(), &[n(1), n(3), n(5)]);
        assert_eq!(s.len(), 3);
        assert!(s.contains(n(3)));
        assert!(!s.contains(n(2)));
    }

    #[test]
    fn empty_set() {
        let s = TargetSet::empty();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        assert_eq!(s, TargetSet::new(&[]));
    }

    #[test]
    fn clones_share_storage() {
        let a = TargetSet::new(&[n(1), n(2)]);
        let b = a.clone();
        assert!(std::ptr::eq(a.as_slice().as_ptr(), b.as_slice().as_ptr()));
        assert_eq!(a, b);
    }

    #[test]
    fn conversions() {
        let s: TargetSet = vec![n(2), n(0)].into();
        assert_eq!(&*s, &[n(0), n(2)]);
        let slice: &[NodeId] = &[n(1)];
        assert_eq!(TargetSet::from(slice).len(), 1);
    }
}
