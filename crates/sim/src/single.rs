//! The single-threaded executor core: one event queue, strict global
//! `(time, sequence)` pop order. This is the original `Sim` event loop,
//! kept as the byte-for-byte oracle the sharded core is checked against
//! (exactly as `QueueKind::BTree` is the oracle for the calendar queue).

use crate::metrics::Metrics;
use crate::queue::{EventQueue, QueueKind};
use crate::route::{self, NetEnv, RouteCounters};
use crate::{
    CostModel, Envelope, Event, Node, NodeApi, Op, RouterKind, SimTime, QUEUE_DEPTH_BUCKETS,
};
use mm_topo::{AnyRouter, Graph, NodeId};

/// Single-threaded core: a graph, one [`Node`] state machine per graph
/// node, an event queue, and exact message-pass metrics.
#[derive(Debug)]
pub(crate) struct SingleCore<M, N> {
    graph: Graph,
    /// Built only under [`CostModel::Hops`]; `Uniform` never routes.
    routing: Option<AnyRouter>,
    nodes: Vec<N>,
    crashed: Vec<bool>,
    /// Number of currently crashed nodes (lets routing skip hop walks
    /// entirely while everyone is alive).
    crashed_count: usize,
    queue: EventQueue<Event<M>>,
    now: SimTime,
    cost_model: CostModel,
    metrics: Metrics,
    /// Handler-op buffer reused across `step` calls (no per-event `Vec`).
    scratch: Vec<Op<M>>,
    /// Log₂ histogram of queue depth, sampled at every push: bucket 0
    /// holds depth 0, bucket `k > 0` holds depths in `[2^(k-1), 2^k)`.
    /// Identical across queue implementations (same pending-event set).
    depth_buckets: [u64; QUEUE_DEPTH_BUCKETS],
}

impl<M: Clone, N: Node<M>> SingleCore<M, N> {
    pub(crate) fn with_queue(
        graph: Graph,
        nodes: Vec<N>,
        cost_model: CostModel,
        kind: QueueKind,
        router: RouterKind,
    ) -> Self {
        assert_eq!(
            nodes.len(),
            graph.node_count(),
            "one handler per graph node required"
        );
        let routing = match cost_model {
            CostModel::Hops => Some(router.build(&graph)),
            CostModel::Uniform => None,
        };
        let n = graph.node_count();
        SingleCore {
            graph,
            routing,
            nodes,
            crashed: vec![false; n],
            crashed_count: 0,
            queue: EventQueue::new(kind),
            now: 0,
            cost_model,
            metrics: Metrics::new(n),
            scratch: Vec::new(),
            depth_buckets: [0; QUEUE_DEPTH_BUCKETS],
        }
    }

    pub(crate) fn graph(&self) -> &Graph {
        &self.graph
    }

    pub(crate) fn routing(&self) -> Option<&AnyRouter> {
        self.routing.as_ref()
    }

    pub(crate) fn now(&self) -> SimTime {
        self.now
    }

    pub(crate) fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    pub(crate) fn node(&self, v: NodeId) -> &N {
        &self.nodes[v.index()]
    }

    pub(crate) fn node_mut(&mut self, v: NodeId) -> &mut N {
        &mut self.nodes[v.index()]
    }

    pub(crate) fn crash(&mut self, v: NodeId) {
        if !self.crashed[v.index()] {
            self.crashed[v.index()] = true;
            self.crashed_count += 1;
        }
        self.metrics.crashes += 1;
    }

    pub(crate) fn restore(&mut self, v: NodeId) {
        if self.crashed[v.index()] {
            self.crashed[v.index()] = false;
            self.crashed_count -= 1;
        }
    }

    pub(crate) fn is_crashed(&self, v: NodeId) -> bool {
        self.crashed[v.index()]
    }

    pub(crate) fn inject(&mut self, from: NodeId, at: NodeId, msg: M) {
        let env = Envelope {
            from,
            to: at,
            sent_at: self.now,
            msg,
        };
        self.push(self.now, Event::Deliver(env));
    }

    pub(crate) fn inject_timer(&mut self, at: NodeId, delay: SimTime, tag: u64) {
        self.push(self.now + delay, Event::Timer { at, tag });
    }

    fn push(&mut self, at: SimTime, ev: Event<M>) {
        self.queue.push(at, ev);
        let depth = self.queue.len() as u64;
        if depth > self.metrics.peak_queue_depth {
            self.metrics.peak_queue_depth = depth;
        }
        self.depth_buckets[(64 - depth.leading_zeros()) as usize] += 1;
    }

    pub(crate) fn queue_depth_buckets(&self) -> &[u64; QUEUE_DEPTH_BUCKETS] {
        &self.depth_buckets
    }

    pub(crate) fn run(&mut self) -> SimTime {
        while self.step() {}
        self.now
    }

    pub(crate) fn run_until(&mut self, deadline: SimTime) -> SimTime {
        while self.step_until(deadline) {}
        self.now = self.now.max(deadline);
        self.now
    }

    pub(crate) fn step(&mut self) -> bool {
        self.step_until(SimTime::MAX)
    }

    /// Executes the next event if it is due at or before `deadline`.
    fn step_until(&mut self, deadline: SimTime) -> bool {
        let Some((t, ev)) = self.queue.pop_next_until(deadline) else {
            return false;
        };
        self.now = t;
        self.metrics.events_executed += 1;
        // reuse one ops buffer across events instead of allocating per
        // handler invocation; apply_ops drains it back to empty
        let mut ops = std::mem::take(&mut self.scratch);
        debug_assert!(ops.is_empty());
        match ev {
            Event::Deliver(env) => {
                let at = env.to;
                if self.crashed[at.index()] {
                    self.metrics.dropped += 1;
                    self.scratch = ops;
                    return true;
                }
                self.metrics.delivered += 1;
                self.metrics.node_load[at.index()] += 1;
                let mut api = NodeApi {
                    ops: &mut ops,
                    now: self.now,
                    me: at,
                };
                self.nodes[at.index()].on_message(env, &mut api);
                self.apply_ops(at, &mut ops);
            }
            Event::Timer { at, tag } => {
                if self.crashed[at.index()] {
                    self.scratch = ops;
                    return true;
                }
                let mut api = NodeApi {
                    ops: &mut ops,
                    now: self.now,
                    me: at,
                };
                self.nodes[at.index()].on_timer(tag, &mut api);
                self.apply_ops(at, &mut ops);
            }
        }
        self.scratch = ops;
        true
    }

    fn apply_ops(&mut self, from: NodeId, ops: &mut Vec<Op<M>>) {
        let env = NetEnv {
            routing: self.routing.as_ref(),
            crashed: &self.crashed,
            crashed_count: self.crashed_count,
            cost_model: self.cost_model,
        };
        let mut c = RouteCounters::default();
        let queue = &mut self.queue;
        let metrics = &mut self.metrics;
        let depth_buckets = &mut self.depth_buckets;
        route::apply_ops(&env, self.now, from, ops, &mut c, &mut |at, ev| {
            queue.push(at, ev);
            let depth = queue.len() as u64;
            if depth > metrics.peak_queue_depth {
                metrics.peak_queue_depth = depth;
            }
            depth_buckets[(64 - depth.leading_zeros()) as usize] += 1;
        });
        metrics.sends += c.sends;
        metrics.message_passes += c.passes;
        metrics.dropped += c.dropped;
    }
}
