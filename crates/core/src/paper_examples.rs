//! The worked examples of paper §2.3.1 and §3.1, reproduced
//! entry-for-entry.
//!
//! Six rendezvous matrices are printed in §2.3.1 (broadcasting, sweeping,
//! centralized, truly distributed, hierarchical, binary 3-cube) plus the
//! 9-node Manhattan matrix of §3.1. The constructors here build them
//! from the paper's formulas; the test suite cross-checks them against
//! the corresponding [`strategies`](crate::strategies) so the printed
//! figures and the executable strategies can never drift apart.
//!
//! All matrices use 0-based node ids internally; rendering via
//! [`RendezvousMatrix::render`] restores the paper's 1-based (or binary)
//! numbering.

use crate::matrix::RendezvousMatrix;
use mm_topo::NodeId;

fn matrix_from(n: usize, f: impl Fn(u32, u32) -> u32) -> RendezvousMatrix {
    let mut entries = Vec::with_capacity(n * n);
    for i in 0..n as u32 {
        for j in 0..n as u32 {
            entries.push(vec![NodeId::new(f(i, j))]);
        }
    }
    RendezvousMatrix::from_entries(n, entries)
}

/// Example 1 — broadcasting: `r_ij = {i}` ("the server stays put and the
/// client looks everywhere"). 9 nodes.
pub fn example_1_broadcasting() -> RendezvousMatrix {
    matrix_from(9, |i, _j| i)
}

/// Example 2 — sweeping: `r_ij = {j}` ("the client stays put and the
/// server looks for work"). 9 nodes.
pub fn example_2_sweeping() -> RendezvousMatrix {
    matrix_from(9, |_i, j| j)
}

/// Example 3 — centralized name server at the paper's node 3 (0-based
/// node 2): `r_ij = {3}`. 9 nodes.
pub fn example_3_centralized() -> RendezvousMatrix {
    matrix_from(9, |_i, _j| 2)
}

/// Example 4 — truly distributed name server: the checkerboard where
/// `r_ij` is node `band(i)·3 + band(j)` with bands of 3; every node is
/// used equally often (`k_i = 9`). 9 nodes.
pub fn example_4_truly_distributed() -> RendezvousMatrix {
    matrix_from(9, |i, j| (i / 3) * 3 + j / 3)
}

/// Example 5 — hierarchically distributed name server with the ordering
/// `1,2,3 < 7`, `4,5,6 < 8`, `7,8 < 9`: intra-group pairs meet at their
/// group's parent, everything else at the root 9. 9 nodes.
pub fn example_5_hierarchical() -> RendezvousMatrix {
    matrix_from(9, |i, j| {
        if i < 3 && j < 3 {
            6 // paper node 7
        } else if (3..6).contains(&i) && (3..6).contains(&j) {
            7 // paper node 8
        } else {
            8 // paper node 9
        }
    })
}

/// Example 6 — distributed name server for the binary 3-cube:
/// `P(abc) = {axy}`, `Q(abc) = {xbc}`, so the rendezvous for server `s`
/// and client `c` is `(s & 100₂) | (c & 011₂)`. 8 nodes; render with
/// `binary_width = Some(3)`.
pub fn example_6_binary_3_cube() -> RendezvousMatrix {
    matrix_from(8, |s, c| (s & 0b100) | (c & 0b011))
}

/// §3.1 — the 9-node Manhattan network matrix: `r_ij` is the crossing of
/// server `i`'s row and client `j`'s column in the 3×3 grid.
pub fn manhattan_9_node() -> RendezvousMatrix {
    matrix_from(9, |i, j| (i / 3) * 3 + j % 3)
}

/// All seven worked matrices with their paper names and the binary
/// rendering width for the cube example.
pub fn all_examples() -> Vec<(&'static str, RendezvousMatrix, Option<usize>)> {
    vec![
        ("Example 1: broadcasting", example_1_broadcasting(), None),
        ("Example 2: sweeping", example_2_sweeping(), None),
        (
            "Example 3: centralized name server",
            example_3_centralized(),
            None,
        ),
        (
            "Example 4: truly distributed name server",
            example_4_truly_distributed(),
            None,
        ),
        (
            "Example 5: hierarchically distributed name server",
            example_5_hierarchical(),
            None,
        ),
        (
            "Example 6: binary 3-cube name server",
            example_6_binary_3_cube(),
            Some(3),
        ),
        (
            "Section 3.1: 9-node Manhattan network",
            manhattan_9_node(),
            None,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::{
        Broadcast, Centralized, Checkerboard, GridRowColumn, HypercubeSplit, Sweep,
    };
    use crate::Strategy;

    #[test]
    fn examples_match_strategies() {
        assert_eq!(example_1_broadcasting(), Broadcast::new(9).to_matrix());
        assert_eq!(example_2_sweeping(), Sweep::new(9).to_matrix());
        assert_eq!(
            example_3_centralized(),
            Centralized::new(9, NodeId::new(2)).to_matrix()
        );
        assert_eq!(
            example_4_truly_distributed(),
            Checkerboard::new(9).to_matrix()
        );
        assert_eq!(
            example_6_binary_3_cube(),
            HypercubeSplit::example_6().to_matrix()
        );
        assert_eq!(manhattan_9_node(), GridRowColumn::new(3, 3).to_matrix());
    }

    #[test]
    fn example_5_structure() {
        let m = example_5_hierarchical();
        assert!(m.is_optimal());
        // spot-check the three regions against the printed figure
        assert_eq!(m.entry(NodeId::new(0), NodeId::new(1)), &[NodeId::new(6)]);
        assert_eq!(m.entry(NodeId::new(4), NodeId::new(5)), &[NodeId::new(7)]);
        assert_eq!(m.entry(NodeId::new(0), NodeId::new(4)), &[NodeId::new(8)]);
        assert_eq!(m.entry(NodeId::new(8), NodeId::new(8)), &[NodeId::new(8)]);
        // only high nodes 7,8,9 are ever rendezvous
        let k = m.multiplicities();
        assert_eq!(&k[0..6], &[0, 0, 0, 0, 0, 0]);
        assert_eq!(k[6], 9); // node 7: 3x3 block
        assert_eq!(k[7], 9); // node 8
        assert_eq!(k[8], 63); // node 9: the rest
        assert_eq!(k.iter().sum::<u64>(), 81);
    }

    #[test]
    fn example_multiplicities_match_paper_narrative() {
        // broadcasting: k_i = 9 each (row i full of i)
        assert_eq!(example_1_broadcasting().multiplicities(), vec![9; 9]);
        // centralized: all 81 at node 3
        let k3 = example_3_centralized().multiplicities();
        assert_eq!(k3[2], 81);
        assert_eq!(k3.iter().sum::<u64>(), 81);
        // truly distributed: k_i = 9 each
        assert_eq!(example_4_truly_distributed().multiplicities(), vec![9; 9]);
    }

    #[test]
    fn example_6_first_row_matches_figure() {
        let m = example_6_binary_3_cube();
        // figure row for server 000: 000 001 010 011 000 001 010 011
        let want = [0u32, 1, 2, 3, 0, 1, 2, 3];
        for (j, &w) in want.iter().enumerate() {
            assert_eq!(m.entry(NodeId::new(0), NodeId::from(j)), &[NodeId::new(w)]);
        }
        // figure row for server 100: 100 101 110 111 100 101 110 111
        let want = [4u32, 5, 6, 7, 4, 5, 6, 7];
        for (j, &w) in want.iter().enumerate() {
            assert_eq!(m.entry(NodeId::new(4), NodeId::from(j)), &[NodeId::new(w)]);
        }
    }

    #[test]
    fn manhattan_matches_figure() {
        let m = manhattan_9_node();
        // figure row for server 4 (0-based 3): 4 5 6 4 5 6 4 5 6
        let want = [3u32, 4, 5, 3, 4, 5, 3, 4, 5];
        for (j, &w) in want.iter().enumerate() {
            assert_eq!(m.entry(NodeId::new(3), NodeId::from(j)), &[NodeId::new(w)]);
        }
    }

    #[test]
    fn all_examples_are_m2_valid() {
        for (name, m, _) in all_examples() {
            assert!(m.satisfies_m2(), "{name}");
            assert!(m.is_optimal(), "{name}");
            assert_eq!(
                m.multiplicities().iter().sum::<u64>() as usize,
                m.node_count() * m.node_count(),
                "{name}"
            );
        }
    }

    #[test]
    fn rendering_shows_paper_numbers() {
        let s = example_3_centralized().render(None);
        // every row shows nine 3s
        assert!(s.matches('3').count() >= 81);
        let cube = example_6_binary_3_cube().render(Some(3));
        assert!(cube.contains("000") && cube.contains("111"));
    }
}
