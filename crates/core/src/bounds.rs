//! Lower bounds and the probabilistic analysis (paper §2.2–§2.3).
//!
//! * §2.2: with random `P(i)`, `Q(j)` of sizes `p`, `q`, the expected size
//!   of `P(i) ∩ Q(j)` is `pq/n`; expecting one rendezvous requires
//!   `p + q ≥ 2√n`.
//! * Proposition 1: `(1/n²)·Σ_iΣ_j #P(i)·#Q(j) ≥ (1/n²)·(Σ_i √k_i)²`.
//! * Proposition 2: `m(n) ≥ (2/n)·Σ_i √(k_i) / √n · √n` — concretely
//!   implemented as `m(n) ≥ (2/n)·Σ_i √k_i`, the closed form consistent
//!   with both corollaries (truly distributed `k_i = n` ⟹ `m(n) ≥ 2√n`;
//!   centralized `k_1 = n²` ⟹ `m(n) ≥ 2`).
//! * (M3′): weighted cost `m(i,j) = #P(i) + α·#Q(j)` when locates are
//!   `α` times more frequent than posts; the optimal split follows from
//!   AM–GM on the `pq ≥ n` constraint.

use rand::Rng;

/// §2.2 — expected size of `P ∩ Q` for independently random sets of sizes
/// `p` and `q` in a universe of `n`: `pq/n`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn expected_intersection(n: usize, p: usize, q: usize) -> f64 {
    assert!(n > 0, "universe must be non-empty");
    (p as f64) * (q as f64) / (n as f64)
}

/// §2.2 — the minimum `p + q` for which the expected intersection reaches
/// one full node: `2√n` (achieved at `p = q = √n`).
pub fn min_sum_for_expected_rendezvous(n: usize) -> f64 {
    2.0 * (n as f64).sqrt()
}

/// Monte-Carlo estimate of `E[#(P ∩ Q)]` with uniformly random distinct
/// `P`, `Q` of sizes `p`, `q` out of `n` — used to validate the `pq/n`
/// closed form experimentally (experiment E2).
///
/// # Panics
///
/// Panics if `p > n` or `q > n` or `n == 0`.
pub fn monte_carlo_intersection<R: Rng + ?Sized>(
    n: usize,
    p: usize,
    q: usize,
    trials: usize,
    rng: &mut R,
) -> f64 {
    assert!(n > 0 && p <= n && q <= n, "sets must fit in the universe");
    let mut total = 0u64;
    // membership vectors reused across trials
    let mut in_p = vec![false; n];
    for _ in 0..trials {
        in_p.iter_mut().for_each(|b| *b = false);
        // partial Fisher-Yates to sample p distinct nodes
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..p {
            let j = rng.gen_range(i..n);
            idx.swap(i, j);
            in_p[idx[i]] = true;
        }
        // sample q distinct nodes and count overlaps
        let mut idx2: Vec<usize> = (0..n).collect();
        let mut hits = 0u64;
        for i in 0..q {
            let j = rng.gen_range(i..n);
            idx2.swap(i, j);
            if in_p[idx2[i]] {
                hits += 1;
            }
        }
        total += hits;
    }
    total as f64 / trials as f64
}

/// Monte-Carlo probability that random `P`, `Q` of sizes `p`, `q`
/// intersect at all (at least one rendezvous).
///
/// # Panics
///
/// Panics if `p > n` or `q > n` or `n == 0`.
pub fn monte_carlo_success<R: Rng + ?Sized>(
    n: usize,
    p: usize,
    q: usize,
    trials: usize,
    rng: &mut R,
) -> f64 {
    assert!(n > 0 && p <= n && q <= n, "sets must fit in the universe");
    let mut successes = 0u64;
    let mut in_p = vec![false; n];
    for _ in 0..trials {
        in_p.iter_mut().for_each(|b| *b = false);
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..p {
            let j = rng.gen_range(i..n);
            idx.swap(i, j);
            in_p[idx[i]] = true;
        }
        let mut idx2: Vec<usize> = (0..n).collect();
        'trial: {
            for i in 0..q {
                let j = rng.gen_range(i..n);
                idx2.swap(i, j);
                if in_p[idx2[i]] {
                    successes += 1;
                    break 'trial;
                }
            }
        }
    }
    successes as f64 / trials as f64
}

/// Proposition 1, right-hand side: `(1/n²)·(Σ_i √k_i)²` where `k_i` is the
/// multiplicity of node `i` in the rendezvous matrix.
pub fn prop1_lower_bound(k: &[u64]) -> f64 {
    let n = k.len();
    if n == 0 {
        return 0.0;
    }
    let s: f64 = k.iter().map(|&ki| (ki as f64).sqrt()).sum();
    s * s / (n as f64 * n as f64)
}

/// Proposition 1, left-hand side for a given strategy:
/// `(1/n²)·Σ_iΣ_j #P(i)·#Q(j) = (1/n²)·(Σ_i #P(i))·(Σ_j #Q(j))`.
pub fn prop1_product_average(post_sizes: &[usize], query_sizes: &[usize]) -> f64 {
    let n = post_sizes.len();
    if n == 0 {
        return 0.0;
    }
    let sp: f64 = post_sizes.iter().map(|&x| x as f64).sum();
    let sq: f64 = query_sizes.iter().map(|&x| x as f64).sum();
    sp * sq / (n as f64 * n as f64)
}

/// Proposition 2: the lower bound on the average number of message passes,
/// `m(n) ≥ (2/n)·Σ_i √k_i`.
///
/// Specializations (the paper's corollaries):
/// * truly distributed (`k_i = n` for all `i`): bound `= 2√n`;
/// * centralized (`k_1 = n²`, rest 0): bound `= 2`.
///
/// # Panics
///
/// Panics if `n == 0` while `k` is non-empty.
pub fn prop2_lower_bound(k: &[u64], n: usize) -> f64 {
    if k.is_empty() {
        return 0.0;
    }
    assert!(n > 0, "universe must be non-empty");
    let s: f64 = k.iter().map(|&ki| (ki as f64).sqrt()).sum();
    2.0 * s / n as f64
}

/// The truly-distributed corollary: `m(n) ≥ 2√n`.
pub fn truly_distributed_bound(n: usize) -> f64 {
    2.0 * (n as f64).sqrt()
}

/// The centralized corollary: `m(n) ≥ 2`.
pub fn centralized_bound(_n: usize) -> f64 {
    2.0
}

/// (M3′) — weighted pair cost `#P + α·#Q` where the client-to-server
/// frequency ratio is `α` (`α > 1` means locates dominate).
pub fn weighted_pair_cost(post: usize, query: usize, alpha: f64) -> f64 {
    post as f64 + alpha * query as f64
}

/// Optimal `(p, q)` minimizing `p + α·q` subject to the rendezvous
/// constraint `p·q ≥ n`: `p = √(α·n)`, `q = √(n/α)` (AM–GM equality).
/// Returned unrounded; constructions round up.
///
/// # Panics
///
/// Panics if `alpha <= 0` or `n == 0`.
pub fn weighted_optimal_split(n: usize, alpha: f64) -> (f64, f64) {
    assert!(alpha > 0.0, "alpha must be positive");
    assert!(n > 0, "universe must be non-empty");
    ((alpha * n as f64).sqrt(), (n as f64 / alpha).sqrt())
}

/// The most inefficient strategy (`P(i) = Q(j) = U`) costs `m(n) = 2n`
/// (§2.3.4) — the ceiling against which everything is measured.
pub fn worst_case_cost(n: usize) -> f64 {
    2.0 * n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn expected_intersection_formula() {
        assert!((expected_intersection(100, 10, 10) - 1.0).abs() < 1e-12);
        assert!((expected_intersection(64, 8, 8) - 1.0).abs() < 1e-12);
        assert!((expected_intersection(64, 4, 8) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn threshold_is_two_sqrt_n() {
        assert!((min_sum_for_expected_rendezvous(64) - 16.0).abs() < 1e-12);
        // at p = q = sqrt(n), expectation is exactly 1
        assert!((expected_intersection(64, 8, 8) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn monte_carlo_matches_closed_form() {
        let mut rng = StdRng::seed_from_u64(1234);
        for (n, p, q) in [(50usize, 10usize, 10usize), (100, 5, 40), (64, 8, 8)] {
            let est = monte_carlo_intersection(n, p, q, 4000, &mut rng);
            let exact = expected_intersection(n, p, q);
            assert!(
                (est - exact).abs() < 0.15 * exact.max(0.5),
                "n={n},p={p},q={q}: est {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn monte_carlo_success_bounds() {
        let mut rng = StdRng::seed_from_u64(99);
        // p = q = n: always succeed
        assert!((monte_carlo_success(20, 20, 20, 200, &mut rng) - 1.0).abs() < 1e-12);
        // empty query: never
        assert_eq!(monte_carlo_success(20, 5, 0, 200, &mut rng), 0.0);
        // p+q = 2 sqrt n: succeed often but not always
        let s = monte_carlo_success(100, 10, 10, 2000, &mut rng);
        assert!(s > 0.5 && s < 0.95, "success prob {s}");
    }

    #[test]
    fn prop1_uniform_case() {
        // truly distributed: k_i = n for all i -> bound = n
        let n = 16usize;
        let k = vec![n as u64; n];
        assert!((prop1_lower_bound(&k) - n as f64).abs() < 1e-9);
    }

    #[test]
    fn prop1_centralized_case() {
        // k_1 = n^2 -> bound = 1
        let n = 9usize;
        let mut k = vec![0u64; n];
        k[0] = (n * n) as u64;
        assert!((prop1_lower_bound(&k) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn prop1_product_average_splits() {
        let posts = vec![3usize; 4];
        let queries = vec![5usize; 4];
        assert!((prop1_product_average(&posts, &queries) - 15.0).abs() < 1e-12);
    }

    #[test]
    fn prop2_corollaries() {
        let n = 25usize;
        let k_uniform = vec![n as u64; n];
        assert!((prop2_lower_bound(&k_uniform, n) - 10.0).abs() < 1e-9); // 2 sqrt 25
        let mut k_central = vec![0u64; n];
        k_central[7] = (n * n) as u64;
        assert!((prop2_lower_bound(&k_central, n) - 2.0).abs() < 1e-9);
        assert!((truly_distributed_bound(25) - 10.0).abs() < 1e-12);
        assert!((centralized_bound(25) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn prop2_worst_case_all_entries_full() {
        // P = Q = U: every entry is U, k_i = n^2, bound = 2n = the actual cost
        let n = 8usize;
        let k = vec![(n * n) as u64; n];
        assert!((prop2_lower_bound(&k, n) - worst_case_cost(n)).abs() < 1e-9);
    }

    #[test]
    fn weighted_split_is_optimal() {
        let n = 100usize;
        for alpha in [0.25f64, 1.0, 4.0, 16.0] {
            let (p, q) = weighted_optimal_split(n, alpha);
            assert!((p * q - n as f64).abs() < 1e-9, "pq = n at the optimum");
            let opt = p + alpha * q;
            // perturbations satisfying pq = n cost more
            for eps in [0.8f64, 0.9, 1.1, 1.25] {
                let p2 = p * eps;
                let q2 = n as f64 / p2;
                assert!(p2 + alpha * q2 >= opt - 1e-9);
            }
        }
    }

    #[test]
    fn weighted_alpha_one_recovers_sqrt_n() {
        let (p, q) = weighted_optimal_split(49, 1.0);
        assert!((p - 7.0).abs() < 1e-9);
        assert!((q - 7.0).abs() < 1e-9);
    }

    #[test]
    fn empty_k_bounds_are_zero() {
        assert_eq!(prop1_lower_bound(&[]), 0.0);
        assert_eq!(prop2_lower_bound(&[], 5), 0.0);
    }
}
