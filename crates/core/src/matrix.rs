//! The rendezvous matrix `R` (paper §2.3).
//!
//! *"The `n×n` matrix `R`, with entries `r_ij` (`1 ≤ i,j ≤ n`) is the
//! rendez-vous matrix. Each entry `r_ij` … represents the set of
//! rendez-vous nodes where the client at node `j` can find the location
//! and port of the server at node `i`."*
//!
//! Properties tracked here:
//!
//! * **(M1)** `∪_j r_ij ⊆ P(i)` and `∪_i r_ij ⊆ Q(j)` — holds by
//!   construction when the matrix is derived from a strategy; equality
//!   ("no waste") is checkable via [`RendezvousMatrix::row_col_waste`].
//! * **(M2)** `Σ_i k_i ≥ n²` where `k_i` counts the occurrences of node
//!   `i` over all entries — [`RendezvousMatrix::multiplicities`].
//! * An *optimal* shotgun method has exactly one element in each `r_ij` —
//!   [`RendezvousMatrix::is_optimal`].

use mm_topo::NodeId;
use std::fmt;

/// A fully materialized rendezvous matrix.
///
/// Entries are sorted, duplicate-free node sets. Row index = server node,
/// column index = client node (as in the paper's figures).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RendezvousMatrix {
    n: usize,
    entries: Vec<Vec<NodeId>>, // row-major n*n
}

impl RendezvousMatrix {
    /// Builds the matrix `r_ij = P(i) ∩ Q(j)` from closures (used by
    /// `Strategy::to_matrix`; prefer that method).
    pub fn from_strategy_dyn(
        post: &dyn Fn(NodeId) -> Vec<NodeId>,
        query: &dyn Fn(NodeId) -> Vec<NodeId>,
        n: usize,
    ) -> Self {
        let posts: Vec<Vec<NodeId>> = (0..n).map(|i| post(NodeId::from(i))).collect();
        let queries: Vec<Vec<NodeId>> = (0..n).map(|j| query(NodeId::from(j))).collect();
        let mut entries = Vec::with_capacity(n * n);
        for p in &posts {
            for q in &queries {
                entries.push(crate::strategy::intersect_sorted(p, q));
            }
        }
        RendezvousMatrix { n, entries }
    }

    /// Builds a matrix directly from per-entry sets (row-major, length
    /// `n²`). Used by the paper-example constructors and Prop. 4 lifting.
    ///
    /// # Panics
    ///
    /// Panics if `entries.len() != n²` or an entry references a node
    /// `≥ n`.
    pub fn from_entries(n: usize, entries: Vec<Vec<NodeId>>) -> Self {
        assert_eq!(entries.len(), n * n, "matrix must have n^2 entries");
        let mut entries = entries;
        for e in &mut entries {
            e.sort_unstable();
            e.dedup();
            assert!(
                e.iter().all(|v| v.index() < n),
                "entry references node outside universe"
            );
        }
        RendezvousMatrix { n, entries }
    }

    /// Universe size `n`.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// The entry `r_ij`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn entry(&self, i: NodeId, j: NodeId) -> &[NodeId] {
        &self.entries[i.index() * self.n + j.index()]
    }

    /// `k_i` for every node: how many of the `n²` entries contain node `i`
    /// (counting one per entry-membership, as in §2.3.2).
    pub fn multiplicities(&self) -> Vec<u64> {
        let mut k = vec![0u64; self.n];
        for e in &self.entries {
            for v in e {
                k[v.index()] += 1;
            }
        }
        k
    }

    /// Checks (M2): `Σ k_i ≥ n²` — equivalently, no entry is empty
    /// (each entry contributes ≥ 1 when nonempty).
    pub fn satisfies_m2(&self) -> bool {
        self.entries.iter().all(|e| !e.is_empty())
    }

    /// `true` iff every entry is a singleton — the paper's *optimal*
    /// shotgun arrangement (no redundant rendezvous work).
    pub fn is_optimal(&self) -> bool {
        self.entries.iter().all(|e| e.len() == 1)
    }

    /// Row sets: `∪_j r_ij` per row `i` (the part of `P(i)` actually used)
    /// and column sets `∪_i r_ij` per column `j` (the used part of
    /// `Q(j)`).
    pub fn row_col_unions(&self) -> (Vec<Vec<NodeId>>, Vec<Vec<NodeId>>) {
        let mut rows = vec![Vec::new(); self.n];
        let mut cols = vec![Vec::new(); self.n];
        for (k, entry) in self.entries.iter().enumerate() {
            let (i, j) = (k / self.n, k % self.n);
            for &v in entry {
                rows[i].push(v);
                cols[j].push(v);
            }
        }
        for r in &mut rows {
            r.sort_unstable();
            r.dedup();
        }
        for c in &mut cols {
            c.sort_unstable();
            c.dedup();
        }
        (rows, cols)
    }

    /// Waste relative to a strategy: how many posted (resp. queried) nodes
    /// are never used as rendezvous — the slack in the (M1) inclusions.
    /// Returns `(post_waste, query_waste)` summed over all nodes.
    pub fn row_col_waste(
        &self,
        post: impl Fn(NodeId) -> Vec<NodeId>,
        query: impl Fn(NodeId) -> Vec<NodeId>,
    ) -> (usize, usize) {
        let (rows, cols) = self.row_col_unions();
        let mut post_waste = 0usize;
        let mut query_waste = 0usize;
        for (i, row) in rows.iter().enumerate() {
            let p = post(NodeId::from(i));
            post_waste += p.len() - row.len().min(p.len());
        }
        for (j, col) in cols.iter().enumerate() {
            let q = query(NodeId::from(j));
            query_waste += q.len() - col.len().min(q.len());
        }
        (post_waste, query_waste)
    }

    /// Number of distinct nodes in row `i` (`r_i` in the paper's proof of
    /// Proposition 1).
    pub fn distinct_in_row(&self, i: NodeId) -> usize {
        let mut v: Vec<NodeId> = (0..self.n)
            .flat_map(|j| self.entries[i.index() * self.n + j].iter().copied())
            .collect();
        v.sort_unstable();
        v.dedup();
        v.len()
    }

    /// Number of distinct nodes in column `j` (`c_j` in the proof).
    pub fn distinct_in_col(&self, j: NodeId) -> usize {
        let mut v: Vec<NodeId> = (0..self.n)
            .flat_map(|i| self.entries[i * self.n + j.index()].iter().copied())
            .collect();
        v.sort_unstable();
        v.dedup();
        v.len()
    }

    /// `R_i` / `C_i` of the Proposition 1 proof: the number of different
    /// rows (resp. columns) containing node `i`. Returns `(R, C)` indexed
    /// by node.
    pub fn row_col_presence(&self) -> (Vec<u64>, Vec<u64>) {
        let mut in_row = vec![vec![false; self.n]; self.n]; // [node][row]
        let mut in_col = vec![vec![false; self.n]; self.n];
        for (k, entry) in self.entries.iter().enumerate() {
            let (i, j) = (k / self.n, k % self.n);
            for v in entry {
                in_row[v.index()][i] = true;
                in_col[v.index()][j] = true;
            }
        }
        let r = in_row
            .iter()
            .map(|flags| flags.iter().filter(|&&b| b).count() as u64)
            .collect();
        let c = in_col
            .iter()
            .map(|flags| flags.iter().filter(|&&b| b).count() as u64)
            .collect();
        (r, c)
    }

    /// Renders the matrix in the paper's figure style: 1-based node
    /// numbers, singleton entries as bare numbers, larger sets in braces.
    ///
    /// `binary_width`: if `Some(w)`, node ids print as `w`-bit binary
    /// strings (used for the 3-cube example); otherwise decimal 1-based.
    pub fn render(&self, binary_width: Option<usize>) -> String {
        let fmt_node = |v: NodeId| -> String {
            match binary_width {
                Some(w) => format!("{:0w$b}", v.raw(), w = w),
                None => (v.raw() + 1).to_string(),
            }
        };
        let cell = |e: &[NodeId]| -> String {
            match e.len() {
                0 => "-".to_string(),
                1 => fmt_node(e[0]),
                _ => format!(
                    "{{{}}}",
                    e.iter().map(|&v| fmt_node(v)).collect::<Vec<_>>().join(",")
                ),
            }
        };
        let mut cells: Vec<Vec<String>> = Vec::with_capacity(self.n);
        for i in 0..self.n {
            cells.push(
                (0..self.n)
                    .map(|j| cell(&self.entries[i * self.n + j]))
                    .collect(),
            );
        }
        let width = cells
            .iter()
            .flatten()
            .map(|s| s.len())
            .max()
            .unwrap_or(1)
            .max(fmt_node(NodeId::from(self.n.saturating_sub(1))).len());
        let mut out = String::new();
        // header
        out.push_str(&" ".repeat(width + 2));
        for j in 0..self.n {
            out.push_str(&format!("{:>width$} ", fmt_node(NodeId::from(j))));
        }
        out.push('\n');
        for (i, row) in cells.iter().enumerate() {
            out.push_str(&format!("{:>width$} |", fmt_node(NodeId::from(i))));
            for c in row {
                out.push_str(&format!("{c:>width$} "));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for RendezvousMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render(None))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn centralized(size: usize, center: u32) -> RendezvousMatrix {
        RendezvousMatrix::from_entries(size, vec![vec![n(center)]; size * size])
    }

    #[test]
    fn from_strategy_intersects() {
        // P(i) = {i}, Q(j) = {0..n} : broadcast
        let m =
            RendezvousMatrix::from_strategy_dyn(&|i| vec![i], &|_| (0..4u32).map(n).collect(), 4);
        assert_eq!(m.entry(n(2), n(3)), &[n(2)]);
        assert!(m.is_optimal());
        assert!(m.satisfies_m2());
    }

    #[test]
    fn multiplicities_of_centralized() {
        let m = centralized(5, 2);
        let k = m.multiplicities();
        assert_eq!(k[2], 25);
        assert_eq!(k.iter().sum::<u64>(), 25);
        assert!(m.satisfies_m2());
        assert!(m.is_optimal());
    }

    #[test]
    fn m2_fails_with_empty_entry() {
        let mut entries = vec![vec![n(0)]; 4];
        entries[3] = vec![];
        let m = RendezvousMatrix::from_entries(2, entries);
        assert!(!m.satisfies_m2());
        assert!(!m.is_optimal());
    }

    #[test]
    fn distinct_row_col_counts() {
        // truly distributed 4-node: blocks of 2
        // r_ij = band(i)*2 + band(j), bands of size 2
        let mut entries = Vec::new();
        for i in 0..4u32 {
            for j in 0..4u32 {
                entries.push(vec![n((i / 2) * 2 + (j / 2))]);
            }
        }
        let m = RendezvousMatrix::from_entries(4, entries);
        assert_eq!(m.distinct_in_row(n(0)), 2); // nodes 0 and 1
        assert_eq!(m.distinct_in_col(n(0)), 2); // nodes 0 and 2
        let k = m.multiplicities();
        assert_eq!(k, vec![4, 4, 4, 4]);
        let (r, c) = m.row_col_presence();
        assert_eq!(r, vec![2, 2, 2, 2]);
        assert_eq!(c, vec![2, 2, 2, 2]);
    }

    #[test]
    fn row_col_unions_cover_used_nodes() {
        let m = centralized(3, 1);
        let (rows, cols) = m.row_col_unions();
        for r in rows {
            assert_eq!(r, vec![n(1)]);
        }
        for c in cols {
            assert_eq!(c, vec![n(1)]);
        }
    }

    #[test]
    fn waste_measures_unused_posts() {
        let m = centralized(3, 0);
        // strategy posts at {0,1} but only 0 is ever a rendezvous
        let (pw, qw) = m.row_col_waste(|_| vec![n(0), n(1)], |_| vec![n(0)]);
        assert_eq!(pw, 3); // one wasted post per row
        assert_eq!(qw, 0);
    }

    #[test]
    fn render_paper_style() {
        let m = centralized(3, 2);
        let s = m.render(None);
        // all entries show "3" (1-based)
        assert!(s.contains('3'));
        assert!(!s.contains('0'), "1-based rendering: {s}");
        let b = m.render(Some(2));
        assert!(b.contains("10"), "binary rendering: {b}");
    }

    #[test]
    #[should_panic(expected = "n^2 entries")]
    fn wrong_entry_count_panics() {
        let _ = RendezvousMatrix::from_entries(2, vec![vec![n(0)]; 3]);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn out_of_universe_entry_panics() {
        let _ = RendezvousMatrix::from_entries(2, vec![vec![n(7)]; 4]);
    }
}
