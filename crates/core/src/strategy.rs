//! The Shotgun Locate strategy framework.
//!
//! Paper §2.1: *"For each network `G = (U,E)` and associated match-making
//! algorithm, there are total functions `P, Q : U → 2^U`. Any server
//! residing at node `i` starts its stay there by posting its (port,
//! address) pair at each node in `P(i)`. Any client residing at node `j`
//! queries each node in `Q(j)` for each service (port) it requires."*
//!
//! [`Strategy`] captures exactly that pair of functions; everything else —
//! the rendezvous matrix, cost accounting, bounds, protocol simulation —
//! derives from it.

use crate::matrix::RendezvousMatrix;
use mm_topo::NodeId;
use std::fmt;

/// Errors detected when validating a match-making strategy.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StrategyError {
    /// Some (server node, client node) pair has an empty rendezvous set:
    /// the client can never locate the server.
    NoRendezvous {
        /// The server's node.
        server: NodeId,
        /// The client's node.
        client: NodeId,
    },
    /// A post or query set referenced a node outside the universe.
    NodeOutOfRange {
        /// The node whose `P`/`Q` set is invalid.
        of: NodeId,
        /// The offending member.
        member: NodeId,
        /// Universe size.
        node_count: usize,
    },
}

impl fmt::Display for StrategyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StrategyError::NoRendezvous { server, client } => write!(
                f,
                "no rendezvous: P({server}) and Q({client}) do not intersect"
            ),
            StrategyError::NodeOutOfRange {
                of,
                member,
                node_count,
            } => write!(
                f,
                "strategy set of node {of} contains {member}, outside universe of {node_count}"
            ),
        }
    }
}

impl std::error::Error for StrategyError {}

/// A match-making strategy: the pair of total functions `P, Q : U → 2^U`.
///
/// Implementations must be deterministic (same input, same set) so that
/// rendezvous matrices and simulations are reproducible. Sets are returned
/// as sorted, duplicate-free `Vec<NodeId>`.
///
/// The provided methods derive the paper's cost measures; implementations
/// can override [`Strategy::post_count`] / [`Strategy::query_count`] with
/// closed forms when the default (materializing the set) is wasteful.
pub trait Strategy {
    /// Universe size `n = #U`. Nodes are `0..n`.
    fn node_count(&self) -> usize;

    /// `P(i)`: the nodes where a server residing at `i` posts its
    /// `(port, address)` pair. Sorted and duplicate-free.
    fn post_set(&self, i: NodeId) -> Vec<NodeId>;

    /// `Q(j)`: the nodes a client residing at `j` queries. Sorted and
    /// duplicate-free.
    fn query_set(&self, j: NodeId) -> Vec<NodeId>;

    /// Short human-readable name used in experiment tables.
    fn name(&self) -> String {
        "strategy".into()
    }

    /// `#P(i)`. Override with a closed form if available.
    fn post_count(&self, i: NodeId) -> usize {
        self.post_set(i).len()
    }

    /// `#Q(j)`. Override with a closed form if available.
    fn query_count(&self, j: NodeId) -> usize {
        self.query_set(j).len()
    }

    /// The rendezvous set `r_ij = P(i) ∩ Q(j)`.
    fn rendezvous(&self, i: NodeId, j: NodeId) -> Vec<NodeId> {
        let p = self.post_set(i);
        let q = self.query_set(j);
        intersect_sorted(&p, &q)
    }

    /// `m(i,j) = #P(i) + #Q(j)` — the match-making cost for the pair in a
    /// complete network (M3).
    fn pair_cost(&self, i: NodeId, j: NodeId) -> u64 {
        (self.post_count(i) + self.query_count(j)) as u64
    }

    /// `m(n) = (1/n²)·Σ_i Σ_j m(i,j)` — the paper's average number of
    /// message passes (M4). Computed in `O(n)` from the row/column sums.
    fn average_cost(&self) -> f64 {
        let n = self.node_count();
        if n == 0 {
            return 0.0;
        }
        let post: u64 = (0..n)
            .map(|i| self.post_count(NodeId::from(i)) as u64)
            .sum();
        let query: u64 = (0..n)
            .map(|j| self.query_count(NodeId::from(j)) as u64)
            .sum();
        (post + query) as f64 / n as f64
    }

    /// Minimum and maximum of `m(i,j)` over all pairs.
    fn cost_extremes(&self) -> (u64, u64) {
        let n = self.node_count();
        if n == 0 {
            return (0, 0);
        }
        let pmin_max = (0..n)
            .map(|i| self.post_count(NodeId::from(i)) as u64)
            .fold((u64::MAX, 0u64), |(lo, hi), v| (lo.min(v), hi.max(v)));
        let qmin_max = (0..n)
            .map(|j| self.query_count(NodeId::from(j)) as u64)
            .fold((u64::MAX, 0u64), |(lo, hi), v| (lo.min(v), hi.max(v)));
        (pmin_max.0 + qmin_max.0, pmin_max.1 + qmin_max.1)
    }

    /// Materializes the full rendezvous matrix (`O(n²·set size)`; intended
    /// for analysis at moderate `n`).
    fn to_matrix(&self) -> RendezvousMatrix {
        RendezvousMatrix::from_strategy_dyn(
            &|i| self.post_set(i),
            &|j| self.query_set(j),
            self.node_count(),
        )
    }

    /// Checks that every pair can rendezvous and all sets stay in range.
    ///
    /// # Errors
    ///
    /// Returns the first [`StrategyError`] found.
    fn validate(&self) -> Result<(), StrategyError> {
        let n = self.node_count();
        let posts: Vec<Vec<NodeId>> = (0..n).map(|i| self.post_set(NodeId::from(i))).collect();
        let queries: Vec<Vec<NodeId>> = (0..n).map(|j| self.query_set(NodeId::from(j))).collect();
        for (i, p) in posts.iter().enumerate() {
            if let Some(&m) = p.iter().find(|m| m.index() >= n) {
                return Err(StrategyError::NodeOutOfRange {
                    of: NodeId::from(i),
                    member: m,
                    node_count: n,
                });
            }
            debug_assert!(
                p.windows(2).all(|w| w[0] < w[1]),
                "P({i}) must be sorted+deduped"
            );
        }
        for (j, q) in queries.iter().enumerate() {
            if let Some(&m) = q.iter().find(|m| m.index() >= n) {
                return Err(StrategyError::NodeOutOfRange {
                    of: NodeId::from(j),
                    member: m,
                    node_count: n,
                });
            }
            debug_assert!(
                q.windows(2).all(|w| w[0] < w[1]),
                "Q({j}) must be sorted+deduped"
            );
        }
        for (i, p) in posts.iter().enumerate() {
            for (j, q) in queries.iter().enumerate() {
                if intersect_sorted(p, q).is_empty() {
                    return Err(StrategyError::NoRendezvous {
                        server: NodeId::from(i),
                        client: NodeId::from(j),
                    });
                }
            }
        }
        Ok(())
    }
}

/// A boxed, dynamically dispatched strategy, for heterogeneous collections
/// in experiment harnesses.
pub type BoxedStrategy = Box<dyn Strategy + Send + Sync>;

impl Strategy for BoxedStrategy {
    fn node_count(&self) -> usize {
        (**self).node_count()
    }
    fn post_set(&self, i: NodeId) -> Vec<NodeId> {
        (**self).post_set(i)
    }
    fn query_set(&self, j: NodeId) -> Vec<NodeId> {
        (**self).query_set(j)
    }
    fn name(&self) -> String {
        (**self).name()
    }
    fn post_count(&self, i: NodeId) -> usize {
        (**self).post_count(i)
    }
    fn query_count(&self, j: NodeId) -> usize {
        (**self).query_count(j)
    }
}

/// Intersection of two sorted, duplicate-free node lists.
pub fn intersect_sorted(a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    let mut out = Vec::new();
    let (mut x, mut y) = (0usize, 0usize);
    while x < a.len() && y < b.len() {
        match a[x].cmp(&b[y]) {
            std::cmp::Ordering::Less => x += 1,
            std::cmp::Ordering::Greater => y += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[x]);
                x += 1;
                y += 1;
            }
        }
    }
    out
}

/// Sorts and deduplicates a node list in place — helper for strategy
/// implementations assembling sets from parts.
pub fn normalize_set(v: &mut Vec<NodeId>) {
    v.sort_unstable();
    v.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal hand-rolled strategy for exercising the provided methods:
    /// P(i) = {i}, Q(j) = all nodes (broadcasting).
    struct TestBroadcast {
        n: usize,
    }

    impl Strategy for TestBroadcast {
        fn node_count(&self) -> usize {
            self.n
        }
        fn post_set(&self, i: NodeId) -> Vec<NodeId> {
            vec![i]
        }
        fn query_set(&self, _j: NodeId) -> Vec<NodeId> {
            (0..self.n).map(NodeId::from).collect()
        }
    }

    struct Broken;
    impl Strategy for Broken {
        fn node_count(&self) -> usize {
            3
        }
        fn post_set(&self, i: NodeId) -> Vec<NodeId> {
            // node 2 posts nowhere a client looks
            if i.index() == 2 {
                vec![]
            } else {
                vec![i]
            }
        }
        fn query_set(&self, j: NodeId) -> Vec<NodeId> {
            vec![j]
        }
    }

    struct OutOfRange;
    impl Strategy for OutOfRange {
        fn node_count(&self) -> usize {
            2
        }
        fn post_set(&self, _i: NodeId) -> Vec<NodeId> {
            vec![NodeId::new(5)]
        }
        fn query_set(&self, _j: NodeId) -> Vec<NodeId> {
            vec![NodeId::new(5)]
        }
    }

    #[test]
    fn broadcast_costs() {
        let s = TestBroadcast { n: 9 };
        s.validate().unwrap();
        assert_eq!(s.pair_cost(NodeId::new(0), NodeId::new(1)), 10);
        assert!((s.average_cost() - 10.0).abs() < 1e-12);
        assert_eq!(s.cost_extremes(), (10, 10));
        assert_eq!(
            s.rendezvous(NodeId::new(4), NodeId::new(7)),
            vec![NodeId::new(4)]
        );
    }

    #[test]
    fn validate_catches_missing_rendezvous() {
        let err = Broken.validate().unwrap_err();
        match err {
            StrategyError::NoRendezvous { server, client } => {
                assert!(server.index() == 2 || client.index() == 2 || server != client);
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert!(err.to_string().contains("no rendezvous"));
    }

    #[test]
    fn validate_catches_out_of_range() {
        let err = OutOfRange.validate().unwrap_err();
        assert!(matches!(err, StrategyError::NodeOutOfRange { .. }));
    }

    #[test]
    fn intersect_sorted_basics() {
        let a: Vec<NodeId> = [1u32, 3, 5, 7].iter().map(|&x| NodeId::new(x)).collect();
        let b: Vec<NodeId> = [2u32, 3, 4, 7, 9].iter().map(|&x| NodeId::new(x)).collect();
        assert_eq!(
            intersect_sorted(&a, &b),
            vec![NodeId::new(3), NodeId::new(7)]
        );
        assert!(intersect_sorted(&a, &[]).is_empty());
    }

    #[test]
    fn normalize_set_sorts_and_dedups() {
        let mut v = vec![NodeId::new(3), NodeId::new(1), NodeId::new(3)];
        normalize_set(&mut v);
        assert_eq!(v, vec![NodeId::new(1), NodeId::new(3)]);
    }

    #[test]
    fn boxed_strategy_delegates() {
        let b: BoxedStrategy = Box::new(TestBroadcast { n: 4 });
        assert_eq!(b.node_count(), 4);
        assert_eq!(b.post_count(NodeId::new(1)), 1);
        assert_eq!(b.query_count(NodeId::new(1)), 4);
        b.validate().unwrap();
    }

    #[test]
    fn empty_universe_average_cost() {
        struct Empty;
        impl Strategy for Empty {
            fn node_count(&self) -> usize {
                0
            }
            fn post_set(&self, _: NodeId) -> Vec<NodeId> {
                vec![]
            }
            fn query_set(&self, _: NodeId) -> Vec<NodeId> {
                vec![]
            }
        }
        assert_eq!(Empty.average_cost(), 0.0);
        assert_eq!(Empty.cost_extremes(), (0, 0));
        Empty.validate().unwrap();
    }
}
