//! Robustness and fault tolerance (paper §2.4).
//!
//! Two criteria from the paper:
//!
//! * **distributed** — no set of node crashes that leaves a surviving
//!   network can prevent surviving clients from locating surviving servers
//!   *after relocation* (rules out the centralized server);
//! * **redundant** — no `≤ f` crashes can prevent a client at a surviving
//!   node from locating a service at a surviving node *in place*:
//!   `#(P(i) ∩ Q(j)) ≥ f + 1` for all `i, j`.
//!
//! [`Replicated`] upgrades any strategy to the redundant criterion by
//! superimposing `f+1` rotated copies; [`survives`] and
//! [`max_tolerated_faults`] analyze concrete crash sets. *"Robustness is
//! inefficient and has a price tag in number of message passes"* — the
//! overhead is measurable via `Strategy::average_cost`.

use crate::port::Port;
use crate::strategies::PortMapped;
use crate::strategy::{normalize_set, Strategy};
use mm_topo::NodeId;

/// A strategy wrapped to guarantee `#(P ∩ Q) ≥ replication` rendezvous
/// nodes per pair: the base sets are unioned with `replication − 1`
/// cyclically shifted copies (shift stride `⌊n / replication⌋`).
///
/// Each shifted copy contributes a disjointly-shifted rendezvous, so the
/// intersection grows to at least `replication` distinct nodes whenever
/// the base strategy's rendezvous sets are singletons or larger.
#[derive(Debug, Clone)]
pub struct Replicated<S> {
    base: S,
    replication: usize,
    stride: usize,
}

impl<S: Strategy> Replicated<S> {
    /// Wraps `base` to tolerate `replication − 1` rendezvous-node crashes.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ replication ≤ n` (where `n` is the base
    /// universe size).
    pub fn new(base: S, replication: usize) -> Self {
        let n = base.node_count();
        assert!(
            replication >= 1 && replication <= n,
            "replication must be in 1..=n"
        );
        let stride = (n / replication).max(1);
        Replicated {
            base,
            replication,
            stride,
        }
    }

    /// The wrapped strategy.
    pub fn base(&self) -> &S {
        &self.base
    }

    /// The replication factor (`f + 1`).
    pub fn replication(&self) -> usize {
        self.replication
    }

    fn shifted(&self, set: &[NodeId], copy: usize) -> impl Iterator<Item = NodeId> + '_ {
        let n = self.base.node_count();
        let offset = copy * self.stride;
        set.iter()
            .map(move |v| NodeId::from((v.index() + offset) % n))
            .collect::<Vec<_>>()
            .into_iter()
    }
}

impl<S: Strategy> Strategy for Replicated<S> {
    fn node_count(&self) -> usize {
        self.base.node_count()
    }

    fn post_set(&self, i: NodeId) -> Vec<NodeId> {
        let base = self.base.post_set(i);
        let mut out = Vec::with_capacity(base.len() * self.replication);
        for c in 0..self.replication {
            out.extend(self.shifted(&base, c));
        }
        normalize_set(&mut out);
        out
    }

    fn query_set(&self, j: NodeId) -> Vec<NodeId> {
        let base = self.base.query_set(j);
        let mut out = Vec::with_capacity(base.len() * self.replication);
        for c in 0..self.replication {
            out.extend(self.shifted(&base, c));
        }
        normalize_set(&mut out);
        out
    }

    fn name(&self) -> String {
        format!("replicated(x{}, {})", self.replication, self.base.name())
    }
}

/// Can a server at `i` and client at `j` still rendezvous when the nodes
/// in `crashed` are down? (`i`/`j` themselves are assumed alive; a crashed
/// rendezvous node keeps no cache.)
pub fn survives(s: &impl Strategy, i: NodeId, j: NodeId, crashed: &[NodeId]) -> bool {
    s.rendezvous(i, j).iter().any(|r| !crashed.contains(r))
}

/// The redundancy level of a strategy: `min_{i,j} #(P(i) ∩ Q(j)) − 1`,
/// the largest `f` for which the *redundant* criterion holds (adversarial
/// crashes of rendezvous nodes cannot sever any alive pair).
pub fn max_tolerated_faults(s: &impl Strategy) -> usize {
    let n = s.node_count();
    let mut min_overlap = usize::MAX;
    for i in 0..n {
        let p = s.post_set(NodeId::from(i));
        for j in 0..n {
            let q = s.query_set(NodeId::from(j));
            let overlap = crate::strategy::intersect_sorted(&p, &q).len();
            min_overlap = min_overlap.min(overlap);
        }
    }
    min_overlap.saturating_sub(1)
}

/// Sampled variant of [`max_tolerated_faults`] for large universes: the
/// minimum overlap over at most `samples` deterministically-strided
/// `(i, j)` pairs (stride `7919`, the same discipline the workload layer
/// uses for its cost predictor). Exact whenever `samples ≥ n²`; for the
/// homogeneous strategies in this repository the per-pair overlap is
/// uniform, so even small sample counts reproduce the exact value.
pub fn max_tolerated_faults_sampled(s: &impl Strategy, samples: usize) -> usize {
    let n = s.node_count();
    if n == 0 {
        return 0;
    }
    if samples >= n * n {
        return max_tolerated_faults(s);
    }
    let mut min_overlap = usize::MAX;
    for k in 0..samples.max(1) {
        let pair = k.wrapping_mul(7919) % (n * n);
        let (i, j) = (pair / n, pair % n);
        let p = s.post_set(NodeId::from(i));
        let q = s.query_set(NodeId::from(j));
        min_overlap = min_overlap.min(crate::strategy::intersect_sorted(&p, &q).len());
    }
    min_overlap.saturating_sub(1)
}

/// Port-mapped twin of [`max_tolerated_faults_sampled`], usable by the
/// workload runners (generic over [`PortMapped`], which covers §5's Hash
/// Locate as well as every node-based strategy through the blanket impl):
/// the minimum `#(post ∩ query) − 1` over a deterministic stride-`7919`
/// sample of `(server, client, port)` triples.
pub fn max_tolerated_faults_pm(pm: &impl PortMapped, ports: &[Port], samples: usize) -> usize {
    let n = pm.node_count();
    if n == 0 || ports.is_empty() {
        return 0;
    }
    let mut min_overlap = usize::MAX;
    for k in 0..samples.max(1) {
        let pair = k.wrapping_mul(7919) % (n * n);
        let (i, j) = (pair / n, pair % n);
        let port = ports[k % ports.len()];
        let p = pm.post_set_for(NodeId::from(i), port);
        let q = pm.query_set_for(NodeId::from(j), port);
        min_overlap = min_overlap.min(crate::strategy::intersect_sorted(&p, &q).len());
    }
    min_overlap.saturating_sub(1)
}

/// Port-mapped, sampled twin of [`survival_fraction`]: over a
/// deterministic stride-`7919` sample of alive `(server, client, port)`
/// triples, the fraction whose rendezvous overlap retains at least one
/// alive node. `1.0` (vacuously) when nobody is alive.
pub fn survival_fraction_pm(
    pm: &impl PortMapped,
    ports: &[Port],
    crashed: &[bool],
    samples: usize,
) -> f64 {
    let n = pm.node_count();
    if n == 0 || ports.is_empty() {
        return 1.0;
    }
    let alive: Vec<usize> = (0..n)
        .filter(|&v| !crashed.get(v).copied().unwrap_or(false))
        .collect();
    if alive.is_empty() {
        return 1.0;
    }
    let m = alive.len();
    let total = samples.max(1);
    let mut ok = 0usize;
    for k in 0..total {
        let pair = k.wrapping_mul(7919) % (m * m);
        let (i, j) = (alive[pair / m], alive[pair % m]);
        let port = ports[k % ports.len()];
        let p = pm.post_set_for(NodeId::from(i), port);
        let q = pm.query_set_for(NodeId::from(j), port);
        if crate::strategy::intersect_sorted(&p, &q)
            .iter()
            .any(|r| !crashed[r.index()])
        {
            ok += 1;
        }
    }
    ok as f64 / total as f64
}

/// Fraction of alive (server, client) pairs that can still rendezvous
/// after `crashed` nodes go down — the experiment E16 metric.
pub fn survival_fraction(s: &impl Strategy, crashed: &[NodeId]) -> f64 {
    let n = s.node_count();
    let alive: Vec<NodeId> = (0..n)
        .map(NodeId::from)
        .filter(|v| !crashed.contains(v))
        .collect();
    if alive.is_empty() {
        return 1.0;
    }
    let mut ok = 0usize;
    for &i in &alive {
        for &j in &alive {
            if survives(s, i, j, crashed) {
                ok += 1;
            }
        }
    }
    ok as f64 / (alive.len() * alive.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::{Broadcast, Centralized, Checkerboard};

    #[test]
    fn replication_reaches_f_plus_one() {
        for f in 0..4usize {
            let s = Replicated::new(Checkerboard::new(25), f + 1);
            s.validate().unwrap();
            assert!(
                max_tolerated_faults(&s) >= f,
                "f={f}: tolerates only {}",
                max_tolerated_faults(&s)
            );
        }
    }

    #[test]
    fn replication_cost_scales_linearly_at_most() {
        let base = Checkerboard::new(36);
        let m1 = base.average_cost();
        let s3 = Replicated::new(Checkerboard::new(36), 3);
        let m3 = s3.average_cost();
        assert!(m3 <= 3.0 * m1 + 1e-9, "m3 = {m3} vs 3*m1 = {}", 3.0 * m1);
        assert!(m3 > m1, "robustness has a price tag");
    }

    #[test]
    fn centralized_fails_any_crash_of_center() {
        let s = Centralized::new(9, NodeId::new(4));
        assert_eq!(max_tolerated_faults(&s), 0);
        assert!(!survives(
            &s,
            NodeId::new(0),
            NodeId::new(1),
            &[NodeId::new(4)]
        ));
        let frac = survival_fraction(&s, &[NodeId::new(4)]);
        assert_eq!(frac, 0.0, "losing the center severs everyone");
    }

    #[test]
    fn broadcast_survives_rendezvous_crashes() {
        // broadcast rendezvous = server's own node; crashing *other* nodes
        // never severs an alive pair
        let s = Broadcast::new(6);
        let crashed = [NodeId::new(5)];
        let frac = survival_fraction(&s, &crashed);
        assert_eq!(frac, 1.0);
    }

    #[test]
    fn checkerboard_partially_survives() {
        let s = Checkerboard::new(16);
        // crash one rendezvous node: only the pairs using it suffer
        let frac = survival_fraction(&s, &[NodeId::new(5)]);
        assert!(frac > 0.8 && frac < 1.0, "frac = {frac}");
        // replicated version shrugs it off
        let r = Replicated::new(Checkerboard::new(16), 2);
        assert_eq!(survival_fraction(&r, &[NodeId::new(5)]), 1.0);
    }

    #[test]
    fn survival_fraction_with_everything_crashed() {
        let s = Checkerboard::new(4);
        let all: Vec<NodeId> = (0..4u32).map(NodeId::from).collect();
        assert_eq!(survival_fraction(&s, &all), 1.0, "vacuously true");
    }

    #[test]
    #[should_panic(expected = "replication must be in 1..=n")]
    fn replication_bounds() {
        let _ = Replicated::new(Checkerboard::new(4), 5);
    }

    #[test]
    fn sampled_matches_exact_on_homogeneous_strategies() {
        let ports: Vec<Port> = (0..4u128).map(Port::new).collect();
        for r in 1..=3usize {
            let s = Replicated::new(Checkerboard::new(36), r);
            let exact = max_tolerated_faults(&s);
            assert_eq!(max_tolerated_faults_sampled(&s, 48), exact, "r={r}");
            assert_eq!(max_tolerated_faults_pm(&s, &ports, 48), exact, "r={r}");
        }
        // Hash Locate with r replicas tolerates r − 1 rendezvous crashes
        let h = crate::strategies::HashLocate::new(36, 3);
        assert_eq!(max_tolerated_faults_pm(&h, &ports, 48), 2);
    }

    #[test]
    fn sampled_survival_tracks_the_exact_metric() {
        let ports: Vec<Port> = (0..4u128).map(Port::new).collect();
        let s = Checkerboard::new(16);
        let mut crashed = vec![false; 16];
        crashed[5] = true;
        let exact = survival_fraction(&s, &[NodeId::new(5)]);
        let sampled = survival_fraction_pm(&s, &ports, &crashed, 16 * 16);
        // the exact metric samples only alive pairs of a 15-node world;
        // the pm sampler covers all alive (i, j) — both see a small dent
        assert!(sampled < 1.0 && exact < 1.0);
        assert!((sampled - exact).abs() < 0.1, "{sampled} vs {exact}");
        let r = Replicated::new(Checkerboard::new(16), 2);
        assert_eq!(survival_fraction_pm(&r, &ports, &crashed, 64), 1.0);
        assert_eq!(
            survival_fraction_pm(&s, &ports, &[true; 16], 64),
            1.0,
            "vacuous when everyone is down"
        );
    }
}
