//! Service ports.
//!
//! Paper §1.3: *"A service is identified by its port. A port uniquely
//! names a service. … Ports give no clue about the physical location of a
//! server process."* Amoeba ports are large sparse capabilities; [`Port`]
//! models them as opaque 128-bit values.

use std::fmt;

/// A location-independent service name.
///
/// # Example
///
/// ```
/// use mm_core::Port;
/// let file_service = Port::new(0xCAFE_F00D);
/// assert_ne!(file_service, Port::new(1));
/// assert_eq!(file_service.raw(), 0xCAFE_F00D);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
#[serde(transparent)]
pub struct Port(u128);

impl Port {
    /// Creates a port from a raw value.
    pub const fn new(v: u128) -> Self {
        Port(v)
    }

    /// The raw 128-bit value.
    pub const fn raw(self) -> u128 {
        self.0
    }

    /// Derives a port from a human-readable service name (FNV-1a with a
    /// finalizer mix, stable across runs — ports must be agreed upon out of
    /// band, like Amoeba's well-known service capabilities).
    pub fn from_name(name: &str) -> Self {
        // 128-bit FNV-1a ...
        const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
        const PRIME: u128 = 0x0000000001000000000000000000013B;
        let mut h = OFFSET;
        for b in name.bytes() {
            h ^= b as u128;
            h = h.wrapping_mul(PRIME);
        }
        // ... plus a splitmix64 finalizer per half for avalanche (plain
        // FNV barely disturbs the low bits on short inputs)
        fn mix(mut z: u64) -> u64 {
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
        let low = mix(h as u64 ^ (h >> 64) as u64);
        let high = mix(low.wrapping_add(0x9E3779B97F4A7C15));
        Port(((high as u128) << 64) | low as u128)
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "port:{:032x}", self.0)
    }
}

impl From<u128> for Port {
    fn from(v: u128) -> Self {
        Port(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_name_is_stable_and_spread() {
        let a = Port::from_name("file-service");
        let b = Port::from_name("file-service");
        let c = Port::from_name("file-servicf");
        assert_eq!(a, b);
        assert_ne!(a, c);
        // avalanche sanity: one-char change flips many bits
        let diff = (a.raw() ^ c.raw()).count_ones();
        assert!(diff > 20, "only {diff} differing bits");
    }

    #[test]
    fn display_is_hex() {
        let p = Port::new(0xAB);
        assert_eq!(p.to_string(), format!("port:{:032x}", 0xABu32));
    }

    #[test]
    fn conversions() {
        let p: Port = 42u128.into();
        assert_eq!(p.raw(), 42);
    }
}
