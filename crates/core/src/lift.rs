//! Proposition 4: lifting a strategy from `n` nodes to `4n` nodes.
//!
//! *"Replace each entry `r_ij` of `R` by a 2×2 submatrix consisting of 4
//! copies of `r_ij`. The resulting `2n×2n` matrix is `M`. Let `R_t`
//! (`t = 1,2,3,4`) be four, pairwise element disjoint, isomorphic copies
//! of `M`. Consider the `4n×4n` matrix `R' = [[R_1, R_2], [R_3, R_4]]`.
//! … `k'_i = 4·k_{i mod n}` … the average match-making cost associated
//! with `R'` is `m'(4n) = 2·m(n)`."*
//!
//! [`LiftedStrategy`] realizes the construction at the `P`/`Q` level so
//! the result is again a [`Strategy`] (and can be lifted repeatedly):
//!
//! * universe of the lift: `4n` nodes; node `t·n + v` is copy `t` of base
//!   node `v` (`t ∈ 0..4`);
//! * row `u` (server side): block-row `b_r = u / 2n`, base row
//!   `r = (u mod 2n) / 2`; `P'(u) = { (2b_r + s)·n + v : v ∈ P(r), s ∈ {0,1} }`;
//! * column `u` (client side): block-column `b_c = u / 2n`, base column
//!   `c = (u mod 2n) / 2`; `Q'(u) = { (b_c + 2s)·n + v : v ∈ Q(c), s ∈ {0,1} }`.
//!
//! For a server in block-row `b_r` and client in block-column `b_c` the
//! copy indices `{2b_r, 2b_r+1}` and `{b_c, b_c+2}` intersect in exactly
//! `{2b_r + b_c}` — the block of `R'` the paper's construction assigns —
//! so `P' ∩ Q' = copy_{2b_r+b_c}(P ∩ Q)`: rendezvous structure, and in
//! particular matrix optimality, is preserved while both set sizes double.

use crate::strategy::{normalize_set, Strategy};
use mm_topo::NodeId;

/// A strategy on `4n` nodes obtained from a base strategy on `n` nodes by
/// the Proposition 4 doubling construction.
#[derive(Debug, Clone)]
pub struct LiftedStrategy<S> {
    base: S,
    base_n: usize,
}

impl<S: Strategy> LiftedStrategy<S> {
    /// Lifts `base` from `n` to `4n` nodes.
    pub fn new(base: S) -> Self {
        let base_n = base.node_count();
        LiftedStrategy { base, base_n }
    }

    /// The base strategy.
    pub fn base(&self) -> &S {
        &self.base
    }

    /// Decomposes a lifted node id into `(copy, base_node)`.
    fn split(&self, u: NodeId) -> (usize, usize) {
        (u.index() / self.base_n, u.index() % self.base_n)
    }

    /// Composes `(copy, base_node)` into a lifted node id.
    fn join(&self, copy: usize, v: NodeId) -> NodeId {
        NodeId::from(copy * self.base_n + v.index())
    }
}

impl<S: Strategy> Strategy for LiftedStrategy<S> {
    fn node_count(&self) -> usize {
        4 * self.base_n
    }

    fn post_set(&self, i: NodeId) -> Vec<NodeId> {
        // u = (b_r, i') with i' in 0..2n; base row = i'/2
        let u = i.index();
        let b_r = u / (2 * self.base_n);
        let i_prime = u % (2 * self.base_n);
        let r = NodeId::from(i_prime / 2);
        let mut out = Vec::new();
        for s in 0..2usize {
            for &v in &self.base.post_set(r) {
                out.push(self.join(2 * b_r + s, v));
            }
        }
        normalize_set(&mut out);
        out
    }

    fn query_set(&self, j: NodeId) -> Vec<NodeId> {
        let u = j.index();
        let b_c = u / (2 * self.base_n);
        let j_prime = u % (2 * self.base_n);
        let c = NodeId::from(j_prime / 2);
        let mut out = Vec::new();
        for s in 0..2usize {
            for &v in &self.base.query_set(c) {
                out.push(self.join(b_c + 2 * s, v));
            }
        }
        normalize_set(&mut out);
        out
    }

    fn name(&self) -> String {
        format!("lift({})", self.base.name())
    }

    fn post_count(&self, i: NodeId) -> usize {
        let i_prime = i.index() % (2 * self.base_n);
        2 * self.base.post_count(NodeId::from(i_prime / 2))
    }

    fn query_count(&self, j: NodeId) -> usize {
        let j_prime = j.index() % (2 * self.base_n);
        2 * self.base.query_count(NodeId::from(j_prime / 2))
    }
}

impl<S: Strategy> LiftedStrategy<S> {
    /// The copy index `2·b_r + b_c` where a server at lifted node `i` and
    /// client at lifted node `j` rendezvous.
    pub fn rendezvous_copy(&self, i: NodeId, j: NodeId) -> usize {
        let b_r = i.index() / (2 * self.base_n);
        let b_c = j.index() / (2 * self.base_n);
        2 * b_r + b_c
    }

    /// Maps a lifted node back to its base node.
    pub fn base_node(&self, u: NodeId) -> NodeId {
        NodeId::from(self.split(u).1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::{Centralized, Checkerboard};

    #[test]
    fn lift_quadruples_universe() {
        let s = LiftedStrategy::new(Checkerboard::new(9));
        assert_eq!(s.node_count(), 36);
        s.validate().unwrap();
    }

    #[test]
    fn lift_doubles_average_cost() {
        for n in [4usize, 9, 16, 25] {
            let base = Checkerboard::new(n);
            let m_base = base.average_cost();
            let lifted = LiftedStrategy::new(base);
            let m_lift = lifted.average_cost();
            assert!(
                (m_lift - 2.0 * m_base).abs() < 1e-9,
                "n={n}: m'(4n) = {m_lift}, 2 m(n) = {}",
                2.0 * m_base
            );
        }
    }

    #[test]
    fn lift_multiplicities_are_four_times_base() {
        let base = Checkerboard::new(4);
        let k_base = base.to_matrix().multiplicities();
        let lifted = LiftedStrategy::new(base);
        let k_lift = lifted.to_matrix().multiplicities();
        for (u, &k) in k_lift.iter().enumerate() {
            assert_eq!(k, 4 * k_base[u % 4], "node {u}");
        }
    }

    #[test]
    fn lift_preserves_optimality() {
        let base = Checkerboard::new(9);
        assert!(base.to_matrix().is_optimal());
        let lifted = LiftedStrategy::new(base);
        assert!(
            lifted.to_matrix().is_optimal(),
            "lift keeps singleton entries"
        );
    }

    #[test]
    fn rendezvous_lands_in_expected_copy() {
        let base = Centralized::new(5, NodeId::new(2));
        let lifted = LiftedStrategy::new(base);
        for i in 0..20usize {
            for j in 0..20usize {
                let (i, j) = (NodeId::from(i), NodeId::from(j));
                let rdv = lifted.rendezvous(i, j);
                assert_eq!(rdv.len(), 1);
                let copy = rdv[0].index() / 5;
                assert_eq!(copy, lifted.rendezvous_copy(i, j));
                assert_eq!(lifted.base_node(rdv[0]), NodeId::new(2));
            }
        }
    }

    #[test]
    fn double_lift_scales_four_times() {
        let base = Checkerboard::new(4);
        let m1 = base.average_cost();
        let twice = LiftedStrategy::new(LiftedStrategy::new(base));
        assert_eq!(twice.node_count(), 64);
        twice.validate().unwrap();
        assert!((twice.average_cost() - 4.0 * m1).abs() < 1e-9);
    }

    #[test]
    fn closed_form_counts_match_sets() {
        let lifted = LiftedStrategy::new(Checkerboard::new(9));
        for u in 0..36usize {
            let u = NodeId::from(u);
            assert_eq!(lifted.post_count(u), lifted.post_set(u).len());
            assert_eq!(lifted.query_count(u), lifted.query_set(u).len());
        }
    }
}
