//! All match-making strategies named in the paper.
//!
//! | Strategy | Paper | `m(n)` (complete net) |
//! |---|---|---|
//! | [`Broadcast`] | §1.5, Ex. 1 | `n + 1` |
//! | [`Sweep`] | §1.5, Ex. 2 | `n + 1` |
//! | [`Centralized`] | Ex. 3 | `2` |
//! | [`Checkerboard`] | Ex. 4, Prop. 3 | `≈ 2√n` |
//! | [`Blocks`] | §2.3.2 (M3′) | `x + y`, `x·y ≥ n` |
//! | [`GridRowColumn`] | §3.1 | `p + q` |
//! | [`MeshSplit`] | §3.1 (d-dim) | `2·n^{(d−1)/d}` (row/col split) |
//! | [`HypercubeSplit`] | §3.2, Ex. 6 | `2√n` (even `d`) |
//! | [`CccStrategy`] | §3.3 | `O(√(n log n))` |
//! | [`ProjectiveStrategy`] | §3.4 | `2(k+1) ≈ 2√n` |
//! | [`HierarchicalStrategy`] | §3.5, Ex. 5 | `O(Σ√n_i)`, opt `O(log n)` |
//! | [`TreePathToRoot`] | §3.6 | `O(depth)` |
//! | [`DecomposedStrategy`] | §3 (general nets) | server `O(√n)` posts / client part-broadcast |
//! | [`HashLocate`] | §5 | `2r` (port-hashed, not a [`crate::Strategy`]) |

mod ccc;
mod checkerboard;
mod decomposed;
mod grid;
mod hash;
mod hierarchical;
mod hypercube;
mod projective;
mod tree;

pub use ccc::CccStrategy;
pub use checkerboard::{Blocks, Checkerboard};
pub use decomposed::DecomposedStrategy;
pub use grid::{GridRowColumn, MeshSplit};
pub use hash::{HashLocate, PortMapped};
pub use hierarchical::HierarchicalStrategy;
pub use hypercube::HypercubeSplit;
pub use projective::ProjectiveStrategy;
pub use tree::TreePathToRoot;

use crate::strategy::Strategy;
use mm_topo::NodeId;

/// Broadcasting (paper Example 1): *"the server stays put and the client
/// looks everywhere"* — `P(i) = {i}`, `Q(j) = U`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Broadcast {
    n: usize,
}

impl Broadcast {
    /// Broadcasting over a universe of `n` nodes.
    pub fn new(n: usize) -> Self {
        Broadcast { n }
    }
}

impl Strategy for Broadcast {
    fn node_count(&self) -> usize {
        self.n
    }
    fn post_set(&self, i: NodeId) -> Vec<NodeId> {
        vec![i]
    }
    fn query_set(&self, _j: NodeId) -> Vec<NodeId> {
        (0..self.n).map(NodeId::from).collect()
    }
    fn name(&self) -> String {
        "broadcast".into()
    }
    fn post_count(&self, _i: NodeId) -> usize {
        1
    }
    fn query_count(&self, _j: NodeId) -> usize {
        self.n
    }
}

/// Sweeping (paper Example 2): *"the client stays put and the server looks
/// for work"* — `P(i) = U`, `Q(j) = {j}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sweep {
    n: usize,
}

impl Sweep {
    /// Sweeping over a universe of `n` nodes.
    pub fn new(n: usize) -> Self {
        Sweep { n }
    }
}

impl Strategy for Sweep {
    fn node_count(&self) -> usize {
        self.n
    }
    fn post_set(&self, _i: NodeId) -> Vec<NodeId> {
        (0..self.n).map(NodeId::from).collect()
    }
    fn query_set(&self, j: NodeId) -> Vec<NodeId> {
        vec![j]
    }
    fn name(&self) -> String {
        "sweep".into()
    }
    fn post_count(&self, _i: NodeId) -> usize {
        self.n
    }
    fn query_count(&self, _j: NodeId) -> usize {
        1
    }
}

/// Centralized name server (paper Example 3): all posts and queries go to
/// one well-known node. `m(n) = 2`, but a single crash kills the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Centralized {
    n: usize,
    center: NodeId,
}

impl Centralized {
    /// Centralized server at `center` in a universe of `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `center` is outside the universe.
    pub fn new(n: usize, center: NodeId) -> Self {
        assert!(center.index() < n, "center must be a universe node");
        Centralized { n, center }
    }

    /// The well-known address.
    pub fn center(&self) -> NodeId {
        self.center
    }
}

impl Strategy for Centralized {
    fn node_count(&self) -> usize {
        self.n
    }
    fn post_set(&self, _i: NodeId) -> Vec<NodeId> {
        vec![self.center]
    }
    fn query_set(&self, _j: NodeId) -> Vec<NodeId> {
        vec![self.center]
    }
    fn name(&self) -> String {
        format!("centralized@{}", self.center)
    }
    fn post_count(&self, _i: NodeId) -> usize {
        1
    }
    fn query_count(&self, _j: NodeId) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_matches_example_1() {
        let s = Broadcast::new(9);
        s.validate().unwrap();
        let m = s.to_matrix();
        // r_ij = {i} for all j
        for i in 0..9u32 {
            for j in 0..9u32 {
                assert_eq!(m.entry(NodeId::new(i), NodeId::new(j)), &[NodeId::new(i)]);
            }
        }
        assert!((s.average_cost() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn sweep_matches_example_2() {
        let s = Sweep::new(9);
        s.validate().unwrap();
        let m = s.to_matrix();
        for i in 0..9u32 {
            for j in 0..9u32 {
                assert_eq!(m.entry(NodeId::new(i), NodeId::new(j)), &[NodeId::new(j)]);
            }
        }
    }

    #[test]
    fn centralized_matches_example_3() {
        let s = Centralized::new(9, NodeId::new(2)); // paper's node "3"
        s.validate().unwrap();
        let m = s.to_matrix();
        for i in 0..9u32 {
            for j in 0..9u32 {
                assert_eq!(m.entry(NodeId::new(i), NodeId::new(j)), &[NodeId::new(2)]);
            }
        }
        assert!((s.average_cost() - 2.0).abs() < 1e-12);
        let k = m.multiplicities();
        assert_eq!(k[2], 81);
    }

    #[test]
    #[should_panic(expected = "center must be a universe node")]
    fn centralized_center_checked() {
        let _ = Centralized::new(3, NodeId::new(7));
    }
}
