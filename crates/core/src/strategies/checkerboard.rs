//! The truly distributed checkerboard arrangement (Example 4 and
//! Proposition 3) and its rectangular generalization.
//!
//! Proposition 3: *"Arrange the rendez-vous matrix `R` as a checker board
//! consisting of (as near as possible) `√n × √n` squares … each square is
//! filled with about `n` copies of one unique node."* This yields
//! `#P(i)·#Q(j) ≈ n`, `#P(i) + #Q(j) ≈ 2√n` and `k_i ≈ n` — matching the
//! truly-distributed lower bound `m(n) ≥ 2√n` up to rounding.

use crate::strategy::{normalize_set, Strategy};
use mm_topo::NodeId;

/// Rectangular block arrangement: the matrix is tiled into `x` row-bands
/// by `y` column-bands; the block at band `(r, c)` uses rendezvous node
/// `(r·y + c) mod n`.
///
/// `P(i)` is the `y` nodes of `i`'s row-band, `Q(j)` the `x` nodes of
/// `j`'s column-band: `#P·#Q = x·y ≥ n` realizes any point on the
/// trade-off curve of §2.3.2 — including the weighted (M3′) optima
/// `p = √(αn)`, `q = √(n/α)` (see [`Blocks::for_alpha`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Blocks {
    n: usize,
    /// number of row bands (= `#Q`)
    x: usize,
    /// number of column bands (= `#P`)
    y: usize,
}

impl Blocks {
    /// Creates a block strategy with `x` row-bands and `y` column-bands.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ x,y ≤ n` and `x·y ≥ n` (the rendezvous
    /// constraint `p·q ≥ n`).
    pub fn new(n: usize, x: usize, y: usize) -> Self {
        assert!(n > 0, "universe must be non-empty");
        assert!(
            (1..=n).contains(&x) && (1..=n).contains(&y),
            "band counts must be in 1..=n"
        );
        assert!(x * y >= n, "need x*y >= n for distinct block nodes");
        Blocks { n, x, y }
    }

    /// The block strategy minimizing the weighted cost `#P + α·#Q`:
    /// `#P = ⌈√(αn)⌉`, `#Q = ⌈n / #P⌉` (rounded feasibly).
    ///
    /// # Panics
    ///
    /// Panics if `alpha <= 0` or `n == 0`.
    pub fn for_alpha(n: usize, alpha: f64) -> Self {
        let (p, _q) = crate::bounds::weighted_optimal_split(n, alpha);
        let y = (p.ceil() as usize).clamp(1, n);
        let x = n.div_ceil(y).clamp(1, n);
        Blocks::new(n, x, y)
    }

    /// Row-band of node `i` (bands as equal as possible).
    fn row_band(&self, i: NodeId) -> usize {
        i.index() * self.x / self.n
    }

    /// Column-band of node `j`.
    fn col_band(&self, j: NodeId) -> usize {
        j.index() * self.y / self.n
    }

    /// The rendezvous node of block `(r, c)`.
    fn block_node(&self, r: usize, c: usize) -> NodeId {
        NodeId::from((r * self.y + c) % self.n)
    }

    /// `(x, y)` band counts.
    pub fn shape(&self) -> (usize, usize) {
        (self.x, self.y)
    }
}

impl Strategy for Blocks {
    fn node_count(&self) -> usize {
        self.n
    }

    fn post_set(&self, i: NodeId) -> Vec<NodeId> {
        let r = self.row_band(i);
        let mut out: Vec<NodeId> = (0..self.y).map(|c| self.block_node(r, c)).collect();
        normalize_set(&mut out);
        out
    }

    fn query_set(&self, j: NodeId) -> Vec<NodeId> {
        let c = self.col_band(j);
        let mut out: Vec<NodeId> = (0..self.x).map(|r| self.block_node(r, c)).collect();
        normalize_set(&mut out);
        out
    }

    fn name(&self) -> String {
        format!("blocks({}x{})", self.x, self.y)
    }
}

/// The square checkerboard (Example 4 / Proposition 3): `Blocks` with
/// `x = y = ⌈√n⌉` — the canonical *truly distributed* name server where
/// every node carries (about) the same rendezvous load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checkerboard {
    inner: Blocks,
}

impl Checkerboard {
    /// Truly distributed arrangement over `n ≥ 1` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        let b = (n as f64).sqrt().ceil() as usize;
        Checkerboard {
            inner: Blocks::new(n, b.max(1), b.max(1)),
        }
    }

    /// The band count `⌈√n⌉`.
    pub fn band_count(&self) -> usize {
        self.inner.shape().0
    }
}

impl Strategy for Checkerboard {
    fn node_count(&self) -> usize {
        self.inner.node_count()
    }
    fn post_set(&self, i: NodeId) -> Vec<NodeId> {
        self.inner.post_set(i)
    }
    fn query_set(&self, j: NodeId) -> Vec<NodeId> {
        self.inner.query_set(j)
    }
    fn name(&self) -> String {
        format!("checkerboard({})", self.node_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;

    #[test]
    fn perfect_square_matches_example_4() {
        // paper example 4: n = 9, bands of 3
        let s = Checkerboard::new(9);
        s.validate().unwrap();
        let m = s.to_matrix();
        assert!(m.is_optimal());
        // r_ij = band(i)*3 + band(j)
        for i in 0..9u32 {
            for j in 0..9u32 {
                let want = NodeId::new((i / 3) * 3 + j / 3);
                assert_eq!(m.entry(NodeId::new(i), NodeId::new(j)), &[want]);
            }
        }
        // every node equally loaded: k_i = 9
        assert_eq!(m.multiplicities(), vec![9u64; 9]);
        assert!((s.average_cost() - 6.0).abs() < 1e-12); // 2 sqrt 9
    }

    #[test]
    fn non_square_sizes_work() {
        for n in [2usize, 3, 5, 7, 10, 12, 17, 40, 100, 101] {
            let s = Checkerboard::new(n);
            s.validate().unwrap();
            let bound = bounds::truly_distributed_bound(n);
            let m = s.average_cost();
            assert!(
                m <= bound + 2.5,
                "n={n}: m = {m} should be within rounding of {bound}"
            );
        }
    }

    #[test]
    fn near_uniform_load() {
        let s = Checkerboard::new(64);
        let k = s.to_matrix().multiplicities();
        let max = *k.iter().max().unwrap() as f64;
        let min = *k.iter().min().unwrap() as f64;
        // perfect square: exactly uniform
        assert_eq!(max, min);
        assert_eq!(max, 64.0);
    }

    #[test]
    fn blocks_tradeoff_shapes() {
        let n = 100usize;
        for (x, y) in [(10usize, 10usize), (4, 25), (25, 4), (2, 50), (100, 1)] {
            let s = Blocks::new(n, x, y);
            s.validate().unwrap();
            let i = NodeId::new(0);
            assert!(s.post_count(i) <= y);
            assert!(s.query_count(i) <= x);
        }
    }

    #[test]
    fn blocks_for_alpha_tracks_optimum() {
        let n = 400usize;
        for alpha in [0.25f64, 1.0, 4.0, 25.0] {
            let s = Blocks::for_alpha(n, alpha);
            s.validate().unwrap();
            let (x, y) = s.shape();
            let (p_opt, q_opt) = bounds::weighted_optimal_split(n, alpha);
            assert!(
                (y as f64 - p_opt).abs() <= 2.0,
                "alpha={alpha}: post size {y} vs optimum {p_opt}"
            );
            assert!(
                (x as f64 - q_opt).abs() <= 2.0 + q_opt * 0.2,
                "alpha={alpha}: query size {x} vs optimum {q_opt}"
            );
        }
    }

    #[test]
    fn blocks_invalid_params_panic() {
        assert!(std::panic::catch_unwind(|| Blocks::new(10, 2, 2)).is_err()); // 4 < 10
        assert!(std::panic::catch_unwind(|| Blocks::new(10, 0, 10)).is_err());
        assert!(std::panic::catch_unwind(|| Blocks::new(0, 1, 1)).is_err());
    }

    #[test]
    fn singleton_universe() {
        let s = Checkerboard::new(1);
        s.validate().unwrap();
        assert_eq!(s.post_set(NodeId::new(0)), vec![NodeId::new(0)]);
        assert!((s.average_cost() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn prop3_product_stays_near_n() {
        for n in [16usize, 36, 81, 144] {
            let s = Checkerboard::new(n);
            let i = NodeId::new(0);
            let prod = s.post_count(i) * s.query_count(i);
            assert!(
                prod >= n && prod <= n + 3 * (n as f64).sqrt() as usize + 3,
                "n={n}: #P*#Q = {prod}"
            );
        }
    }
}
