//! Path-to-root strategy on trees (paper §3.6).
//!
//! *"The strategy in such trees can be simple: all services advertise at
//! the path leading to the root of the tree, and similarly the clients
//! request services on the path to the root of the tree. Then the average
//! number of message passes used for each match-making instance is
//! `m(n) ∈ O(l)`"* where `l` is the number of levels. The cache at each
//! node needs to be of the order of its subtree size.

use crate::strategy::Strategy;
use mm_topo::gen::TreeInfo;
use mm_topo::NodeId;
use std::sync::Arc;

/// `P(v) = Q(v)` = the path from `v` up to the root (inclusive of both).
///
/// Any two nodes' paths share at least the root, and rendezvous actually
/// happens at their lowest common ancestor — exactly the locality §3.5
/// argues for.
#[derive(Debug, Clone)]
pub struct TreePathToRoot {
    tree: Arc<TreeInfo>,
}

impl TreePathToRoot {
    /// Builds the strategy for a tree.
    pub fn new(tree: Arc<TreeInfo>) -> Self {
        TreePathToRoot { tree }
    }

    /// The underlying tree.
    pub fn tree(&self) -> &TreeInfo {
        &self.tree
    }

    /// The lowest common ancestor of `a` and `b` — where the rendezvous
    /// effectively happens (lowest shared path node).
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn lca(&self, a: NodeId, b: NodeId) -> NodeId {
        let (mut x, mut y) = (a, b);
        let depth = |v: NodeId| self.tree.depth[v.index()];
        while depth(x) > depth(y) {
            x = NodeId::new(self.tree.parent[x.index()]);
        }
        while depth(y) > depth(x) {
            y = NodeId::new(self.tree.parent[y.index()]);
        }
        while x != y {
            x = NodeId::new(self.tree.parent[x.index()]);
            y = NodeId::new(self.tree.parent[y.index()]);
        }
        x
    }
}

impl Strategy for TreePathToRoot {
    fn node_count(&self) -> usize {
        self.tree.graph.node_count()
    }

    fn post_set(&self, i: NodeId) -> Vec<NodeId> {
        let mut p = self.tree.path_to_root(i);
        p.sort_unstable();
        p
    }

    fn query_set(&self, j: NodeId) -> Vec<NodeId> {
        self.post_set(j)
    }

    fn name(&self) -> String {
        format!("tree_path_to_root(n={})", self.node_count())
    }

    fn post_count(&self, i: NodeId) -> usize {
        self.tree.depth[i.index()] as usize + 1
    }

    fn query_count(&self, j: NodeId) -> usize {
        self.post_count(j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_topo::gen::{balanced_tree, profile_tree};

    fn strat(t: TreeInfo) -> TreePathToRoot {
        TreePathToRoot::new(Arc::new(t))
    }

    #[test]
    fn valid_on_balanced_trees() {
        for (a, l) in [(2usize, 4usize), (3, 3), (5, 2), (1, 1)] {
            let s = strat(balanced_tree(a, l).unwrap());
            s.validate().unwrap();
        }
    }

    #[test]
    fn cost_is_depth_bounded() {
        let s = strat(balanced_tree(2, 6).unwrap()); // depth 5
        let (_min, max) = s.cost_extremes();
        assert_eq!(max, 12); // two leaf paths of 6 nodes each
        assert!(s.average_cost() <= 12.0);
        // O(l), far below 2 sqrt n for deep trees: n = 63, 2 sqrt n ~ 15.9
        assert!(s.average_cost() < 2.0 * (63f64).sqrt());
    }

    #[test]
    fn rendezvous_contains_root_and_lca() {
        let s = strat(balanced_tree(3, 3).unwrap());
        let root = NodeId::new(0);
        for i in 0..13u32 {
            for j in 0..13u32 {
                let (a, b) = (NodeId::new(i), NodeId::new(j));
                let rdv = s.rendezvous(a, b);
                assert!(rdv.contains(&root), "root is always shared");
                assert!(rdv.contains(&s.lca(a, b)), "lca must be shared");
            }
        }
    }

    #[test]
    fn lca_of_siblings_is_parent() {
        let t = balanced_tree(2, 3).unwrap(); // 0; 1,2; 3,4,5,6
        let s = strat(t);
        assert_eq!(s.lca(NodeId::new(3), NodeId::new(4)), NodeId::new(1));
        assert_eq!(s.lca(NodeId::new(3), NodeId::new(5)), NodeId::new(0));
        assert_eq!(s.lca(NodeId::new(2), NodeId::new(6)), NodeId::new(2));
        assert_eq!(s.lca(NodeId::new(4), NodeId::new(4)), NodeId::new(4));
    }

    #[test]
    fn root_cache_load_is_heaviest() {
        // k_i concentrates toward the root: the price of tree strategies
        let s = strat(profile_tree(&[3, 3]).unwrap());
        let k = s.to_matrix().multiplicities();
        let root_load = k[0];
        assert_eq!(root_load as usize, 13 * 13, "root in every entry");
        assert!(k.iter().skip(1).all(|&ki| ki < root_load));
    }

    #[test]
    fn deep_path_tree_linear_cost() {
        // path graph as degenerate tree: m(n) = O(n), like the ring bound
        let s = strat(profile_tree(&[1usize; 15]).unwrap());
        s.validate().unwrap();
        assert!(s.average_cost() > 15.0);
    }
}
