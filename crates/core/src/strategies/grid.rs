//! Manhattan-network strategies (paper §3.1).
//!
//! *"Post availability of a service along its row and request a service
//! along the column the client is on."* — `m(n) = O(p+q)`; for `p = q`,
//! `m(n) = 2√n` with caches of size `√n`. Wrap-around versions cover
//! cylindrical and torus networks (Stony Brook). The d-dimensional
//! generalization takes `m(n) = 2·n^{(d−1)/d}` message passes.

use crate::strategy::{normalize_set, Strategy};
use mm_topo::gen::grid::{mesh_coords, mesh_index};
use mm_topo::NodeId;

/// Row/column strategy on a `p × q` grid: node `(r, c)` has index
/// `r·q + c`; `P` = the whole row, `Q` = the whole column.
///
/// The rendezvous of server `(r_s, c_s)` and client `(r_c, c_c)` is the
/// unique crossing `(r_s, c_c)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridRowColumn {
    p: usize,
    q: usize,
}

impl GridRowColumn {
    /// Strategy for a `p × q` grid.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0` or `q == 0`.
    pub fn new(p: usize, q: usize) -> Self {
        assert!(p > 0 && q > 0, "grid sides must be positive");
        GridRowColumn { p, q }
    }

    /// `(p, q)` dimensions.
    pub fn shape(&self) -> (usize, usize) {
        (self.p, self.q)
    }

    fn row_of(&self, v: NodeId) -> usize {
        v.index() / self.q
    }

    fn col_of(&self, v: NodeId) -> usize {
        v.index() % self.q
    }
}

impl Strategy for GridRowColumn {
    fn node_count(&self) -> usize {
        self.p * self.q
    }

    fn post_set(&self, i: NodeId) -> Vec<NodeId> {
        let r = self.row_of(i);
        (0..self.q).map(|c| NodeId::from(r * self.q + c)).collect()
    }

    fn query_set(&self, j: NodeId) -> Vec<NodeId> {
        let c = self.col_of(j);
        (0..self.p).map(|r| NodeId::from(r * self.q + c)).collect()
    }

    fn name(&self) -> String {
        format!("grid_row_col({}x{})", self.p, self.q)
    }

    fn post_count(&self, _i: NodeId) -> usize {
        self.q
    }

    fn query_count(&self, _j: NodeId) -> usize {
        self.p
    }
}

/// d-dimensional mesh strategy: the dimension set is split into a server
/// part `A` and its complement. `P(i)` spans all coordinates in `A`
/// (fixing the rest to `i`'s), `Q(j)` spans the complement (fixing `A` to
/// `j`'s); the rendezvous is the unique mixed coordinate.
///
/// * `A = {0}` on a 2-d mesh reproduces [`GridRowColumn`] (transposed);
/// * `A = {0, …, d−2}` gives the paper's `m(n) = 2·n^{(d−1)/d}` shape
///   (server sweeps a hyperplane, client a line);
/// * a balanced `A` gives `m(n) ≈ 2√n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeshSplit {
    sides: Vec<usize>,
    server_dims: Vec<usize>, // sorted dims spanned by P
    client_dims: Vec<usize>, // complement, spanned by Q
}

impl MeshSplit {
    /// Creates a mesh strategy over `sides` with the server spanning
    /// `server_dims`.
    ///
    /// # Panics
    ///
    /// Panics if `sides` is empty/contains zero, or `server_dims` has
    /// out-of-range or duplicate entries.
    pub fn new(sides: &[usize], server_dims: &[usize]) -> Self {
        assert!(!sides.is_empty() && !sides.contains(&0), "invalid sides");
        let mut sd = server_dims.to_vec();
        sd.sort_unstable();
        sd.dedup();
        assert_eq!(sd.len(), server_dims.len(), "duplicate server dims");
        assert!(
            sd.iter().all(|&d| d < sides.len()),
            "server dim out of range"
        );
        let cd: Vec<usize> = (0..sides.len()).filter(|d| !sd.contains(d)).collect();
        MeshSplit {
            sides: sides.to_vec(),
            server_dims: sd,
            client_dims: cd,
        }
    }

    /// The `m(n) = 2·n^{(d−1)/d}` split: server spans dims `0..d−1`,
    /// client spans the last dimension.
    pub fn row_column(sides: &[usize]) -> Self {
        let d = sides.len();
        let sd: Vec<usize> = (0..d.saturating_sub(1)).collect();
        Self::new(sides, &sd)
    }

    /// A balanced split: greedily assign dimensions (largest side first)
    /// to whichever part currently spans fewer nodes — `m(n) ≈ 2√n`.
    pub fn balanced(sides: &[usize]) -> Self {
        let mut order: Vec<usize> = (0..sides.len()).collect();
        order.sort_by_key(|&d| std::cmp::Reverse(sides[d]));
        let (mut sa, mut sb) = (1usize, 1usize);
        let mut a = Vec::new();
        for d in order {
            if sa <= sb {
                sa *= sides[d];
                a.push(d);
            } else {
                sb *= sides[d];
            }
        }
        Self::new(sides, &a)
    }

    /// Enumerate all nodes agreeing with `base` outside `dims`, spanning
    /// `dims`.
    fn span(&self, base: NodeId, dims: &[usize]) -> Vec<NodeId> {
        let coords = mesh_coords(base, &self.sides);
        let mut out = Vec::new();
        let mut cursor = vec![0usize; dims.len()];
        loop {
            let mut c = coords.clone();
            for (k, &d) in dims.iter().enumerate() {
                c[d] = cursor[k];
            }
            out.push(mesh_index(&c, &self.sides));
            // odometer increment
            let mut k = 0;
            loop {
                if k == dims.len() {
                    normalize_set(&mut out);
                    return out;
                }
                cursor[k] += 1;
                if cursor[k] < self.sides[dims[k]] {
                    break;
                }
                cursor[k] = 0;
                k += 1;
            }
        }
    }

    /// Sizes `(#P, #Q)` from the side products.
    pub fn set_sizes(&self) -> (usize, usize) {
        let p: usize = self.server_dims.iter().map(|&d| self.sides[d]).product();
        let q: usize = self.client_dims.iter().map(|&d| self.sides[d]).product();
        (p, q)
    }
}

impl Strategy for MeshSplit {
    fn node_count(&self) -> usize {
        self.sides.iter().product()
    }

    fn post_set(&self, i: NodeId) -> Vec<NodeId> {
        self.span(i, &self.server_dims)
    }

    fn query_set(&self, j: NodeId) -> Vec<NodeId> {
        self.span(j, &self.client_dims)
    }

    fn name(&self) -> String {
        format!(
            "mesh_split({:?}; server spans {:?})",
            self.sides, self.server_dims
        )
    }

    fn post_count(&self, _i: NodeId) -> usize {
        self.set_sizes().0
    }

    fn query_count(&self, _j: NodeId) -> usize {
        self.set_sizes().1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_node_grid_matches_paper_section_3_1() {
        // the paper's 9-node Manhattan network: rows {1,2,3},{4,5,6},{7,8,9}
        let s = GridRowColumn::new(3, 3);
        s.validate().unwrap();
        let m = s.to_matrix();
        assert!(m.is_optimal());
        // rendezvous(i,j) = (row of i, column of j)
        for i in 0..9u32 {
            for j in 0..9u32 {
                let want = NodeId::new((i / 3) * 3 + (j % 3));
                assert_eq!(m.entry(NodeId::new(i), NodeId::new(j)), &[want]);
            }
        }
        assert!((s.average_cost() - 6.0).abs() < 1e-12); // 2 sqrt 9
    }

    #[test]
    fn rectangular_grid_cost_p_plus_q() {
        let s = GridRowColumn::new(4, 7);
        s.validate().unwrap();
        assert!((s.average_cost() - 11.0).abs() < 1e-12);
        assert_eq!(s.cost_extremes(), (11, 11));
    }

    #[test]
    fn grid_cache_need_is_column_size() {
        // k_i for the grid strategy: each node is the rendezvous for
        // (its row) x (its column) pairs = p*q... per node: row members p?
        // Verify via matrix that load is uniform = n.
        let s = GridRowColumn::new(3, 3);
        let k = s.to_matrix().multiplicities();
        assert_eq!(k, vec![9u64; 9]);
    }

    #[test]
    fn mesh_split_row_column_shape() {
        let sides = [4usize, 4, 4];
        let s = MeshSplit::row_column(&sides);
        s.validate().unwrap();
        let (p, q) = s.set_sizes();
        assert_eq!(p, 16); // n^{2/3}
        assert_eq!(q, 4); // n^{1/3}
        let m = s.to_matrix();
        assert!(m.is_optimal());
    }

    #[test]
    fn mesh_split_balanced_near_sqrt() {
        let sides = [4usize, 4, 4, 4];
        let s = MeshSplit::balanced(&sides);
        s.validate().unwrap();
        let (p, q) = s.set_sizes();
        assert_eq!(p * q, 256);
        assert_eq!(p, 16);
        assert_eq!(q, 16);
    }

    #[test]
    fn mesh_split_rendezvous_is_unique_mixed_point() {
        let sides = [3usize, 4];
        let s = MeshSplit::new(&sides, &[0]);
        for i in 0..12usize {
            for j in 0..12usize {
                let rdv = s.rendezvous(NodeId::from(i), NodeId::from(j));
                assert_eq!(rdv.len(), 1);
                let c = mesh_coords(rdv[0], &sides);
                let ci = mesh_coords(NodeId::from(i), &sides);
                let cj = mesh_coords(NodeId::from(j), &sides);
                assert_eq!(c[0], cj[0], "server-spanned dim takes client coord");
                assert_eq!(c[1], ci[1], "client-spanned dim takes server coord");
            }
        }
    }

    #[test]
    fn degenerate_splits() {
        let sides = [5usize];
        // server spans everything: sweep-like
        let s = MeshSplit::new(&sides, &[0]);
        s.validate().unwrap();
        assert_eq!(s.set_sizes(), (5, 1));
        // server spans nothing: broadcast-like
        let b = MeshSplit::new(&sides, &[]);
        b.validate().unwrap();
        assert_eq!(b.set_sizes(), (1, 5));
    }

    #[test]
    #[should_panic(expected = "grid sides must be positive")]
    fn zero_grid_rejected() {
        let _ = GridRowColumn::new(0, 3);
    }
}
