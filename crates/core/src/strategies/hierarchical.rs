//! Hierarchical match-making (paper §3.5 and Example 5).
//!
//! *"A server posts its (port, address) by selecting `√n_i` gateways,
//! connecting level `i−1` networks in a level `i` network, at each level
//! `i` of the hierarchy, on a path from its host node to the highest level
//! network. … a client's locate in a network of that level can be done in
//! `O(√n_i)` message passes. This gives an average message pass complexity
//! `m(n) ≈ O(Σ √n_i)` … the minimum value `m(n) ≈ O(log n)` is reached
//! for `k = ½·log n`."*
//!
//! At every level the `n_ℓ` gateways of the node's group form a miniature
//! complete universe; a [`Checkerboard`](super::Checkerboard)-style block
//! arrangement over the *child index* guarantees that two nodes sharing a
//! level-`ℓ` group rendezvous at one of its gateways. Since every pair
//! shares at least the top-level group, match-making always succeeds, and
//! pairs that are hierarchically close rendezvous low (locality!).

use crate::strategy::{normalize_set, Strategy};
use mm_topo::gen::Hierarchy;
use mm_topo::NodeId;

/// The per-level `√n_ℓ`-gateway strategy over a [`Hierarchy`].
#[derive(Debug, Clone)]
pub struct HierarchicalStrategy {
    h: Hierarchy,
}

impl HierarchicalStrategy {
    /// Builds the strategy for a hierarchy.
    pub fn new(h: Hierarchy) -> Self {
        HierarchicalStrategy { h }
    }

    /// The underlying hierarchy.
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.h
    }

    /// Band count at a level: `⌈√n_ℓ⌉`.
    fn bands(&self, level: usize) -> usize {
        (self.h.branching_at(level) as f64).sqrt().ceil() as usize
    }

    fn band_of(&self, child: usize, level: usize) -> usize {
        child * self.bands(level) / self.h.branching_at(level)
    }

    /// The gateways a server at `v` posts at within its level-`level`
    /// group: the row-band of its child index.
    fn level_post(&self, v: NodeId, level: usize) -> Vec<NodeId> {
        let group = self.h.group_of(v, level);
        let n_l = self.h.branching_at(level);
        let b = self.bands(level);
        let row = self.band_of(self.h.child_index(v, level), level);
        (0..b)
            .map(|c| self.h.gateway(level, group, (row * b + c) % n_l))
            .collect()
    }

    /// The gateways a client at `v` queries within its level-`level`
    /// group: the column-band of its child index.
    fn level_query(&self, v: NodeId, level: usize) -> Vec<NodeId> {
        let group = self.h.group_of(v, level);
        let n_l = self.h.branching_at(level);
        let b = self.bands(level);
        let col = self.band_of(self.h.child_index(v, level), level);
        (0..b)
            .map(|r| self.h.gateway(level, group, (r * b + col) % n_l))
            .collect()
    }

    /// The lowest level at which `i` and `j` share a group — where their
    /// rendezvous happens (1-based level; `0` if `i == j`).
    pub fn meeting_level(&self, i: NodeId, j: NodeId) -> usize {
        if i == j {
            return 0;
        }
        (1..=self.h.levels())
            .find(|&l| self.h.group_of(i, l) == self.h.group_of(j, l))
            .expect("top level is shared by construction")
    }
}

impl Strategy for HierarchicalStrategy {
    fn node_count(&self) -> usize {
        self.h.node_count()
    }

    fn post_set(&self, i: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        for level in 1..=self.h.levels() {
            out.extend(self.level_post(i, level));
        }
        normalize_set(&mut out);
        out
    }

    fn query_set(&self, j: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        for level in 1..=self.h.levels() {
            out.extend(self.level_query(j, level));
        }
        normalize_set(&mut out);
        out
    }

    fn name(&self) -> String {
        format!(
            "hierarchical({})",
            (1..=self.h.levels())
                .map(|l| self.h.branching_at(l).to_string())
                .collect::<Vec<_>>()
                .join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strat(branching: &[usize]) -> HierarchicalStrategy {
        HierarchicalStrategy::new(Hierarchy::new(branching).unwrap())
    }

    #[test]
    fn always_valid() {
        for branching in [&[4usize][..], &[4, 4], &[2, 3, 4], &[9, 9], &[16, 4, 2]] {
            let s = strat(branching);
            s.validate()
                .unwrap_or_else(|e| panic!("{branching:?}: {e}"));
        }
    }

    #[test]
    fn cost_is_sum_of_sqrt_levels() {
        // n_l = 16 at two levels: per level 2*4 = 8, total m = 16
        let s = strat(&[16, 16]);
        let m = s.average_cost();
        assert!(
            m <= 2.0 * (4.0 + 4.0) + 1e-9,
            "m = {m} should be <= 16 (bands may overlap across levels)"
        );
        assert!(m >= 8.0, "m = {m}");
    }

    #[test]
    fn log_depth_beats_flat_sqrt() {
        // n = 4^5 = 1024: hierarchical m ~ 2*5*2 = 20 < 2 sqrt(1024) = 64
        let s = strat(&[4, 4, 4, 4, 4]);
        let flat = 2.0 * (1024f64).sqrt();
        assert!(s.average_cost() < flat / 2.0, "m = {}", s.average_cost());
    }

    #[test]
    fn meeting_level_is_lca_level() {
        let s = strat(&[3, 3, 3]);
        let a = NodeId::new(0);
        assert_eq!(s.meeting_level(a, NodeId::new(0)), 0);
        assert_eq!(s.meeting_level(a, NodeId::new(1)), 1); // same level-1 group
        assert_eq!(s.meeting_level(a, NodeId::new(4)), 2); // same level-2 group
        assert_eq!(s.meeting_level(a, NodeId::new(20)), 3); // only top shared
    }

    #[test]
    fn rendezvous_happens_at_meeting_level_gateways() {
        let s = strat(&[4, 4]);
        let h = s.hierarchy().clone();
        for i in 0..16usize {
            for j in 0..16usize {
                let (vi, vj) = (NodeId::from(i), NodeId::from(j));
                let rdv = s.rendezvous(vi, vj);
                assert!(!rdv.is_empty());
                let lvl = s.meeting_level(vi, vj).max(1);
                // some rendezvous node must be a gateway of the shared
                // group at the meeting level
                let group = h.group_of(vi, lvl);
                let gws = h.gateways(lvl, group);
                assert!(
                    rdv.iter().any(|r| gws.contains(r)),
                    "pair ({i},{j}) must meet at level {lvl}"
                );
            }
        }
    }

    #[test]
    fn local_pairs_meet_locally() {
        // locality: nodes in the same level-1 group rendezvous inside it
        let s = strat(&[4, 4, 4]);
        let h = s.hierarchy().clone();
        let (a, b) = (NodeId::new(1), NodeId::new(2));
        let rdv = s.rendezvous(a, b);
        let group = h.group_of(a, 1);
        assert!(rdv.iter().any(|r| h.group_of(*r, 1) == group));
    }

    #[test]
    fn single_level_is_checkerboard_like() {
        let s = strat(&[16]);
        s.validate().unwrap();
        // one level of 16 gateways = the 16 nodes themselves: 2*sqrt(16) = 8
        assert!((s.average_cost() - 8.0).abs() < 1e-9);
        assert!(s.to_matrix().satisfies_m2());
    }
}
