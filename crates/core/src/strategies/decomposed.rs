//! The general-network strategy via √n-decomposition (paper §3).
//!
//! *"Server's Algorithm: a server at the node labelled `i` in one of the
//! subgraphs communicates its (port, address) to all nodes `i` in the
//! remaining `O(√n)` subgraphs. … Client's Algorithm: a client broadcasts
//! for a service (along a spanning tree) in the subgraph where it
//! resides."* Rendezvous: the node carrying the server's label inside the
//! client's own subgraph. *"Under the practical assumption that clients
//! need to locate services usually far more frequently than servers need
//! to post, this scheme is fairly optimal."*

use crate::strategy::{normalize_set, Strategy};
use mm_topo::{Decomposition, NodeId};
use std::sync::Arc;

/// Label-based strategy over a graph decomposition: `P(v)` = the nodes
/// carrying `v`'s label, one per part (`O(√n)` of them); `Q(v)` = every
/// node of `v`'s own part (`≤ 2√n`).
#[derive(Debug, Clone)]
pub struct DecomposedStrategy {
    d: Arc<Decomposition>,
    n: usize,
}

impl DecomposedStrategy {
    /// Builds the strategy over a decomposition of an `n`-node graph.
    ///
    /// `n` is recovered from the decomposition's parts.
    pub fn new(d: Arc<Decomposition>) -> Self {
        let n = d.parts().iter().map(|p| p.len()).sum();
        DecomposedStrategy { d, n }
    }

    /// The decomposition in use.
    pub fn decomposition(&self) -> &Decomposition {
        &self.d
    }
}

impl Strategy for DecomposedStrategy {
    fn node_count(&self) -> usize {
        self.n
    }

    fn post_set(&self, i: NodeId) -> Vec<NodeId> {
        let label = self.d.canonical_label(i);
        let mut out = self.d.nodes_with_label(label);
        normalize_set(&mut out);
        out
    }

    fn query_set(&self, j: NodeId) -> Vec<NodeId> {
        self.d.parts()[self.d.part_of(j)].clone()
    }

    fn name(&self) -> String {
        format!(
            "decomposed(n={}, parts={}, t={})",
            self.n,
            self.d.part_count(),
            self.d.t
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_topo::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn strat(g: &mm_topo::Graph) -> DecomposedStrategy {
        DecomposedStrategy::new(Arc::new(Decomposition::new(g).unwrap()))
    }

    #[test]
    fn valid_on_many_topologies() {
        let mut rng = StdRng::seed_from_u64(17);
        let graphs = vec![
            gen::grid(6, 6, false),
            gen::ring(30),
            gen::complete(20),
            gen::star(25),
            gen::hypercube(5),
            gen::random_connected(40, 80, &mut rng).unwrap(),
            gen::uucp_like(60, &mut rng),
        ];
        for g in &graphs {
            let s = strat(g);
            s.validate().unwrap_or_else(|e| panic!("{}: {e}", g.name()));
        }
    }

    #[test]
    fn post_cost_is_part_count() {
        let g = gen::grid(8, 8, false);
        let s = strat(&g);
        let parts = s.decomposition().part_count();
        for v in g.nodes() {
            assert!(s.post_count(v) <= parts);
            // distinct parts may reuse a node only in tiny parts
            assert!(s.post_count(v) >= parts / 2);
        }
    }

    #[test]
    fn query_cost_is_own_part_size() {
        let g = gen::grid(8, 8, false);
        let s = strat(&g);
        let d = s.decomposition();
        for v in g.nodes() {
            assert_eq!(s.query_count(v), d.parts()[d.part_of(v)].len());
            assert!(s.query_count(v) <= 2 * d.t);
        }
    }

    #[test]
    fn rendezvous_is_labelled_node_in_client_part() {
        let g = gen::grid(7, 7, false);
        let s = strat(&g);
        let d = s.decomposition();
        for i in (0..49usize).step_by(5) {
            for j in (0..49usize).step_by(7) {
                let (vi, vj) = (NodeId::from(i), NodeId::from(j));
                let rdv = s.rendezvous(vi, vj);
                let expected = d.node_with_label(d.part_of(vj), d.canonical_label(vi));
                assert!(rdv.contains(&expected), "pair ({i},{j})");
            }
        }
    }

    #[test]
    fn total_cost_scales_like_sqrt_n() {
        // m = #parts + part size ~ O(sqrt n): check the ratio stays bounded
        for side in [5usize, 8, 12, 16] {
            let g = gen::grid(side, side, false);
            let s = strat(&g);
            let n = (side * side) as f64;
            let m = s.average_cost();
            assert!(
                m <= 5.0 * n.sqrt() + 5.0,
                "side={side}: m = {m} vs sqrt(n) = {}",
                n.sqrt()
            );
        }
    }
}
