//! Hypercube address-splitting strategies (paper §3.2 and Example 6).
//!
//! §3.2: on the d-cube with `n = 2^d` nodes, a server at address
//! `s = s_1 … s_d` broadcasts into the `d/2`-dimensional subcube spanned
//! by `{ a_1 … a_{d/2} s_{d/2+1} … s_d }` and a client at `c` into
//! `{ c_1 … c_{d/2} a_{d/2+1} … a_d }`; they meet at exactly
//! `c_1 … c_{d/2} s_{d/2+1} … s_d`. `m(n) = 2·√n` for even `d`, caches of
//! size `√n`. *"Variants of the algorithm are obtained by splitting the
//! corner address … in pieces of `εd` and `(1−ε)d` bits"* — the `ε`-split
//! trades post cost against query cost (cf. relative server immobility).

use crate::strategy::Strategy;
use mm_topo::NodeId;

/// Address-split strategy on the d-cube.
///
/// `keep_mask` is the set of bit positions whose values the *server*
/// keeps from its own address when posting (the post set spans the
/// complementary bits). The client keeps the complementary bits and spans
/// `keep_mask`. The rendezvous merges server bits on `keep_mask` with
/// client bits elsewhere — always exactly one node.
///
/// * §3.2's halves: `keep_mask` = low `d/2` bits.
/// * Example 6 (`d = 3`): `P(abc) = {axy}` keeps the top bit —
///   `keep_mask = 0b100`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HypercubeSplit {
    d: u32,
    keep_mask: u32,
}

impl HypercubeSplit {
    /// Split keeping the given bit positions on the server side.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0` or `d > 30`, or if `keep_mask` has bits outside
    /// `0..d`.
    pub fn new(d: u32, keep_mask: u32) -> Self {
        assert!((1..=30).contains(&d), "cube dimension out of range");
        assert_eq!(
            keep_mask & !((1u32 << d) - 1),
            0,
            "keep_mask has bits outside the address width"
        );
        HypercubeSplit { d, keep_mask }
    }

    /// The paper's even split: server keeps the low `⌈d/2⌉` bits (so `#P =
    /// 2^{⌊d/2⌋}`, `#Q = 2^{⌈d/2⌉}`; for even `d` both are `√n`).
    pub fn halves(d: u32) -> Self {
        let keep = d.div_ceil(2);
        Self::new(d, (1u32 << keep) - 1)
    }

    /// The `ε`-split: server keeps `round(ε·d)` low bits. `ε` close to 1
    /// suits relatively immobile servers (small post sets are refreshed
    /// rarely; clients pay more).
    ///
    /// # Panics
    ///
    /// Panics if `eps` is not within `[0, 1]`.
    pub fn epsilon(d: u32, eps: f64) -> Self {
        assert!((0.0..=1.0).contains(&eps), "epsilon must be in [0,1]");
        let keep = ((d as f64) * eps).round() as u32;
        let keep = keep.min(d);
        let mask = if keep == 0 { 0 } else { (1u32 << keep) - 1 };
        Self::new(d, mask)
    }

    /// Example 6's orientation for `d = 3`: server keeps the top bit.
    pub fn example_6() -> Self {
        Self::new(3, 0b100)
    }

    /// Cube dimension.
    pub fn dimension(&self) -> u32 {
        self.d
    }

    /// Number of bits the server keeps.
    pub fn kept_bits(&self) -> u32 {
        self.keep_mask.count_ones()
    }

    /// Enumerates all addresses agreeing with `base` on `fixed_mask`.
    fn span(&self, base: u32, fixed_mask: u32) -> Vec<NodeId> {
        let free_mask = !fixed_mask & ((1u32 << self.d) - 1);
        // iterate over submasks of free_mask in increasing node order
        let mut out = Vec::with_capacity(1usize << free_mask.count_ones());
        let fixed = base & fixed_mask;
        // standard subset enumeration of free_mask
        let mut sub = 0u32;
        loop {
            out.push(NodeId::new(fixed | sub));
            if sub == free_mask {
                break;
            }
            sub = (sub.wrapping_sub(free_mask)) & free_mask;
        }
        out.sort_unstable();
        out
    }
}

impl Strategy for HypercubeSplit {
    fn node_count(&self) -> usize {
        1usize << self.d
    }

    fn post_set(&self, i: NodeId) -> Vec<NodeId> {
        self.span(i.raw(), self.keep_mask)
    }

    fn query_set(&self, j: NodeId) -> Vec<NodeId> {
        let complement = !self.keep_mask & ((1u32 << self.d) - 1);
        self.span(j.raw(), complement)
    }

    fn name(&self) -> String {
        format!("hypercube_split(d={}, keep={:#b})", self.d, self.keep_mask)
    }

    fn post_count(&self, _i: NodeId) -> usize {
        1usize << (self.d - self.kept_bits())
    }

    fn query_count(&self, _j: NodeId) -> usize {
        1usize << self.kept_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_6_matrix_reproduced() {
        // P(abc) = {axy | xy in {0,1}^2}, Q(abc) = {xbc | x in {0,1}}
        let s = HypercubeSplit::example_6();
        s.validate().unwrap();
        let m = s.to_matrix();
        assert!(m.is_optimal());
        for srv in 0..8u32 {
            for cli in 0..8u32 {
                let want = NodeId::new((srv & 0b100) | (cli & 0b011));
                assert_eq!(
                    m.entry(NodeId::new(srv), NodeId::new(cli)),
                    &[want],
                    "server {srv:03b}, client {cli:03b}"
                );
            }
        }
        // P = 4 nodes, Q = 2 nodes
        assert_eq!(s.post_count(NodeId::new(0)), 4);
        assert_eq!(s.query_count(NodeId::new(0)), 2);
    }

    #[test]
    fn even_split_costs_two_sqrt_n() {
        for d in [2u32, 4, 6, 8, 10] {
            let s = HypercubeSplit::halves(d);
            s.validate().unwrap();
            let n = 1usize << d;
            let sqrt_n = (n as f64).sqrt();
            assert!(
                (s.average_cost() - 2.0 * sqrt_n).abs() < 1e-9,
                "d={d}: m = {}",
                s.average_cost()
            );
        }
    }

    #[test]
    fn odd_split_is_near_optimal() {
        let s = HypercubeSplit::halves(5);
        s.validate().unwrap();
        // #P = 4, #Q = 8: m = 12 vs 2 sqrt 32 ~ 11.3
        assert!((s.average_cost() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_cache_load() {
        let s = HypercubeSplit::halves(6);
        let k = s.to_matrix().multiplicities();
        // truly distributed on the cube: every node used equally, k_i = n
        assert!(k.iter().all(|&ki| ki == 64));
    }

    #[test]
    fn epsilon_split_tradeoff() {
        let d = 8u32;
        for (eps, p_expect) in [(0.25f64, 1usize << 6), (0.5, 1 << 4), (0.75, 1 << 2)] {
            let s = HypercubeSplit::epsilon(d, eps);
            s.validate().unwrap();
            assert_eq!(s.post_count(NodeId::new(0)), p_expect, "eps={eps}");
            // product is always n
            assert_eq!(
                s.post_count(NodeId::new(0)) * s.query_count(NodeId::new(0)),
                256
            );
        }
    }

    #[test]
    fn epsilon_extremes_are_sweep_and_broadcast_like() {
        let d = 4u32;
        let all_kept = HypercubeSplit::epsilon(d, 1.0);
        assert_eq!(all_kept.post_count(NodeId::new(0)), 1); // posts only at itself
        assert_eq!(all_kept.query_count(NodeId::new(0)), 16); // client broadcasts
        let none_kept = HypercubeSplit::epsilon(d, 0.0);
        assert_eq!(none_kept.post_count(NodeId::new(0)), 16); // server sweeps
        assert_eq!(none_kept.query_count(NodeId::new(0)), 1);
    }

    #[test]
    fn rendezvous_merges_addresses() {
        let s = HypercubeSplit::halves(6); // keep mask = low 3 bits
        let srv = NodeId::new(0b101_110);
        let cli = NodeId::new(0b010_011);
        let rdv = s.rendezvous(srv, cli);
        assert_eq!(rdv, vec![NodeId::new(0b010_110)]);
    }

    #[test]
    #[should_panic(expected = "keep_mask has bits outside")]
    fn mask_bounds_checked() {
        let _ = HypercubeSplit::new(3, 0b1000);
    }
}
