//! Projective-plane strategy (paper §3.4).
//!
//! *"A server `s` posts its (port, address) to all nodes on an arbitrary
//! line incident on its host node. A client `c` queries all nodes on an
//! arbitrary line incident on its own host node. The common node of the
//! two lines is the rendez-vous node. … `m(n) = #P(s) + #Q(c) = 2(k+1) ≈
//! 2√n`. This combination of topology and algorithm is resistant to
//! failures of lines, provided no point has all lines passing through it
//! removed."*

use crate::strategy::Strategy;
use mm_topo::{NodeId, ProjectivePlane};
use std::sync::Arc;

/// Line-based strategy on `PG(2,k)`: `P` and `Q` are (possibly different)
/// incident lines.
///
/// The paper allows an *arbitrary* incident line; this implementation
/// makes the choice explicit through a line-selector index so experiments
/// can rotate lines for fault tolerance: node `v` uses its
/// `selector mod (k+1)`-th incident line.
#[derive(Debug, Clone)]
pub struct ProjectiveStrategy {
    plane: Arc<ProjectivePlane>,
    server_line: usize,
    client_line: usize,
}

impl ProjectiveStrategy {
    /// Both sides use each node's first incident line.
    pub fn new(plane: Arc<ProjectivePlane>) -> Self {
        ProjectiveStrategy {
            plane,
            server_line: 0,
            client_line: 0,
        }
    }

    /// Selects which incident line (index modulo `k+1`) servers and
    /// clients use — different indices exercise different rendezvous
    /// points, the basis of the line-failure resistance experiment.
    pub fn with_line_choice(
        plane: Arc<ProjectivePlane>,
        server_line: usize,
        client_line: usize,
    ) -> Self {
        ProjectiveStrategy {
            plane,
            server_line,
            client_line,
        }
    }

    /// The plane this strategy runs on.
    pub fn plane(&self) -> &ProjectivePlane {
        &self.plane
    }

    fn line_points(&self, v: NodeId, choice: usize) -> Vec<NodeId> {
        let incident = self.plane.lines_through(v.index());
        // rotate the pick by the node id so rendezvous load spreads over
        // the plane instead of hammering each point's first line
        let line = incident[(v.index() + choice) % incident.len()] as usize;
        self.plane
            .line(line)
            .iter()
            .map(|&p| NodeId::new(p))
            .collect()
    }
}

impl Strategy for ProjectiveStrategy {
    fn node_count(&self) -> usize {
        self.plane.point_count()
    }

    fn post_set(&self, i: NodeId) -> Vec<NodeId> {
        self.line_points(i, self.server_line)
    }

    fn query_set(&self, j: NodeId) -> Vec<NodeId> {
        self.line_points(j, self.client_line)
    }

    fn name(&self) -> String {
        format!("projective(k={})", self.plane.order())
    }

    fn post_count(&self, _i: NodeId) -> usize {
        self.plane.order() as usize + 1
    }

    fn query_count(&self, _j: NodeId) -> usize {
        self.plane.order() as usize + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strat(k: u64) -> ProjectiveStrategy {
        ProjectiveStrategy::new(Arc::new(ProjectivePlane::new(k).unwrap()))
    }

    #[test]
    fn valid_for_prime_orders() {
        for k in [2u64, 3, 5, 7, 11] {
            let s = strat(k);
            s.validate().unwrap();
            let n = (k * k + k + 1) as usize;
            assert_eq!(s.node_count(), n);
        }
    }

    #[test]
    fn cost_is_2k_plus_2() {
        for k in [2u64, 3, 5, 7] {
            let s = strat(k);
            let m = s.average_cost();
            assert!((m - 2.0 * (k as f64 + 1.0)).abs() < 1e-9, "k={k}: m = {m}");
            // ~ 2 sqrt(n)
            let n = (k * k + k + 1) as f64;
            assert!(m <= 2.0 * n.sqrt() + 2.0);
        }
    }

    #[test]
    fn distinct_lines_meet_in_one_point() {
        let s = strat(5);
        let mut singleton_pairs = 0usize;
        let n = s.node_count();
        for i in 0..n {
            for j in 0..n {
                let r = s.rendezvous(NodeId::from(i), NodeId::from(j));
                assert!(!r.is_empty());
                if r.len() == 1 {
                    singleton_pairs += 1;
                }
            }
        }
        // pairs using the same line share k+1 points, all others exactly 1
        assert!(singleton_pairs > n * n / 2);
    }

    #[test]
    fn line_choices_change_rendezvous() {
        let plane = Arc::new(ProjectivePlane::new(3).unwrap());
        let s0 = ProjectiveStrategy::new(plane.clone());
        let s1 = ProjectiveStrategy::with_line_choice(plane, 1, 2);
        s1.validate().unwrap();
        // at least one node posts on a different line
        let differs = (0..s0.node_count())
            .any(|v| s0.post_set(NodeId::from(v)) != s1.post_set(NodeId::from(v)));
        assert!(differs);
    }

    #[test]
    fn load_is_spread_over_the_plane() {
        let s = strat(3);
        let k = s.to_matrix().multiplicities();
        let max = *k.iter().max().unwrap() as f64;
        let min = *k.iter().min().unwrap();
        let mean = k.iter().sum::<u64>() as f64 / k.len() as f64;
        // the plane is point-transitive but a deterministic line choice
        // cannot be perfectly uniform; no hot spot beyond a few x mean,
        // and every node carries some rendezvous load
        assert!(max <= 4.0 * mean, "hot spot {max} vs mean {mean}");
        assert!(min >= 1, "some node never used as rendezvous");
    }
}
