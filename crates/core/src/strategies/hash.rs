//! Hash Locate (paper §5).
//!
//! *"In Hash Locate we construct hash functions that map service names
//! onto network addresses. That is, `P, Q : Π → 2^U` & `P = Q`. This
//! technique is very efficient … clients and servers need only use one
//! network node each in every match-making. It suffers from the drawback
//! that … if all rendez-vous nodes for a particular service crash then
//! this takes out completely that particular service from the entire
//! network."*
//!
//! Two repairs from the paper are implemented: (1) *"the hash function can
//! map a service name onto many different network addresses for added
//! reliability"* — the `replication` parameter; (2) *"when the rendez-vous
//! node for a particular service is down, rehashing can come up with
//! another network address to act as a backup rendez-vous node"* —
//! [`HashLocate::rehash`].

use crate::port::Port;
use crate::strategy::Strategy;
use mm_topo::NodeId;

/// Port-indexed rendezvous functions — the general `P, Q : U × Π → 2^U`
/// framework of §5 of which Shotgun Locate (port-ignoring) and Hash Locate
/// (node-ignoring) are the two specializations.
pub trait PortMapped {
    /// Universe size.
    fn node_count(&self) -> usize;
    /// Where a server at `i` posts `port`.
    fn post_set_for(&self, i: NodeId, port: Port) -> Vec<NodeId>;
    /// Where a client at `j` queries for `port`.
    fn query_set_for(&self, j: NodeId, port: Port) -> Vec<NodeId>;
}

/// Every node-based strategy is trivially port-mapped (it ignores the
/// port) — Examples 1–3 "may also be viewed as borderline examples of
/// Hash Locate".
impl<S: Strategy> PortMapped for S {
    fn node_count(&self) -> usize {
        Strategy::node_count(self)
    }
    fn post_set_for(&self, i: NodeId, _port: Port) -> Vec<NodeId> {
        self.post_set(i)
    }
    fn query_set_for(&self, j: NodeId, _port: Port) -> Vec<NodeId> {
        self.query_set(j)
    }
}

/// Hash Locate: the port hashes to `replication` distinct rendezvous
/// nodes; `P = Q` and neither depends on the requester's location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashLocate {
    n: usize,
    replication: usize,
}

impl HashLocate {
    /// Hash Locate over `n` nodes with `replication` rendezvous nodes per
    /// port.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ replication ≤ n`.
    pub fn new(n: usize, replication: usize) -> Self {
        assert!(
            replication >= 1 && replication <= n,
            "replication must be in 1..=n"
        );
        HashLocate { n, replication }
    }

    /// The replication factor `r`.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Universe size.
    pub fn universe(&self) -> usize {
        self.n
    }

    fn hash64(port: Port, salt: u64) -> u64 {
        // splitmix64 over the folded port and salt
        let mut z = (port.raw() as u64)
            ^ ((port.raw() >> 64) as u64)
            ^ salt.wrapping_mul(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// The `replication` distinct rendezvous nodes for `port` (sorted).
    ///
    /// Probing continues with increasing salts until enough distinct nodes
    /// are found, so the result is always exactly `replication` nodes.
    pub fn rendezvous_nodes(&self, port: Port) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = Vec::with_capacity(self.replication);
        let mut salt = 0u64;
        while out.len() < self.replication {
            let v = NodeId::from((Self::hash64(port, salt) % self.n as u64) as usize);
            if !out.contains(&v) {
                out.push(v);
            }
            salt += 1;
        }
        out.sort_unstable();
        out
    }

    /// Backup rendezvous node after `attempt` failed rehashes: probes past
    /// the primary replicas, skipping nodes in `exclude` (crashed ones the
    /// requester knows about).
    ///
    /// Returns `None` when every universe node is excluded.
    pub fn rehash(&self, port: Port, attempt: u32, exclude: &[NodeId]) -> Option<NodeId> {
        if exclude.len() >= self.n {
            return None;
        }
        let base = self.replication as u64 + attempt as u64 * 0x1000;
        for salt in base..base + (10 * self.n + 16) as u64 {
            let v = NodeId::from((Self::hash64(port, salt) % self.n as u64) as usize);
            if !exclude.contains(&v) {
                return Some(v);
            }
        }
        // pathological port/exclude combination: fall back to linear scan
        (0..self.n).map(NodeId::from).find(|v| !exclude.contains(v))
    }
}

impl PortMapped for HashLocate {
    fn node_count(&self) -> usize {
        self.n
    }
    fn post_set_for(&self, _i: NodeId, port: Port) -> Vec<NodeId> {
        self.rendezvous_nodes(port)
    }
    fn query_set_for(&self, _j: NodeId, port: Port) -> Vec<NodeId> {
        self.rendezvous_nodes(port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p_equals_q_and_costs_2r() {
        let h = HashLocate::new(100, 3);
        let port = Port::from_name("file-service");
        let p = h.post_set_for(NodeId::new(5), port);
        let q = h.query_set_for(NodeId::new(80), port);
        assert_eq!(p, q, "P = Q per the paper");
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn replicas_are_distinct_and_deterministic() {
        let h = HashLocate::new(10, 10);
        let nodes = h.rendezvous_nodes(Port::new(7));
        assert_eq!(nodes.len(), 10);
        let mut sorted = nodes.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), 10, "all distinct even at r = n");
        assert_eq!(nodes, h.rendezvous_nodes(Port::new(7)));
    }

    #[test]
    fn different_ports_spread_load() {
        let h = HashLocate::new(64, 1);
        let mut load = vec![0usize; 64];
        for p in 0..6400u128 {
            let nodes = h.rendezvous_nodes(Port::new(p));
            load[nodes[0].index()] += 1;
        }
        let max = *load.iter().max().unwrap();
        let min = *load.iter().min().unwrap();
        assert!(max < 3 * (min + 20), "load {min}..{max} too skewed");
    }

    #[test]
    fn rehash_avoids_excluded_nodes() {
        let h = HashLocate::new(20, 2);
        let port = Port::from_name("db");
        let primary = h.rendezvous_nodes(port);
        let backup = h.rehash(port, 0, &primary).unwrap();
        assert!(!primary.contains(&backup));
        // different attempts may give different backups but never excluded
        for attempt in 0..5u32 {
            let b = h.rehash(port, attempt, &primary).unwrap();
            assert!(!primary.contains(&b));
        }
    }

    #[test]
    fn rehash_exhausts_gracefully() {
        let h = HashLocate::new(3, 1);
        let all: Vec<NodeId> = (0..3u32).map(NodeId::from).collect();
        assert_eq!(h.rehash(Port::new(1), 0, &all), None);
        let two = &all[..2];
        let found = h.rehash(Port::new(1), 0, two).unwrap();
        assert_eq!(found, NodeId::new(2));
    }

    #[test]
    fn strategies_are_port_mapped_with_ignored_port() {
        use crate::strategies::Broadcast;
        let b = Broadcast::new(5);
        let p1 = b.post_set_for(NodeId::new(2), Port::new(1));
        let p2 = b.post_set_for(NodeId::new(2), Port::new(999));
        assert_eq!(p1, p2);
        assert_eq!(p1, vec![NodeId::new(2)]);
    }

    #[test]
    #[should_panic(expected = "replication must be in 1..=n")]
    fn replication_bounds_checked() {
        let _ = HashLocate::new(5, 6);
    }
}
