//! Cube-connected-cycles strategy (paper §3.3).
//!
//! *"An algorithm similar to that of the d-dimensional cube yields,
//! appropriately tuned, for an n-node CCC network caches of size
//! `√(n/log n)` and `m(n) ≈ O(√(n·log n))`."*
//!
//! Tuning: `CCC(d)` has `n = d·2^d` nodes `(corner w, position i)`. Split
//! the corner address into `h` low bits and `d−h` high bits.
//!
//! * A server at `(s, j)` posts at one node per corner matching its low
//!   bits: corners `{ a‖s_low }` for all high parts `a`, at a *hashed*
//!   cycle position `f(a)` — `#P = 2^{d−h}`.
//! * A client at `(c, i)` queries **every** cycle position of every corner
//!   matching its high bits: `{ (c_high‖b, p) }` — `#Q = d·2^h`.
//!
//! They intersect at exactly `(c_high‖s_low, f(c_high >> h))`. Balancing
//! `2^{d−h} ≈ d·2^h` gives `h ≈ (d − log₂d)/2` and
//! `m(n) = Θ(√(d·2^d·d)) = Θ(√(n·log n))`, while each rendezvous node
//! caches only the `≈ 2^{d−h} / d`-fraction the hash assigns it — the
//! paper's `√(n/log n)` cache size.

use crate::strategy::Strategy;
use mm_topo::gen::CccNode;
use mm_topo::NodeId;

/// The tuned split strategy for cube-connected cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CccStrategy {
    d: u32,
    /// Number of low corner bits the server keeps.
    h: u32,
}

impl CccStrategy {
    /// Strategy with the balanced split `h = round((d − log₂d)/2)`.
    ///
    /// # Panics
    ///
    /// Panics if `d < 1` or `d > 24`.
    pub fn new(d: u32) -> Self {
        assert!((1..=24).contains(&d), "CCC dimension out of range");
        let h = (((d as f64) - (d as f64).log2()) / 2.0).round().max(0.0) as u32;
        CccStrategy { d, h: h.min(d) }
    }

    /// Strategy with an explicit split.
    ///
    /// # Panics
    ///
    /// Panics if `d < 1`, `d > 24`, or `h > d`.
    pub fn with_split(d: u32, h: u32) -> Self {
        assert!((1..=24).contains(&d), "CCC dimension out of range");
        assert!(h <= d, "split must not exceed dimension");
        CccStrategy { d, h }
    }

    /// Cycle position assigned to the high corner part `a` — a cheap
    /// multiplicative hash spreading the post load over the cycle.
    fn position_hash(&self, a: u32) -> u32 {
        (a.wrapping_mul(2654435761)) % self.d
    }

    /// `(d, h)` parameters.
    pub fn params(&self) -> (u32, u32) {
        (self.d, self.h)
    }
}

impl Strategy for CccStrategy {
    fn node_count(&self) -> usize {
        (self.d as usize) << self.d
    }

    fn post_set(&self, i: NodeId) -> Vec<NodeId> {
        let node = CccNode::from_index(i, self.d);
        let low = node.corner & ((1u32 << self.h) - 1);
        let low = if self.h == 0 { 0 } else { low };
        let mut out: Vec<NodeId> = (0..(1u32 << (self.d - self.h)))
            .map(|a| {
                CccNode {
                    corner: (a << self.h) | low,
                    pos: self.position_hash(a),
                }
                .index(self.d)
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    fn query_set(&self, j: NodeId) -> Vec<NodeId> {
        let node = CccNode::from_index(j, self.d);
        let high = if self.h >= 32 {
            0
        } else {
            node.corner & !((1u32 << self.h) - 1)
        };
        let mut out = Vec::with_capacity((self.d as usize) << self.h);
        for b in 0..(1u32 << self.h) {
            for p in 0..self.d {
                out.push(
                    CccNode {
                        corner: high | b,
                        pos: p,
                    }
                    .index(self.d),
                );
            }
        }
        out.sort_unstable();
        out
    }

    fn name(&self) -> String {
        format!("ccc_split(d={}, h={})", self.d, self.h)
    }

    fn post_count(&self, _i: NodeId) -> usize {
        1usize << (self.d - self.h)
    }

    fn query_count(&self, _j: NodeId) -> usize {
        (self.d as usize) << self.h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_for_small_dims() {
        for d in 1..=6u32 {
            let s = CccStrategy::new(d);
            s.validate().unwrap_or_else(|e| panic!("d={d}: {e}"));
        }
    }

    #[test]
    fn cost_scales_like_sqrt_n_log_n() {
        for d in [4u32, 6, 8, 10] {
            let s = CccStrategy::new(d);
            let n = (d as f64) * f64::from(1u32 << d);
            let target = (n * n.log2()).sqrt();
            let m = s.average_cost();
            assert!(
                m <= 4.0 * target && m >= target / 4.0,
                "d={d}: m = {m}, sqrt(n log n) = {target}"
            );
        }
    }

    #[test]
    fn rendezvous_is_single_node() {
        let s = CccStrategy::new(4);
        let n = s.node_count();
        for i in (0..n).step_by(5) {
            for j in (0..n).step_by(7) {
                let rdv = s.rendezvous(NodeId::from(i), NodeId::from(j));
                assert_eq!(rdv.len(), 1, "pair ({i},{j})");
            }
        }
    }

    #[test]
    fn cache_load_is_sub_sqrt_n() {
        let d = 6u32;
        let s = CccStrategy::new(d);
        let k = s.to_matrix().multiplicities();
        let n = s.node_count() as f64;
        let max_k = *k.iter().max().unwrap() as f64;
        // distinct servers posting at one node ~ sqrt(n / log n) * n-ish
        // load spread: no node should hoard more than a few times the mean
        let mean = k.iter().sum::<u64>() as f64 / n;
        assert!(max_k <= 8.0 * mean, "max {max_k} vs mean {mean}");
    }

    #[test]
    fn explicit_split_extremes() {
        let s0 = CccStrategy::with_split(3, 0);
        s0.validate().unwrap();
        assert_eq!(s0.post_count(NodeId::new(0)), 8);
        assert_eq!(s0.query_count(NodeId::new(0)), 3);
        let s3 = CccStrategy::with_split(3, 3);
        s3.validate().unwrap();
        assert_eq!(s3.post_count(NodeId::new(0)), 1);
        assert_eq!(s3.query_count(NodeId::new(0)), 24);
    }

    #[test]
    fn beats_flat_checkerboard_cache_at_same_cost_class() {
        // sanity: the tuned strategy's m stays within a log factor of 2 sqrt n
        let d = 8u32;
        let s = CccStrategy::new(d);
        let n = s.node_count() as f64;
        assert!(s.average_cost() <= 2.0 * (n.log2()) * n.sqrt());
    }
}
