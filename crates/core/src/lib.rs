//! # mm-core — distributed match-making (Mullender & Vitányi, PODC 1985)
//!
//! The paper's primary contribution, implemented as a library:
//!
//! * [`Strategy`] — the Shotgun Locate framework: total functions
//!   `P, Q : U → 2^U`. A server residing at node `i` posts its
//!   `(port, address)` at each node in `P(i)`; a client at node `j`
//!   queries each node in `Q(j)`. They meet at `P(i) ∩ Q(j)`.
//! * [`RendezvousMatrix`] — the `n×n` matrix `R` with entries
//!   `r_ij = P(i) ∩ Q(j)`, the paper's central combinatorial object,
//!   with its constraints (M1)–(M4) as checkable properties.
//! * [`bounds`] — Propositions 1 and 2 (the `m(n) ≥ (2/n)·Σ√k_i` lower
//!   bound and its corollaries), the probabilistic `pq/n` analysis of §2.2,
//!   and the weighted (M3′) cost model.
//! * [`strategies`] — every strategy the paper names: broadcasting,
//!   sweeping, centralized, checkerboard ("truly distributed", Prop. 3),
//!   block/rectangular trade-offs, Manhattan grid row/column and its
//!   d-dimensional generalization, hypercube address-splitting,
//!   cube-connected-cycles, projective-plane lines, hierarchical,
//!   tree path-to-root, the general-network decomposition strategy, and
//!   Hash Locate.
//! * [`lift`] — Proposition 4: lifting an `n`-node strategy to `4n` nodes
//!   with exactly twice the average cost.
//! * [`robust`] — §2.4 redundancy: combinators enforcing
//!   `#(P(i) ∩ Q(j)) ≥ f+1` and crash-survival analysis.
//! * [`paper_examples`] — the six rendezvous matrices printed in §2.3.1,
//!   reproduced entry-for-entry.
//!
//! # Quick start
//!
//! ```
//! use mm_core::{Strategy, strategies::Checkerboard, bounds};
//!
//! let n = 64;
//! let s = Checkerboard::new(n);
//! // every client finds every server ...
//! s.validate().unwrap();
//! // ... at the truly-distributed cost of about 2*sqrt(n) messages
//! let m = s.average_cost();
//! assert!(m <= 2.0 * (n as f64).sqrt() + 2.0);
//! // and no strategy can beat the Proposition 2 bound
//! let k = s.to_matrix().multiplicities();
//! assert!(m >= bounds::prop2_lower_bound(&k, n) - 1e-9);
//! ```

pub mod bounds;
pub mod lift;
pub mod matrix;
pub mod paper_examples;
pub mod port;
pub mod robust;
pub mod strategies;
pub mod strategy;

pub use matrix::RendezvousMatrix;
pub use port::Port;
pub use strategy::{BoxedStrategy, Strategy, StrategyError};
