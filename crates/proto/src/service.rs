//! The Amoeba-style service model (paper §1.3).
//!
//! *"Services are offered by a number of server processes, distributed
//! over the network. Client processes send requests to services; the
//! services carry out these requests and return a reply. … a process can
//! be a client, a server, or both, and change its role dynamically."*
//!
//! [`ServiceNet`] is the application layer over the
//! [`crate::ShotgunEngine`]: named services, locate-then-
//! request calls with stale-address retry, and migration. The `call` path
//! is the paper's full pipeline: **match-making precedes routing** — first
//! locate the port, then route the request to the located address.

use crate::shotgun::{LocateOutcome, RequestOutcome, ShotgunEngine};
use mm_core::strategies::PortMapped;
use mm_core::Port;
use mm_sim::{CostModel, QueueKind, RouterKind, ShardMode};
use mm_topo::{Graph, NodeId};
use std::fmt;

/// Errors surfaced by service calls.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServiceError {
    /// No rendezvous node returned an address for the port.
    NotLocated,
    /// A server address was located but the request found no server
    /// there (stale cache), even after retrying.
    Stale,
    /// The request was sent but no reply arrived (crashed server).
    NoReply,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::NotLocated => write!(f, "service could not be located"),
            ServiceError::Stale => write!(f, "located address was stale"),
            ServiceError::NoReply => write!(f, "no reply from the located server"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// A named-service layer over the Shotgun engine.
#[derive(Debug)]
pub struct ServiceNet<PM> {
    engine: ShotgunEngine<PM>,
}

impl<PM: PortMapped> ServiceNet<PM> {
    /// Builds a service network over `graph` with the given resolver.
    ///
    /// # Panics
    ///
    /// Panics if the resolver universe differs from the graph size.
    pub fn new(graph: Graph, resolver: PM, cost_model: CostModel) -> Self {
        ServiceNet {
            engine: ShotgunEngine::new(graph, resolver, cost_model),
        }
    }

    /// Builds a service network with an explicit simulator event-queue
    /// implementation (determinism cross-checks and queue benchmarks).
    ///
    /// # Panics
    ///
    /// Panics if the resolver universe differs from the graph size.
    pub fn with_queue(graph: Graph, resolver: PM, cost_model: CostModel, kind: QueueKind) -> Self {
        ServiceNet {
            engine: ShotgunEngine::with_queue(graph, resolver, cost_model, kind),
        }
    }

    /// Builds a service network on an explicit execution core (see
    /// [`ShardMode`]); output is byte-identical across modes.
    ///
    /// # Panics
    ///
    /// Panics if the resolver universe differs from the graph size.
    pub fn with_shards(
        graph: Graph,
        resolver: PM,
        cost_model: CostModel,
        kind: QueueKind,
        mode: ShardMode,
    ) -> Self {
        Self::with_router(graph, resolver, cost_model, kind, mode, RouterKind::Auto)
    }

    /// Builds a service network with an explicit routing backend as well
    /// (see [`RouterKind`]); routing is output-invariant like the queue
    /// and core choices, so this only changes memory/speed.
    ///
    /// # Panics
    ///
    /// Panics if the resolver universe differs from the graph size, or if
    /// `router` is `RouterKind::Analytic` on a non-structured graph.
    pub fn with_router(
        graph: Graph,
        resolver: PM,
        cost_model: CostModel,
        kind: QueueKind,
        mode: ShardMode,
        router: RouterKind,
    ) -> Self {
        ServiceNet {
            engine: ShotgunEngine::with_router(graph, resolver, cost_model, kind, mode, router),
        }
    }

    /// The underlying engine.
    pub fn engine(&self) -> &ShotgunEngine<PM> {
        &self.engine
    }

    /// Mutable engine access (crash injection in tests/experiments).
    pub fn engine_mut(&mut self) -> &mut ShotgunEngine<PM> {
        &mut self.engine
    }

    /// Starts a server for the named service at `at`.
    pub fn start_service(&mut self, at: NodeId, name: &str) -> Port {
        let port = Port::from_name(name);
        self.engine.register_server(at, port);
        self.engine.run();
        port
    }

    /// Stops the named service at `at` (withdraws postings).
    pub fn stop_service(&mut self, at: NodeId, name: &str) {
        self.engine.deregister_server(at, Port::from_name(name));
        self.engine.run();
    }

    /// Migrates the named service. Old cache entries become stale; the
    /// fresh posting carries a newer timestamp.
    pub fn migrate_service(&mut self, name: &str, from: NodeId, to: NodeId) {
        self.engine.migrate_server(Port::from_name(name), from, to);
        self.engine.run();
    }

    /// Locates the named service from `client`.
    ///
    /// # Errors
    ///
    /// [`ServiceError::NotLocated`] when no rendezvous knows the port.
    pub fn locate(&mut self, client: NodeId, name: &str) -> Result<NodeId, ServiceError> {
        let port = Port::from_name(name);
        let h = self.engine.locate(client, port);
        self.engine.run();
        match self.engine.outcome(h) {
            LocateOutcome::Found { addr, .. } => Ok(addr),
            LocateOutcome::Unresolved {
                best: Some((addr, _)),
                ..
            } => Ok(addr),
            _ => Err(ServiceError::NotLocated),
        }
    }

    /// Like [`ServiceNet::locate`], but also returns the rendezvous nodes
    /// where the query met the advertisement — the realized `P ∩ Q`
    /// intersection, `|meets| = m(P,Q)` with fresh postings. Unresolved
    /// locates that still produced a best address return empty meets.
    ///
    /// # Errors
    ///
    /// [`ServiceError::NotLocated`] when no rendezvous knows the port.
    pub fn locate_with_meets(
        &mut self,
        client: NodeId,
        name: &str,
    ) -> Result<(NodeId, Vec<NodeId>), ServiceError> {
        let port = Port::from_name(name);
        let h = self.engine.locate(client, port);
        self.engine.run();
        match self.engine.outcome(h) {
            LocateOutcome::Found { addr, meets, .. } => Ok((addr, meets)),
            LocateOutcome::Unresolved {
                best: Some((addr, _)),
                ..
            } => Ok((addr, Vec::new())),
            _ => Err(ServiceError::NotLocated),
        }
    }

    /// Full client call: locate the service, send `body`, await the reply.
    /// On a stale address (server just migrated away), re-locates once and
    /// retries — the recovery loop of §1.3's query-server example.
    ///
    /// # Errors
    ///
    /// Any [`ServiceError`] on failure.
    pub fn call(&mut self, client: NodeId, name: &str, body: u64) -> Result<u64, ServiceError> {
        let port = Port::from_name(name);
        let mut addr = self.locate(client, name)?;
        for _attempt in 0..2 {
            let id = self.engine.request(client, addr, port, body);
            self.engine.run();
            match self.engine.request_outcome(client, id) {
                Some(RequestOutcome::Replied { body, .. }) => return Ok(body),
                Some(RequestOutcome::StaleAddress) => {
                    // stale cache: re-locate (the fresh post wins) and retry
                    addr = self.locate(client, name)?;
                }
                None => return Err(ServiceError::NoReply),
            }
        }
        Err(ServiceError::Stale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_core::strategies::Checkerboard;
    use mm_topo::gen;

    fn net(n: usize) -> ServiceNet<Checkerboard> {
        ServiceNet::new(gen::complete(n), Checkerboard::new(n), CostModel::Uniform)
    }

    #[test]
    fn call_roundtrip() {
        let mut net = net(16);
        net.start_service(NodeId::new(3), "adder");
        let got = net.call(NodeId::new(12), "adder", 41).unwrap();
        assert_eq!(got, 42, "the toy service echoes body + 1");
    }

    #[test]
    fn locate_with_meets_reports_the_intersection() {
        let mut net = net(16);
        net.start_service(NodeId::new(3), "adder");
        let (addr, meets) = net.locate_with_meets(NodeId::new(12), "adder").unwrap();
        assert_eq!(addr, NodeId::new(3));
        assert_eq!(meets.len(), 1, "checkerboard meets at exactly one node");
    }

    #[test]
    fn call_unknown_service_fails() {
        let mut net = net(9);
        assert_eq!(
            net.call(NodeId::new(0), "nothing", 1),
            Err(ServiceError::NotLocated)
        );
    }

    #[test]
    fn migration_is_transparent_to_callers() {
        let mut net = net(25);
        net.start_service(NodeId::new(2), "db");
        assert_eq!(net.call(NodeId::new(20), "db", 1).unwrap(), 2);
        net.migrate_service("db", NodeId::new(2), NodeId::new(17));
        assert_eq!(
            net.call(NodeId::new(20), "db", 5).unwrap(),
            6,
            "call after migration must succeed via fresh postings"
        );
        assert_eq!(net.locate(NodeId::new(20), "db").unwrap(), NodeId::new(17));
    }

    #[test]
    fn stopped_service_is_gone() {
        let mut net = net(16);
        net.start_service(NodeId::new(4), "tmp");
        net.stop_service(NodeId::new(4), "tmp");
        assert_eq!(
            net.call(NodeId::new(1), "tmp", 0),
            Err(ServiceError::NotLocated)
        );
    }

    #[test]
    fn crashed_server_yields_no_reply() {
        let mut net = net(16);
        // server 5 (band 1) and client 8 (band 2) rendezvous at node 6,
        // so the advertisement survives the server's crash
        net.start_service(NodeId::new(5), "svc");
        net.engine_mut().crash(NodeId::new(5));
        let res = net.call(NodeId::new(8), "svc", 0);
        assert_eq!(res, Err(ServiceError::NoReply));
    }

    #[test]
    fn server_that_is_its_own_rendezvous_vanishes_on_crash() {
        let mut net = net(16);
        // server 4 is the rendezvous node for clients in band 0, so
        // crashing it leaves those clients unable to locate at all
        net.start_service(NodeId::new(4), "svc");
        net.engine_mut().crash(NodeId::new(4));
        let res = net.call(NodeId::new(1), "svc", 0);
        assert_eq!(res, Err(ServiceError::NotLocated));
    }

    #[test]
    fn service_hierarchy_servers_are_clients_too() {
        // the paper's query-server -> database-server chain: a node that
        // serves one port calls another service to do its work
        let mut net = net(16);
        net.start_service(NodeId::new(3), "database");
        net.start_service(NodeId::new(7), "query");
        // the query server (node 7) acts as a *client* of the database
        let db_result = net.call(NodeId::new(7), "database", 10).unwrap();
        assert_eq!(db_result, 11);
        // and an end client still reaches the query service itself
        assert_eq!(net.call(NodeId::new(0), "query", db_result).unwrap(), 12);
    }
}
