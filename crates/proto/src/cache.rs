//! Rendezvous-node caches.
//!
//! Paper §2.1 assumption 3: *"all nodes have a cache which is large enough
//! to store all (port, address) pairs associated with addresses `i` such
//! that `j ∈ P(i)` … caches are large enough … that they never have to
//! discard one for a server that is still active."* [`Cache`] defaults to
//! unbounded accordingly; a capacity can be set to model Lighthouse-style
//! small caches where *"too-small caches can discard (port, address)
//! pairs"* — eviction is oldest-stamp-first.

use mm_core::Port;
use mm_topo::NodeId;
use std::collections::HashMap;

/// One cached advertisement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheEntry {
    /// Where the server said it was.
    pub addr: NodeId,
    /// When it said so (logical stamp; larger = newer).
    pub stamp: u64,
}

/// A `(port → (address, stamp))` cache with optional capacity.
#[derive(Debug, Clone, Default)]
pub struct Cache {
    entries: HashMap<Port, CacheEntry>,
    capacity: Option<usize>,
    /// High-water mark of live entries — the cache size the paper's
    /// per-topology analyses bound (e.g. `√n` for Manhattan grids).
    peak: usize,
}

impl Cache {
    /// Unbounded cache (the Shotgun Locate assumption).
    pub fn new() -> Self {
        Cache::default()
    }

    /// Cache that evicts its oldest entry beyond `capacity` (Lighthouse
    /// Locate's small caches).
    pub fn with_capacity(capacity: usize) -> Self {
        Cache {
            entries: HashMap::new(),
            capacity: Some(capacity),
            peak: 0,
        }
    }

    /// Inserts or refreshes an advertisement. Older stamps never overwrite
    /// newer ones. Reports whether the cache changed.
    pub fn insert(&mut self, port: Port, addr: NodeId, stamp: u64) -> bool {
        match self.entries.get(&port) {
            Some(e) if e.stamp >= stamp => false,
            _ => {
                self.entries.insert(port, CacheEntry { addr, stamp });
                if let Some(cap) = self.capacity {
                    while self.entries.len() > cap {
                        let oldest = self
                            .entries
                            .iter()
                            .min_by_key(|(p, e)| (e.stamp, p.raw()))
                            .map(|(p, _)| *p)
                            .expect("nonempty while over capacity");
                        self.entries.remove(&oldest);
                    }
                }
                self.peak = self.peak.max(self.entries.len());
                true
            }
        }
    }

    /// Removes the entry for `port` if its stamp is `<= stamp` (withdrawal
    /// must not erase a newer advertisement). Reports whether an entry was
    /// removed.
    pub fn remove(&mut self, port: Port, stamp: u64) -> bool {
        match self.entries.get(&port) {
            Some(e) if e.stamp <= stamp => {
                self.entries.remove(&port);
                true
            }
            _ => false,
        }
    }

    /// Looks up a port.
    pub fn lookup(&self, port: Port) -> Option<CacheEntry> {
        self.entries.get(&port).copied()
    }

    /// Drops every entry whose stamp is older than `min_stamp` — trail
    /// expiry for Lighthouse Locate.
    pub fn expire_older_than(&mut self, min_stamp: u64) {
        self.entries.retain(|_, e| e.stamp >= min_stamp);
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// High-water mark of live entries over the cache's lifetime.
    pub fn peak(&self) -> usize {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn port(name: &str) -> Port {
        Port::from_name(name)
    }

    #[test]
    fn insert_and_lookup() {
        let mut c = Cache::new();
        assert!(c.insert(port("a"), NodeId::new(1), 10));
        assert_eq!(
            c.lookup(port("a")),
            Some(CacheEntry {
                addr: NodeId::new(1),
                stamp: 10
            })
        );
        assert_eq!(c.lookup(port("b")), None);
    }

    #[test]
    fn newer_stamp_wins_older_ignored() {
        let mut c = Cache::new();
        c.insert(port("a"), NodeId::new(1), 10);
        assert!(
            !c.insert(port("a"), NodeId::new(2), 5),
            "stale update ignored"
        );
        assert_eq!(c.lookup(port("a")).unwrap().addr, NodeId::new(1));
        assert!(c.insert(port("a"), NodeId::new(3), 20));
        assert_eq!(c.lookup(port("a")).unwrap().addr, NodeId::new(3));
    }

    #[test]
    fn equal_stamp_does_not_flap() {
        let mut c = Cache::new();
        c.insert(port("a"), NodeId::new(1), 10);
        assert!(!c.insert(port("a"), NodeId::new(2), 10));
        assert_eq!(c.lookup(port("a")).unwrap().addr, NodeId::new(1));
    }

    #[test]
    fn remove_respects_stamps() {
        let mut c = Cache::new();
        c.insert(port("a"), NodeId::new(1), 10);
        assert!(
            !c.remove(port("a"), 5),
            "old unpost cannot erase newer post"
        );
        assert!(c.remove(port("a"), 10));
        assert!(c.is_empty());
        assert!(!c.remove(port("a"), 99), "nothing left to remove");
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut c = Cache::with_capacity(2);
        c.insert(port("a"), NodeId::new(1), 1);
        c.insert(port("b"), NodeId::new(2), 2);
        c.insert(port("c"), NodeId::new(3), 3);
        assert_eq!(c.len(), 2);
        assert_eq!(c.lookup(port("a")), None, "oldest evicted");
        assert!(c.lookup(port("b")).is_some());
        assert!(c.lookup(port("c")).is_some());
        assert_eq!(c.peak(), 2);
    }

    #[test]
    fn expiry_drops_old_trails() {
        let mut c = Cache::new();
        c.insert(port("a"), NodeId::new(1), 5);
        c.insert(port("b"), NodeId::new(2), 9);
        c.expire_older_than(6);
        assert_eq!(c.lookup(port("a")), None);
        assert!(c.lookup(port("b")).is_some());
    }

    #[test]
    fn peak_tracks_high_water() {
        let mut c = Cache::new();
        for i in 0..10u64 {
            c.insert(Port::new(i as u128), NodeId::new(0), i);
        }
        c.expire_older_than(100);
        assert!(c.is_empty());
        assert_eq!(c.peak(), 10);
    }
}
