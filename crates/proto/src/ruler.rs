//! The ruler sequence governing Lighthouse Locate beam lengths (paper §4).
//!
//! *"Another possibility is to govern the length of the locate beam (and
//! its duration) by the sequence 12131214121312151213121412131216… Here
//! the length of the locate beam is `i·l` once in each interval of `2^i`
//! trials. (This sequence is sequence 51 in Sloane's catalogue.) The
//! schedule can conveniently be maintained by a binary counter: the
//! position `i` of the most significant bit changed by the current unit
//! increment indicates the current beam length `i·l`."*

/// The ruler value for trial `n ≥ 1`: the 1-based position of the most
/// significant bit changed when incrementing a binary counter from `n−1`
/// to `n` — equivalently `ν₂(n) + 1` where `ν₂` is the 2-adic valuation.
///
/// # Panics
///
/// Panics if `n == 0` (trials are numbered from 1).
///
/// # Example
///
/// ```
/// use mm_proto::ruler::ruler;
/// let first: Vec<u32> = (1..=16).map(ruler).collect();
/// assert_eq!(first, [1,2,1,3,1,2,1,4,1,2,1,3,1,2,1,5]);
/// ```
pub fn ruler(n: u64) -> u32 {
    assert!(n > 0, "trials are numbered from 1");
    n.trailing_zeros() + 1
}

/// Iterator over the ruler sequence starting at trial 1.
#[derive(Debug, Clone, Default)]
pub struct RulerSequence {
    n: u64,
}

impl RulerSequence {
    /// A fresh schedule at trial 1.
    pub fn new() -> Self {
        RulerSequence { n: 0 }
    }
}

impl Iterator for RulerSequence {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        self.n += 1;
        Some(ruler(self.n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_prefix() {
        // paper: 1213121412131215 1213121412131216 ...
        let want: Vec<u32> = "1213121412131215"
            .chars()
            .map(|c| c.to_digit(10).unwrap())
            .collect();
        let got: Vec<u32> = RulerSequence::new().take(16).collect();
        assert_eq!(got, want);
        // the 32nd trial reaches length 6
        assert_eq!(ruler(32), 6);
    }

    #[test]
    fn frequency_property() {
        // "in a sequence of 2^k trials there are 2^{k-i} length i*l trials"
        let k = 10u32;
        let total = 1u64 << k;
        let mut counts = vec![0u64; (k + 2) as usize];
        for n in 1..=total {
            counts[ruler(n) as usize] += 1;
        }
        for i in 1..=k {
            assert_eq!(counts[i as usize], 1 << (k - i), "value {i}");
        }
        assert_eq!(counts[(k + 1) as usize], 1, "one maximal trial");
    }

    #[test]
    #[should_panic(expected = "numbered from 1")]
    fn zero_trial_panics() {
        let _ = ruler(0);
    }
}
