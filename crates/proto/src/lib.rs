//! # mm-proto — name-server protocols over the simulator
//!
//! The runtime half of the paper: where `mm-core` provides the *functions*
//! `P` and `Q`, this crate provides the *processes* that use them.
//!
//! * [`messages`] — the wire protocol: `Post`, `Query`, `Hit`, `Miss`,
//!   `Request`, `Reply`, with a compact binary encoding.
//! * [`cache`] — per-node `(port, address, timestamp)` caches: *"Entries
//!   are made or updated whenever a message is received from a server
//!   process with its address. We can timestamp the messages to determine
//!   which addresses are out of date in case of a conflict."*
//! * [`fault`] — Byzantine fault profiles (drop-posts, stale-address,
//!   forged-address, refuse-match) injectable into either runtime's
//!   protocol handlers; the hostile-world layer on top of fail-stop churn.
//! * [`shotgun`] — the Shotgun Locate engine: servers post at `P(i)`,
//!   clients query `Q(j)`, rendezvous nodes answer from their caches.
//!   Generic over [`mm_core::strategies::PortMapped`], so the same engine
//!   runs every §2–§3 strategy *and* §5's Hash Locate.
//! * [`hash_locate`] — Hash Locate operations: rehash-on-crash backup
//!   rendezvous nodes and server polling (§5's two robustness repairs).
//! * [`lighthouse`] — §4's probabilistic beam algorithm on the Euclidean
//!   grid, with the doubling and ruler-sequence client schedules, plus
//!   [`ruler`], the schedule generator itself.
//! * [`service`] — the Amoeba-style service model of §1.3: request/reply
//!   on located addresses, migration with stale-cache recovery.
//! * [`live`] — a threaded runtime (channel mailboxes, one OS thread per
//!   node) running the same protocols — posting, deregistration, churn,
//!   application request/reply — under real concurrency, with
//!   simulator-compatible metrics so whole workloads can be
//!   differential-tested against [`shotgun`].

pub mod cache;
pub mod fault;
pub mod hash_locate;
pub mod intern;
pub mod lighthouse;
pub mod live;
pub mod messages;
pub mod ruler;
pub mod service;
pub mod shotgun;

pub use cache::Cache;
pub use fault::{FaultProfile, FORGED_STAMP};
pub use intern::TargetInterner;
pub use live::{LiveLocateOutcome, LiveNet, LiveRequestOutcome};
pub use messages::ProtoMsg;
pub use shotgun::{LocateHandle, LocateOutcome, ShotgunEngine};
