//! Interning of resolver target sets.
//!
//! Post and query sets are pure functions of `(node, port)` — servers
//! re-post the same `P(i)` on every refresh, and clients at the same node
//! re-query the same `Q(j)` for every locate. [`TargetInterner`] memoizes
//! the resolver's answers as shared [`TargetSet`]s, so the engine hands
//! the simulator a reference-counted pointer instead of a freshly
//! allocated (and then repeatedly cloned) `Vec<NodeId>` per operation.
//!
//! The cache is bounded: once the configured number of cached node ids is
//! reached, further sets are still converted to [`TargetSet`] (one
//! allocation, no clones downstream) but not retained — at 64k nodes a
//! full per-client query-set cache would dwarf the simulation itself.
//! Caching is invisible to behavior: hit or miss, the same canonical set
//! is produced, so seeded runs stay byte-identical.

use mm_core::strategies::PortMapped;
use mm_core::Port;
use mm_sim::TargetSet;
use mm_topo::NodeId;
use std::collections::HashMap;

/// Default bound on retained ids (`4 Mi` ids ≈ 16 MiB of cached sets).
const DEFAULT_ID_BUDGET: usize = 4 << 20;

/// Memoizes `P(i, π)` / `Q(j, π)` resolver calls as shared [`TargetSet`]s.
///
/// # Concurrency (sharded executor audit)
///
/// The interner lives on the engine *coordinator* side and is only ever
/// touched through `&mut self` between simulator rounds — shard worker
/// threads never see it; they only hold the `TargetSet` clones already
/// embedded in in-flight messages (safe: atomically refcounted, immutable
/// contents). No interior mutability is involved anywhere on this path,
/// so the sharded core introduced no new synchronization requirement
/// here. The assertion below pins the types as `Send + Sync` so any
/// future cell/`Rc`-based "optimization" of the cache is caught at
/// compile time rather than as a data race.
#[derive(Debug)]
pub struct TargetInterner {
    post: HashMap<(NodeId, Port), TargetSet>,
    query: HashMap<(NodeId, Port), TargetSet>,
    /// Remaining node-id slots before the cache stops retaining new sets.
    budget: usize,
}

const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<TargetInterner>();
};

impl Default for TargetInterner {
    fn default() -> Self {
        Self::with_budget(DEFAULT_ID_BUDGET)
    }
}

impl TargetInterner {
    /// An interner retaining at most `budget` total cached node ids.
    pub fn with_budget(budget: usize) -> Self {
        TargetInterner {
            post: HashMap::new(),
            query: HashMap::new(),
            budget,
        }
    }

    /// The interned `P(i, port)` — cached on first use.
    pub fn post_set<PM: PortMapped>(&mut self, pm: &PM, i: NodeId, port: Port) -> TargetSet {
        Self::lookup(&mut self.post, &mut self.budget, (i, port), || {
            pm.post_set_for(i, port)
        })
    }

    /// The interned `Q(j, port)` — cached on first use.
    pub fn query_set<PM: PortMapped>(&mut self, pm: &PM, j: NodeId, port: Port) -> TargetSet {
        Self::lookup(&mut self.query, &mut self.budget, (j, port), || {
            pm.query_set_for(j, port)
        })
    }

    /// Number of retained sets (post + query).
    pub fn cached_sets(&self) -> usize {
        self.post.len() + self.query.len()
    }

    fn lookup(
        map: &mut HashMap<(NodeId, Port), TargetSet>,
        budget: &mut usize,
        key: (NodeId, Port),
        compute: impl FnOnce() -> Vec<NodeId>,
    ) -> TargetSet {
        if let Some(set) = map.get(&key) {
            return set.clone();
        }
        let set = TargetSet::from_vec(compute());
        if set.len() <= *budget {
            *budget -= set.len();
            map.insert(key, set.clone());
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_core::strategies::Checkerboard;

    #[test]
    fn repeated_lookups_share_storage() {
        let strat = Checkerboard::new(16);
        let mut interner = TargetInterner::default();
        let p = Port::from_name("svc");
        let a = interner.query_set(&strat, NodeId::new(3), p);
        let b = interner.query_set(&strat, NodeId::new(3), p);
        assert!(std::ptr::eq(a.as_slice().as_ptr(), b.as_slice().as_ptr()));
        assert_eq!(interner.cached_sets(), 1);
    }

    #[test]
    fn post_and_query_are_cached_separately() {
        let strat = Checkerboard::new(16);
        let mut interner = TargetInterner::default();
        let p = Port::from_name("svc");
        let post = interner.post_set(&strat, NodeId::new(3), p);
        let query = interner.query_set(&strat, NodeId::new(3), p);
        assert_ne!(post, query, "checkerboard P (row) differs from Q (row+col)");
        assert_eq!(interner.cached_sets(), 2);
    }

    #[test]
    fn exhausted_budget_still_produces_sets() {
        let strat = Checkerboard::new(16);
        let mut interner = TargetInterner::with_budget(0);
        let p = Port::from_name("svc");
        let a = interner.query_set(&strat, NodeId::new(3), p);
        let b = interner.query_set(&strat, NodeId::new(3), p);
        assert_eq!(a, b, "uncached lookups stay deterministic");
        assert_eq!(interner.cached_sets(), 0, "nothing retained at budget 0");
    }
}
