//! Lighthouse Locate (paper §4).
//!
//! *"We imagine the processors as discrete coordinate points in the
//! 2-dimensional Euclidean plane grid. … Each server sends out a random
//! direction beam of length `l` every `δ` time units. Each trail left by
//! such a beam disappears after `d` time units. … To locate a server, the
//! client beams a request in a random direction at regular intervals.
//! After `e` unsuccessful trials, the client increases its effort by
//! doubling the length of the inquiry beam and the intervals between
//! them."* The alternative schedule is the ruler sequence ([`crate::ruler`]).
//!
//! The plane is modelled as a wrapping `width × height` integer grid
//! (torus, to avoid boundary artifacts); beams are Bresenham-style walks
//! in a uniformly random direction. [`network_beam`] is the paper's
//! mapping of beams onto point-to-point networks: routing tables used
//! *back-to-front* (reverse path forwarding) to walk "straight lines"
//! away from the beam's origin.

use mm_topo::{NodeId, Router};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Static parameters of a lighthouse world.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LighthouseConfig {
    /// Grid width (wraps).
    pub width: u32,
    /// Grid height (wraps).
    pub height: u32,
    /// Number of servers for the port being located (density `s` =
    /// `server_count / (width·height)`).
    pub server_count: u32,
    /// Server beam length `l`.
    pub server_beam_len: u32,
    /// Server beaming period `δ`.
    pub server_period: u64,
    /// Trail time-to-live `d`.
    pub trail_ttl: u64,
}

impl Default for LighthouseConfig {
    fn default() -> Self {
        LighthouseConfig {
            width: 64,
            height: 64,
            server_count: 8,
            server_beam_len: 16,
            server_period: 8,
            trail_ttl: 64,
        }
    }
}

/// The client's trial schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClientSchedule {
    /// Start with beam length `initial_len` and interval `initial_period`;
    /// after every `escalate_after` failures double both (`l ← 2l`,
    /// `δ ← 2δ`).
    Doubling {
        /// Initial beam length.
        initial_len: u32,
        /// Initial inter-trial interval.
        initial_period: u64,
        /// Failures per escalation (`e`).
        escalate_after: u32,
    },
    /// Trial `n` uses beam length `ruler(n)·unit_len` at fixed intervals —
    /// servers drifting nearer are found with less time-loss.
    Ruler {
        /// The unit length `l`.
        unit_len: u32,
        /// Fixed inter-trial interval.
        period: u64,
    },
}

/// Result of a successful locate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocateStats {
    /// Trials used (including the successful one).
    pub trials: u64,
    /// Simulated time elapsed.
    pub elapsed: u64,
    /// Total beamed cells (message passes analogue).
    pub beam_cells: u64,
}

/// The simulated plane: servers, trails and a clock.
#[derive(Debug)]
pub struct LighthouseWorld {
    cfg: LighthouseConfig,
    servers: Vec<(u32, u32)>,
    /// cell → trail expiry time
    trails: HashMap<(u32, u32), u64>,
    now: u64,
    next_server_beam: u64,
    rng: StdRng,
}

impl LighthouseWorld {
    /// Creates a world with uniformly placed servers; deterministic under
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the grid is empty.
    pub fn new(cfg: LighthouseConfig, seed: u64) -> Self {
        assert!(cfg.width > 0 && cfg.height > 0, "grid must be non-empty");
        let mut rng = StdRng::seed_from_u64(seed);
        let servers = (0..cfg.server_count)
            .map(|_| (rng.gen_range(0..cfg.width), rng.gen_range(0..cfg.height)))
            .collect();
        LighthouseWorld {
            cfg,
            servers,
            trails: HashMap::new(),
            now: 0,
            next_server_beam: 0,
            rng,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Live trail cells (for inspection/plots).
    pub fn trail_count(&self) -> usize {
        self.trails.values().filter(|&&e| e > self.now).count()
    }

    /// Cells along a beam of `len` from `(x, y)` in a random direction
    /// (excluding the origin), wrapping at the borders.
    fn beam_cells(&mut self, x: u32, y: u32, len: u32) -> Vec<(u32, u32)> {
        let theta = self.rng.gen_range(0.0..std::f64::consts::TAU);
        let (dx, dy) = (theta.cos(), theta.sin());
        let mut cells = Vec::with_capacity(len as usize);
        for t in 1..=len {
            let cx = (x as f64 + dx * t as f64).round() as i64;
            let cy = (y as f64 + dy * t as f64).round() as i64;
            let w = self.cfg.width as i64;
            let h = self.cfg.height as i64;
            cells.push((cx.rem_euclid(w) as u32, cy.rem_euclid(h) as u32));
        }
        cells.dedup();
        cells
    }

    /// Advances time to `t`, letting servers beam on their `δ` schedule.
    fn advance_to(&mut self, t: u64) {
        while self.next_server_beam <= t {
            self.now = self.next_server_beam;
            let expiry = self.now + self.cfg.trail_ttl;
            for idx in 0..self.servers.len() {
                let (sx, sy) = self.servers[idx];
                let len = self.cfg.server_beam_len;
                for cell in self.beam_cells(sx, sy, len) {
                    let e = self.trails.entry(cell).or_insert(0);
                    *e = (*e).max(expiry);
                }
            }
            self.next_server_beam += self.cfg.server_period;
        }
        self.now = t;
        // garbage-collect dead trails occasionally to bound memory
        if self.trails.len() > 4 * (self.cfg.width * self.cfg.height) as usize {
            let now = self.now;
            self.trails.retain(|_, &mut e| e > now);
        }
    }

    /// Runs a client locate from `(cx, cy)` under `schedule`, up to
    /// `max_trials`. Returns `None` if unsuccessful within the budget.
    pub fn locate(
        &mut self,
        cx: u32,
        cy: u32,
        schedule: ClientSchedule,
        max_trials: u64,
    ) -> Option<LocateStats> {
        let start = self.now;
        let mut beam_cells_total = 0u64;
        let mut len;
        let mut period;
        for trial in 1..=max_trials {
            match schedule {
                ClientSchedule::Doubling {
                    initial_len,
                    initial_period,
                    escalate_after,
                } => {
                    // every earlier trial failed, so trial - 1 counts the failures
                    let level = ((trial - 1) / escalate_after.max(1) as u64) as u32;
                    len = initial_len.saturating_mul(1 << level.min(16));
                    period = initial_period.saturating_mul(1 << level.min(16));
                }
                ClientSchedule::Ruler {
                    unit_len,
                    period: p,
                } => {
                    len = crate::ruler::ruler(trial) * unit_len;
                    period = p;
                }
            }
            self.advance_to(self.now + period);
            let cells = self.beam_cells(cx, cy, len);
            beam_cells_total += cells.len() as u64;
            let hit = cells
                .iter()
                .any(|c| self.trails.get(c).is_some_and(|&e| e > self.now));
            if hit {
                return Some(LocateStats {
                    trials: trial,
                    elapsed: self.now - start,
                    beam_cells: beam_cells_total,
                });
            }
        }
        None
    }
}

/// A beam of length `len` on a point-to-point network, simulated with
/// routing used back-to-front (reverse path forwarding, §4): each step
/// moves to a neighbor whose route to `origin` passes through the current
/// node — i.e. strictly *away* from the origin. Returns the nodes visited
/// (excluding `origin`); stops early at local maxima.
///
/// Generic over [`Router`], so the beam needs neither a materialized
/// graph nor an O(n²) table: an analytic backend answers
/// `reverse_next_hops` from closed-form neighborhoods alone.
pub fn network_beam<RT: Router, R: Rng + ?Sized>(
    rt: &RT,
    origin: NodeId,
    len: u32,
    rng: &mut R,
) -> Vec<NodeId> {
    let mut path = Vec::with_capacity(len as usize);
    let mut cur = origin;
    for _ in 0..len {
        let away = rt.reverse_next_hops(origin, cur);
        if away.is_empty() {
            break;
        }
        cur = away[rng.gen_range(0..away.len())];
        path.push(cur);
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_topo::gen;

    fn cfg() -> LighthouseConfig {
        LighthouseConfig::default()
    }

    #[test]
    fn locate_succeeds_with_reasonable_density() {
        let mut world = LighthouseWorld::new(cfg(), 42);
        let stats = world
            .locate(
                5,
                5,
                ClientSchedule::Doubling {
                    initial_len: 4,
                    initial_period: 4,
                    escalate_after: 2,
                },
                10_000,
            )
            .expect("dense world must be locatable");
        assert!(stats.trials >= 1);
        assert!(stats.beam_cells > 0);
    }

    #[test]
    fn ruler_schedule_succeeds_too() {
        let mut world = LighthouseWorld::new(cfg(), 7);
        let stats = world
            .locate(
                30,
                30,
                ClientSchedule::Ruler {
                    unit_len: 4,
                    period: 4,
                },
                10_000,
            )
            .expect("ruler schedule must locate");
        assert!(stats.trials >= 1);
    }

    #[test]
    fn empty_world_never_succeeds() {
        let mut c = cfg();
        c.server_count = 0;
        let mut world = LighthouseWorld::new(c, 1);
        assert_eq!(
            world.locate(
                0,
                0,
                ClientSchedule::Ruler {
                    unit_len: 2,
                    period: 2
                },
                200
            ),
            None
        );
    }

    #[test]
    fn trails_expire() {
        let mut c = cfg();
        c.trail_ttl = 1;
        c.server_period = 1_000_000; // servers beam once, then never again
        let mut world = LighthouseWorld::new(c, 3);
        world.advance_to(10);
        assert_eq!(world.trail_count(), 0, "all trails must have expired");
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed| {
            let mut w = LighthouseWorld::new(cfg(), seed);
            w.locate(
                10,
                20,
                ClientSchedule::Doubling {
                    initial_len: 2,
                    initial_period: 2,
                    escalate_after: 3,
                },
                5_000,
            )
        };
        assert_eq!(run(11), run(11));
    }

    #[test]
    fn network_beam_moves_away_from_origin() {
        let g = gen::grid(9, 9, false);
        let rt = mm_topo::RoutingTable::new(&g);
        let origin = NodeId::new(40); // center
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let beam = network_beam(&rt, origin, 6, &mut rng);
            let mut last = 0;
            for v in &beam {
                let d = rt.distance(origin, *v).unwrap();
                assert_eq!(d, last + 1, "each step adds one to the distance");
                last = d;
            }
        }
    }

    #[test]
    fn network_beam_stops_at_periphery() {
        let g = gen::path(5);
        let rt = mm_topo::RoutingTable::new(&g);
        let mut rng = StdRng::seed_from_u64(1);
        let beam = network_beam(&rt, NodeId::new(0), 100, &mut rng);
        assert_eq!(beam.len(), 4, "path graph beam ends at the far end");
    }

    #[test]
    fn network_beam_is_identical_on_analytic_and_table_routers() {
        // beams draw from the rng per step, so identical reverse-hop
        // lists are required for identical beams — a direct probe of the
        // analytic routers' neighbor ordering.
        let g = gen::grid(7, 7, true);
        let table = mm_topo::AnyRouter::table_for(&g);
        let analytic = mm_topo::AnyRouter::for_graph(&g);
        assert!(analytic.is_analytic());
        for seed in 0..20 {
            let origin = NodeId::new(seed % 49);
            let mut r1 = StdRng::seed_from_u64(u64::from(seed));
            let mut r2 = StdRng::seed_from_u64(u64::from(seed));
            assert_eq!(
                network_beam(&table, origin, 8, &mut r1),
                network_beam(&analytic, origin, 8, &mut r2)
            );
        }
    }
}
