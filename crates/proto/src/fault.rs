//! Byzantine fault profiles shared by both runtimes.
//!
//! The paper's §2.4 robustness analysis assumes fail-stop nodes; the
//! hostile-world layer goes further: a node can stay up and *misbehave*.
//! A [`FaultProfile`] is attached to a node before (or during) a run and
//! changes how its protocol handlers respond — identically in the
//! discrete-event simulator ([`crate::ShotgunEngine`]) and the threaded
//! live runtime ([`crate::live::LiveNet`]), so hostile workloads remain
//! differential-testable.
//!
//! Detection is the *client's* job: forged answers carry
//! [`FORGED_STAMP`], which wins best-stamp selection, but any honest hit
//! in the same fan-out disagrees on the address — the locate outcome
//! reports that disagreement as `dissent`, and the workload layer
//! classifies the verdict as a detected lie (cross-checked) or a false
//! match (the client was fooled).

/// Per-node adversarial behavior. `Honest` is the default and preserves
/// the historical protocol byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultProfile {
    /// Follows the protocol faithfully.
    #[default]
    Honest,
    /// Silently discards `Post`/`Unpost` traffic: the node never learns
    /// any address and answers every query with a miss. Models broken
    /// rendezvous storage — it quietly erodes the strategy's redundancy.
    DropPosts,
    /// Pins the first posting it accepts per port and ignores later posts
    /// and unposts: after a migration it keeps serving the old address —
    /// §1.3's stale-address hazard made permanent.
    StaleAddress,
    /// Forges rendezvous answers: replies *hit* to every query with its
    /// own address and [`FORGED_STAMP`], winning best-stamp selection
    /// whenever no honest hit is present to cross-check it.
    ForgedAddress,
    /// Refuses to match: accepts posts but answers every query miss.
    RefuseMatch,
}

impl FaultProfile {
    /// `true` for the default well-behaved profile.
    pub fn is_honest(self) -> bool {
        self == FaultProfile::Honest
    }

    /// Stable label used in trace spans and reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultProfile::Honest => "honest",
            FaultProfile::DropPosts => "drop-posts",
            FaultProfile::StaleAddress => "stale-address",
            FaultProfile::ForgedAddress => "forged-address",
            FaultProfile::RefuseMatch => "refuse-match",
        }
    }
}

/// The stamp carried by forged hits: strictly newer than every honest
/// stamp (engine stamps count up from 1), so a lie always wins best-stamp
/// selection and detection must come from cross-checking, not luck.
pub const FORGED_STAMP: u64 = u64::MAX;
