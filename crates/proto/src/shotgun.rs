//! The Shotgun Locate engine (paper §1.5, §2.1).
//!
//! *"A server process `s` located at address `A_s` and offering a service
//! identified by a port `π` selects a collection `P_s` of network nodes
//! and posts at these nodes that server `s` receives requests on port `π`
//! at the address `A_s`. … When a client process `c` … has a request to
//! send to `π`, it selects a collection of network nodes `Q_c` and queries
//! each node in `Q_c` for the address of `π`. When `P_s ∩ Q_c ≠ ∅`, the
//! node(s) in the intersection will return a message to `c` stating that
//! `π` is available at `A_s`."*
//!
//! [`ShotgunEngine`] drives that protocol on the [`mm_sim`] simulator. It
//! is generic over [`PortMapped`], the `P, Q : U × Π → 2^U` generalization
//! of §5 — so plain strategies (which ignore the port) and Hash Locate
//! (which ignores the node) both run unchanged.
//!
//! A locate completes when every queried node has answered; the client
//! prefers the answer with the newest timestamp, which makes locates
//! return the *current* address even right after a migration (the server's
//! fresh posting necessarily intersects the client's query set).

use crate::cache::Cache;
use crate::fault::{FaultProfile, FORGED_STAMP};
use crate::intern::TargetInterner;
use crate::messages::ProtoMsg;
use mm_core::strategies::PortMapped;
use mm_core::Port;
use mm_sim::{
    CostModel, Envelope, Metrics, Node, NodeApi, QueueKind, RouterKind, ShardMode, Sim, SimTime,
    TargetSet,
};
use mm_topo::{Graph, NodeId};
use std::collections::{BTreeSet, HashMap};

/// Client-side bookkeeping for one locate operation.
#[derive(Debug, Clone, Default)]
struct Pending {
    expected: usize,
    misses: usize,
    /// Hit answers as `(answering node, advertised addr, stamp)`, in
    /// arrival order. The winner is chosen at read time by
    /// [`Pending::best`], so arrival order never influences the verdict.
    answers: Vec<(NodeId, NodeId, u64)>,
    issued_at: SimTime,
    completed_at: Option<SimTime>,
}

impl Pending {
    /// The winning advertisement: newest stamp, ties broken by lowest
    /// answering node — deterministic regardless of reply arrival order
    /// (the live runtime's mailboxes do not preserve it).
    fn best(&self) -> Option<(NodeId, u64)> {
        self.answers
            .iter()
            .max_by(|a, b| a.2.cmp(&b.2).then(b.0.cmp(&a.0)))
            .map(|&(_, addr, stamp)| (addr, stamp))
    }

    /// Hit answers that disagree with the winning address — the client's
    /// cross-check signal for Byzantine forgeries.
    fn dissent(&self) -> usize {
        match self.best() {
            Some((winner, _)) => self.answers.iter().filter(|a| a.1 != winner).count(),
            None => 0,
        }
    }
}

/// The state of a finished (or still-running) locate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LocateOutcome {
    /// Every queried node answered and at least one had the port cached:
    /// the freshest address wins.
    Found {
        /// The located server address.
        addr: NodeId,
        /// The winning advertisement's timestamp.
        stamp: u64,
        /// Ticks from issue to the final answer.
        elapsed: SimTime,
        /// The rendezvous nodes that answered with a hit, sorted — the
        /// realized match-making intersection, `|meets| = m(P,Q)` when
        /// postings are fresh.
        meets: Vec<NodeId>,
        /// Hit answers whose address disagreed with the winner. Zero on
        /// honest fresh runs; nonzero whenever stale caches or Byzantine
        /// forgeries were out-voted — the client's lie-detection signal.
        dissent: usize,
    },
    /// Every queried node answered and none knew the port.
    NotFound {
        /// Ticks from issue to the final answer.
        elapsed: SimTime,
    },
    /// Some queried nodes never answered (crashed rendezvous); partial
    /// results are reported.
    Unresolved {
        /// Hits received so far.
        hits: usize,
        /// Misses received so far.
        misses: usize,
        /// Queries that never got an answer.
        missing: usize,
        /// Best address seen so far, if any hit arrived.
        best: Option<(NodeId, u64)>,
        /// Hit answers received so far that disagree with `best` — lets a
        /// client that salvages a partial answer at timeout still run its
        /// lie detection.
        dissent: usize,
    },
}

impl LocateOutcome {
    /// Convenience: the located address if the outcome is `Found`.
    pub fn addr(&self) -> Option<NodeId> {
        match self {
            LocateOutcome::Found { addr, .. } => Some(*addr),
            _ => None,
        }
    }

    /// `true` if every queried node answered.
    pub fn is_complete(&self) -> bool {
        !matches!(self, LocateOutcome::Unresolved { .. })
    }
}

/// Handle identifying a locate operation: `(client node, locate id)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LocateHandle {
    /// The client node the locate was issued from.
    pub client: NodeId,
    /// Engine-unique id.
    pub id: u64,
}

/// Outcome of an application-level request (service model, §1.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestOutcome {
    /// The server answered.
    Replied {
        /// Response body.
        body: u64,
        /// Ticks from issue to reply.
        elapsed: SimTime,
    },
    /// The addressed node does not serve the port (stale cache).
    StaleAddress,
}

/// Per-node protocol state: the rendezvous cache, locally served ports,
/// and client-side operation bookkeeping.
#[derive(Debug, Default)]
pub struct NsNode {
    /// The rendezvous cache.
    pub cache: Cache,
    /// Ports served by a process on this node.
    pub served: BTreeSet<Port>,
    /// Adversarial behavior profile (default: honest).
    pub fault: FaultProfile,
    pending: HashMap<u64, Pending>,
    requests: HashMap<u64, (SimTime, Option<RequestOutcome>)>,
}

impl Node<ProtoMsg> for NsNode {
    fn on_message(&mut self, env: Envelope<ProtoMsg>, api: &mut NodeApi<'_, ProtoMsg>) {
        match env.msg {
            ProtoMsg::DoPost {
                port,
                addr,
                stamp,
                targets,
            } => {
                api.multicast_set(targets, ProtoMsg::Post { port, addr, stamp });
            }
            ProtoMsg::DoUnpost {
                port,
                addr,
                stamp,
                targets,
            } => {
                api.multicast_set(targets, ProtoMsg::Unpost { port, addr, stamp });
            }
            ProtoMsg::DoLocate {
                port,
                locate_id,
                targets,
            } => {
                self.pending.insert(
                    locate_id,
                    Pending {
                        expected: targets.len(),
                        issued_at: api.now(),
                        ..Pending::default()
                    },
                );
                api.multicast_set(
                    targets,
                    ProtoMsg::Query {
                        port,
                        reply_to: api.me(),
                        locate_id,
                    },
                );
            }
            ProtoMsg::DoRequest {
                port,
                addr,
                body,
                request_id,
            } => {
                api.send(
                    addr,
                    ProtoMsg::Request {
                        port,
                        reply_to: api.me(),
                        body,
                        request_id,
                    },
                );
            }
            ProtoMsg::Post { port, addr, stamp } => match self.fault {
                // broken storage: the posting is silently lost
                FaultProfile::DropPosts => {}
                // pin the first posting; later (fresher) posts are ignored
                FaultProfile::StaleAddress => {
                    if self.cache.lookup(port).is_none() {
                        self.cache.insert(port, addr, stamp);
                    }
                }
                _ => {
                    self.cache.insert(port, addr, stamp);
                }
            },
            ProtoMsg::Unpost { port, stamp, .. } => {
                if !matches!(
                    self.fault,
                    FaultProfile::DropPosts | FaultProfile::StaleAddress
                ) {
                    self.cache.remove(port, stamp);
                }
            }
            ProtoMsg::Query {
                port,
                reply_to,
                locate_id,
            } => {
                let at = api.me();
                match self.fault {
                    // forge a hit for every port, stamped to out-bid honesty
                    FaultProfile::ForgedAddress => api.send(
                        reply_to,
                        ProtoMsg::Hit {
                            port,
                            addr: at,
                            stamp: FORGED_STAMP,
                            locate_id,
                            at,
                        },
                    ),
                    FaultProfile::RefuseMatch => {
                        api.send(reply_to, ProtoMsg::Miss { port, locate_id })
                    }
                    _ => match self.cache.lookup(port) {
                        Some(e) => api.send(
                            reply_to,
                            ProtoMsg::Hit {
                                port,
                                addr: e.addr,
                                stamp: e.stamp,
                                locate_id,
                                at,
                            },
                        ),
                        None => api.send(reply_to, ProtoMsg::Miss { port, locate_id }),
                    },
                }
            }
            ProtoMsg::Hit {
                addr,
                stamp,
                locate_id,
                at,
                ..
            } => {
                if let Some(p) = self.pending.get_mut(&locate_id) {
                    p.answers.push((at, addr, stamp));
                    if p.answers.len() + p.misses == p.expected {
                        p.completed_at = Some(api.now());
                    }
                }
            }
            ProtoMsg::Miss { locate_id, .. } => {
                if let Some(p) = self.pending.get_mut(&locate_id) {
                    p.misses += 1;
                    if p.answers.len() + p.misses == p.expected {
                        p.completed_at = Some(api.now());
                    }
                }
            }
            ProtoMsg::Request {
                port,
                reply_to,
                body,
                request_id,
            } => {
                if self.served.contains(&port) {
                    api.send(
                        reply_to,
                        ProtoMsg::Reply {
                            port,
                            // a trivially checkable service: echo body + 1
                            body: body.wrapping_add(1),
                            request_id,
                        },
                    );
                } else {
                    api.send(reply_to, ProtoMsg::NotHere { port, request_id });
                }
            }
            ProtoMsg::Reply {
                body, request_id, ..
            } => {
                if let Some((issued, slot)) = self.requests.get_mut(&request_id) {
                    *slot = Some(RequestOutcome::Replied {
                        body,
                        elapsed: api.now() - *issued,
                    });
                }
            }
            ProtoMsg::NotHere { request_id, .. } => {
                if let Some((_, slot)) = self.requests.get_mut(&request_id) {
                    *slot = Some(RequestOutcome::StaleAddress);
                }
            }
        }
    }
}

/// The engine: a simulator full of [`NsNode`]s plus the `P`/`Q` resolver
/// and operation bookkeeping.
#[derive(Debug)]
pub struct ShotgunEngine<PM> {
    sim: Sim<ProtoMsg, NsNode>,
    resolver: PM,
    /// Memoized `P`/`Q` sets: operations reuse shared target sets
    /// instead of cloning fresh `Vec`s out of the resolver.
    interner: TargetInterner,
    next_locate: u64,
    next_request: u64,
    clock: u64,
}

impl<PM: PortMapped> ShotgunEngine<PM> {
    /// Builds an engine over `graph` using `resolver` for `P`/`Q`.
    ///
    /// # Panics
    ///
    /// Panics if the resolver's universe size differs from the graph's.
    pub fn new(graph: Graph, resolver: PM, cost_model: CostModel) -> Self {
        Self::with_queue(graph, resolver, cost_model, QueueKind::Calendar)
    }

    /// Builds an engine with an explicit simulator event-queue
    /// implementation (see [`QueueKind`]); used by the determinism suite
    /// to cross-check the calendar queue against the `BTreeMap` oracle.
    ///
    /// # Panics
    ///
    /// Panics if the resolver's universe size differs from the graph's.
    pub fn with_queue(graph: Graph, resolver: PM, cost_model: CostModel, kind: QueueKind) -> Self {
        Self::with_shards(graph, resolver, cost_model, kind, ShardMode::Single)
    }

    /// Builds an engine on an explicit execution core (see [`ShardMode`]).
    /// `ProtoMsg` and `NsNode` are `Send` (plain data plus `TargetSet`,
    /// whose sharing is an atomically refcounted `Arc`), so protocol state
    /// may migrate to the sharded core's worker threads; output stays
    /// byte-identical to [`ShardMode::Single`] by construction.
    ///
    /// # Panics
    ///
    /// Panics if the resolver's universe size differs from the graph's.
    pub fn with_shards(
        graph: Graph,
        resolver: PM,
        cost_model: CostModel,
        kind: QueueKind,
        mode: ShardMode,
    ) -> Self {
        Self::with_router(graph, resolver, cost_model, kind, mode, RouterKind::Auto)
    }

    /// Builds an engine with an explicit routing backend on top of the
    /// queue and core choices (see [`RouterKind`]). All three axes are
    /// output-invariant; the conformance suite uses this to pit analytic
    /// routers against the table oracle.
    ///
    /// # Panics
    ///
    /// Panics if the resolver's universe size differs from the graph's,
    /// or if `router` is `RouterKind::Analytic` on a non-structured graph.
    pub fn with_router(
        graph: Graph,
        resolver: PM,
        cost_model: CostModel,
        kind: QueueKind,
        mode: ShardMode,
        router: RouterKind,
    ) -> Self {
        assert_eq!(
            graph.node_count(),
            resolver.node_count(),
            "resolver universe must match the graph"
        );
        let n = graph.node_count();
        let nodes = (0..n).map(|_| NsNode::default()).collect();
        ShotgunEngine {
            sim: Sim::with_router(graph, nodes, cost_model, kind, mode, router),
            resolver,
            interner: TargetInterner::default(),
            next_locate: 0,
            next_request: 0,
            clock: 0,
        }
    }

    /// The underlying simulator (for inspection).
    pub fn sim(&self) -> &Sim<ProtoMsg, NsNode> {
        &self.sim
    }

    /// The resolver in use.
    pub fn resolver(&self) -> &PM {
        &self.resolver
    }

    /// Accumulated metrics (message passes etc.).
    pub fn metrics(&self) -> &Metrics {
        self.sim.metrics()
    }

    /// The memoized query set `Q(client, port)` this engine would use for
    /// a locate — exposed so tracing layers can enumerate the fan-out
    /// without duplicating the interner.
    pub fn query_targets(&mut self, client: NodeId, port: Port) -> TargetSet {
        self.interner.query_set(&self.resolver, client, port)
    }

    /// The memoized post set `P(at, port)` this engine would use for a
    /// registration — the tracing-layer counterpart of
    /// [`ShotgunEngine::query_targets`].
    pub fn post_targets(&mut self, at: NodeId, port: Port) -> TargetSet {
        self.interner.post_set(&self.resolver, at, port)
    }

    fn next_stamp(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Registers a server for `port` at node `at` and posts its address at
    /// `P(at, port)`. Returns the posting timestamp.
    pub fn register_server(&mut self, at: NodeId, port: Port) -> u64 {
        let stamp = self.next_stamp();
        self.sim.node_mut(at).served.insert(port);
        let targets = self.interner.post_set(&self.resolver, at, port);
        self.sim.inject(
            at,
            at,
            ProtoMsg::DoPost {
                port,
                addr: at,
                stamp,
                targets,
            },
        );
        stamp
    }

    /// Posts `(port, at)` at an explicit target set (Hash Locate repair
    /// posting to rehash backups). Returns the posting timestamp.
    pub fn post_at(&mut self, at: NodeId, port: Port, targets: Vec<NodeId>) -> u64 {
        let targets = TargetSet::from_vec(targets);
        let stamp = self.next_stamp();
        self.sim.inject(
            at,
            at,
            ProtoMsg::DoPost {
                port,
                addr: at,
                stamp,
                targets,
            },
        );
        stamp
    }

    /// Deregisters the server and withdraws its postings.
    pub fn deregister_server(&mut self, at: NodeId, port: Port) {
        let stamp = self.next_stamp();
        self.sim.node_mut(at).served.remove(&port);
        let targets = self.interner.post_set(&self.resolver, at, port);
        self.sim.inject(
            at,
            at,
            ProtoMsg::DoUnpost {
                port,
                addr: at,
                stamp,
                targets,
            },
        );
    }

    /// Migrates the server for `port` from `from` to `to`: the paper's
    /// mobile-process scenario. The new posting carries a newer stamp, so
    /// caches and clients converge on the new address.
    pub fn migrate_server(&mut self, port: Port, from: NodeId, to: NodeId) -> u64 {
        self.sim.node_mut(from).served.remove(&port);
        self.register_server(to, port)
    }

    /// Issues a locate for `port` from `client`; run the engine, then read
    /// the result with [`ShotgunEngine::outcome`].
    pub fn locate(&mut self, client: NodeId, port: Port) -> LocateHandle {
        let id = self.next_locate;
        self.next_locate += 1;
        let targets = self.interner.query_set(&self.resolver, client, port);
        self.sim.inject(
            client,
            client,
            ProtoMsg::DoLocate {
                port,
                locate_id: id,
                targets,
            },
        );
        LocateHandle { client, id }
    }

    /// Issues a locate querying an explicit target set (used by Hash
    /// Locate's rehash retries).
    pub fn locate_at(&mut self, client: NodeId, port: Port, targets: Vec<NodeId>) -> LocateHandle {
        let targets = TargetSet::from_vec(targets);
        let id = self.next_locate;
        self.next_locate += 1;
        self.sim.inject(
            client,
            client,
            ProtoMsg::DoLocate {
                port,
                locate_id: id,
                targets,
            },
        );
        LocateHandle { client, id }
    }

    /// Sends an application request to a located address (charging the
    /// client→server route). Check the result with
    /// [`ShotgunEngine::request_outcome`] after running.
    pub fn request(&mut self, client: NodeId, addr: NodeId, port: Port, body: u64) -> u64 {
        let id = self.next_request;
        self.next_request += 1;
        let now = self.sim.now();
        self.sim.node_mut(client).requests.insert(id, (now, None));
        self.sim.inject(
            client,
            client,
            ProtoMsg::DoRequest {
                port,
                addr,
                body,
                request_id: id,
            },
        );
        id
    }

    /// Runs the simulation until idle; returns the metrics.
    pub fn run(&mut self) -> &Metrics {
        self.sim.run();
        self.sim.metrics()
    }

    /// Runs the simulation up to (and including) `deadline`, advancing
    /// the clock through idle gaps — the open-loop driver used by
    /// workload generators that interleave injections with simulated
    /// time. Returns the new simulated time.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        self.sim.run_until(deadline)
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// The current state of a locate operation.
    ///
    /// A handle whose issue message was lost — the client crashed in the
    /// same tick it called [`locate`](Self::locate), so the self-delivered
    /// `DoLocate` was dropped before the pending record existed — reports
    /// as permanently [`LocateOutcome::Unresolved`]; the caller's
    /// operation timeout classifies it.
    pub fn outcome(&self, h: LocateHandle) -> LocateOutcome {
        let node = self.sim.node(h.client);
        let Some(p) = node.pending.get(&h.id) else {
            return LocateOutcome::Unresolved {
                hits: 0,
                misses: 0,
                missing: 0,
                best: None,
                dissent: 0,
            };
        };
        match p.completed_at {
            Some(done) => match p.best() {
                Some((addr, stamp)) => {
                    let mut meets: Vec<NodeId> = p.answers.iter().map(|a| a.0).collect();
                    meets.sort_unstable();
                    LocateOutcome::Found {
                        addr,
                        stamp,
                        elapsed: done - p.issued_at,
                        meets,
                        dissent: p.dissent(),
                    }
                }
                None => LocateOutcome::NotFound {
                    elapsed: done - p.issued_at,
                },
            },
            None => LocateOutcome::Unresolved {
                hits: p.answers.len(),
                misses: p.misses,
                missing: p.expected - p.answers.len() - p.misses,
                best: p.best(),
                dissent: p.dissent(),
            },
        }
    }

    /// The outcome of an application request, if the reply arrived.
    pub fn request_outcome(&self, client: NodeId, id: u64) -> Option<RequestOutcome> {
        self.sim
            .node(client)
            .requests
            .get(&id)
            .and_then(|(_, o)| *o)
    }

    /// Crashes a node (it keeps no cache and answers nothing).
    pub fn crash(&mut self, v: NodeId) {
        self.sim.crash(v);
    }

    /// Restores a crashed node (cache intact; real systems would rebuild —
    /// callers can clear it via [`ShotgunEngine::clear_cache`]).
    pub fn restore(&mut self, v: NodeId) {
        self.sim.restore(v);
    }

    /// Empties a node's rendezvous cache (e.g. after restoring a crash to
    /// model lost volatile memory).
    pub fn clear_cache(&mut self, v: NodeId) {
        self.sim.node_mut(v).cache = Cache::new();
    }

    /// Assigns an adversarial behavior profile to a node (see
    /// [`FaultProfile`]). Takes effect for all messages the node handles
    /// from now on; pass [`FaultProfile::Honest`] to heal it.
    pub fn set_fault(&mut self, v: NodeId, profile: FaultProfile) {
        self.sim.node_mut(v).fault = profile;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_core::strategies::{Broadcast, Checkerboard};
    use mm_topo::gen;

    fn port(name: &str) -> Port {
        Port::from_name(name)
    }

    #[test]
    fn locate_finds_posted_server() {
        let g = gen::complete(16);
        let mut eng = ShotgunEngine::new(g, Checkerboard::new(16), CostModel::Uniform);
        let p = port("file");
        eng.register_server(NodeId::new(3), p);
        eng.run();
        let h = eng.locate(NodeId::new(12), p);
        eng.run();
        match eng.outcome(h) {
            LocateOutcome::Found { addr, meets, .. } => {
                assert_eq!(addr, NodeId::new(3));
                assert_eq!(
                    meets.len(),
                    1,
                    "checkerboard row ∩ column meets at exactly one node"
                );
                let q = mm_core::Strategy::query_set(eng.resolver(), NodeId::new(12));
                let p = mm_core::Strategy::post_set(eng.resolver(), NodeId::new(3));
                assert!(q.contains(&meets[0]) && p.contains(&meets[0]));
            }
            other => panic!("expected Found, got {other:?}"),
        }
    }

    #[test]
    fn locate_unknown_port_is_not_found() {
        let g = gen::complete(9);
        let mut eng = ShotgunEngine::new(g, Checkerboard::new(9), CostModel::Uniform);
        let h = eng.locate(NodeId::new(0), port("ghost"));
        eng.run();
        assert!(matches!(eng.outcome(h), LocateOutcome::NotFound { .. }));
    }

    #[test]
    fn message_cost_matches_strategy_prediction() {
        let n = 25;
        let g = gen::complete(n);
        let strat = Checkerboard::new(n);
        let post = mm_core::Strategy::post_count(&strat, NodeId::new(7));
        let query = mm_core::Strategy::query_count(&strat, NodeId::new(19));
        let mut eng = ShotgunEngine::new(g, strat, CostModel::Uniform);
        let p = port("svc");
        eng.register_server(NodeId::new(7), p);
        eng.run();
        let before = eng.metrics().message_passes;
        // posting costs #P passes, minus a free self-delivery if the
        // server's own node is in P
        let self_in_p = mm_core::Strategy::post_set(eng.resolver(), NodeId::new(7))
            .contains(&NodeId::new(7)) as usize;
        assert_eq!(before as usize, post - self_in_p, "posting costs #P passes");
        let h = eng.locate(NodeId::new(19), p);
        eng.run();
        let after = eng.metrics().message_passes;
        // locate costs #Q queries + #Q replies (self queries/replies free)
        let self_in_q = mm_core::Strategy::query_set(eng.resolver(), NodeId::new(19))
            .contains(&NodeId::new(19)) as usize;
        assert_eq!((after - before) as usize, 2 * (query - self_in_q));
        assert!(matches!(eng.outcome(h), LocateOutcome::Found { .. }));
    }

    #[test]
    fn migration_newest_stamp_wins() {
        let g = gen::complete(16);
        let mut eng = ShotgunEngine::new(g, Checkerboard::new(16), CostModel::Uniform);
        let p = port("db");
        eng.register_server(NodeId::new(2), p);
        eng.run();
        eng.migrate_server(p, NodeId::new(2), NodeId::new(13));
        eng.run();
        let h = eng.locate(NodeId::new(5), p);
        eng.run();
        match eng.outcome(h) {
            LocateOutcome::Found { addr, .. } => {
                assert_eq!(addr, NodeId::new(13), "locate must see the new address")
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn crashed_rendezvous_leaves_unresolved_with_broadcast_still_working() {
        let g = gen::complete(9);
        let mut eng = ShotgunEngine::new(g, Broadcast::new(9), CostModel::Uniform);
        let p = port("svc");
        eng.register_server(NodeId::new(4), p);
        eng.run();
        // crash one *non-rendezvous* node: broadcast queries it, gets no answer
        eng.crash(NodeId::new(8));
        let h = eng.locate(NodeId::new(0), p);
        eng.run();
        match eng.outcome(h) {
            LocateOutcome::Unresolved { best, missing, .. } => {
                assert_eq!(best.map(|(a, _)| a), Some(NodeId::new(4)));
                assert_eq!(missing, 1);
            }
            other => panic!("expected unresolved with partial hit, got {other:?}"),
        }
    }

    #[test]
    fn request_reply_roundtrip() {
        let g = gen::complete(8);
        let mut eng = ShotgunEngine::new(g, Checkerboard::new(8), CostModel::Uniform);
        let p = port("adder");
        eng.register_server(NodeId::new(6), p);
        eng.run();
        let id = eng.request(NodeId::new(1), NodeId::new(6), p, 41);
        eng.run();
        assert_eq!(
            eng.request_outcome(NodeId::new(1), id),
            Some(RequestOutcome::Replied {
                body: 42,
                elapsed: 2
            })
        );
    }

    #[test]
    fn stale_address_yields_not_here() {
        let g = gen::complete(8);
        let mut eng = ShotgunEngine::new(g, Checkerboard::new(8), CostModel::Uniform);
        let p = port("svc");
        eng.register_server(NodeId::new(6), p);
        eng.run();
        eng.migrate_server(p, NodeId::new(6), NodeId::new(2));
        eng.run();
        // request the *old* address
        let id = eng.request(NodeId::new(1), NodeId::new(6), p, 0);
        eng.run();
        assert_eq!(
            eng.request_outcome(NodeId::new(1), id),
            Some(RequestOutcome::StaleAddress)
        );
    }

    #[test]
    fn forged_address_wins_stamp_but_is_flagged_by_dissent() {
        let n = 16;
        let mut eng = ShotgunEngine::new(gen::complete(n), Broadcast::new(n), CostModel::Uniform);
        let p = port("svc");
        eng.register_server(NodeId::new(3), p);
        eng.run();
        let liar = NodeId::new(7);
        eng.set_fault(liar, FaultProfile::ForgedAddress);
        let h = eng.locate(NodeId::new(0), p);
        eng.run();
        match eng.outcome(h) {
            LocateOutcome::Found {
                addr,
                stamp,
                dissent,
                ..
            } => {
                assert_eq!(addr, liar, "the forged stamp out-bids honesty");
                assert_eq!(stamp, FORGED_STAMP);
                assert!(dissent >= 1, "the honest hit disagrees: lie is detectable");
            }
            other => panic!("expected a (detectable) forged hit, got {other:?}"),
        }
    }

    #[test]
    fn drop_posts_and_refuse_match_erode_redundancy() {
        // checkerboard rendezvous are singletons: one bad rendezvous node
        // converts a sure hit into a clean miss
        let n = 16;
        let strat = Checkerboard::new(n);
        let server = NodeId::new(3);
        let client = NodeId::new(12);
        let rdv = mm_core::Strategy::rendezvous(&strat, server, client);
        assert_eq!(rdv.len(), 1);
        for fault in [FaultProfile::DropPosts, FaultProfile::RefuseMatch] {
            let mut eng =
                ShotgunEngine::new(gen::complete(n), Checkerboard::new(n), CostModel::Uniform);
            eng.set_fault(rdv[0], fault);
            let p = port("svc");
            eng.register_server(server, p);
            eng.run();
            let h = eng.locate(client, p);
            eng.run();
            assert!(
                matches!(eng.outcome(h), LocateOutcome::NotFound { .. }),
                "{fault:?} at the only rendezvous must sever the pair"
            );
        }
    }

    #[test]
    fn stale_address_fault_pins_the_first_posting() {
        use mm_core::strategies::HashLocate;
        let n = 16;
        let mut eng =
            ShotgunEngine::new(gen::complete(n), HashLocate::new(n, 2), CostModel::Uniform);
        let p = port("svc");
        let replicas = eng.resolver().rendezvous_nodes(p);
        for &r in &replicas {
            eng.set_fault(r, FaultProfile::StaleAddress);
        }
        eng.register_server(NodeId::new(2), p);
        eng.run();
        eng.migrate_server(p, NodeId::new(2), NodeId::new(13));
        eng.run();
        let h = eng.locate(NodeId::new(5), p);
        eng.run();
        match eng.outcome(h) {
            LocateOutcome::Found { addr, dissent, .. } => {
                assert_eq!(
                    addr,
                    NodeId::new(2),
                    "pinned first posting survives the migration"
                );
                assert_eq!(
                    dissent, 0,
                    "unanimous staleness is undetectable by cross-check"
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn hops_model_costs_more_on_sparse_graphs() {
        let n = 16;
        let run = |cost| {
            let g = gen::ring(n);
            let mut eng = ShotgunEngine::new(g, Checkerboard::new(n), cost);
            let p = port("svc");
            eng.register_server(NodeId::new(0), p);
            eng.run();
            let h = eng.locate(NodeId::new(8), p);
            eng.run();
            assert!(eng.outcome(h).is_complete());
            eng.metrics().message_passes
        };
        assert!(
            run(CostModel::Hops) > run(CostModel::Uniform),
            "store-and-forward overhead must show up on a ring"
        );
    }
}
