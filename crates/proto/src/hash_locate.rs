//! Hash Locate operations (paper §5): the efficient-but-fragile port-hash
//! name server, with the paper's two robustness repairs.
//!
//! * replication — `P(π) = Q(π)` maps to `r` nodes;
//! * rehashing — *"when the rendez-vous node for a particular service is
//!   down, rehashing can come up with another network address to act as a
//!   backup rendez-vous node. It then becomes necessary that services
//!   regularly poll their rendez-vous nodes to see if they are still
//!   alive."*
//!
//! [`HashLocateRuntime`] wraps a [`ShotgunEngine`] over
//! [`mm_core::strategies::HashLocate`] and adds `locate_with_rehash` (the
//! client side) and `poll_and_repair` (the server side).

use crate::shotgun::{LocateHandle, LocateOutcome, ShotgunEngine};
use mm_core::strategies::HashLocate;
use mm_core::Port;
use mm_sim::CostModel;
use mm_topo::{Graph, NodeId};

/// Outcome of a rehashing locate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RehashResult {
    /// The final outcome (from the last attempt).
    pub outcome: LocateOutcome,
    /// Attempts used (1 = primary replicas sufficed).
    pub attempts: u32,
}

/// Engine + hash-specific recovery logic.
#[derive(Debug)]
pub struct HashLocateRuntime {
    engine: ShotgunEngine<HashLocate>,
    hasher: HashLocate,
    /// Registered servers: (port, home node), needed for repair posting.
    servers: Vec<(Port, NodeId)>,
}

impl HashLocateRuntime {
    /// Builds the runtime over `graph` with the given replication factor.
    ///
    /// # Panics
    ///
    /// Panics if `replication` is not in `1..=n`.
    pub fn new(graph: Graph, replication: usize, cost_model: CostModel) -> Self {
        let n = graph.node_count();
        let hasher = HashLocate::new(n, replication);
        HashLocateRuntime {
            engine: ShotgunEngine::new(graph, hasher, cost_model),
            hasher,
            servers: Vec::new(),
        }
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &ShotgunEngine<HashLocate> {
        &self.engine
    }

    /// Mutable access to the wrapped engine (crash injection etc.).
    pub fn engine_mut(&mut self) -> &mut ShotgunEngine<HashLocate> {
        &mut self.engine
    }

    /// Registers a server; posts to the port's hash nodes.
    pub fn register_server(&mut self, at: NodeId, port: Port) {
        self.servers.push((port, at));
        self.engine.register_server(at, port);
        self.engine.run();
    }

    /// Client locate with up to `max_attempts − 1` rehashes: if the
    /// primary replicas yield no complete answer (crashed rendezvous), the
    /// client queries backup nodes produced by rehashing.
    ///
    /// For a backup to answer, the server must have repaired its postings
    /// (see [`HashLocateRuntime::poll_and_repair`]) — exactly the paper's
    /// polling requirement.
    pub fn locate_with_rehash(
        &mut self,
        client: NodeId,
        port: Port,
        max_attempts: u32,
    ) -> RehashResult {
        let mut excluded: Vec<NodeId> = Vec::new();
        let mut last: Option<LocateOutcome> = None;
        for attempt in 0..max_attempts {
            let handle: LocateHandle = if attempt == 0 {
                self.engine.locate(client, port)
            } else {
                match self.hasher.rehash(port, attempt - 1, &excluded) {
                    Some(backup) => self.engine.locate_at(client, port, vec![backup]),
                    None => break,
                }
            };
            self.engine.run();
            let outcome = self.engine.outcome(handle);
            match &outcome {
                LocateOutcome::Found { .. } => {
                    return RehashResult {
                        outcome,
                        attempts: attempt + 1,
                    }
                }
                LocateOutcome::NotFound { .. } | LocateOutcome::Unresolved { .. } => {
                    // remember dead/unhelpful rendezvous nodes and rehash
                    if attempt == 0 {
                        excluded.extend(self.hasher.rendezvous_nodes(port));
                    }
                    last = Some(outcome);
                }
            }
        }
        RehashResult {
            outcome: last.unwrap_or(LocateOutcome::NotFound { elapsed: 0 }),
            attempts: max_attempts,
        }
    }

    /// Server-side polling: each registered server checks its rendezvous
    /// nodes; for any crashed one it posts its address at the rehash
    /// backup. Returns the number of repairs performed.
    pub fn poll_and_repair(&mut self) -> usize {
        let mut repairs = 0usize;
        let servers = self.servers.clone();
        for (port, home) in servers {
            let primaries = self.hasher.rendezvous_nodes(port);
            let dead: Vec<NodeId> = primaries
                .iter()
                .copied()
                .filter(|&v| self.engine.sim().is_crashed(v))
                .collect();
            if dead.is_empty() {
                continue;
            }
            let mut exclude = primaries.clone();
            for attempt in 0..dead.len() as u32 {
                if let Some(backup) = self.hasher.rehash(port, attempt, &exclude) {
                    if !self.engine.sim().is_crashed(backup) {
                        // post directly at the backup node
                        let handle_targets = vec![backup];
                        let stamp_source = self.engine.register_server(home, port);
                        let _ = stamp_source;
                        // register_server posts at the primaries again; the
                        // backup needs an explicit post
                        self.engine.post_at(home, port, handle_targets);
                        repairs += 1;
                    }
                    exclude.push(backup);
                }
            }
        }
        self.engine.run();
        repairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_topo::gen;

    fn port(name: &str) -> Port {
        Port::from_name(name)
    }

    #[test]
    fn hash_locate_costs_constant_messages() {
        let n = 128;
        let mut rt = HashLocateRuntime::new(gen::complete(n), 1, CostModel::Uniform);
        let p = port("printer");
        rt.register_server(NodeId::new(3), p);
        let before = rt.engine().metrics().message_passes;
        let res = rt.locate_with_rehash(NodeId::new(100), p, 1);
        assert!(matches!(res.outcome, LocateOutcome::Found { .. }));
        let cost = rt.engine().metrics().message_passes - before;
        assert_eq!(cost, 2, "one query + one hit, independent of n");
    }

    #[test]
    fn all_replicas_crashed_takes_out_the_service() {
        let n = 32;
        let mut rt = HashLocateRuntime::new(gen::complete(n), 2, CostModel::Uniform);
        let p = port("db");
        rt.register_server(NodeId::new(0), p);
        for v in rt.hasher.rendezvous_nodes(p) {
            rt.engine_mut().crash(v);
        }
        let res = rt.locate_with_rehash(NodeId::new(9), p, 1);
        assert!(
            !matches!(res.outcome, LocateOutcome::Found { .. }),
            "the paper's fragility: service gone"
        );
    }

    #[test]
    fn rehash_with_repair_recovers_service() {
        let n = 32;
        let mut rt = HashLocateRuntime::new(gen::complete(n), 1, CostModel::Uniform);
        let p = port("db");
        rt.register_server(NodeId::new(0), p);
        // crash the only rendezvous node
        let primary = rt.hasher.rendezvous_nodes(p)[0];
        rt.engine_mut().crash(primary);
        // without repair: locate fails even with rehash (backup is empty)
        let res = rt.locate_with_rehash(NodeId::new(9), p, 3);
        assert!(!matches!(res.outcome, LocateOutcome::Found { .. }));
        // server polls, notices, posts at the backup
        let repairs = rt.poll_and_repair();
        assert!(repairs >= 1);
        // now the rehashing client succeeds
        let res = rt.locate_with_rehash(NodeId::new(9), p, 3);
        assert!(
            matches!(res.outcome, LocateOutcome::Found { addr, .. } if addr == NodeId::new(0)),
            "recovered: {res:?}"
        );
        assert!(res.attempts >= 2, "needed at least one rehash");
    }

    #[test]
    fn replication_tolerates_partial_crashes_without_rehash() {
        let n = 64;
        let mut rt = HashLocateRuntime::new(gen::complete(n), 3, CostModel::Uniform);
        let p = port("svc");
        rt.register_server(NodeId::new(5), p);
        let replicas = rt.hasher.rendezvous_nodes(p);
        rt.engine_mut().crash(replicas[0]);
        let res = rt.locate_with_rehash(NodeId::new(20), p, 1);
        // outcome is Unresolved (one replica silent) but the best answer
        // is correct — or Found if the crashed one was queried last; both
        // must carry the right address
        let addr = match res.outcome {
            LocateOutcome::Found { addr, .. } => Some(addr),
            LocateOutcome::Unresolved { best, .. } => best.map(|(a, _)| a),
            _ => None,
        };
        assert_eq!(addr, Some(NodeId::new(5)));
    }
}
