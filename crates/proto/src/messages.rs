//! The match-making wire protocol.
//!
//! Messages carry a logical timestamp (`stamp`) so rendezvous caches can
//! resolve conflicts — *"we can timestamp the messages to determine which
//! addresses are out of date in case of a conflict"* (§2.1). The binary
//! encoding exists so message sizes are honest (the paper counts message
//! *passes*, but a real Amoeba-style system also cares that posts fit in a
//! small datagram).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use mm_core::Port;
use mm_sim::TargetSet;
use mm_topo::NodeId;

/// All messages exchanged by the name-server protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoMsg {
    /// Driver command: post `(port, addr)` at each node in `targets`
    /// (the server's `P(i)` — or Hash Locate's `P(π)`).
    DoPost {
        /// The service port being advertised.
        port: Port,
        /// The server's current address.
        addr: NodeId,
        /// Logical timestamp for staleness resolution.
        stamp: u64,
        /// The posting set (interned: clones are refcount bumps).
        targets: TargetSet,
    },
    /// Driver command: remove `(port, addr)` from `targets` (graceful
    /// shutdown or migration).
    DoUnpost {
        /// The service port.
        port: Port,
        /// The address being withdrawn.
        addr: NodeId,
        /// Timestamp; only entries at least this old are withdrawn.
        stamp: u64,
        /// The set posted to previously (interned).
        targets: TargetSet,
    },
    /// Driver command: query each node in `targets` (the client's `Q(j)`)
    /// for `port`.
    DoLocate {
        /// The wanted service port.
        port: Port,
        /// Locate-operation id (unique per engine).
        locate_id: u64,
        /// The query set (interned).
        targets: TargetSet,
    },
    /// Driver command: send an application request from this node to a
    /// located server address (charging the route's message passes).
    DoRequest {
        /// Destination service.
        port: Port,
        /// The located server address.
        addr: NodeId,
        /// Opaque request body.
        body: u64,
        /// Correlation id.
        request_id: u64,
    },
    /// A server's advertisement, cached by rendezvous nodes.
    Post {
        /// Advertised port.
        port: Port,
        /// Advertised address.
        addr: NodeId,
        /// Advertisement timestamp.
        stamp: u64,
    },
    /// Withdrawal of an advertisement.
    Unpost {
        /// Withdrawn port.
        port: Port,
        /// Withdrawn address.
        addr: NodeId,
        /// Withdrawal timestamp.
        stamp: u64,
    },
    /// A client's question to a would-be rendezvous node.
    Query {
        /// Wanted port.
        port: Port,
        /// Node to answer to.
        reply_to: NodeId,
        /// Locate-operation id echoed in the answer.
        locate_id: u64,
    },
    /// Rendezvous answer: the port is known to be at `addr`.
    Hit {
        /// The port asked about.
        port: Port,
        /// Cached server address.
        addr: NodeId,
        /// Cache entry timestamp (newer wins at the client).
        stamp: u64,
        /// Echoed locate id.
        locate_id: u64,
        /// The rendezvous node that answered — lets clients (and the
        /// trace layer) observe the realized `P ∩ Q` intersection.
        at: NodeId,
    },
    /// Rendezvous answer: nothing cached for the port.
    Miss {
        /// The port asked about.
        port: Port,
        /// Echoed locate id.
        locate_id: u64,
    },
    /// Application request to a (located) server address.
    Request {
        /// Destination service.
        port: Port,
        /// Node to send the reply to.
        reply_to: NodeId,
        /// Opaque request body.
        body: u64,
        /// Client-chosen correlation id.
        request_id: u64,
    },
    /// Server's answer to a [`ProtoMsg::Request`].
    Reply {
        /// The service that answered.
        port: Port,
        /// Opaque response body.
        body: u64,
        /// Echoed correlation id.
        request_id: u64,
    },
    /// "No such server here" — the cached address was stale.
    NotHere {
        /// The port that is not served at the answering node.
        port: Port,
        /// Echoed correlation id.
        request_id: u64,
    },
}

impl ProtoMsg {
    fn tag(&self) -> u8 {
        match self {
            ProtoMsg::DoPost { .. } => 0,
            ProtoMsg::DoUnpost { .. } => 1,
            ProtoMsg::DoLocate { .. } => 2,
            ProtoMsg::DoRequest { .. } => 11,
            ProtoMsg::Post { .. } => 3,
            ProtoMsg::Unpost { .. } => 4,
            ProtoMsg::Query { .. } => 5,
            ProtoMsg::Hit { .. } => 6,
            ProtoMsg::Miss { .. } => 7,
            ProtoMsg::Request { .. } => 8,
            ProtoMsg::Reply { .. } => 9,
            ProtoMsg::NotHere { .. } => 10,
        }
    }

    /// Encodes the message into a compact binary frame.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(64);
        b.put_u8(self.tag());
        match self {
            ProtoMsg::DoPost {
                port,
                addr,
                stamp,
                targets,
            }
            | ProtoMsg::DoUnpost {
                port,
                addr,
                stamp,
                targets,
            } => {
                b.put_u128(port.raw());
                b.put_u32(addr.raw());
                b.put_u64(*stamp);
                b.put_u32(targets.len() as u32);
                for t in targets.iter() {
                    b.put_u32(t.raw());
                }
            }
            ProtoMsg::DoLocate {
                port,
                locate_id,
                targets,
            } => {
                b.put_u128(port.raw());
                b.put_u64(*locate_id);
                b.put_u32(targets.len() as u32);
                for t in targets.iter() {
                    b.put_u32(t.raw());
                }
            }
            ProtoMsg::Post { port, addr, stamp } | ProtoMsg::Unpost { port, addr, stamp } => {
                b.put_u128(port.raw());
                b.put_u32(addr.raw());
                b.put_u64(*stamp);
            }
            ProtoMsg::Query {
                port,
                reply_to,
                locate_id,
            } => {
                b.put_u128(port.raw());
                b.put_u32(reply_to.raw());
                b.put_u64(*locate_id);
            }
            ProtoMsg::Hit {
                port,
                addr,
                stamp,
                locate_id,
                at,
            } => {
                b.put_u128(port.raw());
                b.put_u32(addr.raw());
                b.put_u64(*stamp);
                b.put_u64(*locate_id);
                b.put_u32(at.raw());
            }
            ProtoMsg::Miss { port, locate_id } => {
                b.put_u128(port.raw());
                b.put_u64(*locate_id);
            }
            ProtoMsg::Request {
                port,
                reply_to,
                body,
                request_id,
            } => {
                b.put_u128(port.raw());
                b.put_u32(reply_to.raw());
                b.put_u64(*body);
                b.put_u64(*request_id);
            }
            ProtoMsg::Reply {
                port,
                body,
                request_id,
            } => {
                b.put_u128(port.raw());
                b.put_u64(*body);
                b.put_u64(*request_id);
            }
            ProtoMsg::NotHere { port, request_id } => {
                b.put_u128(port.raw());
                b.put_u64(*request_id);
            }
            ProtoMsg::DoRequest {
                port,
                addr,
                body,
                request_id,
            } => {
                b.put_u128(port.raw());
                b.put_u32(addr.raw());
                b.put_u64(*body);
                b.put_u64(*request_id);
            }
        }
        b.freeze()
    }

    /// Decodes a frame produced by [`ProtoMsg::encode`].
    ///
    /// Returns `None` on truncated or unknown frames.
    pub fn decode(mut buf: Bytes) -> Option<Self> {
        if buf.remaining() < 1 {
            return None;
        }
        let tag = buf.get_u8();
        let need = |buf: &Bytes, n: usize| buf.remaining() >= n;
        match tag {
            0 | 1 => {
                if !need(&buf, 16 + 4 + 8 + 4) {
                    return None;
                }
                let port = Port::new(buf.get_u128());
                let addr = NodeId::new(buf.get_u32());
                let stamp = buf.get_u64();
                let len = buf.get_u32() as usize;
                if !need(&buf, len * 4) {
                    return None;
                }
                let targets =
                    TargetSet::from_vec((0..len).map(|_| NodeId::new(buf.get_u32())).collect());
                Some(if tag == 0 {
                    ProtoMsg::DoPost {
                        port,
                        addr,
                        stamp,
                        targets,
                    }
                } else {
                    ProtoMsg::DoUnpost {
                        port,
                        addr,
                        stamp,
                        targets,
                    }
                })
            }
            2 => {
                if !need(&buf, 16 + 8 + 4) {
                    return None;
                }
                let port = Port::new(buf.get_u128());
                let locate_id = buf.get_u64();
                let len = buf.get_u32() as usize;
                if !need(&buf, len * 4) {
                    return None;
                }
                let targets =
                    TargetSet::from_vec((0..len).map(|_| NodeId::new(buf.get_u32())).collect());
                Some(ProtoMsg::DoLocate {
                    port,
                    locate_id,
                    targets,
                })
            }
            3 | 4 => {
                if !need(&buf, 16 + 4 + 8) {
                    return None;
                }
                let port = Port::new(buf.get_u128());
                let addr = NodeId::new(buf.get_u32());
                let stamp = buf.get_u64();
                Some(if tag == 3 {
                    ProtoMsg::Post { port, addr, stamp }
                } else {
                    ProtoMsg::Unpost { port, addr, stamp }
                })
            }
            5 => {
                if !need(&buf, 16 + 4 + 8) {
                    return None;
                }
                Some(ProtoMsg::Query {
                    port: Port::new(buf.get_u128()),
                    reply_to: NodeId::new(buf.get_u32()),
                    locate_id: buf.get_u64(),
                })
            }
            6 => {
                if !need(&buf, 16 + 4 + 8 + 8 + 4) {
                    return None;
                }
                Some(ProtoMsg::Hit {
                    port: Port::new(buf.get_u128()),
                    addr: NodeId::new(buf.get_u32()),
                    stamp: buf.get_u64(),
                    locate_id: buf.get_u64(),
                    at: NodeId::new(buf.get_u32()),
                })
            }
            7 => {
                if !need(&buf, 16 + 8) {
                    return None;
                }
                Some(ProtoMsg::Miss {
                    port: Port::new(buf.get_u128()),
                    locate_id: buf.get_u64(),
                })
            }
            8 => {
                if !need(&buf, 16 + 4 + 8 + 8) {
                    return None;
                }
                Some(ProtoMsg::Request {
                    port: Port::new(buf.get_u128()),
                    reply_to: NodeId::new(buf.get_u32()),
                    body: buf.get_u64(),
                    request_id: buf.get_u64(),
                })
            }
            9 => {
                if !need(&buf, 16 + 8 + 8) {
                    return None;
                }
                Some(ProtoMsg::Reply {
                    port: Port::new(buf.get_u128()),
                    body: buf.get_u64(),
                    request_id: buf.get_u64(),
                })
            }
            10 => {
                if !need(&buf, 16 + 8) {
                    return None;
                }
                Some(ProtoMsg::NotHere {
                    port: Port::new(buf.get_u128()),
                    request_id: buf.get_u64(),
                })
            }
            11 => {
                if !need(&buf, 16 + 4 + 8 + 8) {
                    return None;
                }
                Some(ProtoMsg::DoRequest {
                    port: Port::new(buf.get_u128()),
                    addr: NodeId::new(buf.get_u32()),
                    body: buf.get_u64(),
                    request_id: buf.get_u64(),
                })
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(m: ProtoMsg) {
        let enc = m.encode();
        let dec = ProtoMsg::decode(enc).expect("decodes");
        assert_eq!(m, dec);
    }

    #[test]
    fn encode_decode_all_variants() {
        let port = Port::from_name("svc");
        roundtrip(ProtoMsg::DoPost {
            port,
            addr: NodeId::new(3),
            stamp: 7,
            targets: TargetSet::new(&[NodeId::new(1), NodeId::new(2)]),
        });
        roundtrip(ProtoMsg::DoUnpost {
            port,
            addr: NodeId::new(3),
            stamp: 7,
            targets: TargetSet::empty(),
        });
        roundtrip(ProtoMsg::DoLocate {
            port,
            locate_id: 42,
            targets: TargetSet::new(&[NodeId::new(9)]),
        });
        roundtrip(ProtoMsg::Post {
            port,
            addr: NodeId::new(5),
            stamp: 1,
        });
        roundtrip(ProtoMsg::Unpost {
            port,
            addr: NodeId::new(5),
            stamp: 2,
        });
        roundtrip(ProtoMsg::Query {
            port,
            reply_to: NodeId::new(0),
            locate_id: 8,
        });
        roundtrip(ProtoMsg::Hit {
            port,
            addr: NodeId::new(2),
            stamp: 3,
            locate_id: 8,
            at: NodeId::new(6),
        });
        roundtrip(ProtoMsg::Miss { port, locate_id: 8 });
        roundtrip(ProtoMsg::Request {
            port,
            reply_to: NodeId::new(1),
            body: 1234,
            request_id: 5,
        });
        roundtrip(ProtoMsg::Reply {
            port,
            body: 4321,
            request_id: 5,
        });
        roundtrip(ProtoMsg::NotHere {
            port,
            request_id: 5,
        });
        roundtrip(ProtoMsg::DoRequest {
            port,
            addr: NodeId::new(4),
            body: 9,
            request_id: 6,
        });
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(ProtoMsg::decode(Bytes::new()), None);
        assert_eq!(ProtoMsg::decode(Bytes::from_static(&[99])), None);
        assert_eq!(ProtoMsg::decode(Bytes::from_static(&[3, 1, 2])), None);
    }

    #[test]
    fn posts_fit_in_a_small_datagram() {
        let m = ProtoMsg::Post {
            port: Port::from_name("file server"),
            addr: NodeId::new(77),
            stamp: u64::MAX,
        };
        assert!(m.encode().len() <= 32, "post frame stays tiny");
    }
}
