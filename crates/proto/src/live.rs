//! A live, threaded runtime for the locate protocol.
//!
//! Every node is an OS thread with a crossbeam channel mailbox; messages
//! between distinct nodes count as one message pass each (the paper's
//! complete-network model). This exists to demonstrate that the protocol
//! logic carries over unchanged from the deterministic simulator to real
//! concurrency — the integration suite cross-checks the two runtimes
//! against each other (same strategy, same placement, same answer, same
//! message count).

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use mm_core::Port;
use mm_topo::NodeId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Messages of the live protocol (a trimmed [`crate::ProtoMsg`]).
#[derive(Debug, Clone)]
enum LiveMsg {
    Post {
        port: Port,
        addr: NodeId,
        stamp: u64,
    },
    Query {
        port: Port,
        reply_to: usize,
        locate_id: u64,
    },
    Hit {
        addr: NodeId,
        stamp: u64,
        locate_id: u64,
    },
    Miss {
        locate_id: u64,
    },
    DoPost {
        port: Port,
        addr: NodeId,
        stamp: u64,
        targets: Vec<NodeId>,
    },
    DoLocate {
        port: Port,
        locate_id: u64,
        targets: Vec<NodeId>,
        done: Sender<Option<(NodeId, u64)>>,
    },
    Shutdown,
}

struct NodeThread {
    me: usize,
    rx: Receiver<LiveMsg>,
    peers: Vec<Sender<LiveMsg>>,
    passes: Arc<AtomicU64>,
    cache: HashMap<Port, (NodeId, u64)>,
    pending: HashMap<u64, PendingLive>,
}

struct PendingLive {
    expected: usize,
    hits: usize,
    misses: usize,
    best: Option<(NodeId, u64)>,
    done: Sender<Option<(NodeId, u64)>>,
}

impl NodeThread {
    fn send(&self, to: usize, msg: LiveMsg) {
        if to != self.me {
            self.passes.fetch_add(1, Ordering::Relaxed);
        }
        // a dropped peer just loses the message, like a crashed node
        let _ = self.peers[to].send(msg);
    }

    fn run(mut self) {
        while let Ok(msg) = self.rx.recv() {
            match msg {
                LiveMsg::Shutdown => break,
                LiveMsg::DoPost {
                    port,
                    addr,
                    stamp,
                    targets,
                } => {
                    for t in targets {
                        self.send(t.index(), LiveMsg::Post { port, addr, stamp });
                    }
                }
                LiveMsg::DoLocate {
                    port,
                    locate_id,
                    targets,
                    done,
                } => {
                    self.pending.insert(
                        locate_id,
                        PendingLive {
                            expected: targets.len(),
                            hits: 0,
                            misses: 0,
                            best: None,
                            done,
                        },
                    );
                    if targets.is_empty() {
                        if let Some(p) = self.pending.remove(&locate_id) {
                            let _ = p.done.send(None);
                        }
                        continue;
                    }
                    for t in targets {
                        self.send(
                            t.index(),
                            LiveMsg::Query {
                                port,
                                reply_to: self.me,
                                locate_id,
                            },
                        );
                    }
                }
                LiveMsg::Post { port, addr, stamp } => {
                    let e = self.cache.entry(port).or_insert((addr, 0));
                    if stamp > e.1 {
                        *e = (addr, stamp);
                    }
                }
                LiveMsg::Query {
                    port,
                    reply_to,
                    locate_id,
                } => match self.cache.get(&port) {
                    Some(&(addr, stamp)) => self.send(
                        reply_to,
                        LiveMsg::Hit {
                            addr,
                            stamp,
                            locate_id,
                        },
                    ),
                    None => self.send(reply_to, LiveMsg::Miss { locate_id }),
                },
                LiveMsg::Hit {
                    addr,
                    stamp,
                    locate_id,
                } => {
                    if let Some(p) = self.pending.get_mut(&locate_id) {
                        p.hits += 1;
                        if p.best.is_none() || stamp > p.best.unwrap().1 {
                            p.best = Some((addr, stamp));
                        }
                        Self::maybe_finish(&mut self.pending, locate_id);
                    }
                }
                LiveMsg::Miss { locate_id } => {
                    if let Some(p) = self.pending.get_mut(&locate_id) {
                        p.misses += 1;
                        Self::maybe_finish(&mut self.pending, locate_id);
                    }
                }
            }
        }
    }

    fn maybe_finish(pending: &mut HashMap<u64, PendingLive>, id: u64) {
        let finished = pending
            .get(&id)
            .is_some_and(|p| p.hits + p.misses == p.expected);
        if finished {
            let p = pending.remove(&id).expect("just observed");
            let _ = p.done.send(p.best);
        }
    }
}

/// A live network of `n` node threads exchanging locate traffic.
pub struct LiveNet {
    senders: Vec<Sender<LiveMsg>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    passes: Arc<AtomicU64>,
    clock: AtomicU64,
    next_locate: AtomicU64,
}

impl LiveNet {
    /// Spawns `n` node threads.
    pub fn new(n: usize) -> Self {
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let passes = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::with_capacity(n);
        for (me, rx) in receivers.into_iter().enumerate() {
            let node = NodeThread {
                me,
                rx,
                peers: senders.clone(),
                passes: Arc::clone(&passes),
                cache: HashMap::new(),
                pending: HashMap::new(),
            };
            handles.push(std::thread::spawn(move || node.run()));
        }
        LiveNet {
            senders,
            handles: Mutex::new(handles),
            passes,
            clock: AtomicU64::new(0),
            next_locate: AtomicU64::new(0),
        }
    }

    /// Total inter-node messages so far.
    pub fn message_passes(&self) -> u64 {
        self.passes.load(Ordering::Relaxed)
    }

    /// Posts `(port, at)` at `targets` and waits until the posts are
    /// observable (the targets' mailboxes have processed them).
    pub fn register_server(&self, at: NodeId, port: Port, targets: Vec<NodeId>) {
        let stamp = self.clock.fetch_add(1, Ordering::SeqCst) + 1;
        let _ = self.senders[at.index()].send(LiveMsg::DoPost {
            port,
            addr: at,
            stamp,
            targets: targets.clone(),
        });
        // barrier: a no-op locate at each target forces mailbox drains in
        // FIFO order, making the registration visible before we return
        for t in targets {
            let _ = self.locate_raw(t, Port::new(u128::MAX), vec![t]);
        }
    }

    /// Locates `port` from `client` by querying `targets`; blocks up to
    /// two seconds for the answers.
    pub fn locate(&self, client: NodeId, port: Port, targets: Vec<NodeId>) -> Option<NodeId> {
        self.locate_raw(client, port, targets).map(|(a, _)| a)
    }

    fn locate_raw(
        &self,
        client: NodeId,
        port: Port,
        targets: Vec<NodeId>,
    ) -> Option<(NodeId, u64)> {
        let id = self.next_locate.fetch_add(1, Ordering::SeqCst);
        let (done_tx, done_rx) = bounded(1);
        let _ = self.senders[client.index()].send(LiveMsg::DoLocate {
            port,
            locate_id: id,
            targets,
            done: done_tx,
        });
        done_rx.recv_timeout(Duration::from_secs(2)).ok().flatten()
    }

    /// Shuts all node threads down and joins them.
    pub fn shutdown(&self) {
        for s in &self.senders {
            let _ = s.send(LiveMsg::Shutdown);
        }
        let mut handles = self.handles.lock();
        for h in handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for LiveNet {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_core::strategies::Checkerboard;
    use mm_core::Strategy;

    #[test]
    fn live_locate_finds_server() {
        let n = 16;
        let strat = Checkerboard::new(n);
        let net = LiveNet::new(n);
        let port = Port::from_name("file");
        let server = NodeId::new(3);
        net.register_server(server, port, strat.post_set(server));
        let client = NodeId::new(12);
        let found = net.locate(client, port, strat.query_set(client));
        assert_eq!(found, Some(server));
        net.shutdown();
    }

    #[test]
    fn live_locate_unknown_port_is_none() {
        let n = 9;
        let strat = Checkerboard::new(n);
        let net = LiveNet::new(n);
        let found = net.locate(
            NodeId::new(0),
            Port::from_name("ghost"),
            strat.query_set(NodeId::new(0)),
        );
        assert_eq!(found, None);
    }

    #[test]
    fn live_newest_stamp_wins_after_remigration() {
        let n = 25;
        let strat = Checkerboard::new(n);
        let net = LiveNet::new(n);
        let port = Port::from_name("db");
        net.register_server(NodeId::new(2), port, strat.post_set(NodeId::new(2)));
        net.register_server(NodeId::new(17), port, strat.post_set(NodeId::new(17)));
        let found = net.locate(NodeId::new(20), port, strat.query_set(NodeId::new(20)));
        assert_eq!(found, Some(NodeId::new(17)), "later registration wins");
    }

    #[test]
    fn live_message_count_matches_model() {
        // #P posts + #Q queries + #Q replies (barrier locates add 0 passes
        // because they query the node itself)
        let n = 16;
        let strat = Checkerboard::new(n);
        let net = LiveNet::new(n);
        let port = Port::from_name("svc");
        let server = NodeId::new(5);
        net.register_server(server, port, strat.post_set(server));
        let before = net.message_passes();
        let client = NodeId::new(9);
        let _ = net.locate(client, port, strat.query_set(client));
        let after = net.message_passes();
        let q = strat.query_count(client) as u64;
        // queries to self are free, replies from self too
        let self_in_q = strat.query_set(client).contains(&client) as u64;
        assert_eq!(after - before, 2 * (q - self_in_q));
    }
}
