//! A live, threaded runtime for the match-making protocols.
//!
//! Every node is an OS thread with a channel mailbox; messages between
//! distinct nodes count as one message pass each (the paper's
//! complete-network model, [`mm_sim::CostModel::Uniform`]). The protocol
//! logic — posting, querying, timestamped caches, application
//! request/reply — is the same as the simulator's [`crate::shotgun`]
//! engine, re-hosted on real concurrency: the paper's m(P,Q) ≥ 1
//! rendezvous invariant is a property of the post/query sets, not of the
//! scheduler, and the conformance suite (`tests/live_workload_equivalence`)
//! differential-tests the two runtimes against each other under full
//! workload load.
//!
//! # Accounting parity
//!
//! [`LiveNet`] mirrors the simulator's [`Metrics`] semantics exactly so
//! that reports from both runtimes are comparable field by field:
//!
//! * a point-to-point send counts one `send`, plus one `message_pass`
//!   when source ≠ destination (self-messages are free);
//! * a multicast counts one `send` + one pass per *remote* member — a
//!   sender that is a member of its own target set delivers locally for
//!   free;
//! * driver commands ([`LiveMsg::DoPost`] & friends) model the
//!   simulator's free `inject` — no pass, but the delivery at the
//!   executing node counts toward `delivered`/`node_load`/events;
//! * a message arriving at a crashed node counts `dropped` (the passes
//!   spent getting there stay spent), exactly like [`mm_sim::Sim`];
//! * control-plane traffic (crash/restore/barriers/shutdown) is the live
//!   analogue of the simulator's external state changes and is never
//!   counted.
//!
//! # Determinism under churn
//!
//! Real threads cannot replay the simulator's tick ordering, so the
//! driver API is *synchronous*: each operation returns only when its
//! outcome is decided. For operations whose target set intersects the
//! crashed set the outcome "unresolved" is forced deterministically — the
//! driver quiesces the in-flight fan-out with mailbox barriers (FIFO
//! channels make a barrier ack prove everything enqueued earlier was
//! processed) and then tells the client to give up, playing the role of
//! the simulator's client timeout without wall-clock flakiness.

use crate::cache::Cache;
use crate::fault::{FaultProfile, FORGED_STAMP};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use mm_core::Port;
use mm_sim::{Metrics, TargetSet};
use mm_topo::NodeId;
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a blocking driver call waits before declaring the runtime
/// wedged. Every wait in the lock-step protocol is guaranteed to finish
/// (live nodes always answer, dead ones are never waited on), so this
/// bound only trips on a genuine deadlock bug — and then we want a loud
/// panic, not a silent divergence from the simulator.
const WEDGE_TIMEOUT: Duration = Duration::from_secs(60);

/// While blocked on an operation that looked all-live at issue time, the
/// driver periodically re-checks the crash set: a *concurrent* crash (from
/// another driver thread) can silence a target after the check, and the
/// operation must then be force-classified instead of waiting forever.
const RACE_RECHECK: Duration = Duration::from_millis(50);

/// The verdict of one live locate — mirrors [`crate::LocateOutcome`]
/// without the simulated-time fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LiveLocateOutcome {
    /// Every queried node answered and at least one had the port cached.
    Found {
        /// The located server address (newest stamp wins).
        addr: NodeId,
        /// The winning advertisement's timestamp.
        stamp: u64,
        /// The rendezvous nodes that answered with a hit, sorted — the
        /// realized match-making intersection, mirroring
        /// [`crate::LocateOutcome::Found`]'s `meets`.
        meets: Vec<NodeId>,
        /// Hit answers whose address disagreed with the winner — the
        /// client's lie-detection signal, mirroring
        /// [`crate::LocateOutcome::Found`]'s `dissent`.
        dissent: usize,
    },
    /// Every queried node answered and none knew the port.
    NotFound,
    /// Some queried nodes never answered (crashed rendezvous).
    Unresolved {
        /// Hits received before the driver gave up.
        hits: usize,
        /// Misses received before the driver gave up.
        misses: usize,
        /// Queries that never got an answer.
        missing: usize,
        /// Best address seen so far, if any hit arrived.
        best: Option<(NodeId, u64)>,
        /// Hit answers received so far that disagree with `best` — lets a
        /// client that salvages a partial answer at timeout still run its
        /// lie detection.
        dissent: usize,
    },
}

impl LiveLocateOutcome {
    /// Convenience: the located address if the outcome is `Found`.
    pub fn addr(&self) -> Option<NodeId> {
        match self {
            LiveLocateOutcome::Found { addr, .. } => Some(*addr),
            _ => None,
        }
    }
}

/// The outcome of a live application request — mirrors
/// [`crate::shotgun::RequestOutcome`]; `None` from
/// [`LiveNet::request`] means the server never answered (crashed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LiveRequestOutcome {
    /// The server answered.
    Replied {
        /// Response body.
        body: u64,
    },
    /// The addressed node does not serve the port (stale cache).
    StaleAddress,
}

/// Messages of the live protocol — the threaded analogue of
/// [`crate::ProtoMsg`] plus the control plane.
#[derive(Debug, Clone)]
enum LiveMsg {
    // --- protocol messages (counted like simulator traffic) ---
    Post {
        port: Port,
        addr: NodeId,
        stamp: u64,
    },
    Unpost {
        port: Port,
        stamp: u64,
    },
    Query {
        port: Port,
        reply_to: usize,
        locate_id: u64,
    },
    Hit {
        addr: NodeId,
        stamp: u64,
        locate_id: u64,
        /// The answering rendezvous node (for `meets` reconstruction).
        at: usize,
    },
    Miss {
        locate_id: u64,
    },
    Request {
        port: Port,
        reply_to: usize,
        body: u64,
        request_id: u64,
    },
    Reply {
        body: u64,
        request_id: u64,
    },
    NotHere {
        request_id: u64,
    },
    // --- driver commands (free injections, like `Sim::inject`) ---
    DoPost {
        port: Port,
        addr: NodeId,
        stamp: u64,
        targets: TargetSet,
        done: Sender<()>,
    },
    DoUnpost {
        port: Port,
        stamp: u64,
        targets: TargetSet,
        done: Sender<()>,
    },
    DoLocate {
        port: Port,
        locate_id: u64,
        targets: TargetSet,
        done: Sender<LiveLocateOutcome>,
    },
    DoRequest {
        port: Port,
        addr: NodeId,
        body: u64,
        request_id: u64,
        done: Sender<Option<LiveRequestOutcome>>,
    },
    // --- control plane (never counted; works on crashed nodes too) ---
    Serve {
        port: Port,
        on: bool,
        ack: Sender<()>,
    },
    Crash {
        ack: Sender<()>,
    },
    Restore {
        ack: Sender<()>,
    },
    ClearCache {
        ack: Sender<()>,
    },
    Barrier {
        ack: Sender<()>,
    },
    /// Assigns a Byzantine behavior profile (see [`FaultProfile`]) —
    /// control plane, so it is free and effective even while crashed.
    SetFault {
        profile: FaultProfile,
        ack: Sender<()>,
    },
    /// Force-completes a pending locate with its partial state — the
    /// driver-side stand-in for the simulator's client timeout.
    FinishLocate {
        locate_id: u64,
    },
    /// Force-completes a pending request with `None` (no reply).
    FinishRequest {
        request_id: u64,
    },
    Shutdown,
}

/// Shared counters, snapshotted into an [`mm_sim::Metrics`].
#[derive(Debug)]
struct LiveCounters {
    passes: AtomicU64,
    sends: AtomicU64,
    delivered: AtomicU64,
    dropped: AtomicU64,
    crashes: AtomicU64,
    events: AtomicU64,
    node_load: Box<[AtomicU64]>,
}

impl LiveCounters {
    fn new(n: usize) -> Self {
        LiveCounters {
            passes: AtomicU64::new(0),
            sends: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            crashes: AtomicU64::new(0),
            events: AtomicU64::new(0),
            node_load: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

struct PendingLive {
    expected: usize,
    misses: usize,
    /// Hit answers as `(answering node, advertised addr, stamp)`, in
    /// arrival order — mailboxes do not preserve fan-out order, so the
    /// winner is chosen at completion by [`PendingLive::best`].
    answers: Vec<(NodeId, NodeId, u64)>,
    done: Sender<LiveLocateOutcome>,
}

impl PendingLive {
    /// The winning advertisement: newest stamp, ties broken by lowest
    /// answering node — the same deterministic rule as the simulator's
    /// `Pending::best`, so both runtimes classify identically regardless
    /// of reply arrival order.
    fn best(&self) -> Option<(NodeId, u64)> {
        self.answers
            .iter()
            .max_by(|a, b| a.2.cmp(&b.2).then(b.0.cmp(&a.0)))
            .map(|&(_, addr, stamp)| (addr, stamp))
    }

    /// Hit answers that disagree with the winning address.
    fn dissent(&self) -> usize {
        match self.best() {
            Some((winner, _)) => self.answers.iter().filter(|a| a.1 != winner).count(),
            None => 0,
        }
    }
}

struct NodeThread {
    me: usize,
    rx: Receiver<LiveMsg>,
    peers: Vec<Sender<LiveMsg>>,
    counters: Arc<LiveCounters>,
    crashed: bool,
    fault: FaultProfile,
    cache: Cache,
    served: BTreeSet<Port>,
    pending: HashMap<u64, PendingLive>,
    requests: HashMap<u64, Sender<Option<LiveRequestOutcome>>>,
}

impl NodeThread {
    /// Point-to-point send: one `send`, one pass unless to self — the
    /// accounting of [`mm_sim::Sim`]'s `route` under the uniform model.
    fn send(&self, to: usize, msg: LiveMsg) {
        self.counters.sends.fetch_add(1, Ordering::Relaxed);
        if to != self.me {
            self.counters.passes.fetch_add(1, Ordering::Relaxed);
        }
        // a dropped peer just loses the message, like a crashed node
        let _ = self.peers[to].send(msg);
    }

    /// Multicast fan-out: remote members cost a send + a pass each, a
    /// sender that is its own target delivers locally for free — the
    /// accounting of the simulator's `route_multicast` under uniform cost.
    fn mcast_send(&self, targets: &TargetSet, msg: &LiveMsg) {
        for t in targets.iter() {
            if t.index() != self.me {
                self.counters.sends.fetch_add(1, Ordering::Relaxed);
                self.counters.passes.fetch_add(1, Ordering::Relaxed);
            }
            let _ = self.peers[t.index()].send(msg.clone());
        }
    }

    fn run(mut self) {
        while let Ok(msg) = self.rx.recv() {
            // the control plane mirrors the simulator's external state
            // changes: free, and effective even on a crashed node
            match msg {
                LiveMsg::Shutdown => break,
                LiveMsg::Serve { port, on, ack } => {
                    if on {
                        self.served.insert(port);
                    } else {
                        self.served.remove(&port);
                    }
                    let _ = ack.send(());
                    continue;
                }
                LiveMsg::Crash { ack } => {
                    self.crashed = true;
                    let _ = ack.send(());
                    continue;
                }
                LiveMsg::Restore { ack } => {
                    self.crashed = false;
                    let _ = ack.send(());
                    continue;
                }
                LiveMsg::ClearCache { ack } => {
                    self.cache = Cache::new();
                    let _ = ack.send(());
                    continue;
                }
                LiveMsg::Barrier { ack } => {
                    let _ = ack.send(());
                    continue;
                }
                LiveMsg::SetFault { profile, ack } => {
                    self.fault = profile;
                    let _ = ack.send(());
                    continue;
                }
                LiveMsg::FinishLocate { locate_id } => {
                    if let Some(p) = self.pending.remove(&locate_id) {
                        let _ = p.done.send(LiveLocateOutcome::Unresolved {
                            hits: p.answers.len(),
                            misses: p.misses,
                            missing: p.expected - p.answers.len() - p.misses,
                            best: p.best(),
                            dissent: p.dissent(),
                        });
                    }
                    continue;
                }
                LiveMsg::FinishRequest { request_id } => {
                    if let Some(done) = self.requests.remove(&request_id) {
                        let _ = done.send(None);
                    }
                    continue;
                }
                other => self.on_message(other),
            }
        }
    }

    fn on_message(&mut self, msg: LiveMsg) {
        self.counters.events.fetch_add(1, Ordering::Relaxed);
        if self.crashed {
            // like the simulator: the message dies here, but the driver
            // must never block on a dead node's answer
            self.counters.dropped.fetch_add(1, Ordering::Relaxed);
            match msg {
                LiveMsg::DoPost { done, .. } | LiveMsg::DoUnpost { done, .. } => {
                    let _ = done.send(());
                }
                LiveMsg::DoLocate { targets, done, .. } => {
                    let _ = done.send(LiveLocateOutcome::Unresolved {
                        hits: 0,
                        misses: 0,
                        missing: targets.len(),
                        best: None,
                        dissent: 0,
                    });
                }
                LiveMsg::DoRequest { done, .. } => {
                    let _ = done.send(None);
                }
                _ => {}
            }
            return;
        }
        self.counters.delivered.fetch_add(1, Ordering::Relaxed);
        self.counters.node_load[self.me].fetch_add(1, Ordering::Relaxed);
        match msg {
            LiveMsg::DoPost {
                port,
                addr,
                stamp,
                targets,
                done,
            } => {
                self.mcast_send(&targets, &LiveMsg::Post { port, addr, stamp });
                // acked only after the fan-out is enqueued: a barrier on
                // the targets afterwards proves the posts were processed
                let _ = done.send(());
            }
            LiveMsg::DoUnpost {
                port,
                stamp,
                targets,
                done,
            } => {
                self.mcast_send(&targets, &LiveMsg::Unpost { port, stamp });
                let _ = done.send(());
            }
            LiveMsg::DoLocate {
                port,
                locate_id,
                targets,
                done,
            } => {
                if targets.is_empty() {
                    let _ = done.send(LiveLocateOutcome::NotFound);
                    return;
                }
                self.pending.insert(
                    locate_id,
                    PendingLive {
                        expected: targets.len(),
                        misses: 0,
                        answers: Vec::new(),
                        done,
                    },
                );
                self.mcast_send(
                    &targets,
                    &LiveMsg::Query {
                        port,
                        reply_to: self.me,
                        locate_id,
                    },
                );
            }
            LiveMsg::DoRequest {
                port,
                addr,
                body,
                request_id,
                done,
            } => {
                self.requests.insert(request_id, done);
                self.send(
                    addr.index(),
                    LiveMsg::Request {
                        port,
                        reply_to: self.me,
                        body,
                        request_id,
                    },
                );
            }
            LiveMsg::Post { port, addr, stamp } => match self.fault {
                // broken storage: the posting is silently lost — the same
                // arm as the simulator's NsNode, re-hosted on threads
                FaultProfile::DropPosts => {}
                FaultProfile::StaleAddress => {
                    if self.cache.lookup(port).is_none() {
                        self.cache.insert(port, addr, stamp);
                    }
                }
                _ => {
                    self.cache.insert(port, addr, stamp);
                }
            },
            LiveMsg::Unpost { port, stamp } => {
                if !matches!(
                    self.fault,
                    FaultProfile::DropPosts | FaultProfile::StaleAddress
                ) {
                    self.cache.remove(port, stamp);
                }
            }
            LiveMsg::Query {
                port,
                reply_to,
                locate_id,
            } => match self.fault {
                FaultProfile::ForgedAddress => self.send(
                    reply_to,
                    LiveMsg::Hit {
                        addr: NodeId::new(self.me as u32),
                        stamp: FORGED_STAMP,
                        locate_id,
                        at: self.me,
                    },
                ),
                FaultProfile::RefuseMatch => self.send(reply_to, LiveMsg::Miss { locate_id }),
                _ => match self.cache.lookup(port) {
                    Some(e) => self.send(
                        reply_to,
                        LiveMsg::Hit {
                            addr: e.addr,
                            stamp: e.stamp,
                            locate_id,
                            at: self.me,
                        },
                    ),
                    None => self.send(reply_to, LiveMsg::Miss { locate_id }),
                },
            },
            LiveMsg::Hit {
                addr,
                stamp,
                locate_id,
                at,
            } => {
                if let Some(p) = self.pending.get_mut(&locate_id) {
                    p.answers.push((NodeId::new(at as u32), addr, stamp));
                    self.maybe_finish(locate_id);
                }
            }
            LiveMsg::Miss { locate_id } => {
                if let Some(p) = self.pending.get_mut(&locate_id) {
                    p.misses += 1;
                    self.maybe_finish(locate_id);
                }
            }
            LiveMsg::Request {
                port,
                reply_to,
                body,
                request_id,
            } => {
                if self.served.contains(&port) {
                    self.send(
                        reply_to,
                        LiveMsg::Reply {
                            // the same trivially checkable toy service as
                            // the simulator: echo body + 1
                            body: body.wrapping_add(1),
                            request_id,
                        },
                    );
                } else {
                    self.send(reply_to, LiveMsg::NotHere { request_id });
                }
            }
            LiveMsg::Reply { body, request_id } => {
                if let Some(done) = self.requests.remove(&request_id) {
                    let _ = done.send(Some(LiveRequestOutcome::Replied { body }));
                }
            }
            LiveMsg::NotHere { request_id } => {
                if let Some(done) = self.requests.remove(&request_id) {
                    let _ = done.send(Some(LiveRequestOutcome::StaleAddress));
                }
            }
            // control handled in `run`
            LiveMsg::Serve { .. }
            | LiveMsg::Crash { .. }
            | LiveMsg::Restore { .. }
            | LiveMsg::ClearCache { .. }
            | LiveMsg::Barrier { .. }
            | LiveMsg::SetFault { .. }
            | LiveMsg::FinishLocate { .. }
            | LiveMsg::FinishRequest { .. }
            | LiveMsg::Shutdown => unreachable!("control messages are handled in run()"),
        }
    }

    fn maybe_finish(&mut self, id: u64) {
        let finished = self
            .pending
            .get(&id)
            .is_some_and(|p| p.answers.len() + p.misses == p.expected);
        if finished {
            let p = self.pending.remove(&id).expect("just observed");
            let outcome = match p.best() {
                Some((addr, stamp)) => {
                    let mut meets: Vec<NodeId> = p.answers.iter().map(|a| a.0).collect();
                    meets.sort_unstable();
                    LiveLocateOutcome::Found {
                        addr,
                        stamp,
                        meets,
                        dissent: p.dissent(),
                    }
                }
                None => LiveLocateOutcome::NotFound,
            };
            let _ = p.done.send(outcome);
        }
    }
}

/// A live network of `n` node threads exchanging match-making traffic.
///
/// The driver API is synchronous and crash-aware: operations whose target
/// set is entirely live block until their true verdict; operations that
/// would wait on a crashed node forever are quiesced with barriers and
/// force-classified — the deterministic analogue of a client timeout.
pub struct LiveNet {
    senders: Vec<Sender<LiveMsg>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    counters: Arc<LiveCounters>,
    /// Driver-side crash view — who would never answer a query right now.
    crashed: Mutex<Vec<bool>>,
    clock: AtomicU64,
    next_locate: AtomicU64,
    next_request: AtomicU64,
}

impl LiveNet {
    /// Spawns `n` node threads.
    pub fn new(n: usize) -> Self {
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let counters = Arc::new(LiveCounters::new(n));
        let mut handles = Vec::with_capacity(n);
        for (me, rx) in receivers.into_iter().enumerate() {
            let node = NodeThread {
                me,
                rx,
                peers: senders.clone(),
                counters: Arc::clone(&counters),
                crashed: false,
                fault: FaultProfile::Honest,
                cache: Cache::new(),
                served: BTreeSet::new(),
                pending: HashMap::new(),
                requests: HashMap::new(),
            };
            handles.push(std::thread::spawn(move || node.run()));
        }
        LiveNet {
            senders,
            handles: Mutex::new(handles),
            counters,
            crashed: Mutex::new(vec![false; n]),
            clock: AtomicU64::new(0),
            next_locate: AtomicU64::new(0),
            next_request: AtomicU64::new(0),
        }
    }

    /// Number of node threads.
    pub fn node_count(&self) -> usize {
        self.senders.len()
    }

    /// Total inter-node message passes so far (the paper's `m` numerator).
    pub fn message_passes(&self) -> u64 {
        self.counters.passes.load(Ordering::Relaxed)
    }

    /// Snapshot of all counters as a simulator-compatible [`Metrics`], so
    /// both runtimes serialize reports with identical semantics.
    /// `peak_queue_depth` is always 0 (mailbox depth is not sampled) and
    /// `events_executed` counts protocol messages processed or dropped —
    /// control-plane traffic is invisible, matching the simulator's free
    /// external state changes.
    pub fn metrics(&self) -> Metrics {
        let c = &self.counters;
        let mut m = Metrics::new(c.node_load.len());
        m.message_passes = c.passes.load(Ordering::SeqCst);
        m.sends = c.sends.load(Ordering::SeqCst);
        m.delivered = c.delivered.load(Ordering::SeqCst);
        m.dropped = c.dropped.load(Ordering::SeqCst);
        m.crashes = c.crashes.load(Ordering::SeqCst);
        m.events_executed = c.events.load(Ordering::SeqCst);
        for (slot, a) in m.node_load.iter_mut().zip(c.node_load.iter()) {
            *slot = a.load(Ordering::SeqCst);
        }
        m
    }

    fn control(&self, to: NodeId, make: impl FnOnce(Sender<()>) -> LiveMsg) {
        let (ack_tx, ack_rx) = bounded(1);
        let _ = self.senders[to.index()].send(make(ack_tx));
        ack_rx
            .recv_timeout(WEDGE_TIMEOUT)
            .expect("live node control ack: runtime wedged");
    }

    /// Waits until every node in `targets` has drained its mailbox up to
    /// this point. FIFO channels make the ack a happens-after proof for
    /// everything enqueued at the node before the barrier.
    fn barrier<I: IntoIterator<Item = NodeId>>(&self, targets: I) {
        let (ack_tx, ack_rx) = unbounded();
        let mut expected = 0usize;
        for t in targets {
            let _ = self.senders[t.index()].send(LiveMsg::Barrier {
                ack: ack_tx.clone(),
            });
            expected += 1;
        }
        drop(ack_tx);
        for _ in 0..expected {
            ack_rx
                .recv_timeout(WEDGE_TIMEOUT)
                .expect("live barrier ack: runtime wedged");
        }
    }

    /// Next logical stamp — registrations are totally ordered, so
    /// re-registration always supersedes (monotonically increasing stamps,
    /// the paper's timestamp conflict rule).
    fn next_stamp(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Registers a server for `port` at `at` and posts `(port, at)` at
    /// `targets` (the strategy's `P(at)`). Returns the posting stamp; on
    /// return the postings are observable by any subsequent locate.
    pub fn register_server(&self, at: NodeId, port: Port, targets: impl Into<TargetSet>) -> u64 {
        let targets = targets.into();
        let stamp = self.next_stamp();
        self.control(at, |ack| LiveMsg::Serve {
            port,
            on: true,
            ack,
        });
        let (done_tx, done_rx) = bounded(1);
        let _ = self.senders[at.index()].send(LiveMsg::DoPost {
            port,
            addr: at,
            stamp,
            targets: targets.clone(),
            done: done_tx,
        });
        done_rx
            .recv_timeout(WEDGE_TIMEOUT)
            .expect("live post fan-out ack: runtime wedged");
        // the fan-out is enqueued everywhere; the barrier makes it
        // *processed* everywhere before the driver moves on
        self.barrier(targets.iter());
        stamp
    }

    /// Deregisters the server at `at` and withdraws its postings from
    /// `targets` with a fresh stamp (withdrawal never erases a newer
    /// advertisement). On return the withdrawal is observable.
    pub fn deregister_server(&self, at: NodeId, port: Port, targets: impl Into<TargetSet>) -> u64 {
        let targets = targets.into();
        let stamp = self.next_stamp();
        self.control(at, |ack| LiveMsg::Serve {
            port,
            on: false,
            ack,
        });
        let (done_tx, done_rx) = bounded(1);
        let _ = self.senders[at.index()].send(LiveMsg::DoUnpost {
            port,
            stamp,
            targets: targets.clone(),
            done: done_tx,
        });
        done_rx
            .recv_timeout(WEDGE_TIMEOUT)
            .expect("live unpost fan-out ack: runtime wedged");
        self.barrier(targets.iter());
        stamp
    }

    /// Migrates the service on `port` from `from` to `to`: the old host
    /// stops serving, the new one registers with a newer stamp (the
    /// paper's mobile-process scenario). `post_targets` is `P(to)`.
    pub fn migrate_server(
        &self,
        port: Port,
        from: NodeId,
        to: NodeId,
        post_targets: impl Into<TargetSet>,
    ) -> u64 {
        self.control(from, |ack| LiveMsg::Serve {
            port,
            on: false,
            ack,
        });
        self.register_server(to, port, post_targets)
    }

    /// Crashes a node: it drops every protocol message until restored.
    pub fn crash(&self, v: NodeId) {
        self.crashed.lock()[v.index()] = true;
        self.counters.crashes.fetch_add(1, Ordering::Relaxed);
        self.control(v, |ack| LiveMsg::Crash { ack });
    }

    /// Restores a crashed node (cache intact, like [`mm_sim::Sim::restore`];
    /// pair with [`LiveNet::clear_cache`] to model lost volatile memory).
    pub fn restore(&self, v: NodeId) {
        self.crashed.lock()[v.index()] = false;
        self.control(v, |ack| LiveMsg::Restore { ack });
    }

    /// Empties a node's rendezvous cache (works on crashed nodes too).
    pub fn clear_cache(&self, v: NodeId) {
        self.control(v, |ack| LiveMsg::ClearCache { ack });
    }

    /// Assigns an adversarial behavior profile to a node (see
    /// [`FaultProfile`]) — the live counterpart of
    /// [`crate::ShotgunEngine::set_fault`]. Synchronous: on return every
    /// later protocol message at the node sees the new profile.
    pub fn set_fault(&self, v: NodeId, profile: FaultProfile) {
        self.control(v, |ack| LiveMsg::SetFault { profile, ack });
    }

    /// Locates `port` from `client` by querying `targets` (the strategy's
    /// `Q(client)`) and blocks until the verdict:
    ///
    /// * all targets live → every one answers; `Found`/`NotFound`.
    /// * some targets crashed → they can never answer while the driver
    ///   holds them crashed, so the locate is deterministically
    ///   `Unresolved`: the driver quiesces the fan-out (client, live
    ///   targets, client again — one barrier per protocol round) and
    ///   force-finishes the pending operation, standing in for the
    ///   simulator's client timeout.
    pub fn locate(
        &self,
        client: NodeId,
        port: Port,
        targets: impl Into<TargetSet>,
    ) -> LiveLocateOutcome {
        let targets = targets.into();
        let id = self.next_locate.fetch_add(1, Ordering::SeqCst);
        let (done_tx, done_rx) = bounded(1);
        // crash *epoch* at issue time: the counter only ever grows, so any
        // concurrent crash — even one followed by an immediate restore,
        // which would be invisible to a plain crashed-flag re-check — is
        // detected while we wait
        let crash_epoch = self.counters.crashes.load(Ordering::SeqCst);
        let crashed_targets: Vec<NodeId> = {
            let crashed = self.crashed.lock();
            targets.iter().filter(|t| crashed[t.index()]).collect()
        };
        let _ = self.senders[client.index()].send(LiveMsg::DoLocate {
            port,
            locate_id: id,
            targets: targets.clone(),
            done: done_tx,
        });
        if crashed_targets.is_empty() {
            // all targets live at issue time: the answers are coming — but
            // a *concurrent* crash from another driver thread can still
            // silence a target, so re-check while waiting instead of
            // blocking on a reply that will never arrive
            let mut waited = Duration::ZERO;
            loop {
                match done_rx.recv_timeout(RACE_RECHECK) {
                    Ok(outcome) => return outcome,
                    Err(_) => {
                        waited += RACE_RECHECK;
                        assert!(waited < WEDGE_TIMEOUT, "live locate: runtime wedged");
                        if self.counters.crashes.load(Ordering::SeqCst) != crash_epoch {
                            break; // raced by a crash: force-classify below
                        }
                    }
                }
            }
        }
        // a crashed rendezvous never answers: quiesce, then give up
        let crashed_now: Vec<NodeId> = {
            let crashed = self.crashed.lock();
            targets.iter().filter(|t| crashed[t.index()]).collect()
        };
        self.barrier([client]); // queries fanned out
        self.barrier(targets.iter().filter(|t| !crashed_now.contains(t))); // answers sent
        self.barrier([client]); // answers absorbed
        let _ = self.senders[client.index()].send(LiveMsg::FinishLocate { locate_id: id });
        done_rx
            .recv_timeout(WEDGE_TIMEOUT)
            .expect("live locate finish: runtime wedged")
    }

    /// Convenience wrapper: the located address, if any.
    pub fn locate_addr(
        &self,
        client: NodeId,
        port: Port,
        targets: impl Into<TargetSet>,
    ) -> Option<NodeId> {
        self.locate(client, port, targets).addr()
    }

    /// Sends an application request from `client` to the located address
    /// `addr` and blocks for the outcome. `None` means the server never
    /// answered (crashed host — force-classified deterministically, like
    /// [`LiveNet::locate`]'s unresolved path).
    pub fn request(
        &self,
        client: NodeId,
        addr: NodeId,
        port: Port,
        body: u64,
    ) -> Option<LiveRequestOutcome> {
        let id = self.next_request.fetch_add(1, Ordering::SeqCst);
        let (done_tx, done_rx) = bounded(1);
        // see `locate`: the epoch detects even a crash-then-restore race
        let crash_epoch = self.counters.crashes.load(Ordering::SeqCst);
        let addr_crashed = self.crashed.lock()[addr.index()];
        let _ = self.senders[client.index()].send(LiveMsg::DoRequest {
            port,
            addr,
            body,
            request_id: id,
            done: done_tx,
        });
        if !addr_crashed {
            let mut waited = Duration::ZERO;
            loop {
                match done_rx.recv_timeout(RACE_RECHECK) {
                    Ok(outcome) => return outcome,
                    Err(_) => {
                        waited += RACE_RECHECK;
                        assert!(waited < WEDGE_TIMEOUT, "live request: runtime wedged");
                        if self.counters.crashes.load(Ordering::SeqCst) != crash_epoch {
                            break; // raced by a crash: force-classify below
                        }
                    }
                }
            }
        }
        self.barrier([client]); // request sent
        self.barrier([addr]); // request dropped at the crashed host
        let _ = self.senders[client.index()].send(LiveMsg::FinishRequest { request_id: id });
        done_rx
            .recv_timeout(WEDGE_TIMEOUT)
            .expect("live request finish: runtime wedged")
    }

    /// Shuts all node threads down and joins them.
    pub fn shutdown(&self) {
        for s in &self.senders {
            let _ = s.send(LiveMsg::Shutdown);
        }
        let mut handles = self.handles.lock();
        for h in handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for LiveNet {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for LiveNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveNet")
            .field("n", &self.senders.len())
            .field("message_passes", &self.message_passes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_core::strategies::Checkerboard;
    use mm_core::Strategy;

    #[test]
    fn live_locate_finds_server() {
        let n = 16;
        let strat = Checkerboard::new(n);
        let net = LiveNet::new(n);
        let port = Port::from_name("file");
        let server = NodeId::new(3);
        net.register_server(server, port, strat.post_set(server));
        let client = NodeId::new(12);
        let found = net.locate_addr(client, port, strat.query_set(client));
        assert_eq!(found, Some(server));
        net.shutdown();
    }

    #[test]
    fn live_locate_unknown_port_is_not_found() {
        let n = 9;
        let strat = Checkerboard::new(n);
        let net = LiveNet::new(n);
        let found = net.locate(
            NodeId::new(0),
            Port::from_name("ghost"),
            strat.query_set(NodeId::new(0)),
        );
        assert_eq!(found, LiveLocateOutcome::NotFound);
    }

    #[test]
    fn live_newest_stamp_wins_after_remigration() {
        let n = 25;
        let strat = Checkerboard::new(n);
        let net = LiveNet::new(n);
        let port = Port::from_name("db");
        net.register_server(NodeId::new(2), port, strat.post_set(NodeId::new(2)));
        net.register_server(NodeId::new(17), port, strat.post_set(NodeId::new(17)));
        let found = net.locate_addr(NodeId::new(20), port, strat.query_set(NodeId::new(20)));
        assert_eq!(found, Some(NodeId::new(17)), "later registration wins");
    }

    #[test]
    fn live_refuse_match_severs_the_singleton_rendezvous() {
        let n = 16;
        let strat = Checkerboard::new(n);
        let net = LiveNet::new(n);
        let port = Port::from_name("svc");
        let server = NodeId::new(3);
        let client = NodeId::new(12);
        let rdv = strat.rendezvous(server, client);
        assert_eq!(rdv.len(), 1);
        net.set_fault(rdv[0], FaultProfile::RefuseMatch);
        net.register_server(server, port, strat.post_set(server));
        assert_eq!(
            net.locate(client, port, strat.query_set(client)),
            LiveLocateOutcome::NotFound
        );
        // refuse-match still *stores* posts: healing the node heals the pair
        net.set_fault(rdv[0], FaultProfile::Honest);
        assert_eq!(
            net.locate_addr(client, port, strat.query_set(client)),
            Some(server)
        );
        net.shutdown();
    }

    #[test]
    fn live_forged_address_is_flagged_by_dissent() {
        use mm_core::strategies::Broadcast;
        let n = 16;
        let strat = Broadcast::new(n);
        let net = LiveNet::new(n);
        let port = Port::from_name("svc");
        let server = NodeId::new(3);
        net.register_server(server, port, strat.post_set(server));
        let liar = NodeId::new(7);
        net.set_fault(liar, FaultProfile::ForgedAddress);
        let client = NodeId::new(0);
        match net.locate(client, port, strat.query_set(client)) {
            LiveLocateOutcome::Found {
                addr,
                stamp,
                dissent,
                ..
            } => {
                assert_eq!(addr, liar, "the forged stamp out-bids honesty");
                assert_eq!(stamp, FORGED_STAMP);
                assert!(dissent >= 1, "the honest hit disagrees: lie is detectable");
            }
            other => panic!("expected a (detectable) forged hit, got {other:?}"),
        }
        net.shutdown();
    }

    #[test]
    fn live_message_count_matches_model() {
        // #P posts + #Q queries + #Q replies, self-messages free
        let n = 16;
        let strat = Checkerboard::new(n);
        let net = LiveNet::new(n);
        let port = Port::from_name("svc");
        let server = NodeId::new(5);
        net.register_server(server, port, strat.post_set(server));
        let before = net.message_passes();
        let client = NodeId::new(9);
        let _ = net.locate(client, port, strat.query_set(client));
        let after = net.message_passes();
        let q = strat.query_count(client) as u64;
        // queries to self are free, replies from self too
        let self_in_q = strat.query_set(client).contains(&client) as u64;
        assert_eq!(after - before, 2 * (q - self_in_q));
    }

    #[test]
    fn deregistration_withdraws_postings() {
        let n = 16;
        let strat = Checkerboard::new(n);
        let net = LiveNet::new(n);
        let port = Port::from_name("tmp");
        let server = NodeId::new(4);
        net.register_server(server, port, strat.post_set(server));
        net.deregister_server(server, port, strat.post_set(server));
        let found = net.locate(NodeId::new(1), port, strat.query_set(NodeId::new(1)));
        assert_eq!(found, LiveLocateOutcome::NotFound, "unposted everywhere");
    }

    #[test]
    fn reregistration_supersedes_deregistration() {
        // crash + come back: the re-registration's newer stamp must win
        // over any stale state, and the stamps must be strictly monotone
        let n = 16;
        let strat = Checkerboard::new(n);
        let net = LiveNet::new(n);
        let port = Port::from_name("svc");
        let server = NodeId::new(6);
        let s1 = net.register_server(server, port, strat.post_set(server));
        let s2 = net.deregister_server(server, port, strat.post_set(server));
        let s3 = net.register_server(server, port, strat.post_set(server));
        assert!(s1 < s2 && s2 < s3, "stamps bump monotonically");
        let client = NodeId::new(11);
        match net.locate(client, port, strat.query_set(client)) {
            LiveLocateOutcome::Found {
                addr, stamp, meets, ..
            } => {
                assert_eq!(addr, server);
                assert_eq!(stamp, s3, "the freshest posting wins");
                assert!(!meets.is_empty(), "a found locate met at least once");
            }
            other => panic!("expected Found after re-registration, got {other:?}"),
        }
    }

    #[test]
    fn crashed_rendezvous_forces_unresolved() {
        let n = 16;
        let strat = Checkerboard::new(n);
        let net = LiveNet::new(n);
        let port = Port::from_name("svc");
        let server = NodeId::new(5);
        net.register_server(server, port, strat.post_set(server));
        let client = NodeId::new(9);
        let targets = strat.query_set(client);
        net.crash(targets[0]);
        match net.locate(client, port, targets.clone()) {
            LiveLocateOutcome::Unresolved { missing, .. } => {
                assert!(missing >= 1, "the crashed target never answers")
            }
            other => panic!("expected Unresolved, got {other:?}"),
        }
        // restore: the node kept its cache, locates complete again
        net.restore(targets[0]);
        assert_eq!(net.locate_addr(client, port, targets), Some(server));
    }

    #[test]
    fn request_roundtrip_and_stale_address() {
        let n = 16;
        let strat = Checkerboard::new(n);
        let net = LiveNet::new(n);
        let port = Port::from_name("adder");
        let server = NodeId::new(3);
        net.register_server(server, port, strat.post_set(server));
        assert_eq!(
            net.request(NodeId::new(12), server, port, 41),
            Some(LiveRequestOutcome::Replied { body: 42 })
        );
        // migrate away: the old address bounces
        net.migrate_server(port, server, NodeId::new(9), strat.post_set(NodeId::new(9)));
        assert_eq!(
            net.request(NodeId::new(12), server, port, 1),
            Some(LiveRequestOutcome::StaleAddress)
        );
        // a crashed host never answers at all
        net.crash(NodeId::new(9));
        assert_eq!(net.request(NodeId::new(12), NodeId::new(9), port, 1), None);
    }

    #[test]
    fn metrics_snapshot_mirrors_sim_semantics() {
        let n = 9;
        let strat = Checkerboard::new(n);
        let net = LiveNet::new(n);
        let port = Port::from_name("svc");
        let server = NodeId::new(4);
        net.register_server(server, port, strat.post_set(server));
        let m = net.metrics();
        let p = strat.post_count(server) as u64;
        let self_in_p = strat.post_set(server).contains(&server) as u64;
        assert_eq!(m.message_passes, p - self_in_p, "posting costs #P passes");
        // the DoPost injection + every posting delivery
        assert_eq!(m.delivered, 1 + p);
        assert_eq!(m.dropped, 0);
        assert_eq!(m.node_load.iter().sum::<u64>(), m.delivered);
        assert_eq!(m.events_executed, m.delivered);
        assert_eq!(m.peak_queue_depth, 0, "not sampled in the live runtime");
    }
}
