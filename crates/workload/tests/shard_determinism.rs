//! Cross-core determinism: the sharded parallel executor must produce
//! byte-identical scenario JSON to the single-threaded oracle at every
//! shard count × worker-thread count, on randomized workload
//! configurations — the workload-layer counterpart of the sim-level
//! `sharded_core_matches_single_oracle` suite.

use mm_sim::CostModel;
use mm_workload::drive::{self, RunConfig};
use proptest::prelude::*;

/// The shard grid the acceptance criteria pin: every combination must
/// reproduce the `--shards 0` (single-core) bytes.
const SHARD_GRID: [(usize, usize); 9] = [
    (1, 1),
    (1, 2),
    (1, 4),
    (4, 1),
    (4, 2),
    (4, 4),
    (16, 1),
    (16, 2),
    (16, 4),
];

fn json_for(cfg: &RunConfig) -> String {
    let report = drive::run(cfg).unwrap_or_else(|e| panic!("{}: {e}", cfg.label()));
    drive::reports_to_json(&[report], false)
}

fn assert_shard_invariant(mut cfg: RunConfig) {
    cfg.shards = 0;
    cfg.shard_threads = 1;
    let oracle = json_for(&cfg);
    for (shards, threads) in SHARD_GRID {
        cfg.shards = shards;
        cfg.shard_threads = threads;
        assert_eq!(
            json_for(&cfg),
            oracle,
            "sharded run diverged from the single-core oracle: {} shards={shards} threads={threads}",
            cfg.label()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random churn-free configurations (steady traffic, no crash/restore
    /// churn) across scenario × strategy × topology × cost × n × seed:
    /// the full shard grid reproduces the oracle bytes.
    #[test]
    fn churn_free_reports_are_shard_invariant(
        seed in 0u64..10_000,
        scenario_idx in 0usize..3,
        strategy_idx in 0usize..3,
        topo_idx in 0usize..3,
        n in 24usize..64,
    ) {
        // the churn-free members of the open-loop library
        let scenario = ["steady-state", "flash-crowd", "cold-vs-warm-cache"][scenario_idx];
        let strategy = ["checkerboard", "hash", "broadcast"][strategy_idx];
        let (topology, cost) = [
            ("complete", CostModel::Uniform),
            ("ring", CostModel::Hops),
            ("grid", CostModel::Hops),
        ][topo_idx];
        let mut cfg = RunConfig::new(scenario, n, seed);
        cfg.strategy = strategy.into();
        cfg.topology = topology.into();
        cfg.cost = cost;
        assert_shard_invariant(cfg);
    }
}

/// Churn is coordinator-side (crashes/restores apply between rounds), so
/// the invariance must also hold on the churnful and hostile scenarios.
#[test]
fn churnful_reports_are_shard_invariant() {
    for scenario in ["rolling-churn", "migrate-under-load", "rack-failure"] {
        assert_shard_invariant(RunConfig::new(scenario, 64, 11));
    }
}

/// Replication (superimposed strategy copies) rides through the sharded
/// core unchanged.
#[test]
fn replicated_reports_are_shard_invariant() {
    let mut cfg = RunConfig::new("steady-state", 48, 5);
    cfg.replication = 2;
    assert_shard_invariant(cfg);
}

/// Closed-loop client pools drive the engine through many short
/// `run_until` phases — the round/merge cycle must stay exact across
/// repeated partial drains.
#[test]
fn closed_loop_reports_are_shard_invariant() {
    assert_shard_invariant(RunConfig::new("overload-ramp", 48, 9));
}
