//! Shared observability glue for both runtimes: the virtual-timing law,
//! causal span-tree emission for post/locate/request operations, and
//! metrics-registry feeding.
//!
//! [`crate::runner::ScenarioRunner`] and
//! [`crate::live_runner::LiveScenarioRunner`] call these helpers with the
//! same arguments in the same dispatch order, so a trace of a churn-free
//! spec is **byte-identical** across the runtimes (and across event-queue
//! implementations) at equal seeds — the simulator emits spans at
//! classification time and the live runtime at issue time, but every
//! field is computed from spec-level state (virtual ticks, target sets,
//! meets) rather than engine clocks, and [`mm_obs::Tracer::finish`]
//! canonicalizes the order.

use crate::report::LocateVerdict;
use mm_obs::{Registry, SpanRecord, TraceFile, TraceHeader, Tracer, TRACE_VERSION};
use mm_sim::SimTime;
use mm_topo::NodeId;

/// The uniform-cost virtual-elapsed law shared by both runtimes: a query
/// set containing only the client itself costs 0 ticks (free local
/// delivery), any remote fan-out completes when the slowest reply lands
/// at issue + 2 (query tick + reply tick), and an unresolved operation
/// burns the full client timeout.
pub(crate) fn virtual_elapsed(solo: bool, verdict: LocateVerdict, op_timeout: SimTime) -> u64 {
    match verdict {
        LocateVerdict::Unresolved => op_timeout,
        _ if solo => 0,
        _ => 2,
    }
}

fn verdict_label(v: LocateVerdict) -> &'static str {
    match v {
        LocateVerdict::Hit => "hit",
        LocateVerdict::Miss => "miss",
        LocateVerdict::Unresolved => "unresolved",
        LocateVerdict::DetectedLie => "detected-lie",
        LocateVerdict::FalseMatch => "false-match",
    }
}

/// Emits the causal tree of one post (setup or refresh): a `post` root
/// at the server's home plus one `store` span per rendezvous target, in
/// ascending target order. A store at the home itself is a free local
/// delivery (cost 0, same tick); a remote store costs one message pass
/// and lands one tick later.
pub(crate) fn emit_post_spans(
    tracer: &mut Tracer,
    trace: u64,
    home: NodeId,
    port_idx: usize,
    targets: &[NodeId],
    tick: SimTime,
) {
    tracer.record(SpanRecord {
        trace,
        span: 0,
        parent: None,
        kind: "post".to_string(),
        node: u64::from(home.raw()),
        port: port_idx as u64,
        hop: 0,
        tick,
        cost: 0,
        met: None,
        verdict: None,
        elapsed: None,
    });
    for (i, &tgt) in targets.iter().enumerate() {
        let remote = tgt != home;
        tracer.record(SpanRecord {
            trace,
            span: i as u32 + 1,
            parent: Some(0),
            kind: "store".to_string(),
            node: u64::from(tgt.raw()),
            port: port_idx as u64,
            hop: 1,
            tick: tick + u64::from(remote),
            cost: u64::from(remote),
            met: None,
            verdict: None,
            elapsed: None,
        });
    }
}

/// Emits the causal tree of one locate: a `locate` root at the client
/// (carrying the verdict and the virtual elapsed) plus one `contact`
/// span per query target in ascending order, each marked with whether
/// the query met a matching advertisement there (`met` — the realized
/// match-making intersection, `Σ met = m(P,Q)` with fresh postings).
/// A contact of the client itself is free (cost 0, same tick); a remote
/// contact costs two passes (query + reply) and is stamped at the query's
/// arrival tick.
#[allow(clippy::too_many_arguments)]
pub(crate) fn emit_locate_spans(
    tracer: &mut Tracer,
    trace: u64,
    client: NodeId,
    port_idx: usize,
    targets: &[NodeId],
    meets: &[NodeId],
    verdict: LocateVerdict,
    elapsed: u64,
    tick: SimTime,
) {
    tracer.record(SpanRecord {
        trace,
        span: 0,
        parent: None,
        kind: "locate".to_string(),
        node: u64::from(client.raw()),
        port: port_idx as u64,
        hop: 0,
        tick,
        cost: 0,
        met: None,
        verdict: Some(verdict_label(verdict).to_string()),
        elapsed: Some(elapsed),
    });
    for (i, &tgt) in targets.iter().enumerate() {
        let remote = tgt != client;
        tracer.record(SpanRecord {
            trace,
            span: i as u32 + 1,
            parent: Some(0),
            kind: "contact".to_string(),
            node: u64::from(tgt.raw()),
            port: port_idx as u64,
            hop: 1,
            tick: tick + u64::from(remote),
            cost: 2 * u64::from(remote),
            met: Some(meets.binary_search(&tgt).is_ok()),
            verdict: None,
            elapsed: None,
        });
    }
}

/// Emits the `request` span of a locate-then-call chain: the follow-up
/// application request to the located address, issued the tick the
/// locate's verdict landed. A request to the client's own node is one
/// free local send; a remote request costs two passes (request + reply).
pub(crate) fn emit_request_span(
    tracer: &mut Tracer,
    trace: u64,
    span: u32,
    client: NodeId,
    addr: NodeId,
    port_idx: usize,
    tick: SimTime,
) {
    tracer.record(SpanRecord {
        trace,
        span,
        parent: Some(0),
        kind: "request".to_string(),
        node: u64::from(addr.raw()),
        port: port_idx as u64,
        hop: 1,
        tick,
        cost: 2 * u64::from(addr != client),
        met: None,
        verdict: None,
        elapsed: None,
    });
}

/// Emits the setup-time `fault` span of one injected Byzantine profile: a
/// root span at the faulty node whose verdict field carries the profile
/// label. Both runtimes emit these in spec order before any traffic, so a
/// hostile trace identifies its adversary deterministically.
pub(crate) fn emit_fault_span(tracer: &mut Tracer, trace: u64, node: NodeId, label: &str) {
    tracer.record(SpanRecord {
        trace,
        span: 0,
        parent: None,
        kind: "fault".to_string(),
        node: u64::from(node.raw()),
        port: 0,
        hop: 0,
        tick: 0,
        cost: 0,
        met: None,
        verdict: Some(label.to_string()),
        elapsed: None,
    });
}

/// Folds one classified locate into the metrics registry: verdict
/// counters plus the latency / fan-out / meet histograms.
pub(crate) fn observe_locate(
    reg: &mut Registry,
    verdict: LocateVerdict,
    elapsed: u64,
    fanout: usize,
    meets: usize,
) {
    reg.counter_add(
        match verdict {
            LocateVerdict::Hit => "locates_hit",
            LocateVerdict::Miss => "locates_miss",
            LocateVerdict::Unresolved => "locates_unresolved",
            LocateVerdict::DetectedLie => "locates_detected_lie",
            LocateVerdict::FalseMatch => "locates_false_match",
        },
        1,
    );
    reg.observe("locate_elapsed_ticks", elapsed);
    reg.observe("locate_fanout", fanout as u64);
    reg.observe("locate_meets", meets as u64);
}

/// Seals a runner's tracer into a [`TraceFile`]. The header carries only
/// runtime-agnostic identification; `sends`/`passes` are the run's
/// cumulative [`mm_sim::Metrics`] totals for the conservation check.
#[allow(clippy::too_many_arguments)]
pub(crate) fn finish_trace(
    tracer: Option<Tracer>,
    scenario: &str,
    strategy: &str,
    n: u64,
    seed: u64,
    ports: u64,
    sample_rate: f64,
    sends: u64,
    passes: u64,
) -> Option<TraceFile> {
    tracer.map(|t| {
        t.finish(
            TraceHeader {
                version: TRACE_VERSION,
                scenario: scenario.to_string(),
                strategy: strategy.to_string(),
                n,
                seed,
                ports,
                sample_rate,
            },
            sends,
            passes,
        )
    })
}
