//! The live-runtime scenario runner: drives the **same** [`Workload`]
//! specs as [`crate::runner::ScenarioRunner`] through
//! [`mm_proto::live::LiveNet`] — real OS threads and channels instead of
//! the deterministic simulator — and emits the same JSON report schema.
//!
//! # Lock-step execution model
//!
//! The paper's rendezvous invariant (`P(s) ∩ Q(c) ≠ ∅`, so m(P,Q) ≥ 1) is
//! a property of the post/query *sets*, not of the scheduler, and the
//! point of this runner is to check that the measured behaviour of the
//! protocol carries over from simulated ticks to real concurrency. To
//! make the comparison exact, the runner consumes the spec's RNG in
//! **identical order** to the simulator runner ([`crate::timeline`]) and
//! executes timeline events in sequence, waiting for each operation's
//! verdict before the next event fires (concurrency still happens *inside*
//! each operation: a locate fans out to up to `|Q|` node threads at once).
//!
//! This makes the live run deterministic given a seed, with two knowable
//! divergences from the simulator, both tolerated (with documented
//! bounds) by the conformance suite `tests/live_workload_equivalence.rs`:
//!
//! 1. **Churn races.** The simulator is open-loop: a locate can be
//!    in-flight when a crash/restore/migration lands, and its verdict
//!    then depends on tick-level interleaving. Lock-step execution
//!    completes each operation before churn fires, so operations issued
//!    within `op_timeout` ticks before a *racy* churn event (crash,
//!    restore, migrate — not cache wipes or refreshes, which commute with
//!    completed operations) may legitimately differ. Everything outside
//!    those windows must agree exactly.
//! 2. **Phase bucketing.** The simulator attributes a verdict to the
//!    phase where it was *read* (an arrival in the last tick of a phase
//!    completes in the next); the live runner classifies at issue time.
//!    Totals across phases agree; per-phase operation counters can shift
//!    by the handful of boundary operations.
//!
//! Stale-address bounces cannot happen under lock-step execution (a
//! migration never lands between a locate and its follow-up request), so
//! `stale_results`/`stale_requests`/`staleness_recoveries` are
//! structurally 0 here — the simulator's counts are bounded by its
//! at-risk operations, which is exactly the tolerance rule the
//! conformance suite enforces.

use crate::clients::{ClientPool, OpDriver};
use crate::observe::{
    emit_fault_span, emit_locate_spans, emit_post_spans, emit_request_span, finish_trace,
    observe_locate, virtual_elapsed,
};
use crate::report::{
    build_closed_loop, build_phase_report, classify_hit, predict_passes_per_locate, Acc,
    LocateRecord, LocateVerdict, PhaseReport, RobustnessReport, ScenarioReport,
};
use crate::spec::{ChurnAction, Workload};
use crate::timeline::{draw_arrival, resolve_churn, Event, ResolvedChurn, Timeline};
use crate::traffic::PopularitySampler;
use mm_core::strategies::PortMapped;
use mm_core::Port;
use mm_obs::{Registry, TraceConfig, TraceFile, Tracer};
use mm_proto::live::{LiveLocateOutcome, LiveNet, LiveRequestOutcome};
use mm_proto::{FaultProfile, TargetInterner};
use mm_sim::{Metrics, SimTime};
use mm_topo::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// The thread network's [`OpDriver`]. The live locate call is synchronous
/// (lock-step), so `issue` runs the whole operation immediately and banks
/// the verdict under a token; `poll` replays it once the virtual clock
/// reaches the modelled completion tick. The virtual-elapsed model mirrors
/// the simulator's uniform-cost timing exactly: a query set containing
/// only the client itself costs 0 ticks (free local delivery), any remote
/// fan-out completes when the slowest reply lands at issue + 2 (query
/// tick + reply tick), and an unresolved operation burns the full client
/// timeout.
struct LiveDriver<'a, PM: PortMapped> {
    net: &'a LiveNet,
    interner: &'a mut TargetInterner,
    resolver: &'a PM,
    ports: &'a [Port],
    homes: &'a [NodeId],
    /// Byzantine ground truth: `liars[v]` iff node `v` forges addresses.
    liars: &'a [bool],
    /// Hostile-world client policy: act on the best partial answer once
    /// the timeout fires instead of writing the operation off.
    salvage: bool,
    op_timeout: SimTime,
    pending: &'a mut Vec<(LocateVerdict, Option<NodeId>, SimTime)>,
    tracer: &'a mut Option<Tracer>,
    registry: &'a mut Option<Registry>,
}

impl<PM: PortMapped> OpDriver for LiveDriver<'_, PM> {
    fn issue(&mut self, now: SimTime, client: NodeId, port_idx: usize) -> (u64, Option<SimTime>) {
        let port = self.ports[port_idx];
        let targets = self.interner.query_set(self.resolver, client, port);
        let solo = targets.len() == 1 && targets.contains(client);
        let mut salvaged = false;
        let (verdict, addr, meets) = match self.net.locate(client, port, targets.clone()) {
            LiveLocateOutcome::Found {
                addr,
                meets,
                dissent,
                ..
            } => {
                let verdict = classify_hit(addr, self.homes[port_idx], dissent, self.liars);
                (verdict, Some(addr), meets)
            }
            LiveLocateOutcome::NotFound => (LocateVerdict::Miss, None, Vec::new()),
            // hostile-world clients salvage the best partial answer at
            // timeout (and still run lie detection on it)
            LiveLocateOutcome::Unresolved { best, dissent, .. } => {
                match best.filter(|_| self.salvage) {
                    Some((addr, _)) => {
                        salvaged = true;
                        let verdict = classify_hit(addr, self.homes[port_idx], dissent, self.liars);
                        (verdict, Some(addr), Vec::new())
                    }
                    None => (LocateVerdict::Unresolved, None, Vec::new()),
                }
            }
        };
        let elapsed = if salvaged {
            self.op_timeout
        } else {
            virtual_elapsed(solo, verdict, self.op_timeout)
        };
        if let Some(reg) = self.registry.as_mut() {
            observe_locate(reg, verdict, elapsed, targets.len(), meets.len());
        }
        if let Some(tr) = self.tracer.as_mut() {
            // same allocation point as the simulator driver: inside the
            // shared pool code, so the ids line up attempt for attempt
            let trace = tr.next_trace_id();
            emit_locate_spans(
                tr, trace, client, port_idx, &targets, &meets, verdict, elapsed, now,
            );
        }
        let done = now + elapsed;
        let token = self.pending.len() as u64;
        self.pending.push((verdict, addr, done));
        (token, Some(done))
    }

    fn poll(
        &mut self,
        _client: NodeId,
        token: u64,
        _issued: SimTime,
        now: SimTime,
        _port_idx: usize,
    ) -> Option<(LocateVerdict, Option<NodeId>, SimTime)> {
        let (verdict, addr, done) = self.pending[token as usize];
        (now >= done).then_some((verdict, addr, done))
    }

    fn home(&self, port_idx: usize) -> NodeId {
        self.homes[port_idx]
    }
}

/// Drives one [`Workload`] against a [`LiveNet`] of `n` node threads and
/// produces a [`ScenarioReport`] with the same schema as the simulator
/// runner. The live runtime is inherently a complete network under the
/// uniform cost model (every thread can message every thread in one
/// pass), so there is no topology/cost parameter.
#[derive(Debug)]
pub struct LiveScenarioRunner<PM: PortMapped> {
    net: LiveNet,
    resolver: PM,
    interner: TargetInterner,
    spec: Workload,
    rng: StdRng,
    sampler: PopularitySampler,
    /// Port handles, index-aligned with the spec's port space.
    ports: Vec<Port>,
    /// Current true server address per port.
    homes: Vec<NodeId>,
    /// Runner-side crash view (mirrors [`LiveNet`]'s).
    crashed: Vec<bool>,
    /// Byzantine ground truth for verdict classification: `liars[v]` iff
    /// the spec gives node `v` a forging fault profile.
    liars: Vec<bool>,
    /// Emit the §2.4 robustness block (auto-on for hostile specs).
    robust: bool,
    /// Replication factor echoed in the robustness block (1 = base).
    replication: u64,
    /// Lowest sampled alive-pair survival fraction seen after any crash.
    min_survival: f64,
    /// Currently-live nodes, ascending (same draw order as the simulator
    /// runner's).
    live: Vec<NodeId>,
    acc: Acc,
    op_log: Vec<LocateRecord>,
    next_arrival: u64,
    strategy: String,
    /// Closed-loop attempt outcomes, indexed by [`OpDriver`] token: the
    /// live locate is synchronous (lock-step), so its verdict is stored at
    /// issue time together with its modelled virtual completion tick and
    /// replayed when the pool polls.
    pending: Vec<(LocateVerdict, Option<NodeId>, SimTime)>,
    /// Deterministic causal tracer (`None` = tracing off, the default).
    tracer: Option<Tracer>,
    /// Metrics registry (`None` = observability off, the default).
    registry: Option<Registry>,
    /// Measure wall-clock events/sec per phase into the report.
    wallclock: bool,
    /// Echo of the trace config's sampling rate for the file header.
    sample_rate: f64,
}

impl<PM: PortMapped> LiveScenarioRunner<PM> {
    /// Builds a live runner for `spec` over `n` node threads with
    /// `resolver` as the match-making strategy.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`Workload::validate`], `n` is 0, or the
    /// resolver universe differs from `n`.
    pub fn new(spec: Workload, n: usize, resolver: PM, strategy: &str) -> Self {
        if let Err(e) = spec.validate() {
            panic!("invalid workload {:?}: {e}", spec.name);
        }
        assert!(n > 0, "empty network");
        assert_eq!(
            n,
            resolver.node_count(),
            "resolver universe must match the network"
        );
        assert!(
            spec.faults.iter().all(|f| f.node_index < n),
            "fault node_index out of range for n = {n}"
        );
        let mut liars = vec![false; n];
        for f in &spec.faults {
            if f.fault == FaultProfile::ForgedAddress {
                liars[f.node_index] = true;
            }
        }
        let sampler = PopularitySampler::new(spec.ports, spec.popularity);
        LiveScenarioRunner {
            net: LiveNet::new(n),
            resolver,
            interner: TargetInterner::default(),
            rng: StdRng::seed_from_u64(spec.seed),
            sampler,
            ports: (0..spec.ports)
                .map(|i| Port::from_name(&format!("svc-{i}")))
                .collect(),
            homes: Vec::new(),
            crashed: vec![false; n],
            liars,
            robust: spec.hostile(),
            replication: 1,
            min_survival: 1.0,
            live: (0..n).map(NodeId::from).collect(),
            acc: Acc::default(),
            op_log: Vec::new(),
            next_arrival: 0,
            strategy: strategy.to_string(),
            pending: Vec::new(),
            tracer: None,
            registry: None,
            wallclock: false,
            sample_rate: 1.0,
            spec,
        }
    }

    /// Enables deterministic causal tracing — same trace-id allocation
    /// order and span fields as the simulator runner, so churn-free specs
    /// produce byte-identical files across the runtimes. Collect the
    /// sealed file with [`LiveScenarioRunner::run_traced`].
    pub fn set_trace(&mut self, cfg: TraceConfig) {
        self.sample_rate = cfg.sample_rate.clamp(0.0, 1.0);
        self.tracer = Some(Tracer::new(cfg));
    }

    /// Enables the metrics registry: per-phase counter/histogram
    /// snapshots appear under the report's `obs` key. (No queue-depth
    /// histogram here — the live runtime has no global event queue.)
    pub fn enable_obs(&mut self) {
        self.registry = Some(Registry::new());
    }

    /// Enables wall-clock events/sec measurement per phase.
    pub fn enable_throughput(&mut self) {
        self.wallclock = true;
    }

    /// Forces the §2.4 robustness block into the report (hostile specs
    /// enable it automatically); `replication` is echoed as the factor of
    /// the arrangement under test (1 = base).
    pub fn enable_robustness(&mut self, replication: u64) {
        self.robust = true;
        self.replication = replication.max(1);
    }

    /// Installs the spec's Byzantine fault profiles — before any posting,
    /// so the world is hostile from tick 0 (a stale-address fault pins the
    /// *setup* posting). Hostile traces get one `fault` span per profile
    /// ahead of the setup-post trees, in the same order as the simulator
    /// runner's.
    fn apply_faults(&mut self) {
        let faults = self.spec.faults.clone();
        for f in &faults {
            let node = NodeId::from(f.node_index);
            self.net.set_fault(node, f.fault);
            if let Some(tr) = self.tracer.as_mut() {
                let trace = tr.next_trace_id();
                emit_fault_span(tr, trace, node, f.fault.label());
            }
        }
    }

    /// Folds the current crash pattern into the run's minimum sampled
    /// survival fraction (robustness reporting only).
    fn observe_survival(&mut self) {
        if self.robust {
            let sf = mm_core::robust::survival_fraction_pm(
                &self.resolver,
                &self.ports,
                &self.crashed,
                64,
            );
            self.min_survival = self.min_survival.min(sf);
        }
    }

    /// Like [`LiveScenarioRunner::run`], additionally returning the
    /// sealed trace file when [`LiveScenarioRunner::set_trace`] was
    /// called.
    pub fn run_traced(self) -> (ScenarioReport, Option<TraceFile>) {
        let (report, _, trace) = self.run_all();
        (report, trace)
    }

    fn n(&self) -> usize {
        self.crashed.len()
    }

    fn register(&mut self, home: NodeId, port: Port) {
        let targets = self.interner.post_set(&self.resolver, home, port);
        self.net.register_server(home, port, targets);
    }

    /// Runs the scenario to its horizon and reports.
    pub fn run(self) -> ScenarioReport {
        self.run_logged().0
    }

    /// Like [`LiveScenarioRunner::run`], additionally returning the
    /// per-operation verdict log (one [`LocateRecord`] per primary
    /// arrival, in arrival order) for cross-runtime conformance checks.
    pub fn run_logged(self) -> (ScenarioReport, Vec<LocateRecord>) {
        let (report, log, _) = self.run_all();
        (report, log)
    }

    /// Emits the setup-post causal trees (trace ids `0..ports`, virtual
    /// tick 0) — identical to the simulator runner's.
    fn trace_setup_posts(&mut self) {
        if self.tracer.is_none() {
            return;
        }
        for i in 0..self.spec.ports {
            let home = self.homes[i];
            let targets = self.interner.post_set(&self.resolver, home, self.ports[i]);
            let tr = self.tracer.as_mut().expect("checked above");
            let trace = tr.next_trace_id();
            emit_post_spans(tr, trace, home, i, &targets, 0);
        }
    }

    /// Finishes a phase's observability: wall-clock throughput and the
    /// registry snapshot.
    fn finish_phase_obs(&mut self, report: &mut PhaseReport, events_delta: u64, wall: Instant) {
        if self.wallclock {
            let secs = wall.elapsed().as_secs_f64();
            report.throughput = Some(if secs > 0.0 {
                events_delta as f64 / secs
            } else {
                0.0
            });
        }
        if let Some(reg) = self.registry.as_mut() {
            report.obs = Some(reg.snapshot_and_reset());
        }
    }

    /// Seals the tracer (when present); `totals` must be captured from
    /// the network *before* shutdown.
    fn seal_trace(&mut self, totals: &Metrics) -> Option<TraceFile> {
        finish_trace(
            self.tracer.take(),
            &self.spec.name,
            &self.strategy,
            self.n() as u64,
            self.spec.seed,
            self.spec.ports as u64,
            self.sample_rate,
            totals.sends,
            totals.message_passes,
        )
    }

    /// The single execution path behind [`LiveScenarioRunner::run`] /
    /// [`LiveScenarioRunner::run_logged`] /
    /// [`LiveScenarioRunner::run_traced`].
    fn run_all(mut self) -> (ScenarioReport, Vec<LocateRecord>, Option<TraceFile>) {
        if self.spec.clients.is_some() {
            return self.run_logged_closed();
        }
        let predicted = predict_passes_per_locate(&self.resolver, self.n(), &self.ports);

        // --- setup: install faults, then place one server per port (same
        // RNG draws as the simulator runner; LiveNet::register_server
        // blocks until the postings are observable, the analogue of
        // `run_until(t0)`) ---
        self.apply_faults();
        for i in 0..self.spec.ports {
            let home = NodeId::from(self.rng.gen_range(0..self.n()));
            self.homes.push(home);
            let port = self.ports[i];
            self.register(home, port);
        }
        self.trace_setup_posts();

        // --- the identical deterministic timeline ---
        let timeline = Timeline::compile(&self.spec, &mut self.rng);

        // --- drive the network phase by phase, lock-step ---
        let mut reports = Vec::with_capacity(timeline.phase_bounds.len());
        let mut next = 0usize;
        for (start, end, name) in timeline.phase_bounds.iter() {
            let before = self.net.metrics();
            let wall = Instant::now();
            self.acc = Acc::default();
            while next < timeline.events.len() && timeline.events[next].0 < *end {
                let (t, ev) = timeline.events[next].clone();
                next += 1;
                self.apply(t, ev);
            }
            let after = self.net.metrics();
            let delta = after.delta(&before);
            let mut report =
                build_phase_report(name, *start, *end, &self.acc, &delta, self.spec.hostile());
            self.finish_phase_obs(&mut report, delta.events_executed, wall);
            reports.push(report);
        }
        let totals = self.net.metrics();
        let trace = self.seal_trace(&totals);
        self.net.shutdown();

        let report = self.assemble(None, timeline.horizon, predicted, reports, None);
        (report, std::mem::take(&mut self.op_log), trace)
    }

    /// The closed-loop twin of [`LiveScenarioRunner::run_logged`]: the
    /// identical [`ClientPool`] event loop as the simulator runner —
    /// offered arrivals queue for slots, wake-ups fire in virtual-time
    /// order, every random draw happens inside the shared pool code — with
    /// the locates executed synchronously on the thread network. The
    /// driver models each attempt's virtual completion tick with the
    /// uniform-cost law (0 for a pure self-query, 2 otherwise, `op_timeout`
    /// for unresolved), which on churn-free scenarios is exactly the
    /// simulator's measured elapsed — so latency percentiles match
    /// byte-for-byte across the runtimes.
    fn run_logged_closed(mut self) -> (ScenarioReport, Vec<LocateRecord>, Option<TraceFile>) {
        let predicted = predict_passes_per_locate(&self.resolver, self.n(), &self.ports);
        self.apply_faults();
        for i in 0..self.spec.ports {
            let home = NodeId::from(self.rng.gen_range(0..self.n()));
            self.homes.push(home);
            let port = self.ports[i];
            self.register(home, port);
        }
        self.trace_setup_posts();

        let timeline = Timeline::compile(&self.spec, &mut self.rng);
        let model = self.spec.clients.expect("closed-loop path");
        let mut pool = ClientPool::new(model);
        let horizon = timeline.horizon;

        let mut reports = Vec::with_capacity(timeline.phase_bounds.len());
        let mut next = 0usize;
        let last = timeline.phase_bounds.len() - 1;
        for (pi, (start, end, name)) in timeline.phase_bounds.iter().enumerate() {
            let before = self.net.metrics();
            let wall = Instant::now();
            self.acc = Acc::default();
            loop {
                let ev_t = timeline.events.get(next).map(|e| e.0).filter(|t| t < end);
                let pool_t = pool.next_wakeup().filter(|t| t < end);
                let t = match (ev_t, pool_t) {
                    (None, None) => break,
                    (a, b) => a.into_iter().chain(b).min().expect("one is Some"),
                };
                // verdicts before same-tick churn, as in the simulator
                self.service_pool(&mut pool, t);
                while next < timeline.events.len() && timeline.events[next].0 == t {
                    let (_, ev) = timeline.events[next].clone();
                    next += 1;
                    match ev {
                        Event::Arrival => {
                            let arrival = self.next_arrival;
                            self.next_arrival += 1;
                            pool.offer(t, arrival);
                        }
                        Event::Refresh => self.refresh_all(t),
                        Event::Churn(action) => self.apply_churn(t, action),
                    }
                }
                self.service_pool(&mut pool, t);
            }
            if pi == last {
                pool.freeze();
                let drain_end = horizon + self.spec.op_timeout;
                while let Some(t) = pool.next_wakeup().filter(|&t| t <= drain_end) {
                    self.service_pool(&mut pool, t);
                }
            }
            let after = self.net.metrics();
            let delta = after.delta(&before);
            let mut report =
                build_phase_report(name, *start, *end, &self.acc, &delta, self.spec.hostile());
            self.finish_phase_obs(&mut report, delta.events_executed, wall);
            reports.push(report);
        }
        let totals = self.net.metrics();
        let trace = self.seal_trace(&totals);
        self.net.shutdown();

        let records = pool.into_records();
        let (phase_stats, windows) =
            build_closed_loop(&records, &timeline.phase_bounds, horizon, model.window);
        for (report, stats) in reports.iter_mut().zip(phase_stats) {
            report.closed_loop = Some(stats);
        }
        let report = self.assemble(
            Some(model.clients as u64),
            horizon,
            predicted,
            reports,
            Some(windows),
        );
        // the pool logs at final-verdict time (a retried op can finish
        // after later arrivals); the documented contract is arrival order
        let mut log = std::mem::take(&mut self.op_log);
        log.sort_by_key(|r| r.arrival);
        (report, log, trace)
    }

    /// One [`ClientPool::service`] call with the thread network behind the
    /// [`OpDriver`] seam.
    fn service_pool(&mut self, pool: &mut ClientPool, now: SimTime) {
        let mut driver = LiveDriver {
            net: &self.net,
            interner: &mut self.interner,
            resolver: &self.resolver,
            ports: &self.ports,
            homes: &self.homes,
            liars: &self.liars,
            salvage: self.spec.hostile(),
            op_timeout: self.spec.op_timeout,
            pending: &mut self.pending,
            tracer: &mut self.tracer,
            registry: &mut self.registry,
        };
        pool.service(
            now,
            &mut driver,
            &mut self.rng,
            &self.live,
            &self.sampler,
            &mut self.acc,
            &mut self.op_log,
        );
    }

    /// Assembles the scenario-level report envelope.
    fn assemble(
        &self,
        clients: Option<u64>,
        horizon: SimTime,
        predicted: f64,
        phases: Vec<crate::report::PhaseReport>,
        windows: Option<Vec<crate::report::WindowReport>>,
    ) -> ScenarioReport {
        ScenarioReport {
            scenario: self.spec.name.clone(),
            strategy: self.strategy.clone(),
            cost_model: "uniform".to_string(),
            topology: "live-threads".to_string(),
            n: self.n() as u64,
            seed: self.spec.seed,
            ports: self.spec.ports as u64,
            clients,
            horizon,
            predicted_passes_per_locate: predicted,
            phases,
            windows,
            robustness: self.robust.then(|| RobustnessReport {
                max_tolerated_faults: mm_core::robust::max_tolerated_faults_pm(
                    &self.resolver,
                    &self.ports,
                    64,
                ) as u64,
                min_survival_fraction: self.min_survival,
                byzantine_nodes: self.spec.faults.len() as u64,
                replication: self.replication,
            }),
        }
    }

    /// Applies one timeline event, blocking until its effects are
    /// observable (lock-step). All random draws go through the shared
    /// decision layer ([`draw_arrival`]/[`resolve_churn`]) so the
    /// RNG-consumption order is provably identical to the simulator
    /// runner's.
    fn apply(&mut self, t: SimTime, ev: Event) {
        match ev {
            Event::Arrival => {
                let Some((client, port_idx)) =
                    draw_arrival(&mut self.rng, &self.live, &self.sampler)
                else {
                    return; // total outage: the open-loop client is dead too
                };
                let arrival = self.next_arrival;
                self.next_arrival += 1;
                self.locate_and_classify(t, arrival, client, port_idx);
            }
            Event::Refresh => self.refresh_all(t),
            Event::Churn(action) => self.apply_churn(t, action),
        }
    }

    /// Feeds one classified locate into the tracer/registry using the
    /// virtual-timing law (never wall clocks — the trace must be
    /// byte-identical to the simulator's on churn-free specs). Returns the
    /// virtual elapsed and fan-out width for the follow-up request span.
    #[allow(clippy::too_many_arguments)]
    fn observe_locate_verdict(
        &mut self,
        trace: Option<u64>,
        client: NodeId,
        port_idx: usize,
        issued: SimTime,
        verdict: LocateVerdict,
        meets: &[NodeId],
        salvaged: bool,
    ) -> (u64, u32) {
        if self.tracer.is_none() && self.registry.is_none() {
            return (0, 0);
        }
        let port = self.ports[port_idx];
        let targets = self.interner.query_set(&self.resolver, client, port);
        let solo = targets.len() == 1 && targets.contains(client);
        // a salvaged verdict was decided by the client's own timeout, not
        // by the slowest reply — its elapsed is the full wait
        let elapsed = if salvaged {
            self.spec.op_timeout
        } else {
            virtual_elapsed(solo, verdict, self.spec.op_timeout)
        };
        if let Some(reg) = self.registry.as_mut() {
            observe_locate(reg, verdict, elapsed, targets.len(), meets.len());
        }
        if let (Some(tr), Some(trace)) = (self.tracer.as_mut(), trace) {
            emit_locate_spans(
                tr, trace, client, port_idx, &targets, meets, verdict, elapsed, issued,
            );
        }
        (elapsed, targets.len() as u32)
    }

    /// One full client interaction: locate, classify, and (when the spec
    /// asks for it) call the located server with the §1.3 stale-recovery
    /// retry loop — the synchronous equivalent of the simulator runner's
    /// issue/drain split.
    fn locate_and_classify(&mut self, t: SimTime, arrival: u64, client: NodeId, port_idx: usize) {
        let port = self.ports[port_idx];
        self.acc.issued += 1;
        // same allocation point as the simulator runner: at the arrival,
        // before the operation runs
        let trace = self.tracer.as_mut().map(Tracer::next_trace_id);
        let (verdict, addr, meets, salvaged) = self.locate_once(client, port_idx);
        let (elapsed, fanout) =
            self.observe_locate_verdict(trace, client, port_idx, t, verdict, &meets, salvaged);
        self.op_log.push(LocateRecord {
            arrival,
            at: t,
            client,
            port_idx,
            verdict,
            addr,
        });
        let Some(addr) = addr else { return };
        if !self.spec.request_after_locate || verdict == LocateVerdict::DetectedLie {
            // a detected lie is final: the client rejects the address and
            // never calls it, exactly as in the simulator's drain
            return;
        }
        if let Some(trace) = trace {
            let tr = self.tracer.as_mut().expect("trace id implies tracer");
            emit_request_span(tr, trace, fanout + 1, client, addr, port_idx, t + elapsed);
        }
        match self.net.request(client, addr, port, 1) {
            Some(LiveRequestOutcome::Replied { .. }) => self.acc.requests_ok += 1,
            Some(LiveRequestOutcome::StaleAddress) => {
                // §1.3 recovery: re-locate and try again, once. Unreachable
                // under pure lock-step (nothing migrates mid-operation) but
                // kept for parity with the simulator's recovery loop.
                self.acc.stale_requests += 1;
                self.acc.issued += 1;
                let (retry_verdict, retry_addr, retry_meets, retry_salvaged) =
                    self.locate_once(client, port_idx);
                // stale-recovery retries stay out of the trace (no id), but
                // feed the registry, as in the simulator runner
                self.observe_locate_verdict(
                    None,
                    client,
                    port_idx,
                    t,
                    retry_verdict,
                    &retry_meets,
                    retry_salvaged,
                );
                if retry_verdict != LocateVerdict::DetectedLie {
                    if retry_verdict == LocateVerdict::Hit
                        && retry_addr == Some(self.homes[port_idx])
                    {
                        self.acc.recoveries += 1;
                    }
                    if let Some(a) = retry_addr {
                        match self.net.request(client, a, port, 1) {
                            Some(LiveRequestOutcome::Replied { .. }) => self.acc.requests_ok += 1,
                            Some(LiveRequestOutcome::StaleAddress) => self.acc.stale_requests += 1,
                            None => self.acc.request_timeouts += 1,
                        }
                    }
                }
            }
            None => self.acc.request_timeouts += 1,
        }
    }

    /// Issues one locate and folds its verdict into the accumulator.
    /// The trailing `bool` marks a salvaged verdict (hostile-world policy:
    /// the best partial answer, adopted at timeout).
    fn locate_once(
        &mut self,
        client: NodeId,
        port_idx: usize,
    ) -> (LocateVerdict, Option<NodeId>, Vec<NodeId>, bool) {
        let port = self.ports[port_idx];
        let targets = self.interner.query_set(&self.resolver, client, port);
        self.acc.completed += 1;
        match self.net.locate(client, port, targets) {
            LiveLocateOutcome::Found {
                addr,
                meets,
                dissent,
                ..
            } => {
                let verdict = self.classify_and_count(addr, port_idx, dissent);
                (verdict, Some(addr), meets, false)
            }
            LiveLocateOutcome::NotFound => {
                self.acc.misses += 1;
                (LocateVerdict::Miss, None, Vec::new(), false)
            }
            LiveLocateOutcome::Unresolved { best, dissent, .. } => {
                match best.filter(|_| self.spec.hostile()) {
                    // hostile-world clients salvage the best partial
                    // answer at timeout: a crashed rendezvous must not
                    // sever an alive pair that a surviving replica still
                    // serves (§2.4) — lie detection still runs on it
                    Some((addr, _)) => {
                        let verdict = self.classify_and_count(addr, port_idx, dissent);
                        (verdict, Some(addr), Vec::new(), true)
                    }
                    None => {
                        self.acc.unresolved += 1;
                        (LocateVerdict::Unresolved, None, Vec::new(), false)
                    }
                }
            }
        }
    }

    /// Classifies one located address against the port's ground truth and
    /// folds the verdict into the accumulator.
    fn classify_and_count(
        &mut self,
        addr: NodeId,
        port_idx: usize,
        dissent: usize,
    ) -> LocateVerdict {
        let verdict = classify_hit(addr, self.homes[port_idx], dissent, &self.liars);
        match verdict {
            LocateVerdict::Hit => {
                self.acc.hits += 1;
                if addr != self.homes[port_idx] {
                    self.acc.stale_results += 1;
                }
            }
            // the dissenting honest answer exposed the forgery: the
            // client discards the address and never calls it
            LocateVerdict::DetectedLie => self.acc.detected_lie += 1,
            // the forgery escaped; the follow-up call bounces off the
            // non-serving liar and the §1.3 loop re-locates
            LocateVerdict::FalseMatch => self.acc.false_match += 1,
            _ => unreachable!("classify_hit never yields {verdict:?}"),
        }
        verdict
    }

    fn refresh_all(&mut self, t: SimTime) {
        for i in 0..self.homes.len() {
            let home = self.homes[i];
            if !self.crashed[home.index()] {
                let port = self.ports[i];
                self.register(home, port);
                if let Some(tr) = self.tracer.as_mut() {
                    let targets = self.interner.post_set(&self.resolver, home, port);
                    let trace = tr.next_trace_id();
                    emit_post_spans(tr, trace, home, i, &targets, t);
                }
            }
        }
    }

    fn crash_node(&mut self, v: NodeId) {
        debug_assert!(!self.crashed[v.index()]);
        self.crashed[v.index()] = true;
        if let Ok(pos) = self.live.binary_search(&v) {
            self.live.remove(pos);
        }
        self.net.crash(v);
    }

    fn restore_node(&mut self, v: NodeId, clear_cache: bool) {
        debug_assert!(self.crashed[v.index()]);
        self.crashed[v.index()] = false;
        if let Err(pos) = self.live.binary_search(&v) {
            self.live.insert(pos, v);
        }
        self.net.restore(v);
        if clear_cache {
            self.net.clear_cache(v);
        }
    }

    fn apply_churn(&mut self, t: SimTime, action: ChurnAction) {
        let resolved = resolve_churn(
            &action,
            &mut self.rng,
            &self.live,
            &self.crashed,
            &self.homes,
        );
        let mut any_crash = false;
        for r in resolved {
            match r {
                ResolvedChurn::Crash(v) => {
                    any_crash = true;
                    self.crash_node(v)
                }
                ResolvedChurn::Restore { node, clear_cache } => {
                    self.restore_node(node, clear_cache)
                }
                ResolvedChurn::Migrate { port_idx, from, to } => {
                    let port = self.ports[port_idx];
                    let targets = self.interner.post_set(&self.resolver, to, port);
                    self.net.migrate_server(port, from, to, targets);
                    self.homes[port_idx] = to;
                }
                ResolvedChurn::ClearAllCaches => {
                    for vi in 0..self.n() {
                        self.net.clear_cache(NodeId::from(vi));
                    }
                }
                ResolvedChurn::RefreshAll => self.refresh_all(t),
            }
        }
        if any_crash {
            self.observe_survival();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;
    use mm_core::strategies::{Checkerboard, HashLocate};

    fn run_live(name: &str, n: usize, seed: u64) -> ScenarioReport {
        let spec = scenarios::by_name(name, n, seed).expect("library scenario");
        LiveScenarioRunner::new(spec, n, Checkerboard::new(n), "checkerboard").run()
    }

    #[test]
    fn live_steady_state_hits_at_theory_cost() {
        let r = run_live("steady-state", 16, 7);
        assert_eq!(r.phases.len(), 3);
        assert!(r.hit_rate() > 0.99, "hit rate {}", r.hit_rate());
        // 2·sqrt(16) = 8 passes per warm locate; the live runtime pays
        // exactly the model cost minus free self-messages
        assert!((r.predicted_passes_per_locate - 8.0).abs() < 1e-9);
        assert!(r.passes_per_locate() <= 8.0);
        assert!(r.passes_per_locate() > 6.0);
    }

    #[test]
    fn live_rolling_churn_degrades_then_recovers() {
        let r = run_live("rolling-churn", 16, 7);
        let churning = r.phases.iter().find(|p| p.name == "churning").unwrap();
        let recovered = r.phases.iter().find(|p| p.name == "recovered").unwrap();
        assert!(churning.crashes > 0);
        assert!(churning.unresolved > 0, "crashed rendezvous leave timeouts");
        assert!(churning.dropped > 0, "messages die at crashed nodes");
        assert!(
            recovered.hit_rate > 0.99,
            "refresh heals: {}",
            recovered.hit_rate
        );
    }

    #[test]
    fn live_migrate_under_load_sustains_requests() {
        let r = run_live("migrate-under-load", 16, 7);
        let ok: u64 = r.phases.iter().map(|p| p.requests_ok).sum();
        assert!(ok > 1000, "requests keep flowing through migrations: {ok}");
        assert_eq!(
            r.phases.iter().map(|p| p.request_timeouts).sum::<u64>(),
            0,
            "no server ever crashes in this scenario"
        );
    }

    #[test]
    fn live_hash_locate_runs_the_same_workload() {
        let n = 16;
        let spec = scenarios::steady_state(11);
        let r = LiveScenarioRunner::new(spec, n, HashLocate::new(n, 3), "hash").run();
        assert!(r.hit_rate() > 0.99);
        assert!((r.predicted_passes_per_locate - 6.0).abs() < 1e-9);
    }

    #[test]
    fn live_runs_are_deterministic_given_a_seed() {
        let a = serde_json::to_string(&run_live("cold-vs-warm-cache", 16, 5)).unwrap();
        let b = serde_json::to_string(&run_live("cold-vs-warm-cache", 16, 5)).unwrap();
        assert_eq!(a, b, "lock-step live runs reproduce byte-identically");
    }

    /// The closed-loop pool drives the thread network too: the ramp's
    /// knee (monotone p99 queueing delay, flat service latency) must be
    /// measurable on real threads, deterministically.
    #[test]
    fn live_overload_ramp_finds_the_same_knee() {
        let r = run_live("overload-ramp", 16, 7);
        assert_eq!(r.clients, Some(24));
        let stats: Vec<_> = r
            .phases
            .iter()
            .map(|p| p.closed_loop.as_ref().expect("closed-loop stats"))
            .collect();
        assert!(
            stats[2].queue_delay_p99 < stats[3].queue_delay_p99
                && stats[3].queue_delay_p99 < stats[4].queue_delay_p99,
            "p99 queueing delay must climb past the knee"
        );
        assert!(stats.iter().all(|s| s.latency_p99 <= 2.0));
        assert!(r.windows.is_some());
        let a = serde_json::to_string(&run_live("overload-ramp", 16, 7)).unwrap();
        let b = serde_json::to_string(&run_live("overload-ramp", 16, 7)).unwrap();
        assert_eq!(a, b, "closed-loop live runs reproduce byte-identically");
    }

    /// Closed-loop retries against a churny network: the recovery
    /// scenario must burn retry budget during the outage and settle back,
    /// and the op log must come back in arrival order even though retried
    /// operations reach their final verdict after later arrivals.
    #[test]
    fn live_flash_crowd_recovery_retries_through_the_outage() {
        let spec = scenarios::by_name("flash-crowd-recovery", 16, 7).unwrap();
        let (r, log) =
            LiveScenarioRunner::new(spec, 16, Checkerboard::new(16), "checkerboard").run_logged();
        assert!(
            log.windows(2).all(|w| w[0].arrival < w[1].arrival),
            "op log must be sorted by arrival"
        );
        let total_retries: u64 = r
            .phases
            .iter()
            .map(|p| p.closed_loop.as_ref().unwrap().retries)
            .sum();
        assert!(total_retries > 0, "the outage must trigger retries");
        let last = r.windows.as_ref().unwrap().last().unwrap().clone();
        assert!(
            last.latency_p99 <= 2.0,
            "latency must settle by the horizon: {}",
            last.latency_p99
        );
    }
}
