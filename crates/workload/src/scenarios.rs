//! The built-in scenario library.
//!
//! Seven production-shaped workloads, each parameterized by node count
//! and seed. Durations scale with nothing — a scenario is the same length
//! at `n = 64` and `n = 65536`; what changes is the per-node pressure,
//! which is exactly what the phase reports measure.
//!
//! | scenario | stresses |
//! |---|---|
//! | [`steady_state`] | baseline throughput and cost under constant load |
//! | [`flash_crowd`] | Zipf-skewed demand spiking onto one hot service |
//! | [`rolling_churn`] | locates under waves of crash/restore (cache loss) |
//! | [`migrate_under_load`] | stale-address recovery while servers move |
//! | [`cold_vs_warm_cache`] | miss behaviour after a total cache wipe |
//! | [`overload_ramp`] | closed-loop saturation: queueing delay past the knee |
//! | [`flash_crowd_recovery`] | closed-loop retries through a mid-crowd outage |

use crate::spec::{
    ArrivalProcess, ChurnAction, ChurnEvent, ClientModel, Phase, PortPopularity, ThinkTime,
    Workload,
};

/// Default client timeout used by the library scenarios. This is the
/// uniform-cost-model budget; under [`mm_sim::CostModel::Hops`] the
/// runner stretches it to cover a store-and-forward round trip
/// (≈ 2·diameter) on the actual topology, so sparse networks don't
/// misreport slow-but-healthy answers as unresolved.
pub const OP_TIMEOUT: u64 = 64;

/// Names of the open-loop library scenarios, in canonical order. Kept to
/// exactly the historical five so sweeps over `ALL` (and their JSON
/// output) stay byte-compatible; the closed-loop additions live in
/// [`CLOSED_LOOP`].
pub const ALL: [&str; 5] = [
    "steady-state",
    "flash-crowd",
    "rolling-churn",
    "migrate-under-load",
    "cold-vs-warm-cache",
];

/// Names of the closed-loop library scenarios ([`overload_ramp`],
/// [`flash_crowd_recovery`]).
pub const CLOSED_LOOP: [&str; 2] = ["overload-ramp", "flash-crowd-recovery"];

/// Builds a library scenario by name.
///
/// `n` is only used to scale churn widths (a fraction of the network);
/// the arrival rates are per-tick and topology-independent.
///
/// Returns `None` for unknown names.
pub fn by_name(name: &str, n: usize, seed: u64) -> Option<Workload> {
    match name {
        "steady-state" => Some(steady_state(seed)),
        "flash-crowd" => Some(flash_crowd(seed)),
        "rolling-churn" => Some(rolling_churn(n, seed)),
        "migrate-under-load" => Some(migrate_under_load(seed)),
        "cold-vs-warm-cache" => Some(cold_vs_warm_cache(seed)),
        "overload-ramp" => Some(overload_ramp(seed)),
        "flash-crowd-recovery" => Some(flash_crowd_recovery(n, seed)),
        _ => None,
    }
}

/// Constant moderate load, no disturbance: the baseline every other
/// scenario is compared against.
pub fn steady_state(seed: u64) -> Workload {
    Workload {
        name: "steady-state".into(),
        seed,
        ports: 8,
        popularity: PortPopularity::Uniform,
        phases: vec![
            Phase::new("warmup", 400, ArrivalProcess::FixedRate { interval: 4 }),
            Phase::new("steady", 2000, ArrivalProcess::Poisson { rate: 0.5 }),
            Phase::new("cooldown", 400, ArrivalProcess::FixedRate { interval: 8 }),
        ],
        churn: vec![],
        refresh_interval: Some(500),
        request_after_locate: false,
        op_timeout: OP_TIMEOUT,
        clients: None,
    }
}

/// Zipf-skewed demand with a 10× arrival spike in the middle: the hot
/// port's rendezvous nodes absorb the crowd (watch `load_p99`).
pub fn flash_crowd(seed: u64) -> Workload {
    Workload {
        name: "flash-crowd".into(),
        seed,
        ports: 16,
        popularity: PortPopularity::Zipf { exponent: 1.2 },
        phases: vec![
            Phase::new("calm", 800, ArrivalProcess::Poisson { rate: 0.2 }),
            Phase::new("spike", 600, ArrivalProcess::Poisson { rate: 2.0 }),
            Phase::new("decay", 800, ArrivalProcess::Poisson { rate: 0.2 }),
        ],
        churn: vec![],
        refresh_interval: Some(500),
        request_after_locate: false,
        op_timeout: OP_TIMEOUT,
        clients: None,
    }
}

/// Waves of infrastructure churn under sustained load: a slice of the
/// network crashes, lives through a degraded window, restores with cold
/// caches, and the periodic refresh heals the posts — three times over.
pub fn rolling_churn(n: usize, seed: u64) -> Workload {
    let wave = (n / 8).max(1);
    let mut churn = Vec::new();
    for k in 0..3u64 {
        let base = 500 + k * 800;
        churn.push(ChurnEvent {
            at: base,
            action: ChurnAction::CrashRandom {
                count: wave,
                spare_servers: true,
            },
        });
        churn.push(ChurnEvent {
            at: base + 400,
            action: ChurnAction::RestoreAll { clear_caches: true },
        });
    }
    Workload {
        name: "rolling-churn".into(),
        seed,
        ports: 8,
        popularity: PortPopularity::Uniform,
        phases: vec![
            Phase::new("warmup", 400, ArrivalProcess::FixedRate { interval: 4 }),
            Phase::new("churning", 2400, ArrivalProcess::Poisson { rate: 0.5 }),
            Phase::new("recovered", 500, ArrivalProcess::Poisson { rate: 0.5 }),
        ],
        churn,
        refresh_interval: Some(200),
        request_after_locate: false,
        op_timeout: OP_TIMEOUT,
        clients: None,
    }
}

/// Services migrate every 120 ticks while clients locate *and call* them:
/// measures the §1.3 stale-address recovery loop under load
/// (`stale_requests` bounced, `staleness_recoveries` healed).
pub fn migrate_under_load(seed: u64) -> Workload {
    let mut churn = Vec::new();
    for k in 0..14u64 {
        churn.push(ChurnEvent {
            at: 400 + k * 120,
            action: ChurnAction::MigrateRandom {
                port_index: (k % 4) as usize,
            },
        });
    }
    Workload {
        name: "migrate-under-load".into(),
        seed,
        ports: 4,
        popularity: PortPopularity::Zipf { exponent: 0.8 },
        phases: vec![
            Phase::new("warmup", 400, ArrivalProcess::FixedRate { interval: 4 }),
            Phase::new("migrating", 1700, ArrivalProcess::Poisson { rate: 1.0 }),
            Phase::new("settled", 400, ArrivalProcess::Poisson { rate: 1.0 }),
        ],
        churn,
        refresh_interval: Some(400),
        request_after_locate: true,
        op_timeout: OP_TIMEOUT,
        clients: None,
    }
}

/// Identical load before and after a total rendezvous-cache wipe, with a
/// slow refresh cadence: the cold phase shows misses/unresolved piling up
/// until the next refresh re-posts everything.
pub fn cold_vs_warm_cache(seed: u64) -> Workload {
    Workload {
        name: "cold-vs-warm-cache".into(),
        seed,
        ports: 8,
        popularity: PortPopularity::Uniform,
        phases: vec![
            Phase::new("warm", 1000, ArrivalProcess::Poisson { rate: 0.5 }),
            Phase::new("cold", 300, ArrivalProcess::Poisson { rate: 0.5 }),
            Phase::new("re-warmed", 700, ArrivalProcess::Poisson { rate: 0.5 }),
        ],
        // the wipe lands exactly at the warm/cold boundary; the refresh
        // cadence (tick 1300 = warm duration + cold duration) re-posts at
        // the cold/re-warmed boundary
        churn: vec![ChurnEvent {
            at: 1000,
            action: ChurnAction::ClearAllCaches,
        }],
        refresh_interval: Some(1300),
        request_after_locate: false,
        op_timeout: OP_TIMEOUT,
        clients: None,
    }
}

/// Closed-loop saturation sweep: a fixed pool of 24 clients (service ≈ 2
/// ticks + 2 ticks think ⇒ capacity ≈ 6 dispatches/tick) faces an offered
/// Poisson rate ramping from well under to well over that capacity.
/// Under the knee, queueing delay is ~0 and latency is the pure service
/// cost; past it, the dispatch queue — and its p99 delay — grows without
/// bound, and the tail of the ramp is abandoned at the horizon. This is
/// the regime the paper's one-shot experiments cannot see.
pub fn overload_ramp(seed: u64) -> Workload {
    let rates = [
        ("light", 2.0),
        ("approach", 4.0),
        ("knee", 8.0),
        ("overload", 12.0),
        ("collapse", 16.0),
    ];
    Workload {
        name: "overload-ramp".into(),
        seed,
        ports: 8,
        popularity: PortPopularity::Uniform,
        phases: rates
            .iter()
            .map(|&(name, rate)| Phase::new(name, 500, ArrivalProcess::Poisson { rate }))
            .collect(),
        churn: vec![],
        refresh_interval: Some(500),
        request_after_locate: false,
        op_timeout: OP_TIMEOUT,
        clients: Some(ClientModel {
            clients: 24,
            think: ThinkTime::Fixed { ticks: 2 },
            retry_budget: 1,
            retry_backoff: 8,
            window: 250,
        }),
    }
}

/// Closed-loop flash crowd with a mid-spike outage: a quarter of the
/// network (servers included) crashes during the crowd, so in-flight
/// locates time out, clients burn their retry budgets against dead
/// rendezvous nodes, and the occupied pool backs the crowd up in the
/// dispatch queue. After the restore, the refresh cadence re-posts the
/// services and the time-series windows show the latency spike draining
/// back to the steady baseline — convergence-under-perturbation measured
/// as recovery time, not as a success bit.
pub fn flash_crowd_recovery(n: usize, seed: u64) -> Workload {
    Workload {
        name: "flash-crowd-recovery".into(),
        seed,
        ports: 8,
        popularity: PortPopularity::Zipf { exponent: 1.1 },
        phases: vec![
            Phase::new("calm", 600, ArrivalProcess::Poisson { rate: 2.0 }),
            Phase::new("crowd", 800, ArrivalProcess::Poisson { rate: 4.0 }),
            Phase::new("recovery", 600, ArrivalProcess::Poisson { rate: 2.0 }),
        ],
        churn: vec![
            ChurnEvent {
                at: 700,
                action: ChurnAction::CrashRandom {
                    count: (n / 4).max(1),
                    spare_servers: false,
                },
            },
            ChurnEvent {
                at: 1_100,
                action: ChurnAction::RestoreAll { clear_caches: true },
            },
        ],
        refresh_interval: Some(200),
        request_after_locate: false,
        op_timeout: OP_TIMEOUT,
        clients: Some(ClientModel {
            clients: 48,
            think: ThinkTime::Fixed { ticks: 1 },
            retry_budget: 2,
            retry_backoff: 16,
            window: 200,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_library_scenario_validates() {
        for name in ALL.iter().chain(&CLOSED_LOOP) {
            let w = by_name(name, 64, 7).expect("known scenario");
            w.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(&w.name, name);
        }
        assert!(by_name("nope", 64, 7).is_none());
    }

    #[test]
    fn open_loop_library_stays_open_loop() {
        // the historical five must keep `clients: None` (their JSON is a
        // compatibility surface); the closed-loop library must not
        for name in ALL {
            assert!(by_name(name, 64, 7).unwrap().clients.is_none(), "{name}");
        }
        for name in CLOSED_LOOP {
            assert!(by_name(name, 64, 7).unwrap().clients.is_some(), "{name}");
        }
    }

    #[test]
    fn churn_widths_scale_with_n() {
        let small = rolling_churn(8, 1);
        let big = rolling_churn(1024, 1);
        let width = |w: &Workload| match w.churn[0].action {
            ChurnAction::CrashRandom { count, .. } => count,
            _ => unreachable!(),
        };
        assert_eq!(width(&small), 1);
        assert_eq!(width(&big), 128);
    }
}
