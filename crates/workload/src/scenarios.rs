//! The built-in scenario library.
//!
//! Seven production-shaped workloads, each parameterized by node count
//! and seed. Durations scale with nothing — a scenario is the same length
//! at `n = 64` and `n = 65536`; what changes is the per-node pressure,
//! which is exactly what the phase reports measure.
//!
//! | scenario | stresses |
//! |---|---|
//! | [`steady_state`] | baseline throughput and cost under constant load |
//! | [`flash_crowd`] | Zipf-skewed demand spiking onto one hot service |
//! | [`rolling_churn`] | locates under waves of crash/restore (cache loss) |
//! | [`migrate_under_load`] | stale-address recovery while servers move |
//! | [`cold_vs_warm_cache`] | miss behaviour after a total cache wipe |
//! | [`overload_ramp`] | closed-loop saturation: queueing delay past the knee |
//! | [`flash_crowd_recovery`] | closed-loop retries through a mid-crowd outage |
//!
//! The hostile-world additions ([`HOSTILE`]) go beyond fail-stop churn:
//!
//! | scenario | stresses |
//! |---|---|
//! | [`rack_failure`] | correlated row-kills: one grid row, then two aligned rows |
//! | [`byzantine_liars`] | forged-address nodes out-bidding honest rendezvous |
//! | [`rendezvous_skew`] | the whole offered load aimed at one port's row |
//!
//! Each also has a closed-loop `-closed` variant (same hostility, driven
//! by a retrying client pool so recovery shows up as latency, not lost
//! arrivals).

use crate::spec::{
    ArrivalProcess, ChurnAction, ChurnEvent, ClientModel, FaultSpec, Phase, PortPopularity,
    ThinkTime, Workload,
};
use mm_proto::FaultProfile;

/// Default client timeout used by the library scenarios. This is the
/// uniform-cost-model budget; under [`mm_sim::CostModel::Hops`] the
/// runner stretches it to cover a store-and-forward round trip
/// (≈ 2·diameter) on the actual topology, so sparse networks don't
/// misreport slow-but-healthy answers as unresolved.
pub const OP_TIMEOUT: u64 = 64;

/// Names of the open-loop library scenarios, in canonical order. Kept to
/// exactly the historical five so sweeps over `ALL` (and their JSON
/// output) stay byte-compatible; the closed-loop additions live in
/// [`CLOSED_LOOP`].
pub const ALL: [&str; 5] = [
    "steady-state",
    "flash-crowd",
    "rolling-churn",
    "migrate-under-load",
    "cold-vs-warm-cache",
];

/// Names of the closed-loop library scenarios ([`overload_ramp`],
/// [`flash_crowd_recovery`]).
pub const CLOSED_LOOP: [&str; 2] = ["overload-ramp", "flash-crowd-recovery"];

/// Names of the hostile-world scenarios: three open-loop plus their
/// closed-loop `-closed` variants. All are seed-deterministic — every
/// adversarial choice (which rows die, which nodes lie, which port is
/// hammered) is derived from the scenario seed at build time, so the spec
/// carries explicit node lists and the runner draws nothing extra.
pub const HOSTILE: [&str; 6] = [
    "rack-failure",
    "byzantine-liars",
    "rendezvous-skew",
    "rack-failure-closed",
    "byzantine-liars-closed",
    "rendezvous-skew-closed",
];

/// Builds a library scenario by name.
///
/// `n` is only used to scale churn widths (a fraction of the network);
/// the arrival rates are per-tick and topology-independent.
///
/// Returns `None` for unknown names.
pub fn by_name(name: &str, n: usize, seed: u64) -> Option<Workload> {
    match name {
        "steady-state" => Some(steady_state(seed)),
        "flash-crowd" => Some(flash_crowd(seed)),
        "rolling-churn" => Some(rolling_churn(n, seed)),
        "migrate-under-load" => Some(migrate_under_load(seed)),
        "cold-vs-warm-cache" => Some(cold_vs_warm_cache(seed)),
        "overload-ramp" => Some(overload_ramp(seed)),
        "flash-crowd-recovery" => Some(flash_crowd_recovery(n, seed)),
        "rack-failure" => Some(rack_failure(n, seed, false)),
        "byzantine-liars" => Some(byzantine_liars(n, seed, false)),
        "rendezvous-skew" => Some(rendezvous_skew(n, seed, false)),
        "rack-failure-closed" => Some(rack_failure(n, seed, true)),
        "byzantine-liars-closed" => Some(byzantine_liars(n, seed, true)),
        "rendezvous-skew-closed" => Some(rendezvous_skew(n, seed, true)),
        _ => None,
    }
}

/// Constant moderate load, no disturbance: the baseline every other
/// scenario is compared against.
pub fn steady_state(seed: u64) -> Workload {
    Workload {
        name: "steady-state".into(),
        seed,
        ports: 8,
        popularity: PortPopularity::Uniform,
        phases: vec![
            Phase::new("warmup", 400, ArrivalProcess::FixedRate { interval: 4 }),
            Phase::new("steady", 2000, ArrivalProcess::Poisson { rate: 0.5 }),
            Phase::new("cooldown", 400, ArrivalProcess::FixedRate { interval: 8 }),
        ],
        churn: vec![],
        refresh_interval: Some(500),
        request_after_locate: false,
        op_timeout: OP_TIMEOUT,
        clients: None,
        faults: vec![],
    }
}

/// Zipf-skewed demand with a 10× arrival spike in the middle: the hot
/// port's rendezvous nodes absorb the crowd (watch `load_p99`).
pub fn flash_crowd(seed: u64) -> Workload {
    Workload {
        name: "flash-crowd".into(),
        seed,
        ports: 16,
        popularity: PortPopularity::Zipf { exponent: 1.2 },
        phases: vec![
            Phase::new("calm", 800, ArrivalProcess::Poisson { rate: 0.2 }),
            Phase::new("spike", 600, ArrivalProcess::Poisson { rate: 2.0 }),
            Phase::new("decay", 800, ArrivalProcess::Poisson { rate: 0.2 }),
        ],
        churn: vec![],
        refresh_interval: Some(500),
        request_after_locate: false,
        op_timeout: OP_TIMEOUT,
        clients: None,
        faults: vec![],
    }
}

/// Waves of infrastructure churn under sustained load: a slice of the
/// network crashes, lives through a degraded window, restores with cold
/// caches, and the periodic refresh heals the posts — three times over.
pub fn rolling_churn(n: usize, seed: u64) -> Workload {
    let wave = (n / 8).max(1);
    let mut churn = Vec::new();
    for k in 0..3u64 {
        let base = 500 + k * 800;
        churn.push(ChurnEvent {
            at: base,
            action: ChurnAction::CrashRandom {
                count: wave,
                spare_servers: true,
            },
        });
        churn.push(ChurnEvent {
            at: base + 400,
            action: ChurnAction::RestoreAll { clear_caches: true },
        });
    }
    Workload {
        name: "rolling-churn".into(),
        seed,
        ports: 8,
        popularity: PortPopularity::Uniform,
        phases: vec![
            Phase::new("warmup", 400, ArrivalProcess::FixedRate { interval: 4 }),
            Phase::new("churning", 2400, ArrivalProcess::Poisson { rate: 0.5 }),
            Phase::new("recovered", 500, ArrivalProcess::Poisson { rate: 0.5 }),
        ],
        churn,
        refresh_interval: Some(200),
        request_after_locate: false,
        op_timeout: OP_TIMEOUT,
        clients: None,
        faults: vec![],
    }
}

/// Services migrate every 120 ticks while clients locate *and call* them:
/// measures the §1.3 stale-address recovery loop under load
/// (`stale_requests` bounced, `staleness_recoveries` healed).
pub fn migrate_under_load(seed: u64) -> Workload {
    let mut churn = Vec::new();
    for k in 0..14u64 {
        churn.push(ChurnEvent {
            at: 400 + k * 120,
            action: ChurnAction::MigrateRandom {
                port_index: (k % 4) as usize,
            },
        });
    }
    Workload {
        name: "migrate-under-load".into(),
        seed,
        ports: 4,
        popularity: PortPopularity::Zipf { exponent: 0.8 },
        phases: vec![
            Phase::new("warmup", 400, ArrivalProcess::FixedRate { interval: 4 }),
            Phase::new("migrating", 1700, ArrivalProcess::Poisson { rate: 1.0 }),
            Phase::new("settled", 400, ArrivalProcess::Poisson { rate: 1.0 }),
        ],
        churn,
        refresh_interval: Some(400),
        request_after_locate: true,
        op_timeout: OP_TIMEOUT,
        clients: None,
        faults: vec![],
    }
}

/// Identical load before and after a total rendezvous-cache wipe, with a
/// slow refresh cadence: the cold phase shows misses/unresolved piling up
/// until the next refresh re-posts everything.
pub fn cold_vs_warm_cache(seed: u64) -> Workload {
    Workload {
        name: "cold-vs-warm-cache".into(),
        seed,
        ports: 8,
        popularity: PortPopularity::Uniform,
        phases: vec![
            Phase::new("warm", 1000, ArrivalProcess::Poisson { rate: 0.5 }),
            Phase::new("cold", 300, ArrivalProcess::Poisson { rate: 0.5 }),
            Phase::new("re-warmed", 700, ArrivalProcess::Poisson { rate: 0.5 }),
        ],
        // the wipe lands exactly at the warm/cold boundary; the refresh
        // cadence (tick 1300 = warm duration + cold duration) re-posts at
        // the cold/re-warmed boundary
        churn: vec![ChurnEvent {
            at: 1000,
            action: ChurnAction::ClearAllCaches,
        }],
        refresh_interval: Some(1300),
        request_after_locate: false,
        op_timeout: OP_TIMEOUT,
        clients: None,
        faults: vec![],
    }
}

/// Closed-loop saturation sweep: a fixed pool of 24 clients (service ≈ 2
/// ticks + 2 ticks think ⇒ capacity ≈ 6 dispatches/tick) faces an offered
/// Poisson rate ramping from well under to well over that capacity.
/// Under the knee, queueing delay is ~0 and latency is the pure service
/// cost; past it, the dispatch queue — and its p99 delay — grows without
/// bound, and the tail of the ramp is abandoned at the horizon. This is
/// the regime the paper's one-shot experiments cannot see.
pub fn overload_ramp(seed: u64) -> Workload {
    let rates = [
        ("light", 2.0),
        ("approach", 4.0),
        ("knee", 8.0),
        ("overload", 12.0),
        ("collapse", 16.0),
    ];
    Workload {
        name: "overload-ramp".into(),
        seed,
        ports: 8,
        popularity: PortPopularity::Uniform,
        phases: rates
            .iter()
            .map(|&(name, rate)| Phase::new(name, 500, ArrivalProcess::Poisson { rate }))
            .collect(),
        churn: vec![],
        refresh_interval: Some(500),
        request_after_locate: false,
        op_timeout: OP_TIMEOUT,
        clients: Some(ClientModel {
            clients: 24,
            think: ThinkTime::Fixed { ticks: 2 },
            retry_budget: 1,
            retry_backoff: 8,
            window: 250,
        }),
        faults: vec![],
    }
}

/// Closed-loop flash crowd with a mid-spike outage: a quarter of the
/// network (servers included) crashes during the crowd, so in-flight
/// locates time out, clients burn their retry budgets against dead
/// rendezvous nodes, and the occupied pool backs the crowd up in the
/// dispatch queue. After the restore, the refresh cadence re-posts the
/// services and the time-series windows show the latency spike draining
/// back to the steady baseline — convergence-under-perturbation measured
/// as recovery time, not as a success bit.
pub fn flash_crowd_recovery(n: usize, seed: u64) -> Workload {
    Workload {
        name: "flash-crowd-recovery".into(),
        seed,
        ports: 8,
        popularity: PortPopularity::Zipf { exponent: 1.1 },
        phases: vec![
            Phase::new("calm", 600, ArrivalProcess::Poisson { rate: 2.0 }),
            Phase::new("crowd", 800, ArrivalProcess::Poisson { rate: 4.0 }),
            Phase::new("recovery", 600, ArrivalProcess::Poisson { rate: 2.0 }),
        ],
        churn: vec![
            ChurnEvent {
                at: 700,
                action: ChurnAction::CrashRandom {
                    count: (n / 4).max(1),
                    spare_servers: false,
                },
            },
            ChurnEvent {
                at: 1_100,
                action: ChurnAction::RestoreAll { clear_caches: true },
            },
        ],
        refresh_interval: Some(200),
        request_after_locate: false,
        op_timeout: OP_TIMEOUT,
        clients: Some(ClientModel {
            clients: 48,
            think: ThinkTime::Fixed { ticks: 1 },
            retry_budget: 2,
            retry_backoff: 16,
            window: 200,
        }),
        faults: vec![],
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// The node indices of grid row-band `r` under the checkerboard's
/// `⌈√n⌉`-banding (`Blocks::row_band`: node `i` lies in band `⌊i·w/n⌋`).
/// This is the "rack" unit of the correlated-failure scenarios: one band
/// is exactly the post set of every server homed in it, so killing a band
/// severs those services' entire rendezvous row in the base arrangement.
pub fn grid_row(n: usize, r: usize) -> Vec<usize> {
    let w = (n as f64).sqrt().ceil() as usize;
    let lo = (r * n).div_ceil(w);
    let hi = ((r + 1) * n).div_ceil(w).min(n);
    (lo..hi).collect()
}

/// The closed-loop client pool shared by the hostile `-closed` variants:
/// enough retry budget to ride out a locate that dies with its rack.
fn hostile_pool() -> ClientModel {
    ClientModel {
        clients: 32,
        think: ThinkTime::Fixed { ticks: 2 },
        retry_budget: 2,
        retry_backoff: 16,
        window: 200,
    }
}

/// Correlated crash of a service's *rendezvous row*: the grid row-band
/// the first port's server posts to dies mid-run — sparing every server
/// host, so both endpoints of every pair survive and only match-making is
/// severed (the adversarial case §2.4's *redundant* criterion is about).
/// It heals, then the *aligned pair* of bands — `r` and `r + w/2`,
/// exactly the two bands a `Replicated(2)` checkerboard posts to — dies
/// together. Base checkerboard cannot resolve the victim service during
/// either window; replication rides out the single-rack window via its
/// shifted copy and fails only when both aligned copies are taken out,
/// which is the §2.4 tolerance bound made visible as phase hit-rates.
///
/// The builder replays the runner's seeded home draws (one `gen_range`
/// per port off `StdRng::seed_from_u64(seed)`) to know the victims ahead
/// of time, keeping the kill lists explicit in the spec — the runner
/// draws nothing extra.
pub fn rack_failure(n: usize, seed: u64, closed: bool) -> Workload {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let ports = 8usize;
    let mut rng = StdRng::seed_from_u64(seed);
    let homes: Vec<usize> = (0..ports).map(|_| rng.gen_range(0..n)).collect();
    let w = ((n as f64).sqrt().ceil() as usize).max(1);
    let r0 = homes[0] * w / n; // the victim service's row band
    let aligned = (r0 + w / 2) % w;
    let spare = |nodes: Vec<usize>| -> Vec<usize> {
        nodes.into_iter().filter(|v| !homes.contains(v)).collect()
    };
    let mut one_rack = spare(grid_row(n, r0));
    if one_rack.is_empty() {
        // degenerate tiny universe: fall back to the full band so the
        // spec still validates (the demonstration needs n >= ~16 anyway)
        one_rack = grid_row(n, r0);
    }
    let mut both_racks = one_rack.clone();
    if aligned != r0 {
        both_racks.extend(spare(grid_row(n, aligned)));
        both_racks.sort_unstable();
        both_racks.dedup();
    }
    Workload {
        name: if closed {
            "rack-failure-closed".into()
        } else {
            "rack-failure".into()
        },
        seed,
        ports: 8,
        popularity: PortPopularity::Uniform,
        phases: vec![
            Phase::new("warmup", 400, ArrivalProcess::FixedRate { interval: 4 }),
            Phase::new("one-rack", 600, ArrivalProcess::Poisson { rate: 0.5 }),
            Phase::new("healed", 400, ArrivalProcess::Poisson { rate: 0.5 }),
            Phase::new("two-racks", 600, ArrivalProcess::Poisson { rate: 0.5 }),
            Phase::new("recovered", 400, ArrivalProcess::Poisson { rate: 0.5 }),
        ],
        churn: vec![
            ChurnEvent {
                at: 400,
                action: ChurnAction::CrashGroup { nodes: one_rack },
            },
            ChurnEvent {
                at: 1000,
                action: ChurnAction::RestoreAll { clear_caches: true },
            },
            ChurnEvent {
                at: 1400,
                action: ChurnAction::CrashGroup { nodes: both_racks },
            },
            ChurnEvent {
                at: 2000,
                action: ChurnAction::RestoreAll { clear_caches: true },
            },
        ],
        refresh_interval: Some(200),
        request_after_locate: false,
        op_timeout: OP_TIMEOUT,
        clients: closed.then(hostile_pool),
        faults: vec![],
    }
}

/// Byzantine forged-address assault: `max(1, n/32)` evenly spaced nodes
/// (phase chosen by the seed) answer *every* query with a forged
/// maximum-stamp hit pointing at themselves. Honest rendezvous answers in
/// the same fan-out expose the lie as dissent (`detected_lie`); a fan-out
/// whose honest members are all cold or dead lets the forgery through
/// (`false_match`). The open-loop variant also calls the located address,
/// so escaped forgeries bounce off the liar as stale requests and the
/// §1.3 retry loop re-locates.
pub fn byzantine_liars(n: usize, seed: u64, closed: bool) -> Workload {
    let count = (n / 32).max(1).min(n);
    let spacing = (n / count).max(1);
    let start = (splitmix64(seed ^ 0xB12A_17E5_0000_0002) % n as u64) as usize;
    let mut liars: Vec<usize> = (0..count).map(|j| (start + j * spacing) % n).collect();
    liars.sort_unstable();
    Workload {
        name: if closed {
            "byzantine-liars-closed".into()
        } else {
            "byzantine-liars".into()
        },
        seed,
        ports: 8,
        popularity: PortPopularity::Uniform,
        phases: vec![
            Phase::new("warmup", 400, ArrivalProcess::FixedRate { interval: 4 }),
            Phase::new("assault", 1600, ArrivalProcess::Poisson { rate: 1.0 }),
            Phase::new("cooldown", 400, ArrivalProcess::Poisson { rate: 0.5 }),
        ],
        churn: vec![],
        refresh_interval: Some(400),
        request_after_locate: !closed,
        op_timeout: OP_TIMEOUT,
        clients: closed.then(hostile_pool),
        faults: liars
            .into_iter()
            .map(|node_index| FaultSpec {
                node_index,
                fault: FaultProfile::ForgedAddress,
            })
            .collect(),
    }
}

/// Adversarial port skew: every arrival targets one seed-chosen port, so
/// the whole offered load lands on that port's rendezvous row while the
/// rest of the network idles. The interesting output is the load tail
/// (`load_p99` / `load_max` vs `load_p50`) and, closed-loop, the queueing
/// delay the hot row induces at rates a uniform mix absorbs easily.
pub fn rendezvous_skew(_n: usize, seed: u64, closed: bool) -> Workload {
    let ports = 8usize;
    let hot = (splitmix64(seed ^ 0x5CE7_0000_0000_0003) % ports as u64) as usize;
    Workload {
        name: if closed {
            "rendezvous-skew-closed".into()
        } else {
            "rendezvous-skew".into()
        },
        seed,
        ports,
        popularity: PortPopularity::Hotspot { port: hot },
        phases: vec![
            Phase::new("warmup", 400, ArrivalProcess::FixedRate { interval: 4 }),
            Phase::new("assault", 1200, ArrivalProcess::Poisson { rate: 2.0 }),
            Phase::new("relief", 400, ArrivalProcess::Poisson { rate: 0.5 }),
        ],
        churn: vec![],
        refresh_interval: Some(500),
        request_after_locate: false,
        op_timeout: OP_TIMEOUT,
        clients: closed.then(hostile_pool),
        faults: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_library_scenario_validates() {
        for name in ALL.iter().chain(&CLOSED_LOOP).chain(&HOSTILE) {
            let w = by_name(name, 64, 7).expect("known scenario");
            w.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(&w.name, name);
        }
        assert!(by_name("nope", 64, 7).is_none());
    }

    #[test]
    fn open_loop_library_stays_open_loop() {
        // the historical five must keep `clients: None` (their JSON is a
        // compatibility surface); the closed-loop library must not
        for name in ALL {
            assert!(by_name(name, 64, 7).unwrap().clients.is_none(), "{name}");
        }
        for name in CLOSED_LOOP {
            assert!(by_name(name, 64, 7).unwrap().clients.is_some(), "{name}");
        }
        // hostile variants: the `-closed` suffix is exactly the client pool
        for name in HOSTILE {
            let w = by_name(name, 64, 7).unwrap();
            assert_eq!(
                w.clients.is_some(),
                name.ends_with("-closed"),
                "{name}: loop mode must match the suffix"
            );
            assert!(w.hostile(), "{name} must register as hostile");
        }
        // ...and the benign library must never trip the hostile gate
        for name in ALL.iter().chain(&CLOSED_LOOP) {
            assert!(!by_name(name, 64, 7).unwrap().hostile(), "{name}");
        }
    }

    #[test]
    fn grid_rows_tile_the_universe() {
        for n in [9usize, 16, 64, 60, 100] {
            let w = (n as f64).sqrt().ceil() as usize;
            let mut seen = vec![false; n];
            for r in 0..w {
                for i in grid_row(n, r) {
                    assert!(!seen[i], "n={n}: node {i} in two rows");
                    seen[i] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "n={n}: rows must tile 0..n");
        }
    }

    #[test]
    fn rack_failure_kills_aligned_band_pairs_but_spares_hosts() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let w = rack_failure(64, 11, false);
        let groups: Vec<&Vec<usize>> = w
            .churn
            .iter()
            .filter_map(|ev| match &ev.action {
                ChurnAction::CrashGroup { nodes } => Some(nodes),
                _ => None,
            })
            .collect();
        assert_eq!(groups.len(), 2, "one-rack then two-racks");
        // replay the runner's home draws exactly as the builder does
        let mut rng = StdRng::seed_from_u64(11);
        let homes: Vec<usize> = (0..8).map(|_| rng.gen_range(0..64usize)).collect();
        let victim_band = homes[0] / 8;
        // every killed node sits in the victim band or its Replicated(2)
        // shifted copy (stride n/2 = 4 rows on), and no server host dies:
        // the kill severs match-making while both endpoints stay alive
        for &i in groups[0] {
            assert_eq!(i / 8, victim_band, "one-rack stays in the victim band");
            assert!(!homes.contains(&i), "server hosts are spared");
        }
        let aligned = (victim_band + 4) % 8;
        for &i in groups[1] {
            let band = i / 8;
            assert!(band == victim_band || band == aligned, "aligned pair only");
            assert!(!homes.contains(&i), "server hosts are spared");
        }
        assert!(
            groups[1].len() > groups[0].len(),
            "second kill adds the copy"
        );
        assert!(
            groups[1].iter().any(|&i| i / 8 == aligned),
            "the Replicated(2) shifted band dies in round two"
        );
        assert_eq!(rack_failure(64, 11, false).churn, w.churn, "seed-stable");
    }

    #[test]
    fn byzantine_liars_are_distinct_forgers_and_seed_stable() {
        let w = byzantine_liars(256, 3, false);
        assert_eq!(w.faults.len(), 8, "n/32 liars at n=256");
        let mut idx: Vec<usize> = w.faults.iter().map(|f| f.node_index).collect();
        idx.dedup();
        assert_eq!(idx.len(), 8, "liars are distinct");
        assert!(idx.iter().all(|&i| i < 256));
        assert!(w
            .faults
            .iter()
            .all(|f| f.fault == FaultProfile::ForgedAddress));
        assert_eq!(
            byzantine_liars(256, 3, false).faults,
            w.faults,
            "same seed, same liars"
        );
        assert_ne!(
            byzantine_liars(256, 4, false).faults,
            w.faults,
            "different seed, different liars"
        );
        assert!(w.request_after_locate, "open loop calls the forged address");
        assert!(!byzantine_liars(256, 3, true).request_after_locate);
    }

    #[test]
    fn rendezvous_skew_pins_a_seeded_port() {
        let w = rendezvous_skew(64, 5, false);
        let PortPopularity::Hotspot { port } = w.popularity else {
            panic!("skew must use the hotspot law");
        };
        assert!(port < w.ports);
        assert_eq!(rendezvous_skew(1024, 5, false).popularity, w.popularity);
    }

    #[test]
    fn churn_widths_scale_with_n() {
        let small = rolling_churn(8, 1);
        let big = rolling_churn(1024, 1);
        let width = |w: &Workload| match w.churn[0].action {
            ChurnAction::CrashRandom { count, .. } => count,
            _ => unreachable!(),
        };
        assert_eq!(width(&small), 1);
        assert_eq!(width(&big), 128);
    }
}
