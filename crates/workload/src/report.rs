//! Report structs and builders shared by **both** workload runtimes.
//!
//! The simulator runner ([`crate::runner::ScenarioRunner`]) and the live
//! threaded runner ([`crate::live_runner::LiveScenarioRunner`]) emit the
//! same JSON schema from the same code: per-phase [`PhaseReport`]s built
//! by [`build_phase_report`] out of an operation-accumulator ([`Acc`]) and
//! an [`mm_sim::Metrics`] delta. That shared path is what makes the
//! cross-runtime conformance suite meaningful — any field that diverges
//! reflects the runtimes, not the serializers.
//!
//! Runners also keep a per-operation [`LocateRecord`] log. Records are
//! keyed by *arrival index* (the position in the spec's deterministic
//! arrival sequence), so the differential tests can compare verdicts
//! operation by operation across runtimes regardless of how phase
//! boundaries bucket the counters.

use crate::clients::ClientOpRecord;
use crate::timeline::PhaseBounds;
use mm_analysis::stats::percentile_or_zero;
use mm_analysis::ExperimentRecord;
use mm_core::strategies::PortMapped;
use mm_core::Port;
use mm_sim::{Metrics, SimTime};
use mm_topo::NodeId;
use serde::{Deserialize, Serialize};

/// Per-phase measurements (all counters are deltas within the phase).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseReport {
    /// Phase name from the spec.
    pub name: String,
    /// Phase start tick (relative to scenario start).
    pub start: u64,
    /// Phase end tick (relative to scenario start).
    pub end: u64,
    /// Locate operations injected during the phase.
    pub locates_issued: u64,
    /// Locate operations that reached a verdict during the phase.
    pub locates_completed: u64,
    /// Completed locates that returned an address.
    pub hits: u64,
    /// Completed locates where every rendezvous answered "unknown".
    pub misses: u64,
    /// Locates abandoned after the client timeout (unanswered queries).
    pub unresolved: u64,
    /// Hits whose address no longer matched the server's true location.
    pub stale_results: u64,
    /// Application requests bounced by a stale address ("not here").
    pub stale_requests: u64,
    /// Stale addresses healed by the re-locate retry finding the current
    /// address (§1.3's recovery loop, measured under load).
    pub staleness_recoveries: u64,
    /// Application requests answered by the server.
    pub requests_ok: u64,
    /// Application requests that timed out (crashed server).
    pub request_timeouts: u64,
    /// Message passes spent during the phase (the paper's `m` numerator).
    pub message_passes: u64,
    /// Messages handed to the network during the phase.
    pub sends: u64,
    /// Messages delivered during the phase.
    pub delivered: u64,
    /// Messages dropped during the phase (crashed nodes / severed paths).
    pub dropped: u64,
    /// Crash events injected during the phase.
    pub crashes: u64,
    /// Runtime events executed during the phase: simulator events
    /// (deliveries, timers, drops) or live protocol messages processed —
    /// the numerator for wall-clock events/sec.
    pub events_executed: u64,
    /// Peak simultaneous event-queue depth observed up to the end of the
    /// phase (cumulative high-water mark; deterministic). Always 0 in the
    /// live runtime, which has no global event queue to sample.
    pub peak_queue_depth: u64,
    /// `message_passes / locates_completed` (0 when nothing completed).
    pub passes_per_locate: f64,
    /// Completed locates per 1000 ticks of the phase's scheduled
    /// duration `[start, end)`. The final phase's post-horizon drain
    /// grace is *excluded* from the denominator (verdicts read during the
    /// drain still count in the numerator), so the last phase's rate is
    /// comparable with the inner phases' instead of being deflated by the
    /// timeout window.
    pub throughput_per_kilotick: f64,
    /// `hits / locates_completed` (0 when nothing completed).
    pub hit_rate: f64,
    /// Median per-node deliveries during the phase.
    pub load_p50: f64,
    /// 99th-percentile per-node deliveries during the phase.
    pub load_p99: f64,
    /// Hottest node's deliveries during the phase.
    pub load_max: u64,
    /// Mean per-node deliveries during the phase.
    pub load_mean: f64,
    /// Completed locates whose winning answer was a Byzantine forgery
    /// exposed by honest dissent in the same fan-out — the client rejects
    /// the address. Present only for hostile workloads (specs with fault
    /// injection); benign reports serialize without this key,
    /// byte-for-byte as before.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub detected_lie: Option<u64>,
    /// Completed locates where a forgery won with no honest dissent to
    /// expose it — the client walked away with a liar's address. Present
    /// only for hostile workloads.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub false_match: Option<u64>,
    /// Closed-loop latency accounting for this phase, present only when
    /// the workload configures a [`crate::spec::ClientModel`] — open-loop
    /// reports serialize without this key, byte-for-byte as before.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub closed_loop: Option<ClosedLoopStats>,
    /// Wall-clock runtime events per second for this phase, present only
    /// when the runner was asked to measure it (`--throughput`) — default
    /// reports serialize without this key, byte-for-byte as before. Not
    /// deterministic (it measures the host), so it is never part of any
    /// byte-identity contract.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub throughput: Option<f64>,
    /// Per-phase metrics-registry snapshot (latency / fan-out / meet
    /// histograms, queue-depth buckets on the simulator), present only
    /// when observability is enabled (`--obs`). Same schema seam as
    /// `closed_loop`: absent means byte-identical legacy JSON.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub obs: Option<mm_obs::RegistrySnapshot>,
}

/// Per-phase closed-loop measurements, built from the client pool's
/// operation records.
///
/// Attribution follows when each fact becomes true: `offered` and
/// `abandoned` bucket by the offered tick, `dispatched` and the
/// queueing-delay samples by the dispatch tick, `completed`/`retries` and
/// the latency samples by the final-verdict tick (verdicts read during
/// the post-horizon drain clamp into the last bucket). This is what makes
/// saturation legible: under a growing FIFO backlog the delay of the
/// operation *being dispatched* rises monotonically with time, so the
/// per-phase queue-delay p99 climbs phase over phase past the knee even
/// when a late phase's own offers never reach service (they show up as
/// `abandoned` instead — bucketing delays by offer tick would censor
/// exactly the worst-delayed survivors).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClosedLoopStats {
    /// Operations the timeline offered during the phase.
    pub offered: u64,
    /// Operations a client slot picked up during the phase (however long
    /// ago they were offered).
    pub dispatched: u64,
    /// Operations whose final verdict landed during the phase.
    pub completed: u64,
    /// Operations offered during the phase that were still queued when
    /// the horizon arrived — the saturation overflow that open-loop
    /// counters cannot see.
    pub abandoned: u64,
    /// Extra locate attempts spent by the retry budget on operations
    /// completing in the phase.
    pub retries: u64,
    /// Median issue→verdict latency in ticks (includes retry backoffs).
    pub latency_p50: f64,
    /// 95th-percentile issue→verdict latency.
    pub latency_p95: f64,
    /// 99th-percentile issue→verdict latency.
    pub latency_p99: f64,
    /// Worst issue→verdict latency.
    pub latency_max: u64,
    /// Median offer→dispatch queueing delay in ticks.
    pub queue_delay_p50: f64,
    /// 95th-percentile queueing delay.
    pub queue_delay_p95: f64,
    /// 99th-percentile queueing delay — the saturation-knee instrument.
    pub queue_delay_p99: f64,
    /// Worst queueing delay among dispatched operations.
    pub queue_delay_max: u64,
}

/// One fixed-width time-series window of a closed-loop run (the same
/// measurements as [`ClosedLoopStats`], bucketed by offered tick into
/// `[start, end)` windows of the spec's `window` width).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowReport {
    /// Window start tick.
    pub start: u64,
    /// Window end tick (the last window clamps to the horizon).
    pub end: u64,
    /// Operations offered in the window.
    pub offered: u64,
    /// Operations dispatched in the window.
    pub dispatched: u64,
    /// Final verdicts landing in the window.
    pub completed: u64,
    /// Verdicts in the window that were hits.
    pub hits: u64,
    /// Verdicts in the window that were unresolved.
    pub unresolved: u64,
    /// Median issue→verdict latency.
    pub latency_p50: f64,
    /// 95th-percentile issue→verdict latency.
    pub latency_p95: f64,
    /// 99th-percentile issue→verdict latency.
    pub latency_p99: f64,
    /// Median offer→dispatch queueing delay.
    pub queue_delay_p50: f64,
    /// 95th-percentile queueing delay.
    pub queue_delay_p95: f64,
    /// 99th-percentile queueing delay.
    pub queue_delay_p99: f64,
}

/// A whole scenario run: configuration echo plus per-phase reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// Scenario (workload) name.
    pub scenario: String,
    /// Strategy label (e.g. `checkerboard`).
    pub strategy: String,
    /// Cost model label (`uniform` / `hops`).
    pub cost_model: String,
    /// Topology label.
    pub topology: String,
    /// Node count.
    pub n: u64,
    /// Master seed.
    pub seed: u64,
    /// Number of service ports.
    pub ports: u64,
    /// Closed-loop client-pool size; absent for open-loop runs (whose
    /// JSON stays byte-identical to the pre-closed-loop schema).
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub clients: Option<u64>,
    /// Scenario horizon in ticks.
    pub horizon: u64,
    /// Predicted steady-state passes per locate (`2·|Q|`, the query +
    /// reply cost against warm caches), for theory-vs-measured records.
    pub predicted_passes_per_locate: f64,
    /// Per-phase measurements.
    pub phases: Vec<PhaseReport>,
    /// Fixed-width time-series windows (closed-loop runs only).
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub windows: Option<Vec<WindowReport>>,
    /// Theoretical fault tolerance next to measured survival (hostile
    /// workloads and `--replication` runs only; benign JSON stays
    /// byte-identical).
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub robustness: Option<RobustnessReport>,
}

/// The §2.4 redundancy story attached to one scenario run: what the
/// arrangement's geometry promises, next to what the run survived.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RobustnessReport {
    /// Sampled `mm-core::robust` bound: the number of arbitrary node
    /// faults any (post set, query set) pair tolerates while still
    /// meeting — `min #(P(i) ∩ Q(j))` − 1 over sampled pairs.
    pub max_tolerated_faults: u64,
    /// Lowest sampled survival fraction (alive-pair rendezvous
    /// reachability) observed immediately after any crash churn during
    /// the run; 1.0 when no crash ever severed a pair.
    pub min_survival_fraction: f64,
    /// Byzantine nodes injected by the spec.
    pub byzantine_nodes: u64,
    /// Replication factor of the arrangement under test (1 = base).
    pub replication: u64,
}

impl ScenarioReport {
    /// Sum of a per-phase counter.
    pub(crate) fn total(&self, f: impl Fn(&PhaseReport) -> u64) -> u64 {
        self.phases.iter().map(f).sum()
    }

    /// Total completed locates.
    pub fn locates_completed(&self) -> u64 {
        self.total(|p| p.locates_completed)
    }

    /// Total simulator events executed across all phases.
    pub fn events_executed(&self) -> u64 {
        self.total(|p| p.events_executed)
    }

    /// Peak event-queue depth over the whole run.
    pub fn peak_queue_depth(&self) -> u64 {
        self.phases
            .iter()
            .map(|p| p.peak_queue_depth)
            .max()
            .unwrap_or(0)
    }

    /// Overall hit rate.
    pub fn hit_rate(&self) -> f64 {
        let done = self.locates_completed();
        if done == 0 {
            0.0
        } else {
            self.total(|p| p.hits) as f64 / done as f64
        }
    }

    /// Overall passes per completed locate.
    pub fn passes_per_locate(&self) -> f64 {
        let done = self.locates_completed();
        if done == 0 {
            0.0
        } else {
            self.total(|p| p.message_passes) as f64 / done as f64
        }
    }

    /// Converts the run into `mm-analysis` theory-vs-measured records:
    /// one per phase with completed locates, comparing measured passes
    /// per locate against the strategy's `2·|Q|` steady-state prediction.
    pub fn records(&self) -> Vec<ExperimentRecord> {
        self.phases
            .iter()
            .filter(|p| p.locates_completed > 0)
            .map(|p| {
                ExperimentRecord::new(
                    &format!("{}/{}", self.scenario, p.name),
                    "passes-per-locate",
                    self.predicted_passes_per_locate,
                    p.passes_per_locate,
                )
            })
            .collect()
    }
}

/// Per-phase operation-counter accumulator, shared by both runtimes.
#[derive(Debug, Default, Clone)]
pub(crate) struct Acc {
    pub issued: u64,
    pub completed: u64,
    pub hits: u64,
    pub misses: u64,
    pub unresolved: u64,
    pub stale_results: u64,
    pub stale_requests: u64,
    pub recoveries: u64,
    pub requests_ok: u64,
    pub request_timeouts: u64,
    pub detected_lie: u64,
    pub false_match: u64,
}

// Percentile interpolation is deliberately NOT implemented here: every
// percentile in a report flows through `mm_analysis::stats`, the same
// code the campaign aggregation pipeline uses, so per-phase reports and
// campaign tables can never disagree on what "p99" means.

/// Builds one [`PhaseReport`] from the phase's operation counters and the
/// runtime metrics delta — the single code path for both runtimes. Rate
/// denominators use the scheduled phase duration `[start, end)`; the
/// final phase's drain grace is deliberately excluded (see
/// [`PhaseReport::throughput_per_kilotick`]).
pub(crate) fn build_phase_report(
    name: &str,
    start: SimTime,
    end: SimTime,
    acc: &Acc,
    delta: &Metrics,
    hostile: bool,
) -> PhaseReport {
    let completed = acc.completed;
    let load_max = delta.node_load.iter().copied().max().unwrap_or(0);
    let mut loads: Vec<f64> = delta.node_load.iter().map(|&d| d as f64).collect();
    loads.sort_by(|a, b| a.partial_cmp(b).expect("loads are finite"));
    let window = (end - start).max(1);
    PhaseReport {
        name: name.to_string(),
        start,
        end,
        locates_issued: acc.issued,
        locates_completed: completed,
        hits: acc.hits,
        misses: acc.misses,
        unresolved: acc.unresolved,
        stale_results: acc.stale_results,
        stale_requests: acc.stale_requests,
        staleness_recoveries: acc.recoveries,
        requests_ok: acc.requests_ok,
        request_timeouts: acc.request_timeouts,
        message_passes: delta.message_passes,
        sends: delta.sends,
        delivered: delta.delivered,
        dropped: delta.dropped,
        crashes: delta.crashes,
        events_executed: delta.events_executed,
        peak_queue_depth: delta.peak_queue_depth,
        passes_per_locate: if completed == 0 {
            0.0
        } else {
            delta.message_passes as f64 / completed as f64
        },
        throughput_per_kilotick: completed as f64 * 1000.0 / window as f64,
        hit_rate: if completed == 0 {
            0.0
        } else {
            acc.hits as f64 / completed as f64
        },
        load_p50: percentile_or_zero(&loads, 0.5),
        load_p99: percentile_or_zero(&loads, 0.99),
        load_max,
        load_mean: if loads.is_empty() {
            0.0
        } else {
            loads.iter().sum::<f64>() / loads.len() as f64
        },
        detected_lie: hostile.then_some(acc.detected_lie),
        false_match: hostile.then_some(acc.false_match),
        closed_loop: None,
        throughput: None,
        obs: None,
    }
}

/// Latency / queueing-delay aggregation over one bucket of closed-loop
/// operation records.
#[derive(Default)]
struct LoopBucket {
    offered: u64,
    dispatched: u64,
    completed: u64,
    abandoned: u64,
    attempts: u64,
    hits: u64,
    unresolved: u64,
    latencies: Vec<f64>,
    delays: Vec<f64>,
}

impl LoopBucket {
    fn sorted(mut v: Vec<f64>) -> Vec<f64> {
        v.sort_by(|a, b| a.partial_cmp(b).expect("ticks are finite"));
        v
    }

    fn stats(self) -> ClosedLoopStats {
        let latencies = Self::sorted(self.latencies);
        let delays = Self::sorted(self.delays);
        ClosedLoopStats {
            offered: self.offered,
            dispatched: self.dispatched,
            completed: self.completed,
            abandoned: self.abandoned,
            retries: self.attempts - self.completed,
            latency_p50: percentile_or_zero(&latencies, 0.5),
            latency_p95: percentile_or_zero(&latencies, 0.95),
            latency_p99: percentile_or_zero(&latencies, 0.99),
            latency_max: latencies.last().copied().unwrap_or(0.0) as u64,
            queue_delay_p50: percentile_or_zero(&delays, 0.5),
            queue_delay_p95: percentile_or_zero(&delays, 0.95),
            queue_delay_p99: percentile_or_zero(&delays, 0.99),
            queue_delay_max: delays.last().copied().unwrap_or(0.0) as u64,
        }
    }

    fn window(self, start: SimTime, end: SimTime) -> WindowReport {
        let latencies = Self::sorted(self.latencies);
        let delays = Self::sorted(self.delays);
        WindowReport {
            start,
            end,
            offered: self.offered,
            dispatched: self.dispatched,
            completed: self.completed,
            hits: self.hits,
            unresolved: self.unresolved,
            latency_p50: percentile_or_zero(&latencies, 0.5),
            latency_p95: percentile_or_zero(&latencies, 0.95),
            latency_p99: percentile_or_zero(&latencies, 0.99),
            queue_delay_p50: percentile_or_zero(&delays, 0.5),
            queue_delay_p95: percentile_or_zero(&delays, 0.95),
            queue_delay_p99: percentile_or_zero(&delays, 0.99),
        }
    }
}

/// Builds the per-phase [`ClosedLoopStats`] (index-aligned with
/// `phase_bounds`) and the fixed-width [`WindowReport`] series from a
/// finished pool's operation records — shared by both runtimes, so equal
/// records produce byte-equal closed-loop sections.
pub(crate) fn build_closed_loop(
    records: &[ClientOpRecord],
    phase_bounds: &[PhaseBounds],
    horizon: SimTime,
    window: SimTime,
) -> (Vec<ClosedLoopStats>, Vec<WindowReport>) {
    let mut phases: Vec<LoopBucket> = phase_bounds.iter().map(|_| LoopBucket::default()).collect();
    let n_windows = horizon.div_ceil(window).max(1) as usize;
    let mut windows: Vec<LoopBucket> = (0..n_windows).map(|_| LoopBucket::default()).collect();
    // bucket index per tick, clamped so post-horizon drain verdicts land
    // in the final bucket
    let phase_of = |t: SimTime| -> usize {
        phase_bounds
            .iter()
            .position(|(_, e, _)| t < *e)
            .unwrap_or(phase_bounds.len() - 1)
    };
    let window_of = |t: SimTime| -> usize { ((t / window) as usize).min(n_windows - 1) };
    for r in records {
        for bucket in [
            &mut phases[phase_of(r.offered_at)],
            &mut windows[window_of(r.offered_at)],
        ] {
            bucket.offered += 1;
            if r.dispatched_at.is_none() {
                bucket.abandoned += 1;
            }
        }
        if let Some(d) = r.dispatched_at {
            for bucket in [&mut phases[phase_of(d)], &mut windows[window_of(d)]] {
                bucket.dispatched += 1;
                bucket.delays.push((d - r.offered_at) as f64);
            }
            if let Some(done) = r.completed_at {
                for bucket in [&mut phases[phase_of(done)], &mut windows[window_of(done)]] {
                    bucket.completed += 1;
                    bucket.attempts += u64::from(r.attempts);
                    bucket.latencies.push((done - d) as f64);
                    match r.verdict {
                        Some(LocateVerdict::Hit) => bucket.hits += 1,
                        Some(LocateVerdict::Unresolved) => bucket.unresolved += 1,
                        _ => {}
                    }
                }
            }
        }
    }
    let phase_stats = phases.into_iter().map(LoopBucket::stats).collect();
    let window_reports = windows
        .into_iter()
        .enumerate()
        .map(|(i, b)| {
            let start = i as SimTime * window;
            let end = (start + window).min(horizon);
            b.window(start, end)
        })
        .collect();
    (phase_stats, window_reports)
}

/// Mean `2·|Q|` over a deterministic sample of (client, port) pairs — the
/// steady-state warm-cache locate cost prediction. Identical sampling in
/// both runtimes, so the echoed prediction matches too.
pub(crate) fn predict_passes_per_locate<PM: PortMapped>(
    resolver: &PM,
    n: usize,
    ports: &[Port],
) -> f64 {
    let samples = 32.min(n * ports.len()).max(1);
    let mut total = 0usize;
    for k in 0..samples {
        let client = NodeId::from((k * 7919) % n);
        let port = ports[k % ports.len()];
        total += resolver.query_set_for(client, port).len();
    }
    2.0 * total as f64 / samples as f64
}

/// The verdict of one locate operation, runtime-agnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocateVerdict {
    /// An address came back.
    Hit,
    /// Every queried node answered "unknown".
    Miss,
    /// Some queried node never answered (crashed rendezvous / timeout).
    Unresolved,
    /// A Byzantine node's forged answer won best-stamp selection, but an
    /// honest hit in the same fan-out disagreed — the client rejects the
    /// address (hostile workloads only).
    DetectedLie,
    /// A forged answer won with no honest corroboration to expose it: the
    /// client walks away with a liar's address (hostile workloads only).
    FalseMatch,
}

/// Classifies a `Found` locate against the spec's Byzantine ground truth
/// — the single rule both runtimes and both loop modes share. A fresh
/// address is a plain hit even if a liar shouted over it (the truth won);
/// a non-fresh address held by a forging node is a lie, detected exactly
/// when an honest answer dissented; any other non-fresh address is the
/// benign stale-cache case, reported as a hit and counted separately.
pub(crate) fn classify_hit(
    addr: NodeId,
    home: NodeId,
    dissent: usize,
    liars: &[bool],
) -> LocateVerdict {
    if addr != home && liars.get(addr.index()).copied().unwrap_or(false) {
        if dissent > 0 {
            LocateVerdict::DetectedLie
        } else {
            LocateVerdict::FalseMatch
        }
    } else {
        LocateVerdict::Hit
    }
}

/// One primary locate operation as both runtimes saw it. Retries issued
/// by the stale-address recovery loop (open-loop) or a closed-loop retry
/// budget are *not* logged separately — the closed-loop log keeps one
/// entry per offered operation with its *final* verdict — so record `k`
/// in one runtime and record `k` in the other describe the same
/// spec-level arrival.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocateRecord {
    /// Arrival index in the spec's deterministic arrival sequence.
    pub arrival: u64,
    /// Spec-relative tick at which the arrival was injected.
    pub at: SimTime,
    /// The client node that issued the locate.
    pub client: NodeId,
    /// Index into the workload's port space.
    pub port_idx: usize,
    /// How the locate ended.
    pub verdict: LocateVerdict,
    /// The located address for [`LocateVerdict::Hit`].
    pub addr: Option<NodeId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(
        arrival: u64,
        offered_at: SimTime,
        dispatched_at: Option<SimTime>,
        completed_at: Option<SimTime>,
        attempts: u32,
        verdict: Option<LocateVerdict>,
    ) -> ClientOpRecord {
        ClientOpRecord {
            arrival,
            offered_at,
            dispatched_at,
            completed_at,
            attempts,
            verdict,
            addr: None,
            client: dispatched_at.map(|_| NodeId::new(0)),
            port_idx: dispatched_at.map(|_| 0),
        }
    }

    /// Satellite regression: a metrics delta with no per-node loads (an
    /// empty network snapshot) must produce zeroed load stats, not an
    /// empty-slice percentile panic or a 0/0 mean.
    #[test]
    fn empty_node_load_yields_zeroed_stats() {
        let acc = Acc::default();
        let delta = Metrics::new(0);
        let p = build_phase_report("empty", 0, 100, &acc, &delta, false);
        assert_eq!(p.load_p50, 0.0);
        assert_eq!(p.load_p99, 0.0);
        assert_eq!(p.load_max, 0);
        assert_eq!(p.load_mean, 0.0);
        assert_eq!(p.throughput_per_kilotick, 0.0);
        assert_eq!(p.closed_loop, None);
        assert_eq!(p.detected_lie, None, "benign schema stays untouched");
        assert_eq!(p.false_match, None);
    }

    /// Hostile runs surface the Byzantine counters; the fresh/liar/dissent
    /// classification rule is shared by both runtimes, so pin it here.
    #[test]
    fn classify_hit_follows_the_dissent_rule() {
        let mut liars = vec![false; 8];
        liars[3] = true;
        let home = NodeId::new(5);
        // fresh address: plain hit even if the home were marked a liar
        assert_eq!(classify_hit(home, home, 0, &liars), LocateVerdict::Hit);
        // stale-but-honest address: the benign §1.3 case stays a hit
        assert_eq!(
            classify_hit(NodeId::new(2), home, 0, &liars),
            LocateVerdict::Hit
        );
        // forged address with an honest dissenting answer: detected
        assert_eq!(
            classify_hit(NodeId::new(3), home, 1, &liars),
            LocateVerdict::DetectedLie
        );
        // forged address, no dissent: the lie escapes
        assert_eq!(
            classify_hit(NodeId::new(3), home, 0, &liars),
            LocateVerdict::FalseMatch
        );
        let acc = Acc {
            completed: 4,
            detected_lie: 2,
            false_match: 1,
            ..Acc::default()
        };
        let p = build_phase_report("assault", 0, 100, &acc, &Metrics::new(4), true);
        assert_eq!(p.detected_lie, Some(2));
        assert_eq!(p.false_match, Some(1));
    }

    #[test]
    fn closed_loop_buckets_by_event_tick() {
        let bounds = vec![(0u64, 100u64, "a".to_string()), (100, 200, "b".to_string())];
        let records = vec![
            // offered in phase a, dispatched immediately, done 2 later
            rec(0, 10, Some(10), Some(12), 1, Some(LocateVerdict::Hit)),
            // offered in phase a, queued 30 ticks, one retry
            rec(
                1,
                20,
                Some(50),
                Some(80),
                2,
                Some(LocateVerdict::Unresolved),
            ),
            // offered in phase b, never dispatched
            rec(2, 150, None, None, 0, None),
        ];
        let (phases, windows) = build_closed_loop(&records, &bounds, 200, 50);
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].offered, 2);
        assert_eq!(phases[0].dispatched, 2);
        assert_eq!(phases[0].completed, 2);
        assert_eq!(phases[0].retries, 1);
        assert_eq!(phases[0].abandoned, 0);
        assert_eq!(phases[0].latency_max, 30);
        assert_eq!(phases[0].queue_delay_max, 30);
        assert_eq!(phases[0].queue_delay_p50, 15.0);
        assert_eq!(phases[1].offered, 1);
        assert_eq!(phases[1].abandoned, 1);
        assert_eq!(phases[1].dispatched, 0);
        assert_eq!(phases[1].latency_p99, 0.0, "no samples → zeroed");

        assert_eq!(windows.len(), 4);
        assert_eq!(
            windows.iter().map(|w| (w.start, w.end)).collect::<Vec<_>>(),
            vec![(0, 50), (50, 100), (100, 150), (150, 200)]
        );
        assert_eq!(windows[0].offered, 2, "offers bucket by offered tick");
        assert_eq!(windows[0].hits, 1, "verdict at t=12 lands in window 0");
        assert_eq!(windows[0].unresolved, 0);
        assert_eq!(
            windows[1].unresolved, 1,
            "verdict at t=80 lands in window 1"
        );
        assert_eq!(windows[1].dispatched, 1, "dispatch at t=50 in window 1");
        assert_eq!(windows[1].queue_delay_p99, 30.0);
        assert_eq!(windows[3].offered, 1);
        assert_eq!(windows[1].offered, 0, "offers stay where offered");
        assert_eq!(windows[2].offered, 0, "empty windows are still emitted");
    }

    /// A record offered exactly on the horizon tick clamps into the last
    /// window instead of indexing past the series.
    #[test]
    fn closed_loop_window_clamps_the_horizon_edge() {
        let bounds = vec![(0u64, 90u64, "a".to_string())];
        let records = vec![rec(0, 89, Some(89), Some(91), 1, Some(LocateVerdict::Hit))];
        let (_, windows) = build_closed_loop(&records, &bounds, 90, 40);
        assert_eq!(windows.len(), 3);
        assert_eq!(windows.last().unwrap().end, 90, "clamped to horizon");
        assert_eq!(windows[2].offered, 1);
    }
}
