//! Report structs and builders shared by **both** workload runtimes.
//!
//! The simulator runner ([`crate::runner::ScenarioRunner`]) and the live
//! threaded runner ([`crate::live_runner::LiveScenarioRunner`]) emit the
//! same JSON schema from the same code: per-phase [`PhaseReport`]s built
//! by [`build_phase_report`] out of an operation-accumulator ([`Acc`]) and
//! an [`mm_sim::Metrics`] delta. That shared path is what makes the
//! cross-runtime conformance suite meaningful — any field that diverges
//! reflects the runtimes, not the serializers.
//!
//! Runners also keep a per-operation [`LocateRecord`] log. Records are
//! keyed by *arrival index* (the position in the spec's deterministic
//! arrival sequence), so the differential tests can compare verdicts
//! operation by operation across runtimes regardless of how phase
//! boundaries bucket the counters.

use mm_analysis::stats::percentile_sorted;
use mm_analysis::ExperimentRecord;
use mm_core::strategies::PortMapped;
use mm_core::Port;
use mm_sim::{Metrics, SimTime};
use mm_topo::NodeId;
use serde::{Deserialize, Serialize};

/// Per-phase measurements (all counters are deltas within the phase).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseReport {
    /// Phase name from the spec.
    pub name: String,
    /// Phase start tick (relative to scenario start).
    pub start: u64,
    /// Phase end tick (relative to scenario start).
    pub end: u64,
    /// Locate operations injected during the phase.
    pub locates_issued: u64,
    /// Locate operations that reached a verdict during the phase.
    pub locates_completed: u64,
    /// Completed locates that returned an address.
    pub hits: u64,
    /// Completed locates where every rendezvous answered "unknown".
    pub misses: u64,
    /// Locates abandoned after the client timeout (unanswered queries).
    pub unresolved: u64,
    /// Hits whose address no longer matched the server's true location.
    pub stale_results: u64,
    /// Application requests bounced by a stale address ("not here").
    pub stale_requests: u64,
    /// Stale addresses healed by the re-locate retry finding the current
    /// address (§1.3's recovery loop, measured under load).
    pub staleness_recoveries: u64,
    /// Application requests answered by the server.
    pub requests_ok: u64,
    /// Application requests that timed out (crashed server).
    pub request_timeouts: u64,
    /// Message passes spent during the phase (the paper's `m` numerator).
    pub message_passes: u64,
    /// Messages handed to the network during the phase.
    pub sends: u64,
    /// Messages delivered during the phase.
    pub delivered: u64,
    /// Messages dropped during the phase (crashed nodes / severed paths).
    pub dropped: u64,
    /// Crash events injected during the phase.
    pub crashes: u64,
    /// Runtime events executed during the phase: simulator events
    /// (deliveries, timers, drops) or live protocol messages processed —
    /// the numerator for wall-clock events/sec.
    pub events_executed: u64,
    /// Peak simultaneous event-queue depth observed up to the end of the
    /// phase (cumulative high-water mark; deterministic). Always 0 in the
    /// live runtime, which has no global event queue to sample.
    pub peak_queue_depth: u64,
    /// `message_passes / locates_completed` (0 when nothing completed).
    pub passes_per_locate: f64,
    /// Completed locates per 1000 ticks of the observation window
    /// (the final phase's window includes the post-horizon drain grace).
    pub throughput_per_kilotick: f64,
    /// `hits / locates_completed` (0 when nothing completed).
    pub hit_rate: f64,
    /// Median per-node deliveries during the phase.
    pub load_p50: f64,
    /// 99th-percentile per-node deliveries during the phase.
    pub load_p99: f64,
    /// Hottest node's deliveries during the phase.
    pub load_max: u64,
    /// Mean per-node deliveries during the phase.
    pub load_mean: f64,
}

/// A whole scenario run: configuration echo plus per-phase reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// Scenario (workload) name.
    pub scenario: String,
    /// Strategy label (e.g. `checkerboard`).
    pub strategy: String,
    /// Cost model label (`uniform` / `hops`).
    pub cost_model: String,
    /// Topology label.
    pub topology: String,
    /// Node count.
    pub n: u64,
    /// Master seed.
    pub seed: u64,
    /// Number of service ports.
    pub ports: u64,
    /// Scenario horizon in ticks.
    pub horizon: u64,
    /// Predicted steady-state passes per locate (`2·|Q|`, the query +
    /// reply cost against warm caches), for theory-vs-measured records.
    pub predicted_passes_per_locate: f64,
    /// Per-phase measurements.
    pub phases: Vec<PhaseReport>,
}

impl ScenarioReport {
    /// Sum of a per-phase counter.
    pub(crate) fn total(&self, f: impl Fn(&PhaseReport) -> u64) -> u64 {
        self.phases.iter().map(f).sum()
    }

    /// Total completed locates.
    pub fn locates_completed(&self) -> u64 {
        self.total(|p| p.locates_completed)
    }

    /// Total simulator events executed across all phases.
    pub fn events_executed(&self) -> u64 {
        self.total(|p| p.events_executed)
    }

    /// Peak event-queue depth over the whole run.
    pub fn peak_queue_depth(&self) -> u64 {
        self.phases
            .iter()
            .map(|p| p.peak_queue_depth)
            .max()
            .unwrap_or(0)
    }

    /// Overall hit rate.
    pub fn hit_rate(&self) -> f64 {
        let done = self.locates_completed();
        if done == 0 {
            0.0
        } else {
            self.total(|p| p.hits) as f64 / done as f64
        }
    }

    /// Overall passes per completed locate.
    pub fn passes_per_locate(&self) -> f64 {
        let done = self.locates_completed();
        if done == 0 {
            0.0
        } else {
            self.total(|p| p.message_passes) as f64 / done as f64
        }
    }

    /// Converts the run into `mm-analysis` theory-vs-measured records:
    /// one per phase with completed locates, comparing measured passes
    /// per locate against the strategy's `2·|Q|` steady-state prediction.
    pub fn records(&self) -> Vec<ExperimentRecord> {
        self.phases
            .iter()
            .filter(|p| p.locates_completed > 0)
            .map(|p| {
                ExperimentRecord::new(
                    &format!("{}/{}", self.scenario, p.name),
                    "passes-per-locate",
                    self.predicted_passes_per_locate,
                    p.passes_per_locate,
                )
            })
            .collect()
    }
}

/// Per-phase operation-counter accumulator, shared by both runtimes.
#[derive(Debug, Default, Clone)]
pub(crate) struct Acc {
    pub issued: u64,
    pub completed: u64,
    pub hits: u64,
    pub misses: u64,
    pub unresolved: u64,
    pub stale_results: u64,
    pub stale_requests: u64,
    pub recoveries: u64,
    pub requests_ok: u64,
    pub request_timeouts: u64,
}

/// Builds one [`PhaseReport`] from the phase's operation counters and the
/// runtime metrics delta — the single code path for both runtimes.
/// `window_end` is the end of the observation window actually measured
/// (the final phase includes the drain grace).
pub(crate) fn build_phase_report(
    name: &str,
    start: SimTime,
    end: SimTime,
    window_end: SimTime,
    acc: &Acc,
    delta: &Metrics,
) -> PhaseReport {
    let completed = acc.completed;
    let load_max = delta.node_load.iter().copied().max().unwrap_or(0);
    let mut loads: Vec<f64> = delta.node_load.iter().map(|&d| d as f64).collect();
    loads.sort_by(|a, b| a.partial_cmp(b).expect("loads are finite"));
    let window = (window_end - start).max(1);
    PhaseReport {
        name: name.to_string(),
        start,
        end,
        locates_issued: acc.issued,
        locates_completed: completed,
        hits: acc.hits,
        misses: acc.misses,
        unresolved: acc.unresolved,
        stale_results: acc.stale_results,
        stale_requests: acc.stale_requests,
        staleness_recoveries: acc.recoveries,
        requests_ok: acc.requests_ok,
        request_timeouts: acc.request_timeouts,
        message_passes: delta.message_passes,
        sends: delta.sends,
        delivered: delta.delivered,
        dropped: delta.dropped,
        crashes: delta.crashes,
        events_executed: delta.events_executed,
        peak_queue_depth: delta.peak_queue_depth,
        passes_per_locate: if completed == 0 {
            0.0
        } else {
            delta.message_passes as f64 / completed as f64
        },
        throughput_per_kilotick: completed as f64 * 1000.0 / window as f64,
        hit_rate: if completed == 0 {
            0.0
        } else {
            acc.hits as f64 / completed as f64
        },
        load_p50: percentile_sorted(&loads, 0.5),
        load_p99: percentile_sorted(&loads, 0.99),
        load_max,
        load_mean: loads.iter().sum::<f64>() / loads.len() as f64,
    }
}

/// Mean `2·|Q|` over a deterministic sample of (client, port) pairs — the
/// steady-state warm-cache locate cost prediction. Identical sampling in
/// both runtimes, so the echoed prediction matches too.
pub(crate) fn predict_passes_per_locate<PM: PortMapped>(
    resolver: &PM,
    n: usize,
    ports: &[Port],
) -> f64 {
    let samples = 32.min(n * ports.len()).max(1);
    let mut total = 0usize;
    for k in 0..samples {
        let client = NodeId::from((k * 7919) % n);
        let port = ports[k % ports.len()];
        total += resolver.query_set_for(client, port).len();
    }
    2.0 * total as f64 / samples as f64
}

/// The verdict of one locate operation, runtime-agnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocateVerdict {
    /// An address came back.
    Hit,
    /// Every queried node answered "unknown".
    Miss,
    /// Some queried node never answered (crashed rendezvous / timeout).
    Unresolved,
}

/// One primary locate operation as both runtimes saw it. Retries issued
/// by the stale-address recovery loop are *not* recorded — they are
/// timing-dependent — so record `k` in one runtime and record `k` in the
/// other describe the same spec-level arrival.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocateRecord {
    /// Arrival index in the spec's deterministic arrival sequence.
    pub arrival: u64,
    /// Spec-relative tick at which the arrival was injected.
    pub at: SimTime,
    /// The client node that issued the locate.
    pub client: NodeId,
    /// Index into the workload's port space.
    pub port_idx: usize,
    /// How the locate ended.
    pub verdict: LocateVerdict,
    /// The located address for [`LocateVerdict::Hit`].
    pub addr: Option<NodeId>,
}
