//! Programmatic single-run invocation — the library face of the
//! `scenarios` binary.
//!
//! Everything the CLI can do to produce **one** scenario report lives
//! here as a [`RunConfig`] → [`ScenarioReport`] function, so other
//! drivers (the `mm-campaign` experiment-matrix runner, tests, future
//! servers) execute *exactly* the code path the binary does. That is the
//! byte-identity contract the campaign layer is built on: the JSON a
//! campaign writes for a run equals, byte for byte, the output of the
//! equivalent `scenarios` CLI invocation at the same seed — because both
//! are this module.
//!
//! The binary keeps only what is CLI-shaped (flag parsing, sweep loops,
//! `--trace` file plumbing, exit codes); graph construction, spec
//! resolution, strategy dispatch and report serialization are shared
//! from here.

use crate::report::ScenarioReport;
use crate::runner::ScenarioRunner;
use crate::scenarios;
use crate::spec::{ClientModel, Workload};
use crate::LiveScenarioRunner;
use mm_core::robust::Replicated;
use mm_core::strategies::{Broadcast, Checkerboard, HashLocate, PortMapped};
use mm_obs::{TraceConfig, TraceFile};
use mm_sim::{CostModel, QueueKind, RouterKind, ShardMode};
use mm_topo::{gen, Graph};

/// Above this size a literal complete graph (O(n²) adjacency) stops being
/// buildable; under the uniform cost model edges are never consulted, so
/// runs substitute an edgeless graph with the same name and scale to 64k+
/// nodes unchanged. Under hop cost the same holds for *every* structured
/// topology once the analytic routers answer next hops — only the
/// `--router table` oracle still materializes edges.
pub const COMPLETE_MATERIALIZE_LIMIT: usize = 4096;

/// Ceiling for `--router table` under hop cost: the O(n²) table at 4096
/// nodes is ~134 MB, which is as far as the conformance oracle needs to
/// go (the byte-identity suite proptests exactly this range).
pub const TABLE_ROUTER_LIMIT: usize = 4096;

/// One OS thread per node: past this the live runtime would exhaust the
/// default thread budget long before it said anything new.
pub const LIVE_THREAD_LIMIT: usize = 4096;

/// Which runtime executes a run: the deterministic simulator or the
/// threaded `mm-proto` live network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RuntimeKind {
    /// The `mm-sim` event-driven simulator (default).
    #[default]
    Sim,
    /// The threaded [`mm_proto::live::LiveNet`] runtime (one OS thread
    /// per node; complete network under uniform cost only).
    Live,
}

impl RuntimeKind {
    /// Canonical lower-case label (`sim` / `live`), as the CLI spells it.
    pub fn label(self) -> &'static str {
        match self {
            RuntimeKind::Sim => "sim",
            RuntimeKind::Live => "live",
        }
    }

    /// Parses the CLI spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "sim" => Some(RuntimeKind::Sim),
            "live" => Some(RuntimeKind::Live),
            _ => None,
        }
    }
}

/// Canonical lower-case label of a router policy, as the CLI spells it
/// (`auto` / `analytic` / `table`).
pub fn router_label(router: RouterKind) -> &'static str {
    match router {
        RouterKind::Auto => "auto",
        RouterKind::Analytic => "analytic",
        RouterKind::Table => "table",
    }
}

/// Parses the CLI spelling of a router policy.
pub fn parse_router(s: &str) -> Option<RouterKind> {
    match s {
        "auto" => Some(RouterKind::Auto),
        "analytic" => Some(RouterKind::Analytic),
        "table" => Some(RouterKind::Table),
        _ => None,
    }
}

/// Canonical lower-case label of a queue implementation, as the CLI
/// spells it (`calendar` / `btree`).
pub fn queue_label(queue: QueueKind) -> &'static str {
    match queue {
        QueueKind::Calendar => "calendar",
        QueueKind::BTree => "btree",
    }
}

/// Parses the CLI spelling of a queue kind.
pub fn parse_queue(s: &str) -> Option<QueueKind> {
    match s {
        "calendar" => Some(QueueKind::Calendar),
        "btree" => Some(QueueKind::BTree),
        _ => None,
    }
}

/// Everything that determines one scenario run's report bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// Library scenario name (see [`scenarios::by_name`]).
    pub scenario: String,
    /// Requested node count (the grid topology may round it up).
    pub n: usize,
    /// Master seed.
    pub seed: u64,
    /// Strategy name: `checkerboard`, `hash` or `broadcast`.
    pub strategy: String,
    /// Topology name: `complete`, `grid`, `torus`, `ring` or `hypercube`.
    pub topology: String,
    /// Cost model.
    pub cost: CostModel,
    /// Simulator event-queue implementation (ignored by the live runtime).
    pub queue: QueueKind,
    /// Which runtime executes the spec.
    pub runtime: RuntimeKind,
    /// Closed-loop client-pool override applied on top of the scenario
    /// (`None` keeps the scenario's own loop mode).
    pub clients: Option<ClientModel>,
    /// `F` tolerated rendezvous faults; 0 = base strategy, `F > 0`
    /// superimposes `F + 1` strategy copies (§2.4) and reports the
    /// robustness block.
    pub replication: u64,
    /// Simulator shard count; 0 selects the single-threaded core. Any
    /// value produces byte-identical reports (the sharded executor
    /// replays the single core's event order exactly), so this axis —
    /// like `queue` — only affects wall clock, never output.
    pub shards: usize,
    /// Worker threads driving shard rounds (relevant when `shards > 0`;
    /// clamped to the effective shard count).
    pub shard_threads: usize,
    /// Routing backend under hop cost. Output-invariant like `queue` and
    /// `shards` (the analytic routers are byte-conformant to the table
    /// oracle), so it never appears in [`RunConfig::label`]; it decides
    /// only memory — `Table` materializes the O(n²) §3 tables, the
    /// default `Auto` routes structured topologies in O(1) space.
    pub router: RouterKind,
}

impl RunConfig {
    /// A config with the CLI's defaults: checkerboard on a complete
    /// uniform-cost network, calendar queue, simulator runtime, the
    /// scenario's own loop mode, no replication.
    pub fn new(scenario: &str, n: usize, seed: u64) -> Self {
        RunConfig {
            scenario: scenario.to_string(),
            n,
            seed,
            strategy: "checkerboard".into(),
            topology: "complete".into(),
            cost: CostModel::Uniform,
            queue: QueueKind::Calendar,
            runtime: RuntimeKind::Sim,
            clients: None,
            replication: 0,
            shards: 0,
            shard_threads: 1,
            router: RouterKind::Auto,
        }
    }

    /// The execution core this config selects (see [`ShardMode`]).
    pub fn shard_mode(&self) -> ShardMode {
        if self.shards == 0 {
            ShardMode::Single
        } else {
            ShardMode::Sharded {
                shards: self.shards,
                threads: self.shard_threads.max(1),
            }
        }
    }

    /// Canonical run label, used as the campaign per-run file stem:
    /// `{scenario}-n{n}-{strategy}-{queue}-{runtime}[-{topology}][-{cost}]-s{seed}`.
    /// Every axis that can change the run (or is asserted byte-equal
    /// across its values, like queue and runtime) is spelled out, so a
    /// directory of campaign runs is self-describing. The topology and
    /// cost segments appear only off their historical defaults
    /// (`complete`, `uniform`), keeping every pre-existing label — and
    /// thus every pinned campaign file name — byte-identical. Shards and
    /// the router backend are deliberately absent: both are
    /// output-invariant.
    pub fn label(&self) -> String {
        let mut label = format!(
            "{}-n{}-{}-{}-{}",
            self.scenario,
            self.n,
            self.strategy,
            queue_label(self.queue),
            self.runtime.label(),
        );
        if self.topology != "complete" {
            label.push('-');
            label.push_str(&self.topology);
        }
        if self.cost != CostModel::Uniform {
            label.push_str("-hops");
        }
        label.push_str(&format!("-s{}", self.seed));
        label
    }
}

/// Observability switches for a run (all off by default — reports stay
/// byte-identical to the historical schema).
#[derive(Debug, Clone, Default)]
pub struct ObsOptions {
    /// Record the causal span trace.
    pub trace: Option<TraceConfig>,
    /// Per-phase metrics-registry snapshots in the JSON.
    pub obs: bool,
    /// Wall-clock events/sec per phase in the JSON (not deterministic).
    pub throughput: bool,
}

/// Builds the graph for a topology name, mirroring the CLI's rules
/// (edgeless stand-ins wherever routing never consults adjacency, grid
/// and torus rounding to the closest `p × q ≥ n` rectangle, hypercube
/// power-of-two requirement).
///
/// Adjacency is materialized only when something will actually read it:
/// under uniform cost only non-complete topologies build edges (they feed
/// the sharded core's locality-aware `shard_map`), and under hop cost
/// only the `--router table` oracle does. The analytic routers answer
/// next hops from closed forms, so a hop-cost ring at n = 1,048,576 is an
/// O(n)-memory run — no adjacency, no table.
pub fn build_graph(
    topology: &str,
    n: usize,
    cost: CostModel,
    router: RouterKind,
) -> Result<Graph, String> {
    // under hop cost the analytic backends route by name alone; only the
    // table oracle (and its BFS build) needs real edges
    let analytic = cost == CostModel::Hops && router != RouterKind::Table;
    if cost == CostModel::Hops && router == RouterKind::Table && n > TABLE_ROUTER_LIMIT {
        return Err(format!(
            "router `table` materializes the O(n^2) routing table; \
             use n <= {TABLE_ROUTER_LIMIT} or `--router analytic`"
        ));
    }
    match topology {
        "complete" => match cost {
            // uniform never routes: an edgeless stand-in is behaviorally
            // identical and O(n) instead of O(n²) to build
            CostModel::Uniform => Ok(gen::complete_shell(n)),
            CostModel::Hops if analytic => Ok(gen::complete_shell(n)),
            CostModel::Hops if n <= COMPLETE_MATERIALIZE_LIMIT => Ok(gen::complete(n)),
            CostModel::Hops => Err(format!(
                "cost model `hops` with topology `complete` materializes O(n^2) edges; \
                 use n <= {COMPLETE_MATERIALIZE_LIMIT} or a sparse topology"
            )),
        },
        "ring" => {
            if analytic {
                Ok(Graph::with_name(n, format!("ring({n})")))
            } else {
                Ok(gen::ring(n))
            }
        }
        "grid" | "torus" => {
            // the closest p x q >= n rectangle
            let p = (n as f64).sqrt().ceil() as usize;
            let q = n.div_ceil(p);
            if p * q != n {
                eprintln!("note: {topology} topology rounded n from {n} to {}", p * q);
            }
            let wrap = topology == "torus";
            let name = format!("{topology}({p}x{q})");
            if analytic {
                Ok(Graph::with_name(p * q, name))
            } else {
                let mut g = gen::grid(p, q, wrap);
                g.set_name(name);
                Ok(g)
            }
        }
        "hypercube" => {
            let d = (n as f64).log2().round() as u32;
            if 1usize << d != n {
                return Err(format!(
                    "topology `hypercube` needs n to be a power of two (got {n})"
                ));
            }
            if analytic {
                Ok(Graph::with_name(n, format!("hypercube({d})")))
            } else {
                Ok(gen::hypercube(d))
            }
        }
        other => Err(format!("unknown topology `{other}`")),
    }
}

/// Resolves the library spec for a config at an explicit node count and
/// applies its closed-loop override, surfacing the validator's
/// explanation instead of panicking.
pub fn build_spec(cfg: &RunConfig, n: usize) -> Result<Workload, String> {
    let mut spec = scenarios::by_name(&cfg.scenario, n, cfg.seed)
        .ok_or_else(|| format!("unknown scenario `{}`", cfg.scenario))?;
    if let Some(clients) = cfg.clients {
        spec.clients = Some(clients);
    }
    spec.validate()
        .map_err(|e| format!("{}: {e}", cfg.scenario))?;
    Ok(spec)
}

/// The strategy copies `replication = F` superimposes (`F + 1`; 1 = base).
fn replication_factor(cfg: &RunConfig, n: usize) -> Result<usize, String> {
    let r = cfg.replication as usize + 1;
    if r > n {
        return Err(format!("replication {} needs n >= {r}", cfg.replication));
    }
    Ok(r)
}

/// Runs one configuration to its report, optionally recording a trace.
///
/// This is the single execution path behind the `scenarios` binary and
/// the campaign runner; equal configs at equal seeds produce
/// byte-identical reports no matter who calls.
///
/// # Errors
///
/// Returns a human-readable message for unknown names, invalid
/// spec/flag combinations, and live-runtime constraint violations —
/// exactly the conditions the CLI exits 2 on.
pub fn run_traced(
    cfg: &RunConfig,
    obs: &ObsOptions,
) -> Result<(ScenarioReport, Option<TraceFile>), String> {
    match cfg.runtime {
        RuntimeKind::Sim => run_sim(cfg, obs),
        RuntimeKind::Live => run_live(cfg, obs),
    }
}

/// Runs one configuration to its report with observability off.
pub fn run(cfg: &RunConfig) -> Result<ScenarioReport, String> {
    run_traced(cfg, &ObsOptions::default()).map(|(report, _)| report)
}

/// Serializes reports exactly as the `scenarios` binary prints them: a
/// JSON array (even for one run) terminated by a newline. Campaign
/// per-run files go through this function so `cmp run.json <(scenarios …)`
/// holds byte for byte.
pub fn reports_to_json(reports: &[ScenarioReport], pretty: bool) -> String {
    let json = if pretty {
        serde_json::to_string_pretty(&reports)
    } else {
        serde_json::to_string(&reports)
    }
    .expect("reports always serialize");
    format!("{json}\n")
}

fn run_sim(
    cfg: &RunConfig,
    obs: &ObsOptions,
) -> Result<(ScenarioReport, Option<TraceFile>), String> {
    let graph = build_graph(&cfg.topology, cfg.n, cfg.cost, cfg.router)?;
    // the grid topology may round n up; size the workload (churn widths
    // etc.) from the node count actually run, not the requested one
    let n = graph.node_count();
    let spec = build_spec(cfg, n)?;
    let r = replication_factor(cfg, n)?;
    match (cfg.strategy.as_str(), r) {
        ("checkerboard", 1) => {
            run_spec(spec, graph, Checkerboard::new(n), cfg, obs, "checkerboard")
        }
        ("checkerboard", _) => {
            let s = Replicated::new(Checkerboard::new(n), r);
            run_spec(spec, graph, s, cfg, obs, &format!("checkerboard-r{r}"))
        }
        ("broadcast", 1) => run_spec(spec, graph, Broadcast::new(n), cfg, obs, "broadcast"),
        ("broadcast", _) => {
            let s = Replicated::new(Broadcast::new(n), r);
            run_spec(spec, graph, s, cfg, obs, &format!("broadcast-r{r}"))
        }
        // Hash Locate's replica count *is* its redundancy level (§5):
        // replication F raises it from the default 3 to F+1
        ("hash", 1) => run_spec(spec, graph, HashLocate::new(n, 3.min(n)), cfg, obs, "hash"),
        ("hash", _) => run_spec(
            spec,
            graph,
            HashLocate::new(n, r),
            cfg,
            obs,
            &format!("hash-r{r}"),
        ),
        (other, _) => Err(format!("unknown strategy `{other}`")),
    }
}

fn run_live(
    cfg: &RunConfig,
    obs: &ObsOptions,
) -> Result<(ScenarioReport, Option<TraceFile>), String> {
    if cfg.topology != "complete" || cfg.cost != CostModel::Uniform {
        return Err("the live runtime is a complete network under uniform cost".into());
    }
    if cfg.n > LIVE_THREAD_LIMIT {
        return Err(format!(
            "the live runtime spawns one thread per node; n = {} exceeds the limit {LIVE_THREAD_LIMIT}",
            cfg.n
        ));
    }
    let n = cfg.n;
    let spec = build_spec(cfg, n)?;
    let r = replication_factor(cfg, n)?;
    match (cfg.strategy.as_str(), r) {
        ("checkerboard", 1) => {
            run_spec_live(spec, n, Checkerboard::new(n), cfg, obs, "checkerboard")
        }
        ("checkerboard", _) => {
            let s = Replicated::new(Checkerboard::new(n), r);
            run_spec_live(spec, n, s, cfg, obs, &format!("checkerboard-r{r}"))
        }
        ("broadcast", 1) => run_spec_live(spec, n, Broadcast::new(n), cfg, obs, "broadcast"),
        ("broadcast", _) => {
            let s = Replicated::new(Broadcast::new(n), r);
            run_spec_live(spec, n, s, cfg, obs, &format!("broadcast-r{r}"))
        }
        ("hash", 1) => run_spec_live(spec, n, HashLocate::new(n, 3.min(n)), cfg, obs, "hash"),
        ("hash", _) => run_spec_live(
            spec,
            n,
            HashLocate::new(n, r),
            cfg,
            obs,
            &format!("hash-r{r}"),
        ),
        (other, _) => Err(format!("unknown strategy `{other}`")),
    }
}

fn run_spec<PM: PortMapped>(
    spec: Workload,
    graph: Graph,
    resolver: PM,
    cfg: &RunConfig,
    obs: &ObsOptions,
    label: &str,
) -> Result<(ScenarioReport, Option<TraceFile>), String> {
    let mut runner = ScenarioRunner::with_router(
        spec,
        graph,
        resolver,
        cfg.cost,
        label,
        cfg.queue,
        cfg.shard_mode(),
        cfg.router,
    );
    if let Some(trace) = obs.trace {
        runner.set_trace(trace);
    }
    if obs.obs {
        runner.enable_obs();
    }
    if obs.throughput {
        runner.enable_throughput();
    }
    if cfg.replication > 0 {
        runner.enable_robustness(cfg.replication + 1);
    }
    Ok(runner.run_traced())
}

fn run_spec_live<PM: PortMapped>(
    spec: Workload,
    n: usize,
    resolver: PM,
    cfg: &RunConfig,
    obs: &ObsOptions,
    label: &str,
) -> Result<(ScenarioReport, Option<TraceFile>), String> {
    let mut runner = LiveScenarioRunner::new(spec, n, resolver, label);
    if let Some(trace) = obs.trace {
        runner.set_trace(trace);
    }
    if obs.obs {
        runner.enable_obs();
    }
    if obs.throughput {
        runner.enable_throughput();
    }
    if cfg.replication > 0 {
        runner.enable_robustness(cfg.replication + 1);
    }
    Ok(runner.run_traced())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_cli() {
        let cfg = RunConfig::new("steady-state", 64, 7);
        assert_eq!(cfg.strategy, "checkerboard");
        assert_eq!(cfg.topology, "complete");
        assert_eq!(cfg.queue, QueueKind::Calendar);
        assert_eq!(cfg.runtime, RuntimeKind::Sim);
        assert_eq!(cfg.label(), "steady-state-n64-checkerboard-calendar-sim-s7");
    }

    #[test]
    fn errors_are_results_not_exits() {
        assert!(run(&RunConfig::new("no-such-scenario", 64, 7)).is_err());
        let mut cfg = RunConfig::new("steady-state", 64, 7);
        cfg.strategy = "telepathy".into();
        assert!(run(&cfg).is_err());
        let mut cfg = RunConfig::new("steady-state", 60, 7);
        cfg.topology = "hypercube".into();
        assert!(run(&cfg).is_err(), "non-power-of-two hypercube");
        let mut cfg = RunConfig::new("steady-state", 64, 7);
        cfg.runtime = RuntimeKind::Live;
        cfg.topology = "ring".into();
        assert!(run(&cfg).is_err(), "live is complete+uniform only");
    }

    #[test]
    fn equal_configs_reproduce_equal_bytes() {
        let cfg = RunConfig::new("steady-state", 64, 7);
        let a = reports_to_json(&[run(&cfg).unwrap()], false);
        let b = reports_to_json(&[run(&cfg).unwrap()], false);
        assert_eq!(a, b);
        assert!(a.ends_with('\n'));
        assert!(a.starts_with('['), "the CLI prints an array");
    }
}
