//! # mm-workload — seeded scenario & traffic-generation engine
//!
//! The paper evaluates match-making by the expected message passes of a
//! *single* locate on an otherwise idle network. The north star of this
//! repository is the opposite regime: sustained heavy traffic, churn,
//! migration, skewed demand. This crate is the layer between the
//! protocols and the benchmarks that generates that regime:
//!
//! * [`spec`] — declarative [`Workload`] descriptions: Zipf/uniform port
//!   popularity, open-loop Poisson or fixed-rate locate arrivals per
//!   phase, server refresh cadence, and a timed churn schedule
//!   (crash/restore waves, service migration, cache wipes).
//! * [`traffic`] — the seeded samplers that turn a spec into concrete
//!   arrival timelines and target choices.
//! * `clients` — the closed-loop client pool (private): when a spec
//!   carries a [`ClientModel`], offered arrivals queue for a fixed pool
//!   of client slots (think time, retry budget, exponential backoff) and
//!   the reports grow latency/queueing-delay percentiles plus fixed-width
//!   time-series windows. The pool is the single decision layer for both
//!   runtimes, which is what keeps closed-loop runs differential-testable.
//! * [`runner`] — [`ScenarioRunner`]: compiles a spec into `mm-sim`
//!   injections against a [`mm_proto::service::ServiceNet`] /
//!   [`mm_proto::ShotgunEngine`], drives it to the horizon with
//!   `run_until`, and emits per-phase [`PhaseReport`]s (throughput,
//!   passes per locate, hit rate, p50/p99 node load, staleness
//!   recoveries) plus `mm-analysis` theory-vs-measured records.
//! * [`live_runner`] — [`LiveScenarioRunner`]: the *same* specs driven
//!   through the threaded [`mm_proto::live::LiveNet`] runtime in
//!   lock-step, emitting the same [`report`] schema — the second half of
//!   the cross-runtime conformance suite
//!   (`tests/live_workload_equivalence.rs`).
//! * [`report`] — the report structs and builders shared by both
//!   runtimes, plus the per-operation verdict log they both produce.
//! * [`drive`] — programmatic single-run invocation ([`RunConfig`] →
//!   [`ScenarioReport`]), the shared execution path behind the
//!   `scenarios` CLI and the `mm-campaign` experiment-matrix runner —
//!   which is what makes a campaign's per-run JSON byte-identical to the
//!   equivalent CLI invocation.
//! * [`scenarios`] — the library: steady-state, flash-crowd,
//!   rolling-churn, migrate-under-load, cold-vs-warm-cache (open-loop)
//!   plus overload-ramp and flash-crowd-recovery (closed-loop), and the
//!   hostile-world set (rack-failure, byzantine-liars, rendezvous-skew,
//!   each with a `-closed` twin) exercising correlated crash groups,
//!   forged-address Byzantine nodes, and adversarial hotspot skew.
//!
//! Determinism is a hard contract: every random choice flows from the
//! spec's seed through one generator in a fixed order, so two runs of the
//! same spec produce **byte-identical** JSON reports.
//!
//! # Example
//!
//! ```
//! use mm_workload::{scenarios, ScenarioRunner};
//! use mm_core::strategies::Checkerboard;
//! use mm_sim::CostModel;
//! use mm_topo::gen;
//!
//! let n = 64;
//! let spec = scenarios::steady_state(7);
//! let runner = ScenarioRunner::new(
//!     spec,
//!     gen::complete(n),
//!     Checkerboard::new(n),
//!     CostModel::Uniform,
//!     "checkerboard",
//! );
//! let report = runner.run();
//! assert!(report.hit_rate() > 0.9, "steady state mostly hits");
//! ```

mod clients;
pub mod drive;
pub mod live_runner;
mod observe;
pub mod report;
pub mod runner;
pub mod scenarios;
pub mod spec;
mod timeline;
pub mod traffic;

pub use drive::{ObsOptions, RunConfig, RuntimeKind};
pub use live_runner::LiveScenarioRunner;
pub use report::{
    ClosedLoopStats, LocateRecord, LocateVerdict, PhaseReport, RobustnessReport, ScenarioReport,
    WindowReport,
};
pub use runner::ScenarioRunner;
pub use spec::{
    ArrivalProcess, ChurnAction, ChurnEvent, ClientModel, FaultSpec, Phase, PortPopularity,
    ThinkTime, Workload,
};
pub use traffic::PopularitySampler;
